#include "runtime/simulator.hpp"

#include <algorithm>
#include <cassert>

#include "ndlog/parallel.hpp"
#include "obs/json.hpp"
#include "runtime/localize.hpp"

namespace fvn::runtime {

using ndlog::Database;
using ndlog::Rule;
using ndlog::Tuple;
using ndlog::TupleSet;
using ndlog::Value;

namespace {

/// Simulated seconds -> trace microseconds (the virtual time base of the
/// exported Chrome trace).
std::uint64_t sim_ts(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6);
}

/// Splitmix64: derives the loss RNG stream's seed from SimOptions::seed so
/// loss and jitter draws never share (and so never perturb) a stream.
std::uint64_t derive_loss_seed(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

Simulator::Simulator(ndlog::Program program, SimOptions options,
                     const ndlog::BuiltinRegistry& builtins)
    : program_(localize(program)),
      catalog_(ndlog::Catalog::from_program(program_)),
      options_(options),
      builtins_(&builtins),
      engine_(builtins),
      rng_(options.seed),
      loss_rng_(derive_loss_seed(options.seed)) {
  ndlog::check_arities(program_);
  ndlog::check_safety(program_, builtins);
  if (options_.require_stratified) ndlog::stratify(program_);
  if (options_.engine == EngineKind::Dataflow) {
    dataflow::PlanOptions plan_options;
    plan_options.incremental_aggregates = options_.incremental_aggregates;
    plan_options.cost_order = options_.cost_order;
    plan_.emplace(dataflow::compile(program_, plan_options));
  }
  if (options_.workers >= 1) {
    // Shard-parallel mode rides on the static certificate over the
    // *localized* program (the form the per-node engines actually run).
    ndlog::DiagnosticSink parallel_sink;
    const auto report = ndlog::parallel::analyze(program_, parallel_sink);
    if (report.certified) {
      dataflow::WorkerPool::Config cfg;
      cfg.workers = options_.workers;
      cfg.plan = plan_ ? &*plan_ : nullptr;
      cfg.program = &program_;
      cfg.builtins = builtins_;
      cfg.catalog = &catalog_;
      cfg.router = dataflow::ShardRouter(report, catalog_);
      pool_ = std::make_unique<dataflow::WorkerPool>(std::move(cfg));
      stats_.parallel_active = true;
    } else {
      // Transparent fallback: run serial, but tell the caller why.
      stats_.parallel_fallback_reason = report.fallback_reason.empty()
                                            ? "program not certified"
                                            : report.fallback_reason;
    }
  }
  for (const auto& rule : program_.rules) {
    if (rule.is_fact()) {
      // Program-embedded ground facts are injected at t=0.
      ndlog::Bindings empty;
      std::vector<Value> values;
      for (const auto& arg : rule.head.args) {
        values.push_back(*ndlog::eval_term(*arg.term, empty, builtins));
      }
      inject(Tuple(rule.head.predicate, std::move(values)), 0.0);
      continue;
    }
    (rule.head.has_aggregate() ? agg_rules_ : normal_rules_).push_back(&rule);
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<ndlog::BodyAtom>(&elem)) {
        if (ba->atom.predicate == "periodic") uses_periodic_ = true;
        if (rule.head.has_aggregate()) agg_body_preds_.insert(ba->atom.predicate);
      }
    }
  }
}

void Simulator::add_node(const std::string& name) { node_states_[name]; }

void Simulator::set_link_delay(const std::string& from, const std::string& to,
                               double delay) {
  link_delays_[{from, to}] = delay;
}

const Simulator::PredInfo& Simulator::pred_info(const std::string& predicate) const {
  auto it = pred_cache_.find(predicate);
  if (it != pred_cache_.end()) return it->second;
  PredInfo info;
  if (catalog_.contains(predicate)) {
    const auto& mat = catalog_.info(predicate);
    info.loc_index = mat.loc_index;
    info.lifetime = mat.lifetime_seconds;
    info.transient = mat.lifetime_seconds.has_value() && *mat.lifetime_seconds == 0.0;
    if (!mat.key_fields.empty()) info.key_fields = &mat.key_fields;
  }
  return pred_cache_.emplace(predicate, info).first->second;
}

std::string Simulator::location_of(const Tuple& tuple) const {
  const std::size_t idx = pred_info(tuple.predicate()).loc_index;
  if (idx >= tuple.arity() || !tuple.at(idx).is_addr()) {
    throw ndlog::AnalysisError("tuple " + tuple.to_string() +
                               " has no address at its location attribute");
  }
  return tuple.at(idx).as_addr();
}

void Simulator::schedule(Event event) {
  event.sequence = ++sequence_;
  queue_.push(std::move(event));
}

void Simulator::inject(const Tuple& fact, double time) {
  Event e;
  e.time = time;
  e.kind = Event::Kind::Deliver;
  e.node = location_of(fact);
  e.tuple = fact;
  add_node(e.node);
  schedule(std::move(e));
}

void Simulator::inject_all(const std::vector<Tuple>& facts, double time) {
  for (const auto& f : facts) inject(f, time);
}

void Simulator::retract(const Tuple& fact, double time) {
  Event e;
  e.time = time;
  e.kind = Event::Kind::Retract;
  e.node = location_of(fact);
  e.tuple = fact;
  schedule(std::move(e));
}

void Simulator::add_monitor(Monitor monitor) { monitors_.push_back(std::move(monitor)); }

std::string Simulator::key_of(const Tuple& tuple) const {
  std::string key = tuple.predicate();
  const PredInfo& info = pred_info(tuple.predicate());
  if (info.key_fields == nullptr) return key + "|" + tuple.to_string();
  for (std::size_t f : *info.key_fields) {
    if (f >= 1 && f <= tuple.arity()) key += "|" + tuple.at(f - 1).to_string();
  }
  return key;
}

dataflow::Engine& Simulator::flow(NodeState& state) {
  if (!state.flow) {
    state.flow =
        std::make_unique<dataflow::Engine>(*plan_, *builtins_, options_.metrics);
  }
  return *state.flow;
}

void Simulator::note_insert(NodeState& state, const Tuple& tuple) {
  if (plan_) flow(state).on_insert(tuple, state.db);
}

void Simulator::note_erase(NodeState& state, const Tuple& tuple) {
  if (plan_) flow(state).on_erase(tuple, state.db);
}

void Simulator::tuple_event(std::string_view kind, const std::string& node,
                            const Tuple& tuple, double now) {
  if (options_.tuple_events) options_.tuple_events(kind, node, tuple, now);
  if (options_.obs_trace != nullptr) {
    options_.obs_trace->instant_at(
        sim_ts(now), std::string(kind) + " " + tuple.predicate(), "tuple",
        "{\"node\":\"" + obs::json_escape(node) + "\",\"tuple\":\"" +
            obs::json_escape(tuple.to_string()) + "\"}");
  }
}

bool Simulator::install(NodeState& state, const std::string& node, const Tuple& tuple,
                        double now) {
  const std::optional<double> lifetime = pred_info(tuple.predicate()).lifetime;
  const std::string key = key_of(tuple);
  auto it = state.by_key.find(key);
  bool changed = false;
  if (it == state.by_key.end()) {
    state.by_key.emplace(key, tuple);
    state.db.insert(tuple);
    note_insert(state, tuple);
    changed = true;
  } else if (!(it->second == tuple)) {
    // Key overwrite (P2 materialize semantics).
    state.db.erase(it->second);
    note_erase(state, it->second);
    tuple_event("retract", node, it->second, now);
    state.expires_at.erase(it->second);
    it->second = tuple;
    state.db.insert(tuple);
    note_insert(state, tuple);
    ++stats_.overwrites;
    if (options_.metrics != nullptr) {
      options_.metrics->counter("sim/node/" + node + "/overwrites").add(1);
    }
    changed = true;
  }
  if (lifetime) {
    const double expiry = now + *lifetime;
    state.expires_at[tuple] = expiry;
    Event e;
    e.time = expiry;
    e.kind = Event::Kind::Expire;
    e.node = node;
    e.tuple = tuple;
    schedule(std::move(e));
  }
  if (changed) {
    ++stats_.tuples_derived;
    stats_.last_change_time = now;
    stats_.last_change_by_predicate[tuple.predicate()] = now;
    if (options_.record_trace) {
      trace_.push_back(TraceEntry{now, TraceEntry::Kind::Install, node, tuple.to_string()});
    }
    if (options_.metrics != nullptr) {
      options_.metrics->counter("sim/node/" + node + "/installed").add(1);
    }
    if (options_.obs_trace != nullptr) {
      options_.obs_trace->instant_at(sim_ts(now), "install " + tuple.predicate(), "sim",
                                     "{\"node\":\"" + obs::json_escape(node) + "\"}");
      options_.obs_trace->counter_at(sim_ts(now), "sim/installs", "sim",
                                     static_cast<double>(stats_.tuples_derived));
    }
    tuple_event("install", node, tuple, now);
    for (const auto& m : monitors_) {
      if (!m(node, tuple, now)) ++stats_.monitor_violations;
    }
  }
  return changed;
}

void Simulator::send(const std::string& from, const Tuple& tuple, double now) {
  const std::string to = location_of(tuple);
  ++stats_.messages_sent;
  if (options_.record_trace) {
    trace_.push_back(
        TraceEntry{now, TraceEntry::Kind::Send, from, tuple.to_string() + " -> " + to});
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter("sim/node/" + from + "/sent").add(1);
  }
  if (options_.obs_trace != nullptr) {
    options_.obs_trace->instant_at(sim_ts(now), "send " + tuple.predicate(), "sim",
                                   "{\"from\":\"" + obs::json_escape(from) +
                                       "\",\"to\":\"" + obs::json_escape(to) + "\"}");
  }
  if (options_.loss_rate > 0.0) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    if (u(loss_rng_) < options_.loss_rate) {
      ++stats_.messages_dropped;
      if (options_.metrics != nullptr) {
        options_.metrics->counter("sim/node/" + from + "/dropped").add(1);
      }
      return;
    }
  }
  double delay = options_.default_link_delay;
  auto it = link_delays_.find({from, to});
  if (it != link_delays_.end()) delay = it->second;
  if (options_.delay_jitter > 0.0) {
    std::uniform_real_distribution<double> j(0.0, options_.delay_jitter);
    delay *= 1.0 + j(rng_);
  }
  Event e;
  e.time = now + delay;
  e.kind = Event::Kind::Deliver;
  e.node = to;
  e.tuple = tuple;
  schedule(std::move(e));
}

void Simulator::run_rules(const std::string& node, const Tuple& delta, double now) {
  NodeState& state = node_states_[node];
  std::vector<Tuple> produced;
  if (plan_) {
    flow(state).process(delta, state.db, produced);
  } else {
    TupleSet delta_set{delta};
    for (const Rule* rule : normal_rules_) {
      const auto atoms = ndlog::RuleEngine::positive_atoms(*rule);
      std::uint64_t firings = 0;
      for (std::size_t i = 0; i < atoms.size(); ++i) {
        if (atoms[i]->atom.predicate != delta.predicate()) continue;
        engine_.eval_rule_delta(*rule, state.db, i, delta_set, [&](Tuple t) {
          ++firings;
          produced.push_back(std::move(t));
        });
      }
      if (firings != 0 && options_.metrics != nullptr) {
        options_.metrics->counter("sim/rule/" + rule->display_name() + "/firings")
            .add(firings);
      }
    }
  }
  for (auto& t : produced) {
    const std::string dest = location_of(t);
    if (dest == node) {
      deliver(node, t, now, /*transient=*/false);
    } else {
      send(node, t, now);
    }
  }
}

void Simulator::run_agg_rules(const std::string& node, double now,
                              std::vector<Tuple>* collect) {
  if (agg_rules_.empty()) return;
  if (plan_) {
    run_agg_rules_dataflow(node, now, collect);
    return;
  }
  NodeState& state = node_states_[node];
  for (const Rule* rule : agg_rules_) {
    TupleSet outputs;
    std::uint64_t firings = 0;
    engine_.eval_agg_rule(*rule, state.db, [&](Tuple t) {
      ++firings;
      outputs.insert(std::move(t));
    });
    if (firings != 0 && options_.metrics != nullptr) {
      options_.metrics->counter("sim/rule/" + rule->display_name() + "/firings")
          .add(firings);
    }
    TupleSet& prev = state.agg_cache[rule];
    if (outputs == prev) continue;
    // Incremental view maintenance: retract groups that disappeared or whose
    // aggregate value changed, then install/ship the new rows.
    for (const auto& old_row : prev) {
      if (outputs.count(old_row)) continue;
      if (location_of(old_row) != node) continue;  // remote copies age out
      if (state.db.erase(old_row)) {
        state.by_key.erase(key_of(old_row));
        state.expires_at.erase(old_row);
        stats_.last_change_time = now;
        tuple_event("retract", node, old_row, now);
        if (pool_ != nullptr && agg_body_preds_.count(old_row.predicate()) != 0) {
          state.agg_stale = true;  // a chained aggregate reads this output
        }
      }
    }
    std::vector<Tuple> added;
    for (const auto& row : outputs) {
      if (!prev.count(row)) added.push_back(row);
    }
    prev = outputs;
    for (const auto& t : added) {
      const std::string dest = location_of(t);
      if (dest == node) {
        if (install(state, node, t, now)) {
          if (collect != nullptr) {
            collect->push_back(t);  // next parallel round picks it up
          } else {
            run_rules(node, t, now);
          }
        }
      } else {
        send(node, t, now);
      }
    }
  }
}

void Simulator::run_agg_rules_dataflow(const std::string& node, double now,
                                       std::vector<Tuple>* collect) {
  // Mirrors the interpreter's run_agg_rules exactly — same rule order, same
  // diff-against-cache flow, same emission order (the engine builds the
  // output set by the same sorted-group insertion sequence eval_agg_rule
  // uses) — except the output view comes from incrementally maintained
  // group state instead of a full recompute.
  NodeState& state = node_states_[node];
  dataflow::Engine& engine = flow(state);
  for (std::size_t i = 0; i < plan_->aggregates.size(); ++i) {
    const Rule* rule = &program_.rules[plan_->aggregates[i].rule_index];
    auto maybe_outputs = engine.flush_aggregate(i, state.db);
    if (!maybe_outputs) continue;  // provably unchanged since the last flush
    TupleSet outputs = std::move(*maybe_outputs);
    TupleSet& prev = state.agg_cache[rule];
    if (outputs == prev) continue;
    for (const auto& old_row : prev) {
      if (outputs.count(old_row)) continue;
      if (location_of(old_row) != node) continue;  // remote copies age out
      if (state.db.erase(old_row)) {
        note_erase(state, old_row);
        state.by_key.erase(key_of(old_row));
        state.expires_at.erase(old_row);
        stats_.last_change_time = now;
        tuple_event("retract", node, old_row, now);
        if (pool_ != nullptr && agg_body_preds_.count(old_row.predicate()) != 0) {
          state.agg_stale = true;  // a chained aggregate reads this output
        }
      }
    }
    std::vector<Tuple> added;
    for (const auto& row : outputs) {
      if (!prev.count(row)) added.push_back(row);
    }
    prev = outputs;
    for (const auto& t : added) {
      const std::string dest = location_of(t);
      if (dest == node) {
        if (install(state, node, t, now)) {
          if (collect != nullptr) {
            collect->push_back(t);  // next parallel round picks it up
          } else {
            run_rules(node, t, now);
          }
        }
      } else {
        send(node, t, now);
      }
    }
  }
}

bool Simulator::is_transient(const Tuple& tuple) const {
  if (tuple.predicate() == "periodic") return true;
  return pred_info(tuple.predicate()).transient;
}

void Simulator::deliver_parallel_batch(Event first) {
  const double now = first.time;
  struct Pending {
    std::string node;
    Tuple tuple;
  };
  // Coalesce every delivery scheduled at this instant: deliveries at
  // different nodes are independent in the serial schedule too (they touch
  // disjoint databases; cross-node traffic re-enters the event queue), and
  // same-node deliveries join the node's delta frontier.
  std::vector<Event> events;
  events.push_back(std::move(first));
  while (!queue_.empty() && queue_.top().kind == Event::Kind::Deliver &&
         queue_.top().time == now &&
         stats_.events_processed < options_.max_events) {
    Event e = queue_.top();
    queue_.pop();
    ++stats_.events_processed;
    stats_.end_time = now;
    if (options_.metrics != nullptr) {
      options_.metrics->histogram("sim/queue_depth").observe(queue_.size() + 1);
      options_.metrics->counter("sim/node/" + e.node + "/received").add(1);
    }
    if (options_.obs_trace != nullptr) {
      options_.obs_trace->counter_at(sim_ts(now), "sim/queue_depth", "sim",
                                     static_cast<double>(queue_.size() + 1));
    }
    events.push_back(std::move(e));
  }
  ++stats_.parallel_batches;

  // Round 0 frontier: install every non-transient delivery (serialized, in
  // event order — exactly the serial loop's install order), keep what
  // changed the database plus the transients as deltas. A node joins
  // `agg_pending` only when a predicate some aggregate body reads changed
  // there (install or flagged erase): the aggregate pass is a full recompute
  // in interpreter mode, and for any other node it would just rediscover the
  // cached outputs.
  std::vector<Pending> frontier;
  std::set<std::string> touched;
  std::set<std::string> agg_pending;
  const auto agg_relevant = [this](const Tuple& t) {
    return agg_body_preds_.count(t.predicate()) != 0;
  };
  for (auto& e : events) {
    NodeState& state = node_states_[e.node];
    if (is_transient(e.tuple)) {
      touched.insert(e.node);
      frontier.push_back(Pending{e.node, std::move(e.tuple)});
    } else if (install(state, e.node, e.tuple, now)) {
      touched.insert(e.node);
      if (agg_relevant(e.tuple)) agg_pending.insert(e.node);
      frontier.push_back(Pending{e.node, std::move(e.tuple)});
    }
    if (state.agg_stale) {
      state.agg_stale = false;
      agg_pending.insert(e.node);
    }
  }

  // Round-local buffers hoisted out of the loop: rounds are short near the
  // fixpoint tail, so per-round allocations show up in the workers=1 budget.
  std::vector<dataflow::RoundItem> items;
  std::vector<std::pair<std::size_t, Tuple>> produced;
  std::vector<Pending> next;
  std::set<std::string> next_touched;
  std::set<std::string> next_agg_pending;
  std::vector<Tuple> agg_added;
  while (!frontier.empty() || !agg_pending.empty()) {
    ++stats_.parallel_rounds;
    next.clear();
    next_touched.clear();
    next_agg_pending.clear();
    if (!frontier.empty()) {
      // Freeze: pre-warm every index a worker probe can touch, then fan out.
      for (const auto& node : touched) pool_->prewarm(node_states_[node].db);
      items.clear();
      items.reserve(frontier.size());
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        items.push_back(dataflow::RoundItem{&frontier[i].tuple,
                                            &node_states_[frontier[i].node].db, i});
      }
      produced.clear();
      pool_->process_round(items, produced);

      // Barrier: installs, sends and aggregate flushes are serial again, in
      // the pool's deterministic merge order.
      for (auto& [tag, t] : produced) {
        const std::string& node = frontier[tag].node;
        const std::string dest = location_of(t);
        if (dest == node) {
          if (install(node_states_[node], node, t, now)) {
            next_touched.insert(node);
            if (agg_relevant(t)) next_agg_pending.insert(node);
            next.push_back(Pending{node, std::move(t)});
          }
        } else {
          send(node, t, now);
        }
      }
    }
    // One aggregate pass per agg-relevant node per round (collect mode: new
    // aggregate rows become next-round deltas instead of cascading here).
    for (const auto& node : agg_pending) {
      agg_added.clear();
      run_agg_rules(node, now, &agg_added);
      for (auto& t : agg_added) {
        next_touched.insert(node);
        if (agg_relevant(t)) next_agg_pending.insert(node);
        next.push_back(Pending{node, std::move(t)});
      }
      NodeState& state = node_states_[node];
      if (state.agg_stale) {
        // The pass retracted a row another aggregate reads: revisit.
        state.agg_stale = false;
        next_agg_pending.insert(node);
      }
    }
    std::swap(frontier, next);
    std::swap(touched, next_touched);
    std::swap(agg_pending, next_agg_pending);
  }
}

void Simulator::deliver(const std::string& node, const Tuple& tuple, double now,
                        bool transient) {
  NodeState& state = node_states_[node];
  if (transient) {
    run_rules(node, tuple, now);
    run_agg_rules(node, now);
    return;
  }
  if (!install(state, node, tuple, now)) return;  // duplicate: no re-derivation
  run_rules(node, tuple, now);
  run_agg_rules(node, now);
}

SimStats Simulator::run() {
  assert(!ran_ && "Simulator::run may be called once");
  ran_ = true;

  // Periodic event pre-scheduling.
  if (uses_periodic_ && options_.max_periodic_rounds > 0) {
    // Nodes known at start: everything referenced by queued events.
    std::vector<std::string> names;
    for (const auto& [name, state] : node_states_) names.push_back(name);
    for (const auto& name : names) {
      for (std::size_t k = 1; k <= options_.max_periodic_rounds; ++k) {
        Event e;
        e.time = static_cast<double>(k) * options_.periodic_interval;
        e.kind = Event::Kind::Periodic;
        e.node = name;
        e.tuple = Tuple("periodic", {Value::addr(name), Value::real(options_.periodic_interval)});
        schedule(std::move(e));
      }
    }
  }

  while (!queue_.empty()) {
    Event e = queue_.top();
    queue_.pop();
    if (e.time > options_.max_time || stats_.events_processed >= options_.max_events) {
      stats_.end_time = e.time;
      stats_.quiesced = false;
      return stats_;
    }
    ++stats_.events_processed;
    stats_.end_time = e.time;
    if (options_.metrics != nullptr) {
      // +1: the event just popped is still in flight conceptually.
      options_.metrics->histogram("sim/queue_depth").observe(queue_.size() + 1);
    }
    if (options_.obs_trace != nullptr) {
      options_.obs_trace->counter_at(sim_ts(e.time), "sim/queue_depth", "sim",
                                     static_cast<double>(queue_.size() + 1));
    }
    NodeState& state = node_states_[e.node];
    switch (e.kind) {
      case Event::Kind::Deliver: {
        if (options_.metrics != nullptr) {
          options_.metrics->counter("sim/node/" + e.node + "/received").add(1);
        }
        if (pool_ != nullptr) {
          deliver_parallel_batch(std::move(e));
          break;
        }
        deliver(e.node, e.tuple, e.time, is_transient(e.tuple));
        break;
      }
      case Event::Kind::Periodic:
        deliver(e.node, e.tuple, e.time, /*transient=*/true);
        break;
      case Event::Kind::Expire: {
        auto it = state.expires_at.find(e.tuple);
        // Only expire if this event corresponds to the latest refresh.
        if (it != state.expires_at.end() && it->second <= e.time + 1e-12) {
          state.expires_at.erase(it);
          if (state.db.erase(e.tuple)) {
            note_erase(state, e.tuple);
            tuple_event("expire", e.node, e.tuple, e.time);
            if (pool_ != nullptr && agg_body_preds_.count(e.tuple.predicate()) != 0) {
              state.agg_stale = true;
            }
          }
          state.by_key.erase(key_of(e.tuple));
          ++stats_.expirations;
          stats_.last_change_time = e.time;
          if (options_.record_trace) {
            trace_.push_back(TraceEntry{e.time, TraceEntry::Kind::Expire, e.node,
                                        e.tuple.to_string()});
          }
          if (options_.metrics != nullptr) {
            options_.metrics->counter("sim/node/" + e.node + "/expired").add(1);
          }
          if (options_.obs_trace != nullptr) {
            options_.obs_trace->instant_at(sim_ts(e.time), "expire " + e.tuple.predicate(),
                                           "sim");
          }
        }
        break;
      }
      case Event::Kind::Retract: {
        if (state.db.erase(e.tuple)) {
          note_erase(state, e.tuple);
          state.by_key.erase(key_of(e.tuple));
          state.expires_at.erase(e.tuple);
          stats_.last_change_time = e.time;
          tuple_event("retract", e.node, e.tuple, e.time);
          if (pool_ != nullptr && agg_body_preds_.count(e.tuple.predicate()) != 0) {
            state.agg_stale = true;
          }
        }
        break;
      }
    }
  }
  stats_.quiesced = true;
  return stats_;
}

const Database& Simulator::database(const std::string& node) const {
  static const Database empty;
  auto it = node_states_.find(node);
  return it == node_states_.end() ? empty : it->second.db;
}

Database Simulator::merged_database() const {
  Database out;
  for (const auto& [name, state] : node_states_) {
    for (const auto& pred : state.db.predicates()) {
      for (const auto& t : state.db.relation(pred)) out.insert(t);
    }
  }
  return out;
}

std::vector<std::string> Simulator::nodes() const {
  std::vector<std::string> out;
  for (const auto& [name, state] : node_states_) out.push_back(name);
  return out;
}

}  // namespace fvn::runtime
