// The distributed declarative-networking executor — FVN's stand-in for the
// P2 system (arc 7 of Figure 1): a discrete-event simulator in which every
// network node runs a pipelined semi-naive NDlog engine over its local
// tables, and derived tuples whose location specifier names another node
// travel as messages with configurable delay and loss.
//
// Features exercised by the experiments:
//   * location-specifier routing (the '@' of §2.2),
//   * per-(key) overwrite semantics for materialized tables (P2-style
//     primary keys from `materialize(..., keys(...))`),
//   * soft state: tuples with finite lifetime expire; `periodic(@N,I)`
//     events re-fire every I seconds (the native alternative to §4.2's
//     hard-state rewrite, experiment E8),
//   * runtime invariant monitors (the runtime-verification arc of §1),
//   * quiescence detection: convergence time and message counts (E5).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <random>
#include <set>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "dataflow/engine.hpp"
#include "dataflow/plan.hpp"
#include "dataflow/workers.hpp"
#include "ndlog/catalog.hpp"
#include "ndlog/eval.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fvn::runtime {

/// Which executor evaluates rules at each node.
enum class EngineKind : std::uint8_t {
  Interpreter,  ///< per-delta semi-naive re-evaluation via ndlog::RuleEngine
  Dataflow,     ///< compiled element strands (fvn::dataflow), P2/Click-style
};

struct SimOptions {
  double default_link_delay = 0.01;  // seconds
  /// Per-message drop probability. Loss draws come from a dedicated RNG
  /// stream (derived from `seed`), separate from the jitter stream below, so
  /// a seeded loss pattern is stable when `delay_jitter` is toggled — and a
  /// seeded jitter schedule is stable when `loss_rate` is toggled.
  double loss_rate = 0.0;
  /// Seeds both RNG streams: the jitter stream directly, the loss stream via
  /// a splitmix64 derivation.
  std::uint64_t seed = 1;
  /// Seed-driven per-message delay jitter: each message's delay is
  /// multiplied by 1 + U(0, delay_jitter) drawn from the jitter RNG stream
  /// (seeded with `seed`), so different seeds explore different arrival
  /// orders. 0 (the default) keeps schedules fully deterministic — existing
  /// differential tests rely on bit-identical runs. The semantic analyzer's
  /// order-sensitivity cross-validation (ND0016/ND0017) uses this to witness
  /// racing fixpoints with two seeds; those witnesses depend on the jitter
  /// stream consuming exactly one draw per non-local send, which is why loss
  /// draws live on their own stream (see loss_rate).
  double delay_jitter = 0.0;
  double max_time = 1e6;
  std::size_t max_events = 5'000'000;
  /// Fire `periodic(@N,Interval)` events at every node that the program
  /// mentions, until max_time (bounded by this count per node).
  std::size_t max_periodic_rounds = 0;
  double periodic_interval = 1.0;
  /// Require the program to be stratifiable (the static semantics guarantee).
  /// Periodic/soft-state protocols whose aggregate feedback loops are broken
  /// by time rather than by strata (e.g. distance-vector with re-advertised
  /// best routes) set this to false; the executor's incremental semantics is
  /// still well-defined operationally, as in P2.
  bool require_stratified = true;
  /// Record an event trace (see Simulator::trace()); off by default — traces
  /// grow linearly with event count.
  bool record_trace = false;
  /// Observability sinks (may be null — the default — for zero overhead).
  /// With `metrics`, the simulator records per-node message counters
  /// (sim/node/<n>/{sent,received,dropped,installed}), overwrite/expiry
  /// counters, interpreter-mode per-rule solution counters
  /// (sim/rule/<rule>/firings; dataflow mode exposes the finer-grained
  /// dataflow/elem/* series instead), and a sim/queue_depth histogram
  /// sampled at every event.
  /// With `obs_trace`, it emits instants and counter samples stamped in
  /// *virtual* time (simulated seconds as trace microseconds), so the
  /// exported Chrome trace shows protocol time, not host time.
  obs::Registry* metrics = nullptr;
  obs::Trace* obs_trace = nullptr;
  /// Live engine-agnostic tuple lifecycle hook: called after every database
  /// mutation with kind "install" / "retract" / "expire", the owning node,
  /// the tuple and the virtual time. Null (the default) costs nothing. LTL
  /// runtime monitors (`sim --monitor`, bench_ltl) attach here; the same
  /// stream is exported as cat "tuple" obs instants when obs_trace is set,
  /// with args {"node":...,"tuple":...} — the shape fvn::net emits too.
  std::function<void(std::string_view kind, const std::string& node,
                     const ndlog::Tuple& tuple, double now)>
      tuple_events;
  /// Rule executor. Both engines are operationally equivalent (identical
  /// fixpoints, message streams and convergence times — pinned by the
  /// differential tests); Dataflow compiles each rule once and pushes one
  /// tuple delta at a time through the element strands instead of paying a
  /// per-message join re-evaluation.
  EngineKind engine = EngineKind::Interpreter;
  /// Dataflow only: maintain aggregate views via per-group ± deltas where
  /// the planner proves it exact (false forces the recompute fallback for
  /// every aggregate rule — the ablation knob).
  bool incremental_aggregates = true;
  /// Dataflow mode: compile with cost-guided join ordering
  /// (dataflow::PlanOptions::cost_order). Interpreter mode ignores this.
  bool cost_order = false;
  /// Shard-parallel evaluation (both engines). 0 = the untouched serial
  /// path. >= 1 asks fvn::ndlog::parallel to certify the (localized)
  /// program; when certified, same-timestamp deliveries are evaluated in
  /// shard-keyed rounds across this many workers (1 = the round machinery
  /// without threads — the overhead baseline), with installs, aggregates
  /// and sends serialized at round barriers so fixpoints stay bit-identical
  /// to serial runs. Uncertified programs fall back to the serial path
  /// transparently; SimStats::parallel_fallback_reason records why.
  std::size_t workers = 0;
};

/// One recorded simulation event (Pip-style trace entry for offline checks).
struct TraceEntry {
  double time = 0.0;
  enum class Kind : std::uint8_t { Send, Deliver, Install, Expire, Retract } kind;
  std::string node;  // acting node (sender for Send, owner otherwise)
  std::string detail;
};

struct SimStats {
  std::size_t events_processed = 0;
  std::size_t messages_sent = 0;
  std::size_t messages_dropped = 0;
  std::size_t tuples_derived = 0;
  std::size_t overwrites = 0;      // key-replacement updates
  std::size_t expirations = 0;     // soft-state timeouts
  double last_change_time = 0.0;   // convergence instant (quiescence)
  /// Per-predicate settle time: when each relation last changed anywhere
  /// (E5's "delayed convergence" is visible on bestRoute).
  std::map<std::string, double> last_change_by_predicate;
  double end_time = 0.0;
  bool quiesced = false;           // queue drained before budget exhausted
  std::size_t monitor_violations = 0;
  /// Shard-parallel execution (SimOptions::workers): whether the program's
  /// certificate admitted it, why not when it didn't, and how much round
  /// machinery actually ran.
  bool parallel_active = false;
  std::string parallel_fallback_reason;
  std::size_t parallel_batches = 0;  // same-timestamp delivery batches
  std::size_t parallel_rounds = 0;   // evaluation rounds across all batches
};

/// A runtime-verification monitor: called for every newly installed tuple.
/// Return false to flag an invariant violation (recorded in stats; the run
/// continues, like Pip-style online checkers).
using Monitor =
    std::function<bool(const std::string& node, const ndlog::Tuple& tuple, double now)>;

/// Discrete-event distributed executor for one NDlog program.
class Simulator {
 public:
  Simulator(ndlog::Program program, SimOptions options = {},
            const ndlog::BuiltinRegistry& builtins = ndlog::BuiltinRegistry::standard());

  /// Nodes are created implicitly by fact locations; explicit creation is
  /// useful for nodes that only receive.
  void add_node(const std::string& name);

  /// Override the delay of the directed link a->b (defaults apply otherwise).
  void set_link_delay(const std::string& from, const std::string& to, double delay);

  /// Inject a base fact at `time`; it is delivered to the node named by its
  /// location attribute.
  void inject(const ndlog::Tuple& fact, double time = 0.0);
  void inject_all(const std::vector<ndlog::Tuple>& facts, double time = 0.0);

  /// Delete a base tuple at `time` (e.g. a link failure). No derivation
  /// cascade is performed (P2-style); soft state re-derives around it.
  void retract(const ndlog::Tuple& fact, double time);

  void add_monitor(Monitor monitor);

  /// Run to quiescence (or budget exhaustion). May be called once.
  SimStats run();

  /// Local database of a node (valid after run()).
  const ndlog::Database& database(const std::string& node) const;
  /// Compiled dataflow plan (null in interpreter mode).
  const dataflow::Plan* plan() const noexcept { return plan_ ? &*plan_ : nullptr; }
  /// Recorded events (empty unless options.record_trace).
  const std::vector<TraceEntry>& trace() const noexcept { return trace_; }
  /// Union of all nodes' relations (for comparing with the centralized
  /// evaluator's result).
  ndlog::Database merged_database() const;
  std::vector<std::string> nodes() const;

 private:
  struct Event {
    double time = 0.0;
    std::uint64_t sequence = 0;  // FIFO tie-break for determinism
    enum class Kind : std::uint8_t { Deliver, Expire, Retract, Periodic } kind = Kind::Deliver;
    std::string node;
    ndlog::Tuple tuple;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return sequence > other.sequence;
    }
  };

  struct NodeState {
    ndlog::Database db;
    /// key (predicate + key-field values) -> installed tuple, for overwrite.
    std::map<std::string, ndlog::Tuple> by_key;
    /// expiry bookkeeping: tuple -> scheduled expiry time (latest refresh).
    std::map<ndlog::Tuple, double> expires_at;
    /// per-aggregate-rule last output (incremental view maintenance).
    std::map<const ndlog::Rule*, ndlog::TupleSet> agg_cache;
    /// A tuple some aggregate body reads was erased outside the aggregate
    /// pass (expiry, retraction, or a cascading aggregate retract): the next
    /// parallel round must re-run the pass here even if no aggregate-body
    /// predicate was installed. Serial mode needs no flag — it runs the pass
    /// after every delivery unconditionally.
    bool agg_stale = false;
    /// Dataflow mode: this node's compiled engine (created on first use).
    std::unique_ptr<dataflow::Engine> flow;
  };

  /// Catalog facts for one predicate, resolved once and memoized: the
  /// per-tuple hot paths (location_of/key_of/install/is_transient) otherwise
  /// re-walk the catalog's std::map for every install and send.
  struct PredInfo {
    std::size_t loc_index = 0;
    bool transient = false;  // lifetime == 0 (periodic is special-cased)
    std::optional<double> lifetime;
    /// Non-null iff materialized with explicit keys (points into catalog_).
    const std::vector<std::size_t>* key_fields = nullptr;
  };
  const PredInfo& pred_info(const std::string& predicate) const;

  void schedule(Event event);
  void deliver(const std::string& node, const ndlog::Tuple& tuple, double now,
               bool transient);
  void send(const std::string& from, const ndlog::Tuple& tuple, double now);
  /// Install into local tables honoring keys/lifetimes; returns true if the
  /// database changed (new tuple or overwrite).
  bool install(NodeState& state, const std::string& node, const ndlog::Tuple& tuple,
               double now);
  void run_rules(const std::string& node, const ndlog::Tuple& delta, double now);
  /// Aggregate maintenance pass. `collect` non-null (parallel rounds only):
  /// locally installed aggregate rows are appended there for the next round
  /// instead of cascading through run_rules immediately.
  void run_agg_rules(const std::string& node, double now,
                     std::vector<ndlog::Tuple>* collect = nullptr);
  void run_agg_rules_dataflow(const std::string& node, double now,
                              std::vector<ndlog::Tuple>* collect = nullptr);
  /// Parallel mode: pop every further Deliver event scheduled at
  /// `first.time` and evaluate the whole batch in shard-keyed rounds.
  void deliver_parallel_batch(Event first);
  bool is_transient(const ndlog::Tuple& tuple) const;
  std::string key_of(const ndlog::Tuple& tuple) const;
  std::string location_of(const ndlog::Tuple& tuple) const;
  /// Dataflow mode: the node's engine (created lazily; by construction every
  /// database mutation flows through the mirror hooks from the first insert,
  /// so a freshly created engine always starts from an empty database).
  dataflow::Engine& flow(NodeState& state);
  /// Mirror hooks — no-ops in interpreter mode.
  void note_insert(NodeState& state, const ndlog::Tuple& tuple);
  void note_erase(NodeState& state, const ndlog::Tuple& tuple);
  /// Structured tuple-event emission (SimOptions::tuple_events + cat "tuple"
  /// obs instants); `kind` is "install", "retract" or "expire".
  void tuple_event(std::string_view kind, const std::string& node,
                   const ndlog::Tuple& tuple, double now);

  ndlog::Program program_;
  ndlog::Catalog catalog_;
  SimOptions options_;
  const ndlog::BuiltinRegistry* builtins_;
  ndlog::RuleEngine engine_;
  /// Engaged iff options_.engine == EngineKind::Dataflow.
  std::optional<dataflow::Plan> plan_;
  /// Engaged iff options_.workers >= 1 and the parallel certificate held.
  std::unique_ptr<dataflow::WorkerPool> pool_;

  /// pred_info() memo. The catalog is immutable after construction, so
  /// cached entries (and their key_fields pointers) never go stale.
  mutable std::unordered_map<std::string, PredInfo> pred_cache_;

  std::map<std::string, NodeState> node_states_;
  std::map<std::pair<std::string, std::string>, double> link_delays_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::uint64_t sequence_ = 0;
  /// Jitter stream (delay_jitter draws). Kept separate from loss_rng_ so the
  /// two fault knobs can be toggled independently without perturbing each
  /// other's seeded schedules.
  std::mt19937_64 rng_;
  /// Loss stream (loss_rate draws), seeded from `seed` via splitmix64.
  std::mt19937_64 loss_rng_;
  std::vector<Monitor> monitors_;
  std::vector<TraceEntry> trace_;
  SimStats stats_;
  bool ran_ = false;
  /// Rules with aggregates, re-evaluated incrementally per node.
  std::vector<const ndlog::Rule*> agg_rules_;
  std::vector<const ndlog::Rule*> normal_rules_;
  /// Every predicate some aggregate rule's body reads (positive or negated).
  /// Parallel rounds skip the per-node aggregate pass unless one of these
  /// changed — the pass is a full recompute in interpreter mode, so running
  /// it once per round per touched node would dominate the workers=1 budget.
  std::unordered_set<std::string> agg_body_preds_;
  bool uses_periodic_ = false;
};

}  // namespace fvn::runtime
