#include "runtime/localize.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <variant>

namespace fvn::runtime {

using ndlog::AnalysisError;
using ndlog::Atom;
using ndlog::BodyAtom;
using ndlog::HeadArg;
using ndlog::HeadAtom;
using ndlog::Program;
using ndlog::Rule;
using ndlog::Term;

// Location extraction is shared with the ND0012 localizability lint pass.
using ndlog::body_location_vars;
using ndlog::location_var_of;

bool is_local_rule(const Rule& rule) { return body_location_vars(rule).size() <= 1; }

Program localize(const Program& program) {
  Program out;
  out.name = program.name;
  out.materializations = program.materializations;

  for (const auto& rule : program.rules) {
    if (rule.is_fact() || is_local_rule(rule)) {
      out.rules.push_back(rule);
      continue;
    }
    // Orientation analysis is shared with the ND0013 link-restriction lint
    // pass, which reports the same failures statically.
    const ndlog::LocalizationCheck check = ndlog::check_localizable(rule);
    if (!check.localizable()) throw AnalysisError(check.detail);
    const std::string& join_site = check.join_site;
    const std::string& ship_site = check.ship_site;

    Rule rewritten = rule;
    std::size_t ship_index = 0;
    for (auto& elem : rewritten.body) {
      auto* ba = std::get_if<BodyAtom>(&elem);
      if (ba == nullptr) continue;
      if (location_var_of(ba->atom) != ship_site) continue;
      if (ba->negated) {
        throw AnalysisError("rule " + rule.name +
                            ": cannot localize a negated remote atom");
      }
      // Link-restriction: the shipped atom must mention the join site's
      // location variable so the copy knows where to go.
      int dest_pos = -1;
      for (std::size_t i = 0; i < ba->atom.args.size(); ++i) {
        const auto& t = ba->atom.args[i];
        if (t->kind == Term::Kind::Var && t->name == join_site) {
          dest_pos = static_cast<int>(i);
          break;
        }
      }
      if (dest_pos < 0) {
        throw AnalysisError("rule " + rule.name + ": atom " + ba->atom.predicate +
                            " at @" + ship_site +
                            " does not carry the join location '" + join_site +
                            "' (not link-restricted)");
      }
      // Generated ship rule: pred_sh_<rule>_<k>(same args, @ at dest_pos).
      const std::string ship_pred = ba->atom.predicate + "_sh_" +
                                    (rule.name.empty() ? rewritten.head.predicate
                                                       : rule.name) +
                                    "_" + std::to_string(++ship_index);
      Rule ship;
      ship.name = ship_pred;
      // Stamp the synthesized rule with the source span of the originating
      // rule (and its head with the shipped atom's span) so diagnostics and
      // traces about *_sh_* rules point at user code, not at line 0.
      ship.loc = rule.loc;
      HeadAtom head;
      head.predicate = ship_pred;
      for (const auto& arg : ba->atom.args) head.args.push_back(HeadArg::plain(arg));
      head.loc_index = dest_pos;
      head.loc = ba->atom.loc;
      ship.head = std::move(head);
      BodyAtom source;
      source.atom = ba->atom;
      ship.body.emplace_back(std::move(source));
      out.rules.push_back(std::move(ship));

      // Rewrite the original body atom to the shipped copy (now local).
      ba->atom.predicate = ship_pred;
      ba->atom.loc_index = dest_pos;
    }
    out.rules.push_back(std::move(rewritten));
  }
  return out;
}

}  // namespace fvn::runtime
