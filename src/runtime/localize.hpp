// P2-style rule localization: rewrite rules whose body atoms live at two
// different location variables into an equivalent pair where the "link" atom
// is shipped to the remote side and the join happens locally (Loo et al.,
// "Declarative Networking"). The paper's r2
//
//   path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), ...
//
// becomes
//
//   link_sh_r2(S,@Z,C1) :- link(@S,Z,C1).
//   path(@S,D,P,C)      :- link_sh_r2(S,@Z,C1), path(@Z,D,P2,C2), ...
//
// after which every rule body is single-site and the executor only ships head
// tuples (and the generated link copies).
#pragma once

#include "ndlog/analysis.hpp"
#include "ndlog/ast.hpp"

namespace fvn::runtime {

/// True if every positive body atom of the rule shares one location variable
/// (or the body has at most one relational atom).
bool is_local_rule(const ndlog::Rule& rule);

/// Localize a whole program. Rules that are already local pass through.
/// Throws AnalysisError for rules that are not link-restricted (no body atom
/// at the local site carries the remote location variable).
ndlog::Program localize(const ndlog::Program& program);

}  // namespace fvn::runtime
