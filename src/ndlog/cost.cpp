#include "ndlog/cost.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace fvn::ndlog::cost {

// ---------------------------------------------------------------------------
// Bound arithmetic
// ---------------------------------------------------------------------------

Bound Bound::sym(const std::string& name, int power) {
  Bound b;
  b.powers[name] = power;
  return b;
}

Bound Bound::paths() {
  Bound b;
  b.powers["V"] = 1;
  b.factorial = 1;
  return b;
}

int Bound::degree() const noexcept {
  if (unbounded) return 1 << 20;
  int d = factorial * factorial_degree_weight;
  for (const auto& [sym, p] : powers) d += p;
  return d;
}

double Bound::evaluate(const std::map<std::string, double>& env) const {
  constexpr double inf = std::numeric_limits<double>::infinity();
  if (unbounded) return inf;
  if (is_zero()) return 0.0;
  double v = constant;
  auto symbol = [&](const std::string& name) {
    auto it = env.find(name);
    return it == env.end() ? inf : std::max(1.0, it->second);
  };
  for (const auto& [sym, p] : powers) v *= std::pow(symbol(sym), p);
  if (factorial > 0) v *= std::pow(std::tgamma(symbol("V") + 1.0), factorial);
  return v;
}

void Bound::collect_symbols(std::set<std::string>& out) const {
  if (unbounded || is_zero()) return;
  for (const auto& [sym, p] : powers) out.insert(sym);
  if (factorial > 0) out.insert("V");
}

namespace {

std::string format_number(double v) {
  if (v == std::rint(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

std::vector<std::string> symbol_parts(const Bound& b) {
  std::vector<std::string> parts;
  for (const auto& [sym, p] : b.powers) {
    parts.push_back(p == 1 ? sym : sym + "^" + std::to_string(p));
  }
  if (b.factorial > 0) {
    parts.push_back(b.factorial == 1 ? "V!" : "V!^" + std::to_string(b.factorial));
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace

std::string Bound::to_string() const {
  if (unbounded) return "unbounded";
  if (is_zero()) return "0";
  std::vector<std::string> parts = symbol_parts(*this);
  if (constant != 1.0 || parts.empty()) {
    parts.insert(parts.begin(), format_number(constant));
  }
  return join(parts, "*");
}

std::string Bound::complexity_class() const {
  if (unbounded) return "unbounded";
  if (factorial > 0) return "O(exp)";
  if (powers.empty()) return "O(1)";
  return "O(" + join(symbol_parts(*this), "*") + ")";
}

bool Bound::operator==(const Bound& other) const noexcept {
  return unbounded == other.unbounded && constant == other.constant &&
         powers == other.powers && factorial == other.factorial;
}

Bound times(const Bound& a, const Bound& b) {
  if (a.is_zero() || b.is_zero()) return Bound::zero();
  if (a.unbounded || b.unbounded) return Bound::top();
  Bound r;
  r.constant = a.constant * b.constant;
  r.powers = a.powers;
  for (const auto& [sym, p] : b.powers) r.powers[sym] += p;
  r.factorial = a.factorial + b.factorial;
  return r;
}

Bound plus(const Bound& a, const Bound& b) {
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;
  if (a.unbounded || b.unbounded) return Bound::top();
  Bound r;
  r.constant = a.constant + b.constant;
  r.powers = a.powers;
  for (const auto& [sym, p] : b.powers) {
    int& have = r.powers[sym];
    have = std::max(have, p);
  }
  r.factorial = std::max(a.factorial, b.factorial);
  return r;
}

bool cheaper(const Bound& a, const Bound& b) {
  if (a.unbounded != b.unbounded) return !a.unbounded;
  if (a.factorial != b.factorial) return a.factorial < b.factorial;
  if (a.degree() != b.degree()) return a.degree() < b.degree();
  if (a.powers != b.powers) return a.powers < b.powers;
  return a.constant < b.constant;
}

Bound min_bound(const Bound& a, const Bound& b) { return cheaper(b, a) ? b : a; }

// ---------------------------------------------------------------------------
// Column shapes & domains
// ---------------------------------------------------------------------------

namespace {

/// Coarse per-column value shape: what kind of values can reach a column.
/// `Addr` and `Path` have model-able domains (V node addresses; ≤ V·V!
/// simple paths); everything else falls back to the interval abstraction.
enum class Shape : std::uint8_t { Bottom, Addr, Num, Bool, Str, Path, Top };

Shape shape_join(Shape a, Shape b) {
  if (a == b) return a;
  if (a == Shape::Bottom) return b;
  if (b == Shape::Bottom) return a;
  return Shape::Top;
}

/// Most precise of two sound shapes for one variable (a join variable's
/// values lie in the intersection of its source columns, so either source
/// shape is a sound over-approximation; prefer the informative one).
Shape shape_refine(Shape a, Shape b) {
  if (a == Shape::Bottom || b == Shape::Bottom) return Shape::Bottom;
  if (a == Shape::Top) return b;
  return a;
}

Shape shape_of_value(const Value& v) {
  switch (v.kind()) {
    case ValueKind::Addr: return Shape::Addr;
    case ValueKind::Int:
    case ValueKind::Double: return Shape::Num;
    case ValueKind::Bool: return Shape::Bool;
    case ValueKind::Str: return Shape::Str;
    case ValueKind::List: return Shape::Path;
    case ValueKind::Nil: return Shape::Top;
  }
  return Shape::Top;
}

bool is_path_builtin(const std::string& name) {
  return name == "f_concatPath" || name == "f_init" || name == "f_initPath" ||
         name == "f_append" || name == "f_list" || name == "f_cons";
}

Shape term_shape(const TermPtr& term, const std::map<std::string, Shape>& vars) {
  if (term == nullptr) return Shape::Top;
  switch (term->kind) {
    case Term::Kind::Var: {
      auto it = vars.find(term->name);
      return it == vars.end() ? Shape::Top : it->second;
    }
    case Term::Kind::Const: return shape_of_value(term->constant);
    case Term::Kind::Binary: return Shape::Num;
    case Term::Kind::Func:
      if (is_path_builtin(term->name)) return Shape::Path;
      if (term->name == "f_inPath") return Shape::Bool;
      if (term->name == "f_size" || term->name == "f_count" ||
          term->name == "f_length") {
        return Shape::Num;
      }
      return Shape::Top;
  }
  return Shape::Top;
}

/// Everything the cost pass derives before bounding rules.
struct Context {
  const Program* program = nullptr;
  const SemanticReport* semantics = nullptr;
  std::map<std::string, std::size_t> arity;
  std::set<std::string> derived;  // head of some non-fact rule
  std::map<std::string, std::size_t> fact_count;
  /// Columns consumed (possibly transitively) as a location specifier: the
  /// runtime would fault on a non-address there, so their domain is V.
  std::map<std::string, std::vector<char>> addr_demanded;
  std::map<std::string, std::vector<Shape>> shapes;
  std::map<std::string, Bound> derivations;
};

void collect_signatures(Context& ctx) {
  const Program& program = *ctx.program;
  auto note = [&](const std::string& pred, std::size_t arity) {
    auto [it, inserted] = ctx.arity.emplace(pred, arity);
    if (!inserted) it->second = std::max(it->second, arity);
  };
  for (const auto& rule : program.rules) {
    note(rule.head.predicate, rule.head.args.size());
    if (rule.is_fact()) {
      ++ctx.fact_count[rule.head.predicate];
    } else {
      ctx.derived.insert(rule.head.predicate);
    }
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        note(ba->atom.predicate, ba->atom.args.size());
      }
    }
  }
  for (const auto& [pred, arity] : ctx.arity) {
    ctx.addr_demanded[pred].assign(arity, 0);
    ctx.shapes[pred].assign(arity, Shape::Bottom);
  }
}

/// Backward address-typing: seed every location-specifier column, then
/// propagate through joins — a positive body column whose variable is used
/// anywhere an address is demanded must itself hold addresses.
void infer_addr_demand(Context& ctx) {
  const Program& program = *ctx.program;
  auto demanded = [&](const std::string& pred, std::size_t col) -> char& {
    return ctx.addr_demanded[pred][col];
  };
  // Seeds: the '@' column of every atom occurrence.
  auto seed_atom = [&](const std::string& pred, int loc_index) {
    if (loc_index >= 0) demanded(pred, static_cast<std::size_t>(loc_index)) = 1;
  };
  for (const auto& rule : program.rules) {
    seed_atom(rule.head.predicate, rule.head.loc_index);
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        seed_atom(ba->atom.predicate, ba->atom.loc_index);
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& rule : program.rules) {
      if (rule.is_fact()) continue;
      std::set<std::string> addr_vars;
      auto demand_var = [&](const TermPtr& t) {
        if (t != nullptr && t->kind == Term::Kind::Var) addr_vars.insert(t->name);
      };
      for (std::size_t c = 0; c < rule.head.args.size(); ++c) {
        if (demanded(rule.head.predicate, c) != 0 && !rule.head.args[c].is_agg()) {
          demand_var(rule.head.args[c].term);
        }
      }
      for (const auto& elem : rule.body) {
        const auto* ba = std::get_if<BodyAtom>(&elem);
        if (ba == nullptr) continue;
        for (std::size_t c = 0; c < ba->atom.args.size(); ++c) {
          if (demanded(ba->atom.predicate, c) != 0) demand_var(ba->atom.args[c]);
        }
      }
      // Mark the source columns of demanded variables.
      for (const auto& elem : rule.body) {
        const auto* ba = std::get_if<BodyAtom>(&elem);
        if (ba == nullptr || ba->negated) continue;
        for (std::size_t c = 0; c < ba->atom.args.size(); ++c) {
          const auto& t = ba->atom.args[c];
          if (t != nullptr && t->kind == Term::Kind::Var &&
              addr_vars.count(t->name) != 0 &&
              demanded(ba->atom.predicate, c) == 0) {
            demanded(ba->atom.predicate, c) = 1;
            changed = true;
          }
        }
      }
    }
  }
}

/// Forward value shapes. Base (underived) predicates start at Addr where
/// address-demanded and Top elsewhere (external injection is untyped); ground
/// facts contribute their constant shapes; derived columns join the head
/// term shapes of every deriving rule to fixpoint.
void infer_shapes(Context& ctx) {
  const Program& program = *ctx.program;
  for (auto& [pred, cols] : ctx.shapes) {
    if (ctx.derived.count(pred) != 0) continue;
    for (std::size_t c = 0; c < cols.size(); ++c) {
      cols[c] = ctx.addr_demanded[pred][c] != 0 ? Shape::Addr : Shape::Top;
    }
  }
  for (const auto& rule : program.rules) {
    if (!rule.is_fact()) continue;
    auto& cols = ctx.shapes[rule.head.predicate];
    for (std::size_t c = 0; c < rule.head.args.size() && c < cols.size(); ++c) {
      const auto& arg = rule.head.args[c];
      if (arg.is_agg() || arg.term == nullptr) continue;
      if (ctx.derived.count(rule.head.predicate) != 0) {
        cols[c] = shape_join(cols[c], term_shape(arg.term, {}));
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& rule : program.rules) {
      if (rule.is_fact()) continue;
      std::map<std::string, Shape> vars;
      for (const auto& elem : rule.body) {
        const auto* ba = std::get_if<BodyAtom>(&elem);
        if (ba == nullptr || ba->negated) continue;
        const auto& cols = ctx.shapes[ba->atom.predicate];
        const auto& dem = ctx.addr_demanded[ba->atom.predicate];
        for (std::size_t c = 0; c < ba->atom.args.size() && c < cols.size(); ++c) {
          const auto& t = ba->atom.args[c];
          if (t == nullptr || t->kind != Term::Kind::Var) continue;
          const Shape src = dem[c] != 0 ? Shape::Addr : cols[c];
          auto [it, inserted] = vars.emplace(t->name, src);
          if (!inserted) it->second = shape_refine(it->second, src);
        }
      }
      // Binding comparisons (`C = C1 + C2`) shape additional variables; two
      // passes cover one level of chaining, which is all the dialect uses.
      for (int pass = 0; pass < 2; ++pass) {
        for (const auto& elem : rule.body) {
          const auto* cmp = std::get_if<Comparison>(&elem);
          if (cmp == nullptr || cmp->op != CmpOp::Eq) continue;
          if (cmp->lhs != nullptr && cmp->lhs->kind == Term::Kind::Var &&
              vars.count(cmp->lhs->name) == 0) {
            vars[cmp->lhs->name] = term_shape(cmp->rhs, vars);
          } else if (cmp->rhs != nullptr && cmp->rhs->kind == Term::Kind::Var &&
                     vars.count(cmp->rhs->name) == 0) {
            vars[cmp->rhs->name] = term_shape(cmp->lhs, vars);
          }
        }
      }
      auto& cols = ctx.shapes[rule.head.predicate];
      for (std::size_t c = 0; c < rule.head.args.size() && c < cols.size(); ++c) {
        const auto& arg = rule.head.args[c];
        Shape s = Shape::Top;
        if (arg.is_agg()) {
          if (*arg.agg == AggKind::Count || *arg.agg == AggKind::Sum) {
            s = Shape::Num;
          } else {
            auto it = vars.find(arg.agg_var);
            s = it == vars.end() ? Shape::Top : it->second;
          }
        } else {
          s = term_shape(arg.term, vars);
        }
        const Shape joined = shape_join(cols[c], s);
        if (joined != cols[c]) {
          cols[c] = joined;
          changed = true;
        }
      }
    }
  }
}

/// Domain bound of one column: how many distinct values can appear there.
Bound column_domain(const Context& ctx, const std::string& pred, std::size_t col) {
  const auto ait = ctx.semantics->abstraction.find(pred);
  if (ait != ctx.semantics->abstraction.end() && col < ait->second.size()) {
    const absint::AbstractValue& av = ait->second[col];
    if (av.is_bottom()) return Bound::zero();
    if (av.is_bool()) return Bound::count(2);
    if (av.is_num() && av.num.bounded_below() && av.num.bounded_above()) {
      // Integer-valued metrics (hop counts, costs) — see DESIGN.md §13 for
      // the integrality assumption.
      const double n = std::floor(av.num.hi) - std::ceil(av.num.lo) + 1.0;
      return Bound::count(std::max(0.0, n));
    }
  }
  const auto dit = ctx.addr_demanded.find(pred);
  if (dit != ctx.addr_demanded.end() && col < dit->second.size() &&
      dit->second[col] != 0) {
    return Bound::sym("V");
  }
  const auto sit = ctx.shapes.find(pred);
  const Shape s = (sit != ctx.shapes.end() && col < sit->second.size())
                      ? sit->second[col]
                      : Shape::Top;
  switch (s) {
    case Shape::Addr: return Bound::sym("V");
    case Shape::Path: return Bound::paths();
    case Shape::Bool: return Bound::count(2);
    case Shape::Bottom: return Bound::zero();
    default: return Bound::top();
  }
}

/// Close `have` under the surviving FDs (chase with augmentation).
std::set<int> fd_closure(const std::map<std::string, std::vector<Fd>>& fds,
                         const std::string& pred, std::set<int> have,
                         std::size_t arity) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t c = 0; c < arity; ++c) {
      const int col = static_cast<int>(c);
      if (have.count(col) != 0) continue;
      if (fd_determines(fds, pred, have, col)) {
        have.insert(col);
        changed = true;
      }
    }
  }
  return have;
}

/// Greedy key cover: drop columns that the remaining set still determines,
/// so table-size products only range over an (approximate) candidate key.
std::set<int> reduce_columns(const Context& ctx, const std::string& pred,
                             std::size_t arity) {
  std::set<int> keep;
  for (std::size_t c = 0; c < arity; ++c) keep.insert(static_cast<int>(c));
  for (std::size_t c = arity; c-- > 0;) {
    std::set<int> trial = keep;
    trial.erase(static_cast<int>(c));
    if (fd_closure(ctx.semantics->fds, pred, trial, arity).size() == arity) {
      keep = std::move(trial);
    }
  }
  return keep;
}

Bound derivations_of(const Context& ctx, const std::string& pred) {
  auto it = ctx.derivations.find(pred);
  return it == ctx.derivations.end() ? Bound::top() : it->second;
}

/// Upper bound on distinct body solutions when the positive atoms are
/// joined in `order` (body-element indices). Per probe, the fan-out is the
/// cheaper of the predicate's derivation bound and the product of the
/// domains of columns not FD-determined by the already-bound ones.
Bound join_order_bound(const Context& ctx, const Rule& rule,
                       const std::vector<std::size_t>& order) {
  std::set<std::string> bound_vars;
  Bound total = Bound::one();
  for (const std::size_t idx : order) {
    const Atom& atom = std::get<BodyAtom>(rule.body[idx]).atom;
    const std::size_t arity = atom.args.size();
    std::set<int> bound_cols;
    for (std::size_t c = 0; c < arity; ++c) {
      const auto& t = atom.args[c];
      if (t == nullptr) continue;
      if (t->kind == Term::Kind::Const ||
          (t->kind == Term::Kind::Var && bound_vars.count(t->name) != 0)) {
        bound_cols.insert(static_cast<int>(c));
      }
    }
    const std::set<int> closed =
        fd_closure(ctx.semantics->fds, atom.predicate, bound_cols, arity);
    Bound fanout = Bound::one();
    for (std::size_t c = 0; c < arity; ++c) {
      if (closed.count(static_cast<int>(c)) != 0) continue;
      fanout = times(fanout, column_domain(ctx, atom.predicate, c));
    }
    total = times(total, min_bound(derivations_of(ctx, atom.predicate), fanout));
    std::vector<std::string> vars;
    atom.collect_vars(vars);
    bound_vars.insert(vars.begin(), vars.end());
  }
  return total;
}

std::vector<std::size_t> positive_atom_indices(const Rule& rule) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < rule.body.size(); ++i) {
    const auto* ba = std::get_if<BodyAtom>(&rule.body[i]);
    if (ba != nullptr && !ba->negated) out.push_back(i);
  }
  return out;
}

/// Per-predicate derivation bounds, computed SCC by SCC in dependency order
/// so non-recursive predicates can also be bounded by the sum of their
/// rules' join sizes (whose body predicates are already bounded).
void compute_derivations(Context& ctx) {
  const Program& program = *ctx.program;
  auto bound_one = [&](const std::string& pred) {
    const std::size_t arity = ctx.arity.count(pred) != 0 ? ctx.arity.at(pred) : 0;
    const std::size_t facts =
        ctx.fact_count.count(pred) != 0 ? ctx.fact_count.at(pred) : 0;
    if (ctx.derived.count(pred) == 0) {
      // Base table: populated by ground facts and external injection.
      if (program.materialization_of(pred) != nullptr || facts == 0) {
        return Bound::sym("|" + pred + "|");
      }
      return Bound::count(static_cast<double>(facts));
    }
    // Candidate 1: product of column domains over a greedy key cover.
    Bound best = Bound::top();
    const std::set<int> cover = reduce_columns(ctx, pred, arity);
    Bound product = Bound::one();
    for (const int c : cover) {
      product = times(product, column_domain(ctx, pred, static_cast<std::size_t>(c)));
    }
    best = min_bound(best, product);
    // Candidate 2 (non-recursive only): sum of per-rule join bounds.
    if (ctx.semantics->recursive_predicates.count(pred) == 0) {
      Bound sum = Bound::count(static_cast<double>(facts));
      for (const auto& rule : program.rules) {
        if (rule.is_fact() || rule.head.predicate != pred) continue;
        sum = plus(sum, join_order_bound(ctx, rule, positive_atom_indices(rule)));
      }
      best = min_bound(best, sum);
    }
    return best;
  };
  for (const auto& scc : ctx.semantics->sccs) {
    for (const auto& pred : scc) ctx.derivations[pred] = bound_one(pred);
  }
  // Predicates outside the dependency graph (e.g. fact-only, never read).
  for (const auto& [pred, arity] : ctx.arity) {
    if (ctx.derivations.count(pred) == 0) ctx.derivations[pred] = bound_one(pred);
  }
}

/// Location-specifier names (variable name, or rendered constant) mentioned
/// by the head and positive body atoms. Two or more ⇒ the rule ships.
bool rule_ships(const Rule& rule) {
  std::set<std::string> sites;
  auto note = [&](const std::vector<TermPtr>& args, int loc_index) {
    if (loc_index < 0 || static_cast<std::size_t>(loc_index) >= args.size()) return;
    const auto& t = args[static_cast<std::size_t>(loc_index)];
    if (t != nullptr) sites.insert(t->to_string());
  };
  if (rule.head.loc_index >= 0 &&
      static_cast<std::size_t>(rule.head.loc_index) < rule.head.args.size()) {
    const auto& arg = rule.head.args[static_cast<std::size_t>(rule.head.loc_index)];
    if (!arg.is_agg() && arg.term != nullptr) sites.insert(arg.term->to_string());
  }
  for (const auto& elem : rule.body) {
    if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
      if (!ba->negated) note(ba->atom.args, ba->atom.loc_index);
    }
  }
  return sites.size() >= 2;
}

/// Static wire size of one head tuple: frame overhead plus one scalar (or,
/// for path-shaped columns, up to V scalars) per column.
Bound tuple_bytes(const Context& ctx, const std::string& pred) {
  Bound total = Bound::count(64.0);
  const auto sit = ctx.shapes.find(pred);
  const std::size_t arity = ctx.arity.count(pred) != 0 ? ctx.arity.at(pred) : 0;
  for (std::size_t c = 0; c < arity; ++c) {
    const Shape s = (sit != ctx.shapes.end() && c < sit->second.size())
                        ? sit->second[c]
                        : Shape::Top;
    total = plus(total, s == Shape::Path ? times(Bound::sym("V"), Bound::sym("A"))
                                         : Bound::sym("A"));
  }
  return total;
}

/// Cheapest join order for the rule's positive atoms: exhaustive for small
/// bodies, greedy (cheapest next probe) beyond `max_exhaustive_atoms`.
std::vector<std::size_t> best_join_order(const Context& ctx, const Rule& rule,
                                         const std::vector<std::size_t>& atoms,
                                         const CostOptions& options) {
  if (atoms.size() < 2) return atoms;
  if (atoms.size() <= static_cast<std::size_t>(options.max_exhaustive_atoms)) {
    std::vector<std::size_t> perm = atoms;
    std::sort(perm.begin(), perm.end());
    std::vector<std::size_t> best = atoms;
    Bound best_bound = join_order_bound(ctx, rule, atoms);
    do {
      const Bound b = join_order_bound(ctx, rule, perm);
      if (cheaper(b, best_bound)) {
        best_bound = b;
        best = perm;
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
    return best;
  }
  std::vector<std::size_t> remaining = atoms;
  std::vector<std::size_t> chosen;
  while (!remaining.empty()) {
    std::size_t pick = 0;
    Bound pick_bound = Bound::top();
    bool first = true;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      std::vector<std::size_t> trial = chosen;
      trial.push_back(remaining[i]);
      const Bound b = join_order_bound(ctx, rule, trial);
      if (first || cheaper(b, pick_bound)) {
        pick = i;
        pick_bound = b;
        first = false;
      }
    }
    chosen.push_back(remaining[pick]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return chosen;
}

/// Reordering the body cannot change the final database iff the head is not
/// a materialized predicate whose P2 keys drop a column the keys do not
/// functionally determine (ND0017's last-writer-wins hazard).
bool reorder_is_safe(const Context& ctx, const Rule& rule) {
  const Materialize* mat = ctx.program->materialization_of(rule.head.predicate);
  if (mat == nullptr) return true;
  const std::size_t arity = rule.head.args.size();
  if (mat->key_fields.empty()) return true;  // whole-tuple keyed by default
  std::set<int> keys;
  for (const std::size_t k : mat->key_fields) {
    if (k >= 1) keys.insert(static_cast<int>(k - 1));
  }
  if (keys.size() == arity) return true;
  return fd_closure(ctx.semantics->fds, rule.head.predicate, keys, arity).size() ==
         arity;
}

/// Asymptotic signature differs (not just the constant factor).
bool rank_differs(const Bound& a, const Bound& b) {
  return a.unbounded != b.unbounded || a.factorial != b.factorial ||
         a.powers != b.powers;
}

std::string order_hint(const Rule& rule, const std::vector<std::size_t>& order) {
  std::vector<std::string> names;
  for (const std::size_t idx : order) {
    names.push_back(std::get<BodyAtom>(rule.body[idx]).atom.predicate);
  }
  return join(names, ", ");
}

}  // namespace

// ---------------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------------

const PredicateCost* CostReport::predicate(const std::string& name) const {
  for (const auto& p : predicates) {
    if (p.predicate == name) return &p;
  }
  return nullptr;
}

const RuleCost* CostReport::rule_at(std::size_t rule_index) const {
  for (const auto& r : rules) {
    if (r.rule_index == rule_index) return &r;
  }
  return nullptr;
}

CostReport analyze(const Program& program, const SemanticReport& semantics,
                   DiagnosticSink& sink, const CostOptions& options) {
  Context ctx;
  ctx.program = &program;
  ctx.semantics = &semantics;
  collect_signatures(ctx);
  infer_addr_demand(ctx);
  infer_shapes(ctx);
  compute_derivations(ctx);

  CostReport report;
  for (const auto& [pred, bound] : ctx.derivations) {
    PredicateCost pc;
    pc.predicate = pred;
    pc.base = ctx.derived.count(pred) == 0;
    pc.derivations = bound;
    report.predicates.push_back(std::move(pc));
  }

  // Fixpoint round bound: every round derives at least one new tuple, so the
  // round count is bounded by one plus the total derivation bound. Feeds the
  // recompute multiplier for aggregate rules.
  Bound rounds = Bound::count(1.0);
  for (const auto& [pred, bound] : ctx.derivations) rounds = plus(rounds, bound);

  report.total_messages = Bound::zero();
  report.total_bytes = Bound::zero();

  for (std::size_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& rule = program.rules[ri];
    if (rule.is_fact()) continue;
    RuleCost rc;
    rc.rule_index = ri;
    rc.rule = rule.display_name();
    rc.head = rule.head.predicate;
    rc.aggregate = rule.head.has_aggregate();
    rc.ships = rule_ships(rule);
    rc.order = positive_atom_indices(rule);
    rc.solutions = join_order_bound(ctx, rule, rc.order);
    const std::size_t k = rc.order.size();
    if (rc.aggregate) {
      // The simulator's interpreter recomputes aggregates on every delta
      // round; the evaluator's single pass is strictly cheaper.
      rc.firings = times(rounds, rc.solutions);
    } else if (options.firing_slack) {
      // Semi-naive slack: round-0 full join, one delta pass per positive
      // atom position, plus same-round re-probes of freshly inserted tuples.
      rc.firings = times(Bound::count(static_cast<double>(2 * k + 2)), rc.solutions);
    } else {
      rc.firings = rc.solutions;
    }
    rc.messages = rc.ships ? rc.firings : Bound::zero();
    rc.bytes = rc.ships ? times(rc.messages, tuple_bytes(ctx, rule.head.predicate))
                        : Bound::zero();
    rc.message_class = rc.ships ? rc.messages.complexity_class() : "-";
    rc.reorder_safe = reorder_is_safe(ctx, rule);
    rc.best_order = rc.aggregate ? rc.order
                                 : best_join_order(ctx, rule, rc.order, options);
    rc.best_solutions = join_order_bound(ctx, rule, rc.best_order);
    if (!cheaper(rc.best_solutions, rc.solutions)) {
      rc.best_order = rc.order;
      rc.best_solutions = rc.solutions;
    }

    // ND0019: the written order is quadratic or worse while a provably
    // cheaper ordering of the same atoms exists.
    if (!rc.aggregate && k >= 2 && rc.solutions.degree() >= 2 &&
        cheaper(rc.best_solutions, rc.solutions) &&
        rank_differs(rc.best_solutions, rc.solutions)) {
      sink.warning("ND0019",
                   "rule " + rc.rule + " joins in an order bounded by " +
                       rc.solutions.to_string() + " solutions; ordering the body as (" +
                       order_hint(rule, rc.best_order) + ") is provably bounded by " +
                       rc.best_solutions.to_string(),
                   rule.span())
          .in_rule(static_cast<int>(ri), rc.head)
          .hint = "reorder the body atoms, or run the planner with --cost-order";
    }
    // ND0020: unbounded message amplification on an async channel.
    if (rc.ships && rc.messages.unbounded) {
      sink.warning("ND0020",
                   "rule " + rc.rule + " ships " + rc.head +
                       " tuples across nodes with no static bound on the message "
                       "count",
                   rule.span())
          .in_rule(static_cast<int>(ri), rc.head)
          .hint =
          "bound the recursion (cycle guard or decreasing metric) or key the "
          "head relation so its derivations are finite";
    }
    // ND0021: recompute-heavy aggregate although incremental maintenance is
    // statically safe (mirrors the planner's incremental preconditions).
    if (rc.aggregate) {
      bool negated = false;
      std::set<std::string> seen;
      bool self_join = false;
      for (const auto& elem : rule.body) {
        if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
          if (ba->negated) negated = true;
          if (!seen.insert(ba->atom.predicate).second) self_join = true;
        }
      }
      const bool incremental_safe = !negated && !self_join && k >= 1;
      if (incremental_safe && rc.solutions.degree() >= 1) {
        sink.note("ND0021",
                  "aggregate rule " + rc.rule + " is recomputed from scratch on "
                      "every input change (up to " + rc.solutions.to_string() +
                      " solutions per recompute); incremental maintenance is "
                      "statically safe for it",
                  rule.span())
            .in_rule(static_cast<int>(ri), rc.head)
            .hint = "the dataflow planner maintains this aggregate incrementally "
                    "by default";
      }
    }

    report.total_messages = plus(report.total_messages, rc.messages);
    report.total_bytes = plus(report.total_bytes, rc.bytes);
    report.rules.push_back(std::move(rc));
  }
  return report;
}

CostReport analyze(const Program& program, DiagnosticSink& sink,
                   const CostOptions& options) {
  DiagnosticSink scratch;
  const SemanticReport semantics = analyze_semantics(program, scratch);
  return analyze(program, semantics, sink, options);
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

namespace {

std::string json_index_list(const std::vector<std::size_t>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(xs[i]);
  }
  return out + "]";
}

}  // namespace

std::string to_json(const CostReport& report) {
  std::ostringstream os;
  os << "{\"symbols\":{"
     << "\"V\":\"distinct node addresses\","
     << "\"V!\":\"factorial(V): simple-path enumeration\","
     << "\"A\":\"max scalar wire bytes\","
     << "\"|pred|\":\"externally injected tuples of pred\"}";
  os << ",\"predicates\":[";
  for (std::size_t i = 0; i < report.predicates.size(); ++i) {
    const auto& p = report.predicates[i];
    if (i != 0) os << ",";
    os << "{\"predicate\":\"" << json_escape(p.predicate) << "\""
       << ",\"base\":" << (p.base ? "true" : "false")
       << ",\"derivations\":\"" << json_escape(p.derivations.to_string()) << "\""
       << ",\"class\":\"" << json_escape(p.derivations.complexity_class())
       << "\"}";
  }
  os << "],\"rules\":[";
  for (std::size_t i = 0; i < report.rules.size(); ++i) {
    const auto& r = report.rules[i];
    if (i != 0) os << ",";
    os << "{\"index\":" << r.rule_index << ",\"rule\":\"" << json_escape(r.rule)
       << "\",\"head\":\"" << json_escape(r.head) << "\""
       << ",\"ships\":" << (r.ships ? "true" : "false")
       << ",\"aggregate\":" << (r.aggregate ? "true" : "false")
       << ",\"order\":" << json_index_list(r.order)
       << ",\"solutions\":\"" << json_escape(r.solutions.to_string()) << "\""
       << ",\"firings\":\"" << json_escape(r.firings.to_string()) << "\""
       << ",\"messages\":\"" << json_escape(r.messages.to_string()) << "\""
       << ",\"bytes\":\"" << json_escape(r.bytes.to_string()) << "\""
       << ",\"class\":\"" << json_escape(r.message_class) << "\""
       << ",\"best_order\":" << json_index_list(r.best_order)
       << ",\"best_solutions\":\"" << json_escape(r.best_solutions.to_string())
       << "\",\"reorder_safe\":" << (r.reorder_safe ? "true" : "false") << "}";
  }
  os << "],\"total_messages\":\"" << json_escape(report.total_messages.to_string())
     << "\",\"total_bytes\":\"" << json_escape(report.total_bytes.to_string())
     << "\"}";
  return os.str();
}

std::string to_human(const CostReport& report) {
  std::ostringstream os;
  os << "cost report\n  predicates (derivation bounds):\n";
  for (const auto& p : report.predicates) {
    os << "    " << p.predicate << ": " << p.derivations.to_string() << " "
       << p.derivations.complexity_class() << (p.base ? " (base)" : "") << "\n";
  }
  os << "  rules:\n";
  for (const auto& r : report.rules) {
    os << "    " << r.rule << " -> " << r.head << ": solutions="
       << r.solutions.to_string() << " firings=" << r.firings.to_string();
    if (r.aggregate) os << " (aggregate)";
    if (r.ships) {
      os << " ships " << r.message_class << " messages=" << r.messages.to_string()
         << " bytes=" << r.bytes.to_string();
    }
    if (r.best_order != r.order) {
      os << " [cheaper order: " << r.best_solutions.to_string() << "]";
    }
    os << "\n";
  }
  os << "  totals: messages=" << report.total_messages.to_string()
     << " bytes=" << report.total_bytes.to_string() << "\n";
  return os.str();
}

std::string to_dot(const Program& program, const CostReport& report) {
  std::ostringstream os;
  os << "digraph cost {\n  rankdir=LR;\n  node [shape=box,fontname=\"monospace\"];\n";
  for (const auto& p : report.predicates) {
    os << "  \"" << p.predicate << "\" [label=\"" << p.predicate << "\\n"
       << p.derivations.to_string() << "\"";
    if (p.derivations.unbounded) os << ",color=red";
    else if (p.base) os << ",style=filled,fillcolor=lightgrey";
    os << "];\n";
  }
  std::set<std::string> edges;
  for (const auto& r : report.rules) {
    const Rule& rule = program.rules[r.rule_index];
    for (const auto& elem : rule.body) {
      const auto* ba = std::get_if<BodyAtom>(&elem);
      if (ba == nullptr) continue;
      std::ostringstream edge;
      edge << "  \"" << ba->atom.predicate << "\" -> \"" << r.head
           << "\" [label=\"" << r.rule << ": " << r.firings.complexity_class()
           << "\"";
      if (r.ships) edge << ",style=dashed";
      if (ba->negated) edge << ",arrowhead=odot";
      edge << "];\n";
      edges.insert(edge.str());
    }
  }
  for (const auto& e : edges) os << e;
  os << "}\n";
  return os.str();
}

std::vector<std::vector<std::size_t>> plan_orders(const Program& program) {
  DiagnosticSink scratch;
  const CostReport report = analyze(program, scratch);
  std::vector<std::vector<std::size_t>> orders;
  orders.reserve(program.rules.size());
  for (std::size_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& rule = program.rules[ri];
    std::vector<std::size_t> identity(rule.body.size());
    for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
    const RuleCost* rc = report.rule_at(ri);
    if (rc == nullptr || rc->aggregate || !rc->reorder_safe ||
        rc->best_order == rc->order) {
      orders.push_back(std::move(identity));
      continue;
    }
    std::vector<std::size_t> perm = rc->best_order;
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      if (std::find(rc->order.begin(), rc->order.end(), i) == rc->order.end()) {
        perm.push_back(i);
      }
    }
    orders.push_back(std::move(perm));
  }
  return orders;
}

}  // namespace fvn::ndlog::cost
