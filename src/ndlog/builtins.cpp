#include "ndlog/builtins.hpp"

#include <algorithm>

namespace fvn::ndlog {

namespace {

void want_arity(const std::vector<Value>& args, std::size_t n, const char* fn) {
  if (args.size() != n) {
    throw TypeError(std::string(fn) + ": expected " + std::to_string(n) +
                    " arguments, got " + std::to_string(args.size()));
  }
}

}  // namespace

BuiltinRegistry::BuiltinRegistry() {
  register_fn("f_init", [](const std::vector<Value>& a) {
    want_arity(a, 2, "f_init");
    return Value::list({a[0], a[1]});
  });
  register_fn("f_concatPath", [](const std::vector<Value>& a) {
    want_arity(a, 2, "f_concatPath");
    std::vector<Value> out;
    out.reserve(a[1].as_list().size() + 1);
    out.push_back(a[0]);
    const auto& rest = a[1].as_list();
    out.insert(out.end(), rest.begin(), rest.end());
    return Value::list(std::move(out));
  });
  register_fn("f_inPath", [](const std::vector<Value>& a) {
    want_arity(a, 2, "f_inPath");
    const auto& list = a[0].as_list();
    return Value::boolean(std::find(list.begin(), list.end(), a[1]) != list.end());
  });
  register_fn("f_member", [](const std::vector<Value>& a) {
    want_arity(a, 2, "f_member");
    const auto& list = a[0].as_list();
    return Value::boolean(std::find(list.begin(), list.end(), a[1]) != list.end());
  });
  register_fn("f_size", [](const std::vector<Value>& a) {
    want_arity(a, 1, "f_size");
    return Value::integer(static_cast<std::int64_t>(a[0].as_list().size()));
  });
  register_fn("f_head", [](const std::vector<Value>& a) {
    want_arity(a, 1, "f_head");
    const auto& list = a[0].as_list();
    if (list.empty()) throw TypeError("f_head: empty list");
    return list.front();
  });
  register_fn("f_last", [](const std::vector<Value>& a) {
    want_arity(a, 1, "f_last");
    const auto& list = a[0].as_list();
    if (list.empty()) throw TypeError("f_last: empty list");
    return list.back();
  });
  register_fn("f_tail", [](const std::vector<Value>& a) {
    want_arity(a, 1, "f_tail");
    const auto& list = a[0].as_list();
    if (list.empty()) throw TypeError("f_tail: empty list");
    return Value::list(std::vector<Value>(list.begin() + 1, list.end()));
  });
  register_fn("f_append", [](const std::vector<Value>& a) {
    want_arity(a, 2, "f_append");
    std::vector<Value> out = a[0].as_list();
    out.push_back(a[1]);
    return Value::list(std::move(out));
  });
  register_fn("f_reverse", [](const std::vector<Value>& a) {
    want_arity(a, 1, "f_reverse");
    std::vector<Value> out = a[0].as_list();
    std::reverse(out.begin(), out.end());
    return Value::list(std::move(out));
  });
  register_fn("f_list", [](const std::vector<Value>& a) {
    return Value::list(a);
  });
  register_fn("f_min", [](const std::vector<Value>& a) {
    want_arity(a, 2, "f_min");
    return a[0] < a[1] ? a[0] : a[1];
  });
  register_fn("f_max", [](const std::vector<Value>& a) {
    want_arity(a, 2, "f_max");
    return a[0] < a[1] ? a[1] : a[0];
  });
  register_fn("f_abs", [](const std::vector<Value>& a) {
    want_arity(a, 1, "f_abs");
    if (a[0].is_int()) return Value::integer(std::abs(a[0].as_int()));
    return Value::real(std::abs(a[0].as_double()));
  });
}

const BuiltinRegistry& BuiltinRegistry::standard() {
  static const BuiltinRegistry registry;
  return registry;
}

void BuiltinRegistry::register_fn(std::string name, BuiltinFn fn) {
  fns_[std::move(name)] = std::move(fn);
}

bool BuiltinRegistry::contains(const std::string& name) const {
  return fns_.count(name) != 0;
}

Value BuiltinRegistry::call(const std::string& name,
                            const std::vector<Value>& args) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) throw TypeError("unknown built-in function '" + name + "'");
  return it->second(args);
}

}  // namespace fvn::ndlog
