// Abstract interpretation over NDlog programs (DESIGN.md §11). The domain is
// deliberately small: a value is abstracted as either Bottom (no concrete
// value reaches here), a numeric interval over doubles with ±inf endpoints,
// a boolean with may-true/may-false flags, or Any (every value of any kind).
//
// Two consumers sit on top (see semantic.hpp):
//   * dead-rule detection (ND0014): a rule whose comparisons are *definitely*
//     unsatisfiable under the per-predicate abstraction can never fire;
//   * divergence prediction (ND0015): recursive rules that grow a value
//     (arithmetic or path concatenation) need a finite bound or a cycle
//     guard, otherwise the evaluator's derivation budget is the only brake.
//
// The analysis is conservative for the checks that gate diagnostics:
// `satisfiable` only answers "no" when the comparison cannot hold for any
// concrete instantiation of the abstraction. Materialized predicates start
// at Any because external fact injection can populate them with arbitrary
// tuples; only values derived purely inside the program are tracked
// precisely.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ndlog/ast.hpp"

namespace fvn::ndlog::absint {

// ---------------------------------------------------------------------------
// Intervals
// ---------------------------------------------------------------------------

/// Closed numeric interval [lo, hi] over doubles; ±inf endpoints model
/// unbounded growth. Default-constructed = empty (lo > hi).
struct Interval {
  double lo;
  double hi;

  Interval();  // empty
  static Interval empty();
  static Interval top();
  static Interval point(double v);
  static Interval range(double lo, double hi);

  bool is_empty() const noexcept { return lo > hi; }
  bool is_point() const noexcept { return lo == hi && !is_empty(); }
  bool bounded_above() const noexcept;
  bool bounded_below() const noexcept;
  bool contains(double v) const noexcept { return lo <= v && v <= hi; }

  Interval join(const Interval& other) const;  // convex hull
  Interval meet(const Interval& other) const;  // intersection
  /// Standard widening: endpoints that moved outward jump to ±inf.
  Interval widen(const Interval& newer) const;

  bool operator==(const Interval& other) const noexcept;
  std::string to_string() const;
};

Interval add(const Interval& a, const Interval& b);
Interval sub(const Interval& a, const Interval& b);
Interval mul(const Interval& a, const Interval& b);
Interval div(const Interval& a, const Interval& b);  // conservative
Interval mod(const Interval& a, const Interval& b);  // conservative

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------

/// One abstract value. Num carries an interval; Bool carries which truth
/// values are possible; Any covers every kind (addresses, strings, lists,
/// and numbers we lost track of).
struct AbstractValue {
  enum class Kind : std::uint8_t { Bottom, Num, Bool, Any };

  Kind kind = Kind::Bottom;
  Interval num;           // engaged when kind == Num
  bool may_true = true;   // engaged when kind == Bool
  bool may_false = true;

  static AbstractValue bottom();
  static AbstractValue any();
  static AbstractValue number(Interval iv);
  static AbstractValue boolean(bool may_true, bool may_false);
  /// Abstraction of a concrete value (addresses/strings/lists map to Any).
  static AbstractValue of(const Value& v);

  bool is_bottom() const noexcept { return kind == Kind::Bottom; }
  bool is_num() const noexcept { return kind == Kind::Num; }
  bool is_bool() const noexcept { return kind == Kind::Bool; }
  bool is_any() const noexcept { return kind == Kind::Any; }

  AbstractValue join(const AbstractValue& other) const;
  AbstractValue meet(const AbstractValue& other) const;
  AbstractValue widen(const AbstractValue& newer) const;

  bool operator==(const AbstractValue& other) const noexcept;
  std::string to_string() const;
};

/// Can `a op b` hold for *some* concrete pair drawn from the abstractions?
/// Answers false only when the comparison is definitely unsatisfiable
/// (disjoint intervals, distinct kinds under `=`, equal singletons under
/// `!=`, ...). Bottom operands are never satisfiable.
bool satisfiable(CmpOp op, const AbstractValue& a, const AbstractValue& b);

/// Refine `a` under the assumption that `a op b` held. Sound: the result
/// still covers every concrete value of `a` that can satisfy the
/// comparison. Only numeric-vs-numeric facts refine; Any stays Any (other
/// kinds may satisfy an order comparison under the kind-major value order).
AbstractValue refine(CmpOp op, const AbstractValue& a, const AbstractValue& b);

/// Mirror of a comparison (a < b  ⇔  b > a).
CmpOp flip(CmpOp op) noexcept;

// ---------------------------------------------------------------------------
// Program-level analysis
// ---------------------------------------------------------------------------

/// Per-predicate abstraction: one AbstractValue per argument position.
using PredicateMap = std::map<std::string, std::vector<AbstractValue>>;

/// Result of abstractly executing one rule body against a PredicateMap.
struct RuleAbstraction {
  /// Final abstraction of every bound variable after comparison refinement.
  std::map<std::string, AbstractValue> vars;
  /// Abstraction of each head argument position.
  std::vector<AbstractValue> head;
  /// The rule can never fire (some atom or comparison is unsatisfiable).
  bool unsat = false;
  /// Engaged when `unsat` was established by a comparison (the ND0014
  /// trigger; Bottom body atoms are the underivable-predicate lint's job).
  bool unsat_is_comparison = false;
  SourceLoc unsat_loc;
  std::string unsat_detail;
};

/// Abstract one rule: bind variables from positive atoms, iterate the
/// comparison chain (binding `V = expr` occurrences, refining and testing
/// the rest), then evaluate the head arguments.
RuleAbstraction abstract_rule(const Rule& rule, const PredicateMap& preds);

/// Abstract evaluation of a term under a variable abstraction. Unbound
/// variables evaluate to Any. Builtins use a transfer table (f_size ⇒
/// [0,+inf), f_inPath ⇒ bool, f_min/f_max combine intervals, ...).
AbstractValue eval_term(const Term& term,
                        const std::map<std::string, AbstractValue>& vars);

/// Global fixpoint: every materialized predicate starts at Any (external
/// injection), everything else at Bottom; rule heads join in with widening
/// after `widen_after` growing joins per position.
PredicateMap analyze_program(const Program& program, int widen_after = 3);

}  // namespace fvn::ndlog::absint
