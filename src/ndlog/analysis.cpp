#include "ndlog/analysis.hpp"

#include <algorithm>
#include <functional>

namespace fvn::ndlog {

std::set<std::string> predicates_of(const Program& program) {
  std::set<std::string> out;
  for (const auto& rule : program.rules) {
    out.insert(rule.head.predicate);
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) out.insert(ba->atom.predicate);
    }
  }
  for (const auto& m : program.materializations) out.insert(m.predicate);
  return out;
}

std::set<std::string> derived_predicates(const Program& program) {
  std::set<std::string> out;
  for (const auto& rule : program.rules) {
    if (!rule.is_fact()) out.insert(rule.head.predicate);
  }
  return out;
}

std::set<std::string> base_predicates(const Program& program) {
  std::set<std::string> all = predicates_of(program);
  for (const auto& d : derived_predicates(program)) all.erase(d);
  return all;
}

std::vector<DependencyEdge> dependency_edges(const Program& program) {
  std::vector<DependencyEdge> out;
  for (std::size_t r = 0; r < program.rules.size(); ++r) {
    const auto& rule = program.rules[r];
    const bool agg = rule.head.has_aggregate();
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        out.push_back(DependencyEdge{rule.head.predicate, ba->atom.predicate,
                                     ba->negated, agg, r});
      }
    }
  }
  return out;
}

std::string location_var_of(const Atom& atom) {
  if (atom.loc_index < 0 ||
      static_cast<std::size_t>(atom.loc_index) >= atom.args.size()) {
    return {};
  }
  const auto& t = atom.args[static_cast<std::size_t>(atom.loc_index)];
  return t->kind == Term::Kind::Var ? t->name : std::string{};
}

std::set<std::string> body_location_vars(const Rule& rule) {
  std::set<std::string> locs;
  for (const auto& elem : rule.body) {
    if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
      std::string v = location_var_of(ba->atom);
      if (!v.empty()) locs.insert(std::move(v));
    }
  }
  return locs;
}

LocalizationCheck check_localizable(const Rule& rule) {
  LocalizationCheck out;
  const auto locs = body_location_vars(rule);
  if (rule.is_fact() || locs.size() <= 1) {
    out.status = LocalizationCheck::Status::Local;
    return out;
  }
  if (locs.size() != 2) {
    out.status = LocalizationCheck::Status::TooManyLocations;
    out.detail = "rule " + rule.display_name() + ": cannot localize a body spanning " +
                 std::to_string(locs.size()) + " locations";
    return out;
  }
  // Orientation choice: the join happens at the site for which every atom on
  // the *other* side positively carries the join-site location variable (the
  // link-restriction of §2.2); when both orientations work, ship the fewer
  // atoms. Returns nullopt when the orientation is infeasible.
  auto it = locs.begin();
  const std::string a = *it++;
  const std::string b = *it;
  auto feasible = [&](const std::string& join,
                      const std::string& ship) -> std::optional<std::size_t> {
    std::size_t shipped = 0;
    for (const auto& elem : rule.body) {
      const auto* ba = std::get_if<BodyAtom>(&elem);
      if (ba == nullptr || location_var_of(ba->atom) != ship) continue;
      ++shipped;
      bool carries = false;
      for (const auto& t : ba->atom.args) {
        if (t->kind == Term::Kind::Var && t->name == join) carries = true;
      }
      if (!carries || ba->negated) return std::nullopt;
    }
    return shipped;
  };
  const auto ship_b = feasible(a, b);  // join at a, ship b's atoms
  const auto ship_a = feasible(b, a);  // join at b, ship a's atoms
  if (ship_b && (!ship_a || *ship_b <= *ship_a)) {
    out.status = LocalizationCheck::Status::Rewritable;
    out.join_site = a;
    out.ship_site = b;
  } else if (ship_a) {
    out.status = LocalizationCheck::Status::Rewritable;
    out.join_site = b;
    out.ship_site = a;
  } else {
    out.status = LocalizationCheck::Status::NotLinkRestricted;
    out.detail = "rule " + rule.display_name() + ": not link-restricted in either orientation";
  }
  return out;
}

namespace {

/// "rule r2" / "rule path" — how messages name a rule.
std::string rule_label(const Rule& rule) { return "rule " + rule.display_name(); }

}  // namespace

void check_arities(const Program& program, DiagnosticSink& sink) {
  struct FirstUse {
    std::size_t arity;
    std::string where;
    SourceSpan span;
  };
  std::map<std::string, FirstUse> seen;
  auto note = [&](const std::string& pred, std::size_t n, const std::string& where,
                  SourceSpan span, int rule_index) {
    auto [it, inserted] = seen.emplace(pred, FirstUse{n, where, span});
    if (!inserted && it->second.arity != n) {
      auto& d = sink.error("ND0002",
                           "predicate '" + pred + "' used with arity " + std::to_string(n) +
                               " in " + where + " but with arity " +
                               std::to_string(it->second.arity) + " in " + it->second.where,
                           span)
                    .in_rule(rule_index, pred);
      d.hint = "use " + std::to_string(it->second.arity) + " argument(s) for '" +
               pred + "' everywhere";
      if (it->second.span.valid()) {
        sink.note("ND0002", "first use of '" + pred + "' is here", it->second.span)
            .in_rule(-1, pred);
      }
    }
  };
  for (std::size_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& rule = program.rules[ri];
    note(rule.head.predicate, rule.head.args.size(), rule_label(rule), rule.head.span(),
         static_cast<int>(ri));
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        note(ba->atom.predicate, ba->atom.args.size(), rule_label(rule), ba->atom.span(),
             static_cast<int>(ri));
      }
    }
  }
}

namespace {

bool term_vars_bound(const Term& term, const std::set<std::string>& bound) {
  std::vector<std::string> vars;
  term.collect_vars(vars);
  return std::all_of(vars.begin(), vars.end(),
                     [&](const std::string& v) { return bound.count(v) != 0; });
}

}  // namespace

void check_safety(const Program& program, const BuiltinRegistry& builtins,
                  DiagnosticSink& sink) {
  for (std::size_t rule_i = 0; rule_i < program.rules.size(); ++rule_i) {
    const auto& rule = program.rules[rule_i];
    const int ri = static_cast<int>(rule_i);
    // Unknown built-in functions anywhere in the rule (ND0004), reported once
    // per function name per rule.
    std::set<std::string> unknown_reported;
    std::function<void(const Term&, SourceSpan)> check_fns = [&](const Term& t,
                                                                 SourceSpan span) {
      if (t.kind == Term::Kind::Func && !builtins.contains(t.name) &&
          unknown_reported.insert(t.name).second) {
        sink.error("ND0004",
                   rule_label(rule) + ": unknown function '" + t.name + "'", span)
            .in_rule(ri, rule.head.predicate)
            .hint = "register it on the BuiltinRegistry or use a standard f_* builtin";
      }
      for (const auto& a : t.args) check_fns(*a, span);
    };
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        for (const auto& a : ba->atom.args) check_fns(*a, ba->atom.span());
      } else if (const auto* cmp = std::get_if<Comparison>(&elem)) {
        check_fns(*cmp->lhs, SourceSpan::at(cmp->loc));
        check_fns(*cmp->rhs, SourceSpan::at(cmp->loc));
      }
    }
    for (const auto& arg : rule.head.args) {
      if (!arg.is_agg()) check_fns(*arg.term, rule.head.span());
    }

    std::set<std::string> bound;
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        if (ba->negated) continue;
        std::vector<std::string> vars;
        ba->atom.collect_vars(vars);
        bound.insert(vars.begin(), vars.end());
      }
    }
    // Propagate bindings through `=` comparisons until a fixed point: a
    // variable on one side becomes bound once the other side is bound.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& elem : rule.body) {
        const auto* cmp = std::get_if<Comparison>(&elem);
        if (!cmp || cmp->op != CmpOp::Eq) continue;
        auto try_bind = [&](const TermPtr& target, const TermPtr& source) {
          if (target->kind == Term::Kind::Var && !bound.count(target->name) &&
              term_vars_bound(*source, bound)) {
            bound.insert(target->name);
            changed = true;
          }
        };
        try_bind(cmp->lhs, cmp->rhs);
        try_bind(cmp->rhs, cmp->lhs);
      }
    }
    auto require_bound = [&](const std::vector<std::string>& vars, const std::string& what,
                             SourceSpan span) {
      for (const auto& v : vars) {
        if (!bound.count(v)) {
          sink.error("ND0003",
                     rule_label(rule) + ": variable '" + v + "' in " + what +
                         " is not bound",
                     span)
              .in_rule(ri, rule.head.predicate)
              .hint = "bind '" + v + "' in a positive body atom or an `=` assignment";
        }
      }
    };
    // Head variables.
    for (const auto& arg : rule.head.args) {
      if (arg.is_agg()) {
        if (!rule.is_fact()) require_bound({arg.agg_var}, "head aggregate", rule.head.span());
        continue;
      }
      std::vector<std::string> vars;
      arg.term->collect_vars(vars);
      require_bound(vars, "head", rule.head.span());
    }
    // Negated atoms and non-Eq comparisons.
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        if (!ba->negated) continue;
        std::vector<std::string> vars;
        ba->atom.collect_vars(vars);
        require_bound(vars, "negated atom " + ba->atom.predicate, ba->atom.span());
      } else if (const auto* cmp = std::get_if<Comparison>(&elem)) {
        if (cmp->op == CmpOp::Eq) continue;  // Eq may bind
        std::vector<std::string> vars;
        cmp->lhs->collect_vars(vars);
        cmp->rhs->collect_vars(vars);
        require_bound(vars, "comparison", SourceSpan::at(cmp->loc));
      }
    }
  }
}

std::optional<Stratification> stratify(const Program& program, DiagnosticSink& sink) {
  const auto preds_set = predicates_of(program);
  std::vector<std::string> preds(preds_set.begin(), preds_set.end());
  std::map<std::string, int> index;
  for (std::size_t i = 0; i < preds.size(); ++i) index[preds[i]] = static_cast<int>(i);

  const auto edges = dependency_edges(program);
  const int n = static_cast<int>(preds.size());
  std::vector<std::vector<int>> adj(n);
  for (const auto& e : edges) adj[index[e.body]].push_back(index[e.head]);

  // Tarjan SCC.
  std::vector<int> comp(n, -1), low(n, 0), disc(n, -1), stack;
  std::vector<bool> on_stack(n, false);
  int timer = 0, comp_count = 0;
  std::function<void(int)> dfs = [&](int u) {
    disc[u] = low[u] = timer++;
    stack.push_back(u);
    on_stack[u] = true;
    for (int v : adj[u]) {
      if (disc[v] == -1) {
        dfs(v);
        low[u] = std::min(low[u], low[v]);
      } else if (on_stack[v]) {
        low[u] = std::min(low[u], disc[v]);
      }
    }
    if (low[u] == disc[u]) {
      while (true) {
        int v = stack.back();
        stack.pop_back();
        on_stack[v] = false;
        comp[v] = comp_count;
        if (v == u) break;
      }
      ++comp_count;
    }
  };
  for (int u = 0; u < n; ++u) {
    if (disc[u] == -1) dfs(u);
  }

  // Negation/aggregation edges may not stay within one SCC.
  bool ok = true;
  for (const auto& e : edges) {
    if ((e.negated || e.through_aggregate) && comp[index[e.body]] == comp[index[e.head]]) {
      ok = false;
      const Rule& rule = program.rules[e.rule_index];
      sink.error("ND0005",
                 "program is not stratifiable: predicate '" + e.head + "' depends " +
                     (e.negated ? "negatively" : "through an aggregate") + " on '" +
                     e.body + "' inside a recursive cycle (" + rule_label(rule) + ")",
                 rule.span())
          .in_rule(static_cast<int>(e.rule_index), e.head)
          .hint = "break the cycle so the " +
                  std::string(e.negated ? "negation" : "aggregation") +
                  " reads a lower stratum";
    }
  }
  if (!ok) return std::nullopt;

  // Longest-path layering over the SCC condensation: stratum(head) >=
  // stratum(body), strictly greater across negation/aggregation edges.
  std::vector<int> stratum(comp_count, 0);
  bool changed = true;
  int guard = comp_count * static_cast<int>(edges.size()) + comp_count + 1;
  while (changed && guard-- > 0) {
    changed = false;
    for (const auto& e : edges) {
      const int cb = comp[index[e.body]];
      const int ch = comp[index[e.head]];
      const int need = stratum[cb] + ((e.negated || e.through_aggregate) ? 1 : 0);
      if (cb != ch && stratum[ch] < need) {
        stratum[ch] = need;
        changed = true;
      }
    }
  }

  Stratification out;
  int max_stratum = 0;
  for (int u = 0; u < n; ++u) {
    out.stratum_of[preds[u]] = stratum[comp[u]];
    max_stratum = std::max(max_stratum, stratum[comp[u]]);
  }
  out.stratum_count = max_stratum + 1;
  out.rule_stratum.resize(program.rules.size(), 0);
  out.rules_by_stratum.assign(static_cast<std::size_t>(out.stratum_count), {});
  for (std::size_t r = 0; r < program.rules.size(); ++r) {
    const int s = out.stratum_of.at(program.rules[r].head.predicate);
    out.rule_stratum[r] = s;
    out.rules_by_stratum[static_cast<std::size_t>(s)].push_back(r);
  }
  return out;
}

namespace {

/// Throw the sink's first error as an AnalysisError, with the source
/// position (when known) appended the way ParseError renders it.
[[noreturn]] void throw_first(const DiagnosticSink& sink) {
  const Diagnostic* d = sink.first_error();
  std::string what = d != nullptr ? d->message : "analysis failed";
  if (d != nullptr && d->span.valid()) {
    what += " (line " + std::to_string(d->span.begin.line) + ", col " +
            std::to_string(d->span.begin.column) + ")";
  }
  throw AnalysisError(what);
}

}  // namespace

void check_arities(const Program& program) {
  DiagnosticSink sink;
  check_arities(program, sink);
  if (sink.has_errors()) throw_first(sink);
}

void check_safety(const Program& program, const BuiltinRegistry& builtins) {
  DiagnosticSink sink;
  check_safety(program, builtins, sink);
  if (sink.has_errors()) throw_first(sink);
}

Stratification stratify(const Program& program) {
  DiagnosticSink sink;
  auto strat = stratify(program, sink);
  if (!strat) throw_first(sink);
  return *std::move(strat);
}

Stratification analyze(const Program& program, const BuiltinRegistry& builtins) {
  check_arities(program);
  check_safety(program, builtins);
  return stratify(program);
}

}  // namespace fvn::ndlog
