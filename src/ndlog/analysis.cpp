#include "ndlog/analysis.hpp"

#include <algorithm>
#include <functional>

namespace fvn::ndlog {

std::set<std::string> predicates_of(const Program& program) {
  std::set<std::string> out;
  for (const auto& rule : program.rules) {
    out.insert(rule.head.predicate);
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) out.insert(ba->atom.predicate);
    }
  }
  for (const auto& m : program.materializations) out.insert(m.predicate);
  return out;
}

std::set<std::string> derived_predicates(const Program& program) {
  std::set<std::string> out;
  for (const auto& rule : program.rules) {
    if (!rule.is_fact()) out.insert(rule.head.predicate);
  }
  return out;
}

std::set<std::string> base_predicates(const Program& program) {
  std::set<std::string> all = predicates_of(program);
  for (const auto& d : derived_predicates(program)) all.erase(d);
  return all;
}

std::vector<DependencyEdge> dependency_edges(const Program& program) {
  std::vector<DependencyEdge> out;
  for (const auto& rule : program.rules) {
    const bool agg = rule.head.has_aggregate();
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        out.push_back(DependencyEdge{rule.head.predicate, ba->atom.predicate,
                                     ba->negated, agg});
      }
    }
  }
  return out;
}

void check_arities(const Program& program) {
  std::map<std::string, std::size_t> arity;
  auto note = [&](const std::string& pred, std::size_t n, const std::string& where) {
    auto [it, inserted] = arity.emplace(pred, n);
    if (!inserted && it->second != n) {
      throw AnalysisError("predicate '" + pred + "' used with arity " +
                          std::to_string(n) + " in " + where + " but previously with " +
                          std::to_string(it->second));
    }
  };
  for (const auto& rule : program.rules) {
    note(rule.head.predicate, rule.head.args.size(), "rule " + rule.name);
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        note(ba->atom.predicate, ba->atom.args.size(), "rule " + rule.name);
      }
    }
  }
}

namespace {

bool term_vars_bound(const Term& term, const std::set<std::string>& bound) {
  std::vector<std::string> vars;
  term.collect_vars(vars);
  return std::all_of(vars.begin(), vars.end(),
                     [&](const std::string& v) { return bound.count(v) != 0; });
}

}  // namespace

void check_safety(const Program& program, const BuiltinRegistry& builtins) {
  for (const auto& rule : program.rules) {
    // Unknown built-in functions anywhere in the rule are errors.
    std::function<void(const Term&)> check_fns = [&](const Term& t) {
      if (t.kind == Term::Kind::Func && !builtins.contains(t.name)) {
        throw AnalysisError("rule " + rule.name + ": unknown function '" + t.name + "'");
      }
      for (const auto& a : t.args) check_fns(*a);
    };
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        for (const auto& a : ba->atom.args) check_fns(*a);
      } else if (const auto* cmp = std::get_if<Comparison>(&elem)) {
        check_fns(*cmp->lhs);
        check_fns(*cmp->rhs);
      }
    }
    for (const auto& arg : rule.head.args) {
      if (!arg.is_agg()) check_fns(*arg.term);
    }

    std::set<std::string> bound;
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        if (ba->negated) continue;
        std::vector<std::string> vars;
        ba->atom.collect_vars(vars);
        bound.insert(vars.begin(), vars.end());
      }
    }
    // Propagate bindings through `=` comparisons until a fixed point: a
    // variable on one side becomes bound once the other side is bound.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& elem : rule.body) {
        const auto* cmp = std::get_if<Comparison>(&elem);
        if (!cmp || cmp->op != CmpOp::Eq) continue;
        auto try_bind = [&](const TermPtr& target, const TermPtr& source) {
          if (target->kind == Term::Kind::Var && !bound.count(target->name) &&
              term_vars_bound(*source, bound)) {
            bound.insert(target->name);
            changed = true;
          }
        };
        try_bind(cmp->lhs, cmp->rhs);
        try_bind(cmp->rhs, cmp->lhs);
      }
    }
    auto require_bound = [&](const std::vector<std::string>& vars, const std::string& what) {
      for (const auto& v : vars) {
        if (!bound.count(v)) {
          throw AnalysisError("rule " + (rule.name.empty() ? rule.head.predicate : rule.name) +
                              ": variable '" + v + "' in " + what + " is not bound");
        }
      }
    };
    // Head variables.
    for (const auto& arg : rule.head.args) {
      if (arg.is_agg()) {
        if (!rule.is_fact()) require_bound({arg.agg_var}, "head aggregate");
        continue;
      }
      std::vector<std::string> vars;
      arg.term->collect_vars(vars);
      require_bound(vars, "head");
      // Unknown function names are caught here as well.
      std::function<void(const Term&)> check_fns = [&](const Term& t) {
        if (t.kind == Term::Kind::Func && !builtins.contains(t.name)) {
          throw AnalysisError("rule " + rule.name + ": unknown function '" + t.name + "'");
        }
        for (const auto& a : t.args) check_fns(*a);
      };
      check_fns(*arg.term);
    }
    // Negated atoms and non-Eq comparisons.
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        if (!ba->negated) continue;
        std::vector<std::string> vars;
        ba->atom.collect_vars(vars);
        require_bound(vars, "negated atom " + ba->atom.predicate);
      } else if (const auto* cmp = std::get_if<Comparison>(&elem)) {
        if (cmp->op == CmpOp::Eq) continue;  // Eq may bind
        std::vector<std::string> vars;
        cmp->lhs->collect_vars(vars);
        cmp->rhs->collect_vars(vars);
        require_bound(vars, "comparison");
      }
    }
  }
}

Stratification stratify(const Program& program) {
  const auto preds_set = predicates_of(program);
  std::vector<std::string> preds(preds_set.begin(), preds_set.end());
  std::map<std::string, int> index;
  for (std::size_t i = 0; i < preds.size(); ++i) index[preds[i]] = static_cast<int>(i);

  const auto edges = dependency_edges(program);
  const int n = static_cast<int>(preds.size());
  std::vector<std::vector<int>> adj(n);
  for (const auto& e : edges) adj[index[e.body]].push_back(index[e.head]);

  // Tarjan SCC.
  std::vector<int> comp(n, -1), low(n, 0), disc(n, -1), stack;
  std::vector<bool> on_stack(n, false);
  int timer = 0, comp_count = 0;
  std::function<void(int)> dfs = [&](int u) {
    disc[u] = low[u] = timer++;
    stack.push_back(u);
    on_stack[u] = true;
    for (int v : adj[u]) {
      if (disc[v] == -1) {
        dfs(v);
        low[u] = std::min(low[u], low[v]);
      } else if (on_stack[v]) {
        low[u] = std::min(low[u], disc[v]);
      }
    }
    if (low[u] == disc[u]) {
      while (true) {
        int v = stack.back();
        stack.pop_back();
        on_stack[v] = false;
        comp[v] = comp_count;
        if (v == u) break;
      }
      ++comp_count;
    }
  };
  for (int u = 0; u < n; ++u) {
    if (disc[u] == -1) dfs(u);
  }

  // Negation/aggregation edges may not stay within one SCC.
  for (const auto& e : edges) {
    if ((e.negated || e.through_aggregate) && comp[index[e.body]] == comp[index[e.head]]) {
      throw AnalysisError("program is not stratifiable: predicate '" + e.head +
                          "' depends " + (e.negated ? "negatively" : "through an aggregate") +
                          " on '" + e.body + "' inside a recursive cycle");
    }
  }

  // Longest-path layering over the SCC condensation: stratum(head) >=
  // stratum(body), strictly greater across negation/aggregation edges.
  std::vector<int> stratum(comp_count, 0);
  bool changed = true;
  int guard = comp_count * static_cast<int>(edges.size()) + comp_count + 1;
  while (changed && guard-- > 0) {
    changed = false;
    for (const auto& e : edges) {
      const int cb = comp[index[e.body]];
      const int ch = comp[index[e.head]];
      const int need = stratum[cb] + ((e.negated || e.through_aggregate) ? 1 : 0);
      if (cb != ch && stratum[ch] < need) {
        stratum[ch] = need;
        changed = true;
      }
    }
  }

  Stratification out;
  int max_stratum = 0;
  for (int u = 0; u < n; ++u) {
    out.stratum_of[preds[u]] = stratum[comp[u]];
    max_stratum = std::max(max_stratum, stratum[comp[u]]);
  }
  out.stratum_count = max_stratum + 1;
  out.rule_stratum.resize(program.rules.size(), 0);
  out.rules_by_stratum.assign(static_cast<std::size_t>(out.stratum_count), {});
  for (std::size_t r = 0; r < program.rules.size(); ++r) {
    const int s = out.stratum_of.at(program.rules[r].head.predicate);
    out.rule_stratum[r] = s;
    out.rules_by_stratum[static_cast<std::size_t>(s)].push_back(r);
  }
  return out;
}

Stratification analyze(const Program& program, const BuiltinRegistry& builtins) {
  check_arities(program);
  check_safety(program, builtins);
  return stratify(program);
}

}  // namespace fvn::ndlog
