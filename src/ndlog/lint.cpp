#include "ndlog/lint.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <utility>
#include <variant>

namespace fvn::ndlog {

namespace {

/// Predicates with runtime-injected semantics: never "underivable".
bool is_special_predicate(const std::string& pred) { return pred == "periodic"; }

std::string rule_label(const Rule& rule) { return "rule " + rule.display_name(); }

/// Index of `rule` inside `program.rules` (rules are stored by value, so the
/// address identifies the element).
int rule_index_of(const Program& program, const Rule& rule) {
  return static_cast<int>(&rule - program.rules.data());
}

std::set<std::string> materialized_predicates(const Program& program) {
  std::set<std::string> out;
  for (const auto& m : program.materializations) out.insert(m.predicate);
  return out;
}

/// Count every occurrence of each variable in a rule (head, atoms,
/// comparisons), remembering the first positive body atom that mentions it.
struct VarUse {
  std::size_t count = 0;
  bool in_head = false;
  const Atom* first_positive_atom = nullptr;
};

std::map<std::string, VarUse> variable_uses(const Rule& rule) {
  std::map<std::string, VarUse> uses;
  auto add = [&](const std::vector<std::string>& vars, bool head, const Atom* atom) {
    for (const auto& v : vars) {
      auto& u = uses[v];
      u.count += 1;
      u.in_head = u.in_head || head;
      if (atom != nullptr && u.first_positive_atom == nullptr) u.first_positive_atom = atom;
    }
  };
  for (const auto& arg : rule.head.args) {
    std::vector<std::string> vars;
    if (arg.is_agg()) {
      vars.push_back(arg.agg_var);
    } else {
      arg.term->collect_vars(vars);
    }
    add(vars, /*head=*/true, nullptr);
  }
  for (const auto& elem : rule.body) {
    std::vector<std::string> vars;
    if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
      ba->atom.collect_vars(vars);
      add(vars, false, ba->negated ? nullptr : &ba->atom);
    } else if (const auto* cmp = std::get_if<Comparison>(&elem)) {
      cmp->lhs->collect_vars(vars);
      cmp->rhs->collect_vars(vars);
      add(vars, false, nullptr);
    }
  }
  return uses;
}

}  // namespace

const std::vector<DiagnosticCodeInfo>& diagnostic_catalog() {
  static const std::vector<DiagnosticCodeInfo> catalog = {
      {"ND0001", Severity::Error, "syntax error (parse failure)"},
      {"ND0002", Severity::Error, "predicate used with inconsistent arity"},
      {"ND0003", Severity::Error, "unsafe rule: variable is not bound"},
      {"ND0004", Severity::Error, "unknown built-in function"},
      {"ND0005", Severity::Error, "program is not stratifiable"},
      {"ND0006", Severity::Warning, "predicate derived but never read (and not materialized)"},
      {"ND0007", Severity::Warning, "predicate read but never derived or declared"},
      {"ND0008", Severity::Warning, "rule duplicates an earlier rule"},
      {"ND0009", Severity::Warning, "variable used only once (possible typo)"},
      {"ND0010", Severity::Warning, "cartesian-product body: atoms share no join variable"},
      {"ND0011", Severity::Warning, "aggregate over possibly-empty group"},
      {"ND0012", Severity::Warning, "rule body spans >2 locations: not localizable"},
      {"ND0013", Severity::Warning, "two-location rule body is not link-restricted"},
      {"ND0014", Severity::Warning, "dead rule: a comparison is always false (interval analysis)"},
      {"ND0015", Severity::Warning, "unbounded recursive value growth: predicted divergence"},
      {"ND0016", Severity::Warning, "negation over asynchronously derived predicate (order-sensitive)"},
      {"ND0017", Severity::Warning, "materialized key projection drops non-functional columns (race)"},
      {"ND0018", Severity::Note, "aggregate over asynchronous input (non-monotone, CALM)"},
      {"ND0019", Severity::Warning, "quadratic-or-worse join order with a provably cheaper ordering"},
      {"ND0020", Severity::Warning, "unbounded message amplification on an async channel"},
      {"ND0021", Severity::Note, "recompute-heavy aggregate; incremental maintenance statically safe"},
      {"ND0022", Severity::Note, "parallel evaluation certified: shard key chosen per predicate"},
      {"ND0023", Severity::Warning, "key-misaligned join blocks attribute sharding"},
      {"ND0024", Severity::Warning, "aggregate groups across shards: evaluated at the serial barrier"},
      {"ND0025", Severity::Note, "negation is evaluated only at stratum barriers"},
  };
  return catalog;
}

void lint_unused_predicates(const Program& program, DiagnosticSink& sink) {
  const auto materialized = materialized_predicates(program);
  std::set<std::string> read;
  for (const auto& rule : program.rules) {
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) read.insert(ba->atom.predicate);
    }
  }
  std::set<std::string> reported;
  for (const auto& rule : program.rules) {
    const std::string& pred = rule.head.predicate;
    if (read.count(pred) != 0 || materialized.count(pred) != 0) continue;
    if (!reported.insert(pred).second) continue;
    sink.warning("ND0006",
                 "predicate '" + pred + "' is derived but never read by any rule",
                 rule.head.span())
        .in_rule(rule_index_of(program, rule), pred)
        .hint = "materialize '" + pred +
                "' if it is a program output, or remove the rules deriving it";
  }
}

void lint_underivable_predicates(const Program& program, DiagnosticSink& sink) {
  const auto materialized = materialized_predicates(program);
  std::set<std::string> derived;
  for (const auto& rule : program.rules) derived.insert(rule.head.predicate);
  std::set<std::string> reported;
  for (const auto& rule : program.rules) {
    for (const auto& elem : rule.body) {
      const auto* ba = std::get_if<BodyAtom>(&elem);
      if (ba == nullptr) continue;
      const std::string& pred = ba->atom.predicate;
      if (derived.count(pred) != 0 || materialized.count(pred) != 0 ||
          is_special_predicate(pred)) {
        continue;
      }
      if (!reported.insert(pred).second) continue;
      sink.warning("ND0007",
                   "predicate '" + pred + "' is read in " + rule_label(rule) +
                       " but no rule derives it and no materialize declares it",
                   ba->atom.span())
          .in_rule(rule_index_of(program, rule), pred)
          .hint = "add a materialize declaration for '" + pred +
                  "' (base relation) or a rule deriving it — this is often a typo";
    }
  }
}

void lint_duplicate_rules(const Program& program, DiagnosticSink& sink) {
  // Textual subsumption: same head and same multiset of body elements.
  struct FirstSeen {
    const Rule* rule;
  };
  std::map<std::string, FirstSeen> seen;
  for (const auto& rule : program.rules) {
    std::vector<std::string> body;
    body.reserve(rule.body.size());
    for (const auto& elem : rule.body) body.push_back(to_string(elem));
    std::sort(body.begin(), body.end());
    std::string key = rule.head.to_string() + " :- ";
    for (const auto& b : body) key += b + ", ";
    auto [it, inserted] = seen.emplace(std::move(key), FirstSeen{&rule});
    if (inserted) continue;
    const Rule& first = *it->second.rule;
    auto& d = sink.warning("ND0008",
                           rule_label(rule) + " duplicates " + rule_label(first) +
                               (first.loc.valid()
                                    ? " (line " + std::to_string(first.loc.line) + ")"
                                    : ""),
                           rule.span())
                  .in_rule(rule_index_of(program, rule), rule.head.predicate);
    d.hint = "delete one of the two rules; they derive identical tuples";
  }
}

void lint_singleton_variables(const Program& program, DiagnosticSink& sink) {
  for (const auto& rule : program.rules) {
    for (const auto& [var, use] : variable_uses(rule)) {
      // A '_'-prefixed name marks an intentionally-unused variable; a
      // head-only singleton is already an ND0003 safety error.
      if (use.count != 1 || use.in_head || var[0] == '_') continue;
      if (use.first_positive_atom == nullptr) continue;  // ND0003 covers it
      sink.warning("ND0009",
                   rule_label(rule) + ": variable '" + var +
                       "' is used only once (in atom '" +
                       use.first_positive_atom->predicate + "')",
                   use.first_positive_atom->span())
          .in_rule(rule_index_of(program, rule), rule.head.predicate)
          .hint = "rename it to '_" + var + "' if the value is intentionally unused";
    }
  }
}

void lint_cartesian_products(const Program& program, DiagnosticSink& sink) {
  for (const auto& rule : program.rules) {
    // Union-find over variables; every body element merges the variables it
    // mentions (comparisons correlate atoms into theta-joins, so they count).
    std::map<std::string, std::string> parent;
    std::function<std::string(const std::string&)> find = [&](const std::string& v) {
      auto it = parent.find(v);
      if (it == parent.end()) {
        parent[v] = v;
        return v;
      }
      if (it->second == v) return v;
      return it->second = find(it->second);
    };
    auto unite = [&](const std::vector<std::string>& vars) {
      for (std::size_t i = 1; i < vars.size(); ++i) {
        parent[find(vars[0])] = find(vars[i]);
      }
    };
    std::vector<std::pair<const Atom*, std::vector<std::string>>> atoms;
    for (const auto& elem : rule.body) {
      std::vector<std::string> vars;
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        if (ba->negated) continue;  // negated atoms filter, they don't join
        ba->atom.collect_vars(vars);
        unite(vars);
        if (!vars.empty()) atoms.emplace_back(&ba->atom, std::move(vars));
      } else if (const auto* cmp = std::get_if<Comparison>(&elem)) {
        cmp->lhs->collect_vars(vars);
        cmp->rhs->collect_vars(vars);
        unite(vars);
      }
    }
    if (atoms.size() < 2) continue;
    std::map<std::string, std::vector<const Atom*>> components;
    for (const auto& [atom, vars] : atoms) components[find(vars[0])].push_back(atom);
    if (components.size() < 2) continue;
    std::ostringstream groups;
    for (auto it = components.begin(); it != components.end(); ++it) {
      if (it != components.begin()) groups << " x ";
      groups << "{";
      for (std::size_t i = 0; i < it->second.size(); ++i) {
        groups << (i != 0 ? ", " : "") << it->second[i]->predicate;
      }
      groups << "}";
    }
    sink.warning("ND0010",
                 rule_label(rule) +
                     ": body atoms share no join variable — the evaluator "
                     "computes a cartesian product " +
                     groups.str(),
                 rule.span())
        .in_rule(rule_index_of(program, rule), rule.head.predicate)
        .hint = "add a shared variable between the groups or split the rule";
  }
}

void lint_aggregate_empty_groups(const Program& program, DiagnosticSink& sink) {
  for (const auto& rule : program.rules) {
    if (!rule.head.has_aggregate() || rule.is_fact()) continue;
    const bool guarded = std::any_of(
        rule.body.begin(), rule.body.end(), [](const BodyElem& elem) {
          if (const auto* ba = std::get_if<BodyAtom>(&elem)) return ba->negated;
          return std::get<Comparison>(elem).op != CmpOp::Eq;
        });
    if (!guarded) continue;
    std::string agg;
    for (const auto& arg : rule.head.args) {
      if (arg.is_agg()) {
        agg = std::string(to_string(*arg.agg)) + "<" + arg.agg_var + ">";
        break;
      }
    }
    sink.warning("ND0011",
                 rule_label(rule) + ": aggregate " + agg +
                     " over a guarded body derives no tuple for groups whose "
                     "candidates are all filtered out (count never yields 0)",
                 rule.head.span())
        .in_rule(rule_index_of(program, rule), rule.head.predicate)
        .hint = "derive the group keys unconditionally in a separate rule if "
                "an empty group must still produce a row";
  }
}

void lint_localizability(const Program& program, DiagnosticSink& sink) {
  for (const auto& rule : program.rules) {
    const auto locs = body_location_vars(rule);
    if (locs.size() <= 2) continue;
    std::string list;
    for (const auto& l : locs) list += (list.empty() ? "@" : ", @") + l;
    sink.warning("ND0012",
                 rule_label(rule) + ": body spans " + std::to_string(locs.size()) +
                     " location specifiers (" + list +
                     ") and cannot be localized into link-restricted "
                     "ship/join pairs for distributed execution",
                 rule.span())
        .in_rule(rule_index_of(program, rule), rule.head.predicate)
        .hint = "split the rule so each body joins at most two locations";
  }
}

void lint_link_restriction(const Program& program, DiagnosticSink& sink) {
  for (const auto& rule : program.rules) {
    const LocalizationCheck check = check_localizable(rule);
    if (check.status != LocalizationCheck::Status::NotLinkRestricted) {
      continue;  // >2 locations is ND0012's finding
    }
    const auto locs = body_location_vars(rule);
    auto it = locs.begin();
    const std::string a = *it++;
    const std::string b = *it;
    sink.warning("ND0013",
                 rule_label(rule) + ": body joins @" + a + " and @" + b +
                     " but is not link-restricted in either orientation — "
                     "runtime::localize would reject this rule at execution time",
                 rule.span())
        .in_rule(rule_index_of(program, rule), rule.head.predicate)
        .hint = "make every atom at one location also carry the other "
                "location's variable (positively), so its tuples can be "
                "shipped to the join site";
  }
}

namespace {

/// Parse a localizer-generated ship-rule name "<pred>_sh_<origin>_<k>" and
/// return the origin rule label, or "" when the name has a different shape.
std::string ship_origin(const std::string& name) {
  const auto pos = name.rfind("_sh_");
  if (pos == std::string::npos) return {};
  const std::string rest = name.substr(pos + 4);
  const auto us = rest.rfind('_');
  if (us == std::string::npos || us + 1 >= rest.size()) return {};
  for (std::size_t i = us + 1; i < rest.size(); ++i) {
    if (rest[i] < '0' || rest[i] > '9') return {};
  }
  return rest.substr(0, us);
}

}  // namespace

void dedupe_localized_diagnostics(const Program& program, DiagnosticSink& sink) {
  if (sink.empty()) return;
  bool any_ship = false;
  std::vector<Diagnostic> kept;
  std::set<std::pair<std::string, int>> seen;  // (code, origin rule index)
  // First pass: findings already anchored to non-ship rules claim their key
  // so a retargeted ship-rule duplicate is recognized regardless of order.
  for (const Diagnostic& d : sink.diagnostics()) {
    const bool is_ship =
        !ship_origin(d.predicate).empty() ||
        (d.rule_index >= 0 &&
         static_cast<std::size_t>(d.rule_index) < program.rules.size() &&
         !ship_origin(program.rules[static_cast<std::size_t>(d.rule_index)].name)
              .empty());
    if (is_ship) {
      any_ship = true;
    } else if (d.rule_index >= 0) {
      seen.emplace(d.code, d.rule_index);
    }
  }
  if (!any_ship) return;
  for (Diagnostic d : sink.diagnostics()) {
    std::string origin = ship_origin(d.predicate);
    if (origin.empty() && d.rule_index >= 0 &&
        static_cast<std::size_t>(d.rule_index) < program.rules.size()) {
      origin = ship_origin(program.rules[static_cast<std::size_t>(d.rule_index)].name);
    }
    if (origin.empty()) {
      kept.push_back(std::move(d));
      continue;
    }
    // Retarget onto the origin rule (the rewritten rule keeps its name).
    const Rule* target = nullptr;
    int target_index = -1;
    for (std::size_t ri = 0; ri < program.rules.size(); ++ri) {
      const Rule& rule = program.rules[ri];
      if (rule.name == origin && ship_origin(rule.name).empty()) {
        target = &rule;
        target_index = static_cast<int>(ri);
        break;
      }
    }
    if (target == nullptr) {
      kept.push_back(std::move(d));
      continue;
    }
    d.span = target->span();
    d.rule_index = target_index;
    d.predicate = target->head.predicate;
    if (!seen.emplace(d.code, target_index).second) continue;  // duplicate
    kept.push_back(std::move(d));
  }
  sink.clear();
  for (auto& d : kept) sink.report(std::move(d));
}

void lint_program(const Program& program, DiagnosticSink& sink,
                  const BuiltinRegistry& builtins, const LintOptions& options) {
  check_arities(program, sink);
  check_safety(program, builtins, sink);
  (void)stratify(program, sink);
  if (options.style_passes) {
    lint_unused_predicates(program, sink);
    lint_underivable_predicates(program, sink);
    lint_duplicate_rules(program, sink);
    lint_singleton_variables(program, sink);
    lint_cartesian_products(program, sink);
    lint_aggregate_empty_groups(program, sink);
  }
  if (options.localization_pass) {
    lint_localizability(program, sink);
    lint_link_restriction(program, sink);
  }
  dedupe_localized_diagnostics(program, sink);
  sink.sort_by_location();
}

}  // namespace fvn::ndlog
