// Predicate catalog: per-predicate metadata (arity, location-specifier field,
// soft-state lifetime) derived from a parsed program. The distributed runtime
// consults it to route derived tuples and to expire soft state.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "ndlog/ast.hpp"

namespace fvn::ndlog {

struct PredicateInfo {
  std::string name;
  std::size_t arity = 0;
  /// Index of the location-specifier attribute. NDlog convention: the first
  /// attribute unless a rule says otherwise with '@'.
  std::size_t loc_index = 0;
  /// Soft-state lifetime in seconds; nullopt = hard state.
  std::optional<double> lifetime_seconds;
  /// Maximum table size from the materialize declaration; nullopt = unbounded.
  std::optional<std::size_t> max_size;
  /// 1-based primary-key fields (empty = whole tuple is the key).
  std::vector<std::size_t> key_fields;
};

/// Catalog of all predicates of a program.
class Catalog {
 public:
  Catalog() = default;
  /// Build from a program: collects arities and '@' positions from every
  /// atom, and lifetimes/keys from materialize declarations. Throws
  /// AnalysisError (via check_arities semantics) on inconsistent '@' use.
  static Catalog from_program(const Program& program);

  bool contains(const std::string& predicate) const;
  const PredicateInfo& info(const std::string& predicate) const;
  /// Location field index for a predicate (0 when unknown).
  std::size_t loc_index(const std::string& predicate) const;

  std::vector<std::string> predicates() const;
  void add(PredicateInfo info);

 private:
  std::map<std::string, PredicateInfo> infos_;
};

}  // namespace fvn::ndlog
