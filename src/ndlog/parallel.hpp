// Parallel-safety analysis (DESIGN.md §16): certify, per stratum, a shard
// key per derived predicate such that hash-partitioned evaluation of a delta
// round stays shard-local — every join probe against a same-stratum derived
// predicate, every local head install, and every aggregate group lands in
// the shard that owns the delta. The executable counterpart lives in
// dataflow::WorkerPool; it is only allowed to fan a round across worker
// threads when this analyzer produced a certificate.
//
//   ND0022  certified shard plan   note: the chosen key per predicate
//   ND0023  key-misaligned join    a body atom carries the wrong variable at
//                                  every candidate shard column; the group
//                                  falls back to location sharding (or serial)
//   ND0024  cross-shard aggregate  an aggregate's input is sharded by an
//                                  attribute absent from the group-by; the
//                                  rule is pinned to the serial barrier
//   ND0025  negation barrier       each negation is evaluated only at
//                                  stratum barriers; negation over a derived
//                                  predicate revokes the certificate
//
// The certificate argument (why shard-local groups + serial barriers keep
// fixpoints bit-identical to the serial engine) is spelled out in DESIGN.md
// §16; tests/test_parallel_crossval.cpp pins it empirically across every
// example × engine × worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ndlog/ast.hpp"
#include "ndlog/diagnostics.hpp"

namespace fvn::ndlog::parallel {

/// How one rule group may be distributed across worker shards.
enum class GroupMode : std::uint8_t {
  ShardedByAttribute,  ///< common join attribute; true intra-node parallelism
  ShardedByLocation,   ///< location column; parallel across nodes' tuples only
  Serial,              ///< no consistent key — group runs on shard 0
};

std::string_view to_string(GroupMode mode) noexcept;

/// Chosen shard key for one derived predicate (0-based column).
struct ShardKey {
  int column = -1;
  /// True when `column` is the predicate's location-specifier position.
  bool location = false;
};

/// A connected component of rules within one stratum, linked by the
/// same-stratum derived predicates they read or write. Base predicates and
/// earlier strata are frozen during a round (replicated reads) and never
/// merge groups.
struct RuleGroup {
  int stratum = 0;
  std::vector<std::size_t> rules;    ///< indices into Program::rules, ascending
  std::set<std::string> predicates;  ///< same-stratum derived predicates
  GroupMode mode = GroupMode::Serial;
  std::string detail;                ///< human-readable narrative
};

/// Everything the parallel-safety passes computed.
struct Report {
  /// The program may run under the multi-worker engine: stratifiable, no
  /// predicted divergence, no order-sensitive negation, negations only over
  /// base predicates. Group modes refine the plan but never revoke this.
  bool certified = false;
  std::string fallback_reason;  ///< non-empty iff !certified
  int stratum_count = 0;
  std::vector<RuleGroup> groups;
  /// Shard key per derived predicate (every predicate of a non-Serial group).
  std::map<std::string, ShardKey> keys;
  /// Read-only relations during a round: base/extensional predicates.
  std::set<std::string> replicated;
  /// Rules pinned to the serial barrier by ND0024 (ascending, unique).
  std::vector<std::size_t> serial_rules;
  std::size_t negation_barriers = 0;  ///< ND0025 notes emitted
};

/// Run the parallel-safety analysis, reporting ND0022–ND0025 into `sink`.
/// Core-check failures (arity/safety/stratification) are absorbed into
/// `Report::fallback_reason` rather than re-reported — callers that want the
/// underlying diagnostics run lint/analyze first.
Report analyze(const Program& program, DiagnosticSink& sink);

/// Deterministic JSON object: certified, fallback_reason, strata, groups
/// (stratum/mode/rules/detail), keys (1-based columns), replicated,
/// serial_rules, negation_barriers.
std::string to_json(const Report& report);

/// Human-readable shard plan, one line per group plus the key table.
std::string to_human(const Report& report);

/// Graphviz DOT: one cluster per group (labelled with stratum and mode),
/// predicate nodes annotated with their shard key, replicated predicates
/// dashed.
std::string to_dot(const Program& program, const Report& report);

}  // namespace fvn::ndlog::parallel
