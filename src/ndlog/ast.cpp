#include "ndlog/ast.hpp"

#include <algorithm>
#include <sstream>

namespace fvn::ndlog {

std::string_view to_string(BinOp op) noexcept {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
  }
  return "?";
}

std::string_view to_string(CmpOp op) noexcept {
  switch (op) {
    case CmpOp::Eq: return "==";
    case CmpOp::Ne: return "!=";
    case CmpOp::Lt: return "<";
    case CmpOp::Le: return "<=";
    case CmpOp::Gt: return ">";
    case CmpOp::Ge: return ">=";
  }
  return "?";
}

std::string_view to_string(AggKind kind) noexcept {
  switch (kind) {
    case AggKind::Min: return "min";
    case AggKind::Max: return "max";
    case AggKind::Count: return "count";
    case AggKind::Sum: return "sum";
  }
  return "?";
}

CmpOp negate(CmpOp op) noexcept {
  switch (op) {
    case CmpOp::Eq: return CmpOp::Ne;
    case CmpOp::Ne: return CmpOp::Eq;
    case CmpOp::Lt: return CmpOp::Ge;
    case CmpOp::Le: return CmpOp::Gt;
    case CmpOp::Gt: return CmpOp::Le;
    case CmpOp::Ge: return CmpOp::Lt;
  }
  return CmpOp::Eq;
}

TermPtr Term::var(std::string name) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::Var;
  t->name = std::move(name);
  return t;
}

TermPtr Term::constant_of(Value v) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::Const;
  t->constant = std::move(v);
  return t;
}

TermPtr Term::func(std::string name, std::vector<TermPtr> args) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::Func;
  t->name = std::move(name);
  t->args = std::move(args);
  return t;
}

TermPtr Term::binary(BinOp op, TermPtr lhs, TermPtr rhs) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::Binary;
  t->op = op;
  t->args = {std::move(lhs), std::move(rhs)};
  return t;
}

void Term::collect_vars(std::vector<std::string>& out) const {
  switch (kind) {
    case Kind::Var:
      if (std::find(out.begin(), out.end(), name) == out.end()) out.push_back(name);
      break;
    case Kind::Const:
      break;
    case Kind::Func:
    case Kind::Binary:
      for (const auto& a : args) a->collect_vars(out);
      break;
  }
}

std::string Term::to_string() const {
  switch (kind) {
    case Kind::Var: return name;
    case Kind::Const: return constant.to_string();
    case Kind::Func: {
      std::string out = name + "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) out += ",";
        out += args[i]->to_string();
      }
      return out + ")";
    }
    case Kind::Binary: {
      return "(" + args[0]->to_string() + std::string(ndlog::to_string(op)) +
             args[1]->to_string() + ")";
    }
  }
  return "?";
}

std::string HeadArg::to_string() const {
  if (is_agg()) return std::string(ndlog::to_string(*agg)) + "<" + agg_var + ">";
  return term->to_string();
}

namespace {
template <typename ArgVec, typename Fn>
std::string atom_to_string(const std::string& pred, const ArgVec& args,
                           int loc_index, Fn&& render) {
  std::string out = pred + "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out += ",";
    if (static_cast<int>(i) == loc_index) out += "@";
    out += render(args[i]);
  }
  return out + ")";
}
}  // namespace

std::string Atom::to_string() const {
  return atom_to_string(predicate, args, loc_index,
                        [](const TermPtr& t) { return t->to_string(); });
}

void Atom::collect_vars(std::vector<std::string>& out) const {
  for (const auto& a : args) a->collect_vars(out);
}

bool HeadAtom::has_aggregate() const noexcept {
  return std::any_of(args.begin(), args.end(),
                     [](const HeadArg& a) { return a.is_agg(); });
}

std::string HeadAtom::to_string() const {
  return atom_to_string(predicate, args, loc_index,
                        [](const HeadArg& a) { return a.to_string(); });
}

std::string BodyAtom::to_string() const {
  return (negated ? "!" : "") + atom.to_string();
}

std::string Comparison::to_string() const {
  const std::string_view op_text = (op == CmpOp::Eq) ? "=" : ndlog::to_string(op);
  return lhs->to_string() + std::string(op_text) + rhs->to_string();
}

std::string to_string(const BodyElem& elem) {
  return std::visit([](const auto& e) { return e.to_string(); }, elem);
}

std::string Rule::to_string() const {
  std::string out;
  if (!name.empty()) out += name + " ";
  out += head.to_string();
  if (!body.empty()) {
    out += " :- ";
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (i) out += ", ";
      out += ndlog::to_string(body[i]);
    }
  }
  return out + ".";
}

std::string Materialize::to_string() const {
  std::ostringstream os;
  os << "materialize(" << predicate << ", ";
  if (lifetime_seconds) os << *lifetime_seconds;
  else os << "infinity";
  os << ", ";
  if (max_size) os << *max_size;
  else os << "infinity";
  os << ", keys(";
  for (std::size_t i = 0; i < key_fields.size(); ++i) {
    if (i) os << ",";
    os << key_fields[i];
  }
  os << ")).";
  return os.str();
}

const Materialize* Program::materialization_of(const std::string& pred) const {
  for (const auto& m : materializations) {
    if (m.predicate == pred) return &m;
  }
  return nullptr;
}

std::string Program::to_string() const {
  std::string out;
  for (const auto& m : materializations) out += m.to_string() + "\n";
  for (const auto& r : rules) out += r.to_string() + "\n";
  return out;
}

}  // namespace fvn::ndlog
