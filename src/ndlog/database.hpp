// In-memory relation store shared by the centralized evaluator and the
// per-node engines of the distributed runtime.
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>
#include <map>
#include <string>

#include "ndlog/tuple.hpp"

namespace fvn::ndlog {

/// A set of named relations, each a duplicate-free tuple set, with lazily
/// built per-column hash indexes (maintained incrementally once built) that
/// the join engine probes instead of scanning.
class Database {
 public:
  /// Insert; returns true iff the tuple was new.
  bool insert(const Tuple& tuple);
  /// Remove; returns true iff the tuple was present.
  bool erase(const Tuple& tuple);
  bool contains(const Tuple& tuple) const;

  /// The relation for `predicate` (empty set if absent).
  const TupleSet& relation(const std::string& predicate) const;

  /// Tuples of `predicate` whose column `position` equals `value`. Builds
  /// the (predicate, position) index on first use; afterwards the index is
  /// maintained by insert/erase. Returned pointers are invalidated by writes.
  const std::vector<const Tuple*>& lookup(const std::string& predicate,
                                          std::size_t position,
                                          const Value& value) const;
  /// Build the (predicate, position) index now if it does not exist yet
  /// (no-op otherwise). lookup() builds indexes lazily under const, which is
  /// a data race for concurrent readers; the parallel worker pool pre-warms
  /// every index its probes can touch before a round fans out, after which
  /// concurrent lookup() calls are pure reads.
  void ensure_index(const std::string& predicate, std::size_t position) const;
  /// True if an index exists for (predicate, position) — test/bench hook.
  bool has_index(const std::string& predicate, std::size_t position) const;
  /// All predicates with at least one tuple.
  std::vector<std::string> predicates() const;

  std::size_t size(const std::string& predicate) const;
  std::size_t total_size() const;
  void clear();
  void clear_relation(const std::string& predicate);

  /// Deep snapshot (the runtime uses this for state hashing in the model
  /// checker and for convergence comparison).
  std::map<std::string, TupleSet> snapshot() const { return relations_; }

  /// Deterministic dump of all tuples, sorted (tests/goldens).
  std::vector<std::string> dump() const;

 private:
  using ColumnIndex = std::unordered_map<Value, std::vector<const Tuple*>, ValueHash>;

  std::map<std::string, TupleSet> relations_;
  /// (predicate, column) -> index. Mutable: built lazily from const lookups.
  mutable std::map<std::pair<std::string, std::size_t>, ColumnIndex> indexes_;
  static const TupleSet kEmpty;
  static const std::vector<const Tuple*> kNoMatches;

  void index_insert(const Tuple& stored);
  void index_erase(const Tuple& tuple);
};

}  // namespace fvn::ndlog
