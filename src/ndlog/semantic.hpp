// Semantic NDlog analysis (DESIGN.md §11): divergence prediction and
// CALM-style convergence classification on top of the fvn::ndlog::absint
// abstract domain and the predicate dependency graph.
//
//   ND0014  dead rule             a comparison is unsatisfiable under the
//                                 interval abstraction; the rule never fires
//   ND0015  predicted divergence  a recursive cycle grows a value (arith or
//                                 path concatenation) with neither a finite
//                                 bound nor a cycle guard; the evaluator
//                                 would only stop on its derivation budget
//                                 (DivergenceError)
//   ND0016  order-sensitive ¬     negation over an asynchronously derived
//                                 predicate: the fixpoint can depend on
//                                 message arrival order
//   ND0017  key-projection race   a materialized predicate's P2 key set
//                                 drops columns that are not functionally
//                                 determined by the keys; last-writer-wins
//                                 under reordering
//   ND0018  non-monotone (CALM)   aggregate over asynchronous input: safe
//                                 but recomputed non-monotonically (note)
//
// The analyzer is cross-validated against the runtime (tests/
// test_semantic_crossval.cpp): divergence verdicts against the evaluator's
// DivergenceError, order flags against two seeded simulator schedules.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ndlog/absint.hpp"
#include "ndlog/ast.hpp"
#include "ndlog/diagnostics.hpp"

namespace fvn::obs {
class Registry;
}  // namespace fvn::obs

namespace fvn::ndlog {

/// One inferred functional dependency: the argument positions in
/// `determinant` jointly determine position `dependent` (0-based) in every
/// run regardless of message ordering.
struct Fd {
  std::vector<int> determinant;  // sorted, 0-based
  int dependent = 0;

  bool operator==(const Fd& other) const noexcept {
    return determinant == other.determinant && dependent == other.dependent;
  }
};

struct SemanticOptions {
  /// Optional per-pass counters and timers under the `analyze/` prefix.
  obs::Registry* metrics = nullptr;
  /// Predicates wider than this only get key-derived FD candidates (the
  /// subset enumeration is exponential in arity).
  int fd_max_arity = 8;
};

/// Everything the semantic passes computed, for rendering and for tests.
struct SemanticReport {
  /// Strongly connected components of the dependency graph in dependency
  /// order (callees first); members sorted.
  std::vector<std::vector<std::string>> sccs;
  std::set<std::string> recursive_predicates;
  /// Predicates whose contents can depend on cross-node message timing.
  std::set<std::string> async_predicates;
  /// Predicates in a cycle flagged ND0015.
  std::set<std::string> divergent_predicates;
  /// Rule indices flagged ND0014.
  std::vector<std::size_t> dead_rules;
  /// Predicates flagged ND0016/ND0017 (order-sensitive fixpoint).
  std::set<std::string> order_sensitive_predicates;
  /// CALM: no negation, no aggregation, no key-projection — the program is
  /// confluent under any message ordering.
  bool monotone = false;
  int stratum_count = 0;
  std::map<std::string, int> stratum_of;
  absint::PredicateMap abstraction;
  /// Surviving order-independent FDs per derived predicate (plus the
  /// key-functionality FDs of base materialized predicates).
  std::map<std::string, std::vector<Fd>> fds;
};

/// Run every semantic pass, reporting ND0014–ND0018 into `sink`. Assumes the
/// core checks (arity/safety/stratifiability) already passed.
SemanticReport analyze_semantics(const Program& program, DiagnosticSink& sink,
                                 const SemanticOptions& options = {});

/// Predicates derivable through cross-node communication: a defining rule
/// joins across two location specifiers or ships its head to another node,
/// or any (transitive) body dependency does. Contents of such predicates at
/// a node depend on message timing.
std::set<std::string> async_predicates(const Program& program);

/// Greatest-fixpoint inference of order-independent functional dependencies.
/// Base materialized predicates contribute their P2 key FDs (stable external
/// input); derived predicates start from all candidate FDs and lose every FD
/// some rule cannot justify via a chase-style argument.
std::map<std::string, std::vector<Fd>> infer_fds(const Program& program,
                                                 int fd_max_arity = 8);

/// Does `determinant ⊇ some surviving FD determinant` for `dependent`?
bool fd_determines(const std::map<std::string, std::vector<Fd>>& fds,
                   const std::string& predicate,
                   const std::set<int>& determinant, int dependent);

/// Graphviz DOT of the predicate dependency graph: strata as node labels,
/// recursive SCCs colored, ND0015 components red, async predicates dashed,
/// negation edges dashed, aggregation edges labelled.
std::string semantic_dot(const Program& program, const SemanticReport& report);

/// Deterministic JSON summary object (predicates, strata, sccs, recursive,
/// async, divergent, dead_rules, order_sensitive, monotone).
std::string semantic_json(const SemanticReport& report);

}  // namespace fvn::ndlog
