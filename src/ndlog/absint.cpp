#include "ndlog/absint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace fvn::ndlog::absint {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// ---------------------------------------------------------------------------
// Interval
// ---------------------------------------------------------------------------

Interval::Interval() : lo(kInf), hi(-kInf) {}

Interval Interval::empty() { return Interval{}; }

Interval Interval::top() { return range(-kInf, kInf); }

Interval Interval::point(double v) { return range(v, v); }

Interval Interval::range(double lo, double hi) {
  Interval iv;
  iv.lo = lo;
  iv.hi = hi;
  return iv;
}

bool Interval::bounded_above() const noexcept { return !is_empty() && hi < kInf; }

bool Interval::bounded_below() const noexcept { return !is_empty() && lo > -kInf; }

Interval Interval::join(const Interval& other) const {
  if (is_empty()) return other;
  if (other.is_empty()) return *this;
  return range(std::min(lo, other.lo), std::max(hi, other.hi));
}

Interval Interval::meet(const Interval& other) const {
  if (is_empty() || other.is_empty()) return empty();
  Interval iv = range(std::max(lo, other.lo), std::min(hi, other.hi));
  return iv.is_empty() ? empty() : iv;
}

Interval Interval::widen(const Interval& newer) const {
  if (is_empty()) return newer;
  if (newer.is_empty()) return *this;
  return range(newer.lo < lo ? -kInf : lo, newer.hi > hi ? kInf : hi);
}

bool Interval::operator==(const Interval& other) const noexcept {
  if (is_empty() && other.is_empty()) return true;
  return lo == other.lo && hi == other.hi;
}

std::string Interval::to_string() const {
  if (is_empty()) return "[]";
  std::ostringstream os;
  os << "[";
  if (lo == -kInf) {
    os << "-inf";
  } else {
    os << lo;
  }
  os << ", ";
  if (hi == kInf) {
    os << "+inf";
  } else {
    os << hi;
  }
  os << "]";
  return os.str();
}

namespace {

/// a*b with the convention inf*0 = 0 (an endpoint of 0 annihilates).
double safe_mul(double a, double b) {
  if (a == 0.0 || b == 0.0) return 0.0;
  return a * b;
}

}  // namespace

Interval add(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  return Interval::range(a.lo + b.lo, a.hi + b.hi);
}

Interval sub(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  return Interval::range(a.lo - b.hi, a.hi - b.lo);
}

Interval mul(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  const double p1 = safe_mul(a.lo, b.lo);
  const double p2 = safe_mul(a.lo, b.hi);
  const double p3 = safe_mul(a.hi, b.lo);
  const double p4 = safe_mul(a.hi, b.hi);
  return Interval::range(std::min({p1, p2, p3, p4}), std::max({p1, p2, p3, p4}));
}

Interval div(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  // Precise only when the divisor has a definite sign and excludes zero;
  // otherwise give up (division by an interval straddling 0 is unbounded).
  if (b.lo > 0.0 || b.hi < 0.0) {
    const double p1 = a.lo / b.lo;
    const double p2 = a.lo / b.hi;
    const double p3 = a.hi / b.lo;
    const double p4 = a.hi / b.hi;
    if (!std::isnan(p1) && !std::isnan(p2) && !std::isnan(p3) && !std::isnan(p4)) {
      return Interval::range(std::min({p1, p2, p3, p4}), std::max({p1, p2, p3, p4}));
    }
  }
  return Interval::top();
}

Interval mod(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  // NDlog mod is integer-only; for a positive divisor the result lies in
  // [0, b.hi - 1] when the dividend is non-negative. Anything else: top.
  if (b.lo > 0.0 && b.bounded_above() && a.lo >= 0.0) {
    return Interval::range(0.0, b.hi - 1.0);
  }
  return Interval::top();
}

// ---------------------------------------------------------------------------
// AbstractValue
// ---------------------------------------------------------------------------

AbstractValue AbstractValue::bottom() { return AbstractValue{}; }

AbstractValue AbstractValue::any() {
  AbstractValue v;
  v.kind = Kind::Any;
  return v;
}

AbstractValue AbstractValue::number(Interval iv) {
  if (iv.is_empty()) return bottom();
  AbstractValue v;
  v.kind = Kind::Num;
  v.num = iv;
  return v;
}

AbstractValue AbstractValue::boolean(bool may_true, bool may_false) {
  if (!may_true && !may_false) return bottom();
  AbstractValue v;
  v.kind = Kind::Bool;
  v.may_true = may_true;
  v.may_false = may_false;
  return v;
}

AbstractValue AbstractValue::of(const Value& v) {
  switch (v.kind()) {
    case ValueKind::Bool:
      return boolean(v.as_bool(), !v.as_bool());
    case ValueKind::Int:
      return number(Interval::point(static_cast<double>(v.as_int())));
    case ValueKind::Double:
      return number(Interval::point(v.as_double()));
    default:
      return any();  // addresses, strings, lists, nil
  }
}

AbstractValue AbstractValue::join(const AbstractValue& other) const {
  if (is_bottom()) return other;
  if (other.is_bottom()) return *this;
  if (is_any() || other.is_any()) return any();
  if (kind != other.kind) return any();
  if (is_num()) return number(num.join(other.num));
  return boolean(may_true || other.may_true, may_false || other.may_false);
}

AbstractValue AbstractValue::meet(const AbstractValue& other) const {
  if (is_bottom() || other.is_bottom()) return bottom();
  if (is_any()) return other;
  if (other.is_any()) return *this;
  if (kind != other.kind) return bottom();
  if (is_num()) return number(num.meet(other.num));
  return boolean(may_true && other.may_true, may_false && other.may_false);
}

AbstractValue AbstractValue::widen(const AbstractValue& newer) const {
  if (is_bottom()) return newer;
  if (newer.is_bottom()) return *this;
  if (is_num() && newer.is_num()) return number(num.widen(newer.num));
  return join(newer);
}

bool AbstractValue::operator==(const AbstractValue& other) const noexcept {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::Num:
      return num == other.num;
    case Kind::Bool:
      return may_true == other.may_true && may_false == other.may_false;
    default:
      return true;
  }
}

std::string AbstractValue::to_string() const {
  switch (kind) {
    case Kind::Bottom:
      return "bottom";
    case Kind::Any:
      return "any";
    case Kind::Num:
      return num.to_string();
    case Kind::Bool:
      if (may_true && may_false) return "bool";
      return may_true ? "true" : "false";
  }
  return "?";
}

CmpOp flip(CmpOp op) noexcept {
  switch (op) {
    case CmpOp::Lt:
      return CmpOp::Gt;
    case CmpOp::Le:
      return CmpOp::Ge;
    case CmpOp::Gt:
      return CmpOp::Lt;
    case CmpOp::Ge:
      return CmpOp::Le;
    default:
      return op;  // Eq / Ne are symmetric
  }
}

bool satisfiable(CmpOp op, const AbstractValue& a, const AbstractValue& b) {
  if (a.is_bottom() || b.is_bottom()) return false;
  if (a.is_any() || b.is_any()) return true;
  switch (op) {
    case CmpOp::Eq:
      return !a.meet(b).is_bottom();
    case CmpOp::Ne: {
      // Unsatisfiable only when both sides are the same singleton.
      if (a.is_num() && b.is_num()) {
        return !(a.num.is_point() && b.num.is_point() && a.num.lo == b.num.lo);
      }
      if (a.is_bool() && b.is_bool()) {
        const bool a_def = a.may_true != a.may_false;
        const bool b_def = b.may_true != b.may_false;
        return !(a_def && b_def && a.may_true == b.may_true);
      }
      return true;  // distinct kinds always differ
    }
    case CmpOp::Lt:
    case CmpOp::Le:
    case CmpOp::Gt:
    case CmpOp::Ge:
      // Order comparisons between distinct kinds follow the kind-major value
      // order, which we do not model: stay conservative unless both numeric.
      if (!a.is_num() || !b.is_num()) return true;
      switch (op) {
        case CmpOp::Lt:
          return a.num.lo < b.num.hi;
        case CmpOp::Le:
          return a.num.lo <= b.num.hi;
        case CmpOp::Gt:
          return a.num.hi > b.num.lo;
        default:
          return a.num.hi >= b.num.lo;
      }
  }
  return true;
}

AbstractValue refine(CmpOp op, const AbstractValue& a, const AbstractValue& b) {
  if (op == CmpOp::Eq) return a.meet(b);
  if (!a.is_num() || !b.is_num()) return a;  // only numeric facts refine
  Interval iv = a.num;
  switch (op) {
    case CmpOp::Lt:
    case CmpOp::Le:
      // Closed-bound refinement is conservative for the strict case.
      iv = iv.meet(Interval::range(-kInf, b.num.hi));
      break;
    case CmpOp::Gt:
    case CmpOp::Ge:
      iv = iv.meet(Interval::range(b.num.lo, kInf));
      break;
    default:
      return a;  // Ne carries no interval information
  }
  return AbstractValue::number(iv);
}

// ---------------------------------------------------------------------------
// Term evaluation
// ---------------------------------------------------------------------------

AbstractValue eval_term(const Term& term,
                        const std::map<std::string, AbstractValue>& vars) {
  switch (term.kind) {
    case Term::Kind::Var: {
      auto it = vars.find(term.name);
      return it == vars.end() ? AbstractValue::any() : it->second;
    }
    case Term::Kind::Const:
      return AbstractValue::of(term.constant);
    case Term::Kind::Binary: {
      const AbstractValue lhs = eval_term(*term.args[0], vars);
      const AbstractValue rhs = eval_term(*term.args[1], vars);
      if (lhs.is_bottom() || rhs.is_bottom()) return AbstractValue::bottom();
      if (!lhs.is_num() || !rhs.is_num()) return AbstractValue::any();
      switch (term.op) {
        case BinOp::Add:
          return AbstractValue::number(add(lhs.num, rhs.num));
        case BinOp::Sub:
          return AbstractValue::number(sub(lhs.num, rhs.num));
        case BinOp::Mul:
          return AbstractValue::number(mul(lhs.num, rhs.num));
        case BinOp::Div:
          return AbstractValue::number(div(lhs.num, rhs.num));
        case BinOp::Mod:
          return AbstractValue::number(mod(lhs.num, rhs.num));
      }
      return AbstractValue::any();
    }
    case Term::Kind::Func: {
      std::vector<AbstractValue> args;
      args.reserve(term.args.size());
      for (const auto& a : term.args) args.push_back(eval_term(*a, vars));
      for (const auto& a : args) {
        if (a.is_bottom()) return AbstractValue::bottom();
      }
      const std::string& f = term.name;
      if (f == "f_size") {
        return AbstractValue::number(Interval::range(0.0, kInf));
      }
      if (f == "f_abs") {
        if (args.size() == 1 && args[0].is_num()) {
          const Interval& iv = args[0].num;
          const double m = std::max(std::fabs(iv.lo), std::fabs(iv.hi));
          return AbstractValue::number(
              Interval::range(iv.contains(0.0) ? 0.0 : std::min(std::fabs(iv.lo),
                                                                std::fabs(iv.hi)),
                              m));
        }
        return AbstractValue::number(Interval::range(0.0, kInf));
      }
      if (f == "f_min" || f == "f_max") {
        if (args.size() == 2 && args[0].is_num() && args[1].is_num()) {
          const Interval& a = args[0].num;
          const Interval& b = args[1].num;
          if (f == "f_min") {
            return AbstractValue::number(
                Interval::range(std::min(a.lo, b.lo), std::min(a.hi, b.hi)));
          }
          return AbstractValue::number(
              Interval::range(std::max(a.lo, b.lo), std::max(a.hi, b.hi)));
        }
        return AbstractValue::any();
      }
      if (f == "f_inPath" || f == "f_member") {
        return AbstractValue::boolean(true, true);
      }
      // List constructors/accessors and unknown builtins: no numeric model.
      return AbstractValue::any();
    }
  }
  return AbstractValue::any();
}

// ---------------------------------------------------------------------------
// Rule abstraction
// ---------------------------------------------------------------------------

namespace {

/// Plain-variable name of a term, or "" when it is not a bare variable.
const std::string& var_name(const TermPtr& t) {
  static const std::string kEmpty;
  if (t && t->kind == Term::Kind::Var) return t->name;
  return kEmpty;
}

const std::vector<AbstractValue>* pred_abstraction(const PredicateMap& preds,
                                                   const std::string& name) {
  auto it = preds.find(name);
  return it == preds.end() ? nullptr : &it->second;
}

}  // namespace

RuleAbstraction abstract_rule(const Rule& rule, const PredicateMap& preds) {
  RuleAbstraction ra;

  // Pass 1: bind variables from positive body atoms.
  for (const auto& elem : rule.body) {
    const auto* ba = std::get_if<BodyAtom>(&elem);
    if (ba == nullptr || ba->negated) continue;
    const auto* abs = pred_abstraction(preds, ba->atom.predicate);
    for (std::size_t i = 0; i < ba->atom.args.size(); ++i) {
      AbstractValue pos =
          (abs != nullptr && i < abs->size()) ? (*abs)[i] : AbstractValue::any();
      const std::string& v = var_name(ba->atom.args[i]);
      if (!v.empty()) {
        auto [it, inserted] = ra.vars.emplace(v, pos);
        if (!inserted) it->second = it->second.meet(pos);
        if (it->second.is_bottom()) ra.unsat = true;
      } else if (ba->atom.args[i] &&
                 ba->atom.args[i]->kind == Term::Kind::Const) {
        // A constant argument that cannot appear in the predicate's column
        // makes the atom unmatchable.
        if (AbstractValue::of(ba->atom.args[i]->constant).meet(pos).is_bottom()) {
          ra.unsat = true;
        }
      }
    }
  }

  // Pass 2: iterate the comparison chain. `V = expr` binds V on first sight;
  // everything else is tested for satisfiability and used for refinement.
  // A few passes let bindings feed refinements that precede them in source
  // order (`C < 10, C = C1 + C2` and the reverse both converge).
  for (int pass = 0; pass < 3 && !ra.unsat; ++pass) {
    for (const auto& elem : rule.body) {
      const auto* cmp = std::get_if<Comparison>(&elem);
      if (cmp == nullptr) continue;
      const std::string& lv = var_name(cmp->lhs);
      const std::string& rv = var_name(cmp->rhs);
      if (cmp->op == CmpOp::Eq) {
        const bool l_unbound = !lv.empty() && ra.vars.find(lv) == ra.vars.end();
        const bool r_unbound = !rv.empty() && ra.vars.find(rv) == ra.vars.end();
        if (l_unbound && !r_unbound) {
          ra.vars[lv] = eval_term(*cmp->rhs, ra.vars);
          continue;
        }
        if (r_unbound && !l_unbound) {
          ra.vars[rv] = eval_term(*cmp->lhs, ra.vars);
          continue;
        }
        if (l_unbound && r_unbound) continue;  // ND0003 territory
      }
      const AbstractValue a = eval_term(*cmp->lhs, ra.vars);
      const AbstractValue b = eval_term(*cmp->rhs, ra.vars);
      if (!satisfiable(cmp->op, a, b)) {
        ra.unsat = true;
        ra.unsat_is_comparison = true;
        ra.unsat_loc = cmp->loc;
        ra.unsat_detail = cmp->to_string();
        break;
      }
      if (!lv.empty()) ra.vars[lv] = refine(cmp->op, a, b);
      if (!rv.empty()) ra.vars[rv] = refine(flip(cmp->op), b, a);
    }
  }

  // Pass 3: head argument abstractions.
  ra.head.reserve(rule.head.args.size());
  for (const auto& arg : rule.head.args) {
    if (ra.unsat) {
      ra.head.push_back(AbstractValue::bottom());
      continue;
    }
    if (arg.is_agg()) {
      auto it = ra.vars.find(arg.agg_var);
      const AbstractValue in =
          it == ra.vars.end() ? AbstractValue::any() : it->second;
      switch (*arg.agg) {
        case AggKind::Min:
        case AggKind::Max:
          ra.head.push_back(in);  // an aggregate picks one of the inputs
          break;
        case AggKind::Count:
          ra.head.push_back(
              AbstractValue::number(Interval::range(1.0, kInf)));
          break;
        case AggKind::Sum:
          ra.head.push_back(in.is_num()
                                ? AbstractValue::number(Interval::top())
                                : AbstractValue::any());
          break;
      }
      continue;
    }
    ra.head.push_back(eval_term(*arg.term, ra.vars));
  }
  return ra;
}

// ---------------------------------------------------------------------------
// Program fixpoint
// ---------------------------------------------------------------------------

namespace {

/// First-seen arity of every predicate (heads and bodies).
std::map<std::string, std::size_t> arities_of(const Program& program) {
  std::map<std::string, std::size_t> arity;
  auto note = [&](const std::string& pred, std::size_t n) {
    arity.emplace(pred, n);
  };
  for (const auto& rule : program.rules) {
    note(rule.head.predicate, rule.head.args.size());
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        note(ba->atom.predicate, ba->atom.args.size());
      }
    }
  }
  return arity;
}

}  // namespace

PredicateMap analyze_program(const Program& program, int widen_after) {
  PredicateMap preds;
  const auto arity = arities_of(program);
  for (const auto& [pred, n] : arity) {
    const bool external = program.materialization_of(pred) != nullptr;
    preds[pred].assign(n, external ? AbstractValue::any()
                                   : AbstractValue::bottom());
  }

  // Join counters per (predicate, position) drive widening.
  std::map<std::string, std::vector<int>> grow_count;
  for (const auto& [pred, n] : arity) grow_count[pred].assign(n, 0);

  constexpr int kMaxPasses = 64;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool changed = false;
    for (const auto& rule : program.rules) {
      const RuleAbstraction ra = abstract_rule(rule, preds);
      if (ra.unsat) continue;
      auto& target = preds[rule.head.predicate];
      auto& counts = grow_count[rule.head.predicate];
      for (std::size_t i = 0; i < target.size() && i < ra.head.size(); ++i) {
        AbstractValue next = target[i].join(ra.head[i]);
        if (next == target[i]) continue;
        if (++counts[i] > widen_after) next = target[i].widen(next);
        if (!(next == target[i])) {
          target[i] = next;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return preds;
}

}  // namespace fvn::ndlog::absint
