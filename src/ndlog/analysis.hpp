// Static analysis of NDlog programs: rule safety, the predicate dependency
// graph, and stratification (negation and aggregation must not occur inside a
// recursive cycle). The evaluator and the NDlog→logic translator both consume
// the Stratification result.
//
// Every check exists in two forms: a DiagnosticSink-based variant that
// collects *all* located findings (used by the lint engine, see lint.hpp),
// and a thin throwing wrapper that aborts on the first error with the
// historical AnalysisError API.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "ndlog/ast.hpp"
#include "ndlog/builtins.hpp"
#include "ndlog/diagnostics.hpp"

namespace fvn::ndlog {

/// Violation of a static well-formedness condition (unsafe rule,
/// unstratifiable program, arity mismatch, ...).
class AnalysisError : public std::runtime_error {
 public:
  explicit AnalysisError(const std::string& what) : std::runtime_error(what) {}
};

/// One edge of the predicate dependency graph: `head` depends on `body`.
struct DependencyEdge {
  std::string head;
  std::string body;
  bool negated = false;            // body atom appears under '!'
  bool through_aggregate = false;  // head computes an aggregate
  std::size_t rule_index = 0;      // index into Program::rules
};

/// Result of stratification: a stratum index per predicate, strata listed
/// low-to-high, and the rule indices evaluated in each stratum.
struct Stratification {
  std::map<std::string, int> stratum_of;
  int stratum_count = 0;
  /// rule index (into Program::rules) → stratum of its head predicate.
  std::vector<int> rule_stratum;
  /// For each stratum, the rule indices whose head lives there.
  std::vector<std::vector<std::size_t>> rules_by_stratum;
};

/// All predicates appearing in the program (heads and bodies).
std::set<std::string> predicates_of(const Program& program);

/// Predicates that never appear in any rule head: the program's inputs
/// (base/extensional relations such as `link`).
std::set<std::string> base_predicates(const Program& program);

/// Predicates appearing in at least one rule head (intensional relations).
std::set<std::string> derived_predicates(const Program& program);

/// The dependency edges of the program.
std::vector<DependencyEdge> dependency_edges(const Program& program);

/// Location-specifier variable of an atom, or "" when the location argument
/// is not a plain variable (or the atom carries no '@').
std::string location_var_of(const Atom& atom);

/// Distinct location-specifier variables over the body atoms of `rule`.
/// Shared by the runtime localizer (runtime/localize) and the ND0012
/// localizability lint pass: a body spanning more than two location
/// variables cannot be rewritten into link-restricted ship/join pairs.
std::set<std::string> body_location_vars(const Rule& rule);

/// Result of the link-restriction analysis (localizability of one rule).
struct LocalizationCheck {
  enum class Status : std::uint8_t {
    Local,              ///< body names at most one location — nothing to rewrite
    Rewritable,         ///< two locations, at least one feasible orientation
    TooManyLocations,   ///< body spans more than two location specifiers
    NotLinkRestricted,  ///< two locations but neither orientation ships atoms
                        ///< that positively carry the join-site variable
  };
  Status status = Status::Local;
  /// Engaged for Rewritable: the chosen join/ship orientation (the feasible
  /// one shipping fewer atoms, ties broken toward the first location).
  std::string join_site;
  std::string ship_site;
  /// Human-readable reason for the two failure statuses.
  std::string detail;

  bool localizable() const noexcept {
    return status == Status::Local || status == Status::Rewritable;
  }
};

/// Decide whether `rule` can be executed distributedly: local as-is, or
/// rewritable into link-restricted ship/join pairs (the §2.2 localization
/// rewrite). Shared by runtime::localize (which throws on failure at
/// rewrite time) and the ND0013 lint pass (which reports it statically).
LocalizationCheck check_localizable(const Rule& rule);

// ---------------------------------------------------------------------------
// Sink-based checks (collect every finding; never throw).
// ---------------------------------------------------------------------------

/// Arity consistency (code ND0002): each predicate used with one arity.
void check_arities(const Program& program, DiagnosticSink& sink);

/// Rule safety: every head variable bound by a positive body atom or a chain
/// of `=` bindings (ND0003); every variable of a negated atom or comparison
/// bound (ND0003); all function names known built-ins (ND0004).
void check_safety(const Program& program, const BuiltinRegistry& builtins,
                  DiagnosticSink& sink);

/// Stratify the program, reporting every negation/aggregation edge inside a
/// recursive component as ND0005. Returns nullopt iff any ND0005 was
/// emitted.
std::optional<Stratification> stratify(const Program& program, DiagnosticSink& sink);

// ---------------------------------------------------------------------------
// Throwing wrappers (historical API: abort on the first error).
// ---------------------------------------------------------------------------

/// Check rule safety; throws AnalysisError (with source position when the
/// program was parsed from text) naming the offending rule and variable.
void check_safety(const Program& program, const BuiltinRegistry& builtins);

/// Check arity consistency. Throws AnalysisError on conflict.
void check_arities(const Program& program);

/// Stratify the program. Throws AnalysisError if a negation or aggregation
/// edge occurs within a recursive component.
Stratification stratify(const Program& program);

/// Convenience: run all checks (arities, safety, stratification).
Stratification analyze(const Program& program,
                       const BuiltinRegistry& builtins = BuiltinRegistry::standard());

}  // namespace fvn::ndlog
