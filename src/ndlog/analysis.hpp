// Static analysis of NDlog programs: rule safety, the predicate dependency
// graph, and stratification (negation and aggregation must not occur inside a
// recursive cycle). The evaluator and the NDlog→logic translator both consume
// the Stratification result.
#pragma once

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "ndlog/ast.hpp"
#include "ndlog/builtins.hpp"

namespace fvn::ndlog {

/// Violation of a static well-formedness condition (unsafe rule,
/// unstratifiable program, arity mismatch, ...).
class AnalysisError : public std::runtime_error {
 public:
  explicit AnalysisError(const std::string& what) : std::runtime_error(what) {}
};

/// One edge of the predicate dependency graph: `head` depends on `body`.
struct DependencyEdge {
  std::string head;
  std::string body;
  bool negated = false;         // body atom appears under '!'
  bool through_aggregate = false;  // head computes an aggregate
};

/// Result of stratification: a stratum index per predicate, strata listed
/// low-to-high, and the rule indices evaluated in each stratum.
struct Stratification {
  std::map<std::string, int> stratum_of;
  int stratum_count = 0;
  /// rule index (into Program::rules) → stratum of its head predicate.
  std::vector<int> rule_stratum;
  /// For each stratum, the rule indices whose head lives there.
  std::vector<std::vector<std::size_t>> rules_by_stratum;
};

/// All predicates appearing in the program (heads and bodies).
std::set<std::string> predicates_of(const Program& program);

/// Predicates that never appear in any rule head: the program's inputs
/// (base/extensional relations such as `link`).
std::set<std::string> base_predicates(const Program& program);

/// Predicates appearing in at least one rule head (intensional relations).
std::set<std::string> derived_predicates(const Program& program);

/// The dependency edges of the program.
std::vector<DependencyEdge> dependency_edges(const Program& program);

/// Check rule safety: every head variable is bound by a positive body atom or
/// by a chain of `=` bindings over bound terms; every variable of a negated
/// atom or comparison is bound. Throws AnalysisError naming the offending
/// rule and variable.
void check_safety(const Program& program, const BuiltinRegistry& builtins);

/// Check arity consistency: each predicate is used with a single arity
/// everywhere. Throws AnalysisError on conflict.
void check_arities(const Program& program);

/// Stratify the program. Throws AnalysisError if a negation or aggregation
/// edge occurs within a recursive component.
Stratification stratify(const Program& program);

/// Convenience: run all checks (arities, safety, stratification).
Stratification analyze(const Program& program,
                       const BuiltinRegistry& builtins = BuiltinRegistry::standard());

}  // namespace fvn::ndlog
