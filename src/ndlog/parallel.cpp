// Implementation of the parallel-safety analyzer (see parallel.hpp and
// DESIGN.md §16). Structure:
//
//   1. core gate      — stratify + semantic hazards decide `certified`
//   2. grouping       — per stratum, union-find rules over shared
//                       same-stratum derived predicates
//   3. key search     — per group, backtracking over candidate shard columns
//                       (non-location attributes first, location last);
//                       shipped atoms and shipped heads are exempt because
//                       the message layer serializes them at round barriers
//   4. aggregates     — ND0024 when an aggregate reads a predicate sharded
//                       by an attribute absent from its group-by
//   5. rendering      — human / JSON / DOT
#include "ndlog/parallel.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <sstream>

#include "ndlog/analysis.hpp"
#include "ndlog/catalog.hpp"
#include "ndlog/semantic.hpp"

namespace fvn::ndlog::parallel {
namespace {

/// Variable name at `col` of a body atom, or "" when out of range / not a
/// plain variable.
std::string var_at(const Atom& atom, int col) {
  if (col < 0 || static_cast<std::size_t>(col) >= atom.args.size()) return {};
  const TermPtr& t = atom.args[static_cast<std::size_t>(col)];
  if (!t || t->kind != Term::Kind::Var) return {};
  return t->name;
}

/// Variable name at `col` of a head atom ("" for aggregates / non-vars).
std::string head_var_at(const HeadAtom& head, int col) {
  if (col < 0 || static_cast<std::size_t>(col) >= head.args.size()) return {};
  const HeadArg& a = head.args[static_cast<std::size_t>(col)];
  if (a.is_agg() || !a.term || a.term->kind != Term::Kind::Var) return {};
  return a.term->name;
}

/// Location variable of the head ("" when absent or not a plain variable).
std::string head_location_var(const HeadAtom& head) {
  return head_var_at(head, head.loc_index);
}

/// Variables bound by the head's plain (non-aggregate) arguments — the
/// aggregate's group-by set when the head aggregates.
std::set<std::string> group_by_vars(const HeadAtom& head) {
  std::set<std::string> vars;
  for (const HeadArg& a : head.args) {
    if (a.is_agg() || !a.term) continue;
    std::vector<std::string> names;
    a.term->collect_vars(names);
    vars.insert(names.begin(), names.end());
  }
  return vars;
}

/// Per-rule facts the key search needs, computed once.
struct RuleSite {
  std::vector<const BodyAtom*> positives;
  std::string eval_site;  ///< location var where the (localized) join runs
  std::string ship_site;  ///< engaged for two-site rules
  bool localizable = true;
  bool head_local = true;  ///< head installs at eval_site (not shipped)
};

RuleSite rule_site(const Rule& rule) {
  RuleSite site;
  for (const BodyElem& elem : rule.body) {
    if (const auto* ba = std::get_if<BodyAtom>(&elem); ba && !ba->negated) {
      site.positives.push_back(ba);
    }
  }
  const LocalizationCheck check = check_localizable(rule);
  site.localizable = check.localizable();
  if (check.status == LocalizationCheck::Status::Rewritable) {
    site.eval_site = check.join_site;
    site.ship_site = check.ship_site;
  } else {
    const std::set<std::string> sites = body_location_vars(rule);
    site.eval_site =
        sites.empty() ? head_location_var(rule.head) : *sites.begin();
  }
  const std::string head_loc = head_location_var(rule.head);
  site.head_local = head_loc.empty() || head_loc == site.eval_site;
  return site;
}

/// One alignment failure, remembered for the ND0023 diagnostic.
struct Misalignment {
  std::size_t rule_index = 0;
  const Atom* atom = nullptr;  ///< offending body atom (null: the head)
  std::string predicate;
  int column = -1;  ///< 0-based candidate column that failed
  std::string expected;
  std::string found;
};

/// Check one rule under a (possibly partial) key assignment: every non-exempt
/// occurrence of an assigned predicate must carry the same variable at its
/// key column. Shipped atoms under a location key and shipped heads are
/// exempt — the message layer delivers them at a round barrier.
std::optional<Misalignment> check_rule(const Rule& rule, std::size_t rule_index,
                                       const RuleSite& site,
                                       const Catalog& catalog,
                                       const std::map<std::string, int>& keys) {
  std::string shard_var;
  const Atom* first_atom = nullptr;
  int first_col = -1;
  std::string first_pred;
  auto constrain = [&](const Atom* atom, const std::string& pred, int col,
                       const std::string& var) -> std::optional<Misalignment> {
    if (shard_var.empty()) {
      shard_var = var;
      first_atom = atom;
      first_col = col;
      first_pred = pred;
      return std::nullopt;
    }
    if (shard_var == var) return std::nullopt;
    return Misalignment{rule_index, atom ? atom : first_atom,
                        atom ? pred : first_pred, atom ? col : first_col,
                        shard_var, var};
  };

  auto head_it = keys.find(rule.head.predicate);
  if (head_it != keys.end() && site.head_local) {
    const std::string v = head_var_at(rule.head, head_it->second);
    if (v.empty()) {
      return Misalignment{rule_index, nullptr, rule.head.predicate,
                          head_it->second, "<variable>", "<non-variable>"};
    }
    if (auto m = constrain(nullptr, rule.head.predicate, head_it->second, v)) {
      return m;
    }
  }
  for (const BodyAtom* ba : site.positives) {
    auto it = keys.find(ba->atom.predicate);
    if (it == keys.end()) continue;
    const bool shipped = !site.ship_site.empty() &&
                         location_var_of(ba->atom) == site.ship_site;
    const int loc =
        catalog.contains(ba->atom.predicate)
            ? static_cast<int>(catalog.info(ba->atom.predicate).loc_index)
            : 0;
    if (shipped && it->second == loc) continue;  // re-keyed by the rewrite
    const std::string v = var_at(ba->atom, it->second);
    if (v.empty()) {
      return Misalignment{rule_index, &ba->atom, ba->atom.predicate,
                          it->second, shard_var.empty() ? "<variable>" : shard_var,
                          "<non-variable>"};
    }
    if (auto m = constrain(&ba->atom, ba->atom.predicate, it->second, v)) {
      return m;
    }
  }
  return std::nullopt;
}

/// Candidate shard columns for `pred` over its occurrences in `rules`:
/// every occurrence must carry a plain variable there, and materialized
/// predicates only admit columns inside their P2 key set (cross-shard
/// installs must never share an overwrite key). Ordered non-location
/// attributes first, the location column last.
std::vector<int> candidate_columns(const std::string& pred,
                                   const Program& program,
                                   const std::vector<std::size_t>& rules,
                                   const Catalog& catalog) {
  if (!catalog.contains(pred)) return {};
  const PredicateInfo& info = catalog.info(pred);
  const Materialize* mat = program.materialization_of(pred);
  std::vector<int> cols;
  auto usable = [&](int col) {
    if (mat && !mat->key_fields.empty()) {
      const auto field = static_cast<std::size_t>(col) + 1;
      if (std::find(mat->key_fields.begin(), mat->key_fields.end(), field) ==
          mat->key_fields.end()) {
        return false;
      }
    }
    for (std::size_t ri : rules) {
      const Rule& rule = program.rules[ri];
      if (rule.head.predicate == pred && head_var_at(rule.head, col).empty()) {
        return false;
      }
      for (const BodyElem& elem : rule.body) {
        const auto* ba = std::get_if<BodyAtom>(&elem);
        if (!ba || ba->negated || ba->atom.predicate != pred) continue;
        if (var_at(ba->atom, col).empty()) return false;
      }
    }
    return true;
  };
  const int loc = static_cast<int>(info.loc_index);
  for (int col = 0; col < static_cast<int>(info.arity); ++col) {
    if (col != loc && usable(col)) cols.push_back(col);
  }
  if (loc >= 0 && loc < static_cast<int>(info.arity) && usable(loc)) {
    cols.push_back(loc);
  }
  return cols;
}

/// Backtracking search for a consistent key assignment over the group's
/// predicates. Returns the assignment on success; `first_failure` remembers
/// the earliest misalignment for ND0023.
bool search_keys(const Program& program, const Catalog& catalog,
                 const std::vector<std::string>& preds,
                 const std::vector<std::vector<int>>& candidates,
                 const std::vector<std::size_t>& rules,
                 const std::map<std::size_t, RuleSite>& sites, std::size_t i,
                 std::map<std::string, int>& assignment,
                 std::optional<Misalignment>& first_failure) {
  if (i == preds.size()) return true;
  for (int col : candidates[i]) {
    assignment[preds[i]] = col;
    bool ok = true;
    for (std::size_t ri : rules) {
      auto m = check_rule(program.rules[ri], ri, sites.at(ri), catalog,
                          assignment);
      if (m) {
        if (!first_failure) first_failure = m;
        ok = false;
        break;
      }
    }
    if (ok && search_keys(program, catalog, preds, candidates, rules, sites,
                          i + 1, assignment, first_failure)) {
      return true;
    }
    assignment.erase(preds[i]);
  }
  return false;
}

std::string key_to_string(const std::string& pred, const ShardKey& key) {
  std::ostringstream os;
  os << pred << "=col" << (key.column + 1) << (key.location ? "(@)" : "");
  return os.str();
}

}  // namespace

std::string_view to_string(GroupMode mode) noexcept {
  switch (mode) {
    case GroupMode::ShardedByAttribute: return "attribute";
    case GroupMode::ShardedByLocation: return "location";
    case GroupMode::Serial: return "serial";
  }
  return "serial";
}

Report analyze(const Program& program, DiagnosticSink& sink) {
  Report report;
  DiagnosticSink scratch;

  check_arities(program, scratch);
  if (scratch.has_errors()) {
    report.fallback_reason = "core checks failed (" +
                             scratch.first_error()->code + "): serial fallback";
    return report;
  }
  const auto strat = stratify(program, scratch);
  if (!strat) {
    report.fallback_reason =
        "not stratifiable (ND0005): rounds need stratum barriers";
    return report;
  }
  report.stratum_count = strat->stratum_count;
  report.certified = true;

  const Catalog catalog = Catalog::from_program(program);
  const std::set<std::string> derived = derived_predicates(program);
  report.replicated = base_predicates(program);

  // Semantic hazards: predicted divergence and order-sensitive negation
  // revoke the certificate (the parallel schedule is a different delivery
  // order, so an order-dependent fixpoint may drift from the serial one).
  // ND0017 key-projection races do not revoke it: every install is
  // serialized at round barriers in a deterministic shard-major order, and
  // the differential suite pins the fixpoints (DESIGN.md §16.4).
  DiagnosticSink sem_sink;
  const SemanticReport sem = analyze_semantics(program, sem_sink);
  if (!sem.divergent_predicates.empty()) {
    std::ostringstream os;
    os << "predicted divergence (ND0015):";
    for (const auto& p : sem.divergent_predicates) os << " " << p;
    report.certified = false;
    report.fallback_reason = os.str();
  }
  for (const Diagnostic& d : sem_sink.diagnostics()) {
    if (d.code == "ND0016" && report.certified) {
      report.certified = false;
      report.fallback_reason =
          "order-sensitive negation (ND0016) over " + d.predicate;
    }
  }

  // Negation barriers (ND0025). Stratification already guarantees negated
  // predicates live in strictly earlier strata; a negation over a *base*
  // predicate only reads externally injected state, frozen during a round.
  // A negation over a derived predicate would need the incremental runtime
  // to phase strata, which it does not — certificate revoked.
  for (std::size_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& rule = program.rules[ri];
    for (const BodyElem& elem : rule.body) {
      const auto* ba = std::get_if<BodyAtom>(&elem);
      if (!ba || !ba->negated) continue;
      ++report.negation_barriers;
      const bool over_derived = derived.count(ba->atom.predicate) != 0;
      sink.note("ND0025",
                "negation !" + ba->atom.predicate +
                    " is evaluated only at stratum barriers" +
                    (over_derived ? "; derived operand revokes the certificate"
                                  : " (base relation: frozen during a round)"),
                ba->atom.span())
          .in_rule(static_cast<int>(ri), rule.head.predicate);
      if (over_derived && report.certified) {
        report.certified = false;
        report.fallback_reason = "negation over derived predicate '" +
                                 ba->atom.predicate + "' (rule " +
                                 rule.display_name() + ")";
      }
    }
  }

  // Group rules per stratum: connected components over shared same-stratum
  // derived predicates.
  for (int s = 0; s < strat->stratum_count; ++s) {
    if (static_cast<std::size_t>(s) >= strat->rules_by_stratum.size()) break;
    std::vector<std::size_t> rules;
    for (std::size_t ri : strat->rules_by_stratum[static_cast<std::size_t>(s)]) {
      if (!program.rules[ri].is_fact()) rules.push_back(ri);
    }
    if (rules.empty()) continue;
    std::sort(rules.begin(), rules.end());

    // In-stratum derived predicates each rule touches.
    auto in_stratum = [&](const std::string& pred) {
      auto it = strat->stratum_of.find(pred);
      return derived.count(pred) != 0 && it != strat->stratum_of.end() &&
             it->second == s;
    };
    std::map<std::string, std::size_t> pred_slot;  // pred -> component id
    std::vector<std::size_t> parent;
    std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    std::vector<std::vector<std::string>> rule_preds(rules.size());
    for (std::size_t k = 0; k < rules.size(); ++k) {
      const Rule& rule = program.rules[rules[k]];
      std::set<std::string> touched;
      if (in_stratum(rule.head.predicate)) touched.insert(rule.head.predicate);
      for (const BodyElem& elem : rule.body) {
        const auto* ba = std::get_if<BodyAtom>(&elem);
        if (ba && !ba->negated && in_stratum(ba->atom.predicate)) {
          touched.insert(ba->atom.predicate);
        }
      }
      rule_preds[k].assign(touched.begin(), touched.end());
      for (const std::string& p : touched) {
        if (!pred_slot.count(p)) {
          pred_slot[p] = parent.size();
          parent.push_back(parent.size());
        }
      }
      for (std::size_t j = 1; j < rule_preds[k].size(); ++j) {
        parent[find(pred_slot[rule_preds[k][0]])] =
            find(pred_slot[rule_preds[k][j]]);
      }
    }
    std::map<std::size_t, RuleGroup> components;  // root -> group
    for (std::size_t k = 0; k < rules.size(); ++k) {
      // Rules with no in-stratum predicate cannot occur (the head is always
      // in-stratum); guard anyway for synthetic programs.
      const std::size_t root =
          rule_preds[k].empty() ? rules.size() + k
                                : find(pred_slot[rule_preds[k][0]]);
      RuleGroup& group = components[root];
      group.stratum = s;
      group.rules.push_back(rules[k]);
      group.predicates.insert(rule_preds[k].begin(), rule_preds[k].end());
    }
    std::vector<RuleGroup> ordered;
    ordered.reserve(components.size());
    for (auto& [root, group] : components) ordered.push_back(std::move(group));
    std::sort(ordered.begin(), ordered.end(),
              [](const RuleGroup& a, const RuleGroup& b) {
                return a.rules.front() < b.rules.front();
              });
    for (RuleGroup& group : ordered) report.groups.push_back(std::move(group));
  }

  // Key search per group.
  for (RuleGroup& group : report.groups) {
    std::map<std::size_t, RuleSite> sites;
    bool localizable = true;
    for (std::size_t ri : group.rules) {
      sites[ri] = rule_site(program.rules[ri]);
      if (!sites[ri].localizable) localizable = false;
    }
    if (!localizable) {
      group.mode = GroupMode::Serial;
      group.detail = "contains a non-localizable rule";
      continue;
    }
    const std::vector<std::string> preds(group.predicates.begin(),
                                         group.predicates.end());
    std::vector<std::vector<int>> candidates;
    candidates.reserve(preds.size());
    bool feasible = true;
    for (const std::string& p : preds) {
      candidates.push_back(candidate_columns(p, program, group.rules, catalog));
      if (candidates.back().empty()) feasible = false;
    }
    std::map<std::string, int> assignment;
    std::optional<Misalignment> failure;
    const bool found =
        feasible && search_keys(program, catalog, preds, candidates,
                                group.rules, sites, 0, assignment, failure);
    if (!found) {
      group.mode = GroupMode::Serial;
      group.detail = "no consistent shard key; group runs on shard 0";
    } else {
      bool all_location = true;
      std::vector<std::string> parts;
      for (const std::string& p : preds) {
        ShardKey key;
        key.column = assignment[p];
        key.location = catalog.contains(p) &&
                       key.column == static_cast<int>(catalog.info(p).loc_index);
        if (!key.location) all_location = false;
        report.keys[p] = key;
        parts.push_back(key_to_string(p, key));
      }
      group.mode = all_location ? GroupMode::ShardedByLocation
                                : GroupMode::ShardedByAttribute;
      std::ostringstream os;
      for (std::size_t i = 0; i < parts.size(); ++i) {
        os << (i ? ", " : "") << parts[i];
      }
      group.detail = os.str();
    }
    // ND0023: the search stepped past (or exhausted) attribute candidates.
    // Name the first misaligned atom with a reorder hint.
    if (failure && (group.mode != GroupMode::ShardedByAttribute)) {
      const Rule& rule = program.rules[failure->rule_index];
      std::ostringstream msg;
      msg << "key-misaligned join blocks attribute sharding: ";
      if (failure->atom) {
        msg << "atom " << failure->atom->to_string() << " in rule "
            << rule.display_name();
      } else {
        msg << "the head of rule " << rule.display_name();
      }
      msg << " carries " << failure->found << " at candidate shard column "
          << (failure->column + 1) << " of " << failure->predicate
          << " where the group's shard variable is " << failure->expected
          << "; falling back to "
          << (group.mode == GroupMode::Serial ? "serial evaluation"
                                              : "location sharding");
      SourceSpan span = failure->atom ? failure->atom->span() : rule.span();
      sink.warning("ND0023", msg.str(), span)
          .in_rule(static_cast<int>(failure->rule_index), rule.head.predicate)
          .hint = "re-key " + failure->predicate +
                  " on a join attribute shared with the rest of the group, "
                  "or reorder the join so the probe stays shard-local";
    }
  }

  // ND0024: aggregates whose input is sharded by an attribute absent from
  // the group-by need a cross-shard merge; the runtime evaluates them at the
  // serial barrier between rounds.
  for (std::size_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& rule = program.rules[ri];
    if (rule.is_fact() || !rule.head.has_aggregate()) continue;
    const std::set<std::string> keep = group_by_vars(rule.head);
    for (const BodyElem& elem : rule.body) {
      const auto* ba = std::get_if<BodyAtom>(&elem);
      if (!ba || ba->negated) continue;
      auto it = report.keys.find(ba->atom.predicate);
      if (it == report.keys.end() || it->second.location) continue;
      const std::string v = var_at(ba->atom, it->second.column);
      if (!v.empty() && keep.count(v)) continue;
      std::ostringstream msg;
      msg << "aggregate over " << ba->atom.predicate << " (sharded by column "
          << (it->second.column + 1)
          << ") groups across shards; the rule is evaluated at the serial "
             "barrier";
      if (sem.order_sensitive_predicates.count(rule.head.predicate)) {
        msg << " (input is order-sensitive per the CALM analysis)";
      }
      sink.warning("ND0024", msg.str(), ba->atom.span())
          .in_rule(static_cast<int>(ri), rule.head.predicate);
      if (std::find(report.serial_rules.begin(), report.serial_rules.end(),
                    ri) == report.serial_rules.end()) {
        report.serial_rules.push_back(ri);
      }
      break;  // one ND0024 per rule
    }
  }
  std::sort(report.serial_rules.begin(), report.serial_rules.end());

  if (report.certified) {
    std::ostringstream os;
    os << "parallel evaluation certified: " << report.stratum_count
       << (report.stratum_count == 1 ? " stratum, " : " strata, ")
       << report.groups.size()
       << (report.groups.size() == 1 ? " group" : " groups");
    if (!report.keys.empty()) {
      os << "; shard keys:";
      for (const auto& [pred, key] : report.keys) {
        os << " " << key_to_string(pred, key);
      }
    }
    sink.note("ND0022", os.str());
  }
  return report;
}

std::string to_human(const Report& report) {
  std::ostringstream os;
  os << "parallel: "
     << (report.certified ? "certified" : "not certified — serial fallback")
     << "\n";
  if (!report.certified) {
    os << "  reason: " << report.fallback_reason << "\n";
  }
  for (const RuleGroup& group : report.groups) {
    os << "  stratum " << group.stratum << " [" << to_string(group.mode)
       << "]";
    os << " rules";
    for (std::size_t ri : group.rules) os << " #" << ri;
    if (!group.detail.empty()) os << ": " << group.detail;
    os << "\n";
  }
  if (!report.replicated.empty()) {
    os << "  replicated:";
    for (const auto& p : report.replicated) os << " " << p;
    os << "\n";
  }
  if (!report.serial_rules.empty()) {
    os << "  serial barrier rules:";
    for (std::size_t ri : report.serial_rules) os << " #" << ri;
    os << "\n";
  }
  if (report.negation_barriers != 0) {
    os << "  negation barriers: " << report.negation_barriers << "\n";
  }
  return os.str();
}

std::string to_json(const Report& report) {
  std::ostringstream os;
  os << "{\"certified\":" << (report.certified ? "true" : "false")
     << ",\"fallback_reason\":\"" << json_escape(report.fallback_reason)
     << "\",\"strata\":" << report.stratum_count << ",\"groups\":[";
  for (std::size_t i = 0; i < report.groups.size(); ++i) {
    const RuleGroup& group = report.groups[i];
    os << (i ? "," : "") << "{\"stratum\":" << group.stratum << ",\"mode\":\""
       << to_string(group.mode) << "\",\"rules\":[";
    for (std::size_t j = 0; j < group.rules.size(); ++j) {
      os << (j ? "," : "") << group.rules[j];
    }
    os << "],\"predicates\":[";
    std::size_t j = 0;
    for (const auto& p : group.predicates) {
      os << (j++ ? "," : "") << "\"" << json_escape(p) << "\"";
    }
    os << "],\"detail\":\"" << json_escape(group.detail) << "\"}";
  }
  os << "],\"keys\":{";
  std::size_t i = 0;
  for (const auto& [pred, key] : report.keys) {
    os << (i++ ? "," : "") << "\"" << json_escape(pred)
       << "\":{\"column\":" << (key.column + 1)
       << ",\"location\":" << (key.location ? "true" : "false") << "}";
  }
  os << "},\"replicated\":[";
  i = 0;
  for (const auto& p : report.replicated) {
    os << (i++ ? "," : "") << "\"" << json_escape(p) << "\"";
  }
  os << "],\"serial_rules\":[";
  for (std::size_t j = 0; j < report.serial_rules.size(); ++j) {
    os << (j ? "," : "") << report.serial_rules[j];
  }
  os << "],\"negation_barriers\":" << report.negation_barriers << "}";
  return os.str();
}

std::string to_dot(const Program& program, const Report& report) {
  std::ostringstream os;
  os << "digraph parallel {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::size_t i = 0; i < report.groups.size(); ++i) {
    const RuleGroup& group = report.groups[i];
    os << "  subgraph cluster_" << i << " {\n    label=\"stratum "
       << group.stratum << " / " << to_string(group.mode) << "\";\n";
    for (const auto& p : group.predicates) {
      os << "    \"" << p << "\"";
      auto it = report.keys.find(p);
      if (it != report.keys.end()) {
        os << " [label=\"" << p << "\\nkey col " << (it->second.column + 1)
           << (it->second.location ? " (@)" : "") << "\"]";
      }
      os << ";\n";
    }
    os << "  }\n";
  }
  for (const auto& p : report.replicated) {
    os << "  \"" << p << "\" [style=dashed];\n";
  }
  for (const DependencyEdge& edge : dependency_edges(program)) {
    os << "  \"" << edge.head << "\" -> \"" << edge.body << "\"";
    if (edge.negated) os << " [style=dashed]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace fvn::ndlog::parallel
