// Derivation provenance: the proof-theoretic semantics of NDlog made
// concrete. Every derived tuple carries a derivation tree (which rule fired,
// from which premise tuples, under which side conditions) — the operational
// counterpart of the inductive definitions produced by arc 4. Footnote 1 of
// the paper ("the equivalence of NDlog's proof-theoretic and operational
// semantics guarantees that FVN is sound") is checkable: every derivation
// step must satisfy the corresponding clause of the translated theory
// (see translate/ndlog_to_logic.hpp and the provenance tests).
#pragma once

#include <map>
#include <memory>

#include "ndlog/eval.hpp"

namespace fvn::ndlog {

struct Derivation;
using DerivationPtr = std::shared_ptr<const Derivation>;

/// One node of a derivation tree.
struct Derivation {
  Tuple tuple;
  /// Name of the rule that produced the tuple; empty for base facts.
  std::string rule;
  /// Premise derivations (the rule's positive body atoms, instantiated).
  std::vector<DerivationPtr> premises;
  /// Satisfied side conditions (comparisons / negated atoms), rendered.
  std::vector<std::string> side_conditions;

  bool is_base_fact() const noexcept { return rule.empty(); }
  std::size_t height() const;
  std::size_t size() const;  // total nodes
  /// Indented proof-tree rendering.
  std::string to_string(std::size_t indent = 0) const;
};

/// Result of a provenance-recording evaluation: the database plus one
/// (first-found) derivation per derived tuple.
struct ProvenanceResult {
  Database database;
  std::map<Tuple, DerivationPtr> derivations;
  EvalStats stats;

  /// Derivation of `tuple` (nullptr if not derived).
  DerivationPtr derivation_of(const Tuple& tuple) const;
};

/// Evaluate with provenance recording. Semantics identical to
/// Evaluator::run (stratified semi-naive); aggregate-rule outputs record the
/// contributing solution for the winning value as their premise set.
ProvenanceResult eval_with_provenance(
    const Program& program, const std::vector<Tuple>& base_facts,
    const BuiltinRegistry& builtins = BuiltinRegistry::standard(),
    const EvalOptions& options = {});

}  // namespace fvn::ndlog
