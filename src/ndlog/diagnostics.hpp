// Located diagnostics for NDlog static analysis. A Diagnostic carries a
// stable code ("ND0002"), a severity, a message, a 1-based source span, and
// an optional fix-it hint; a DiagnosticSink collects *all* findings instead
// of aborting at the first one (the throwing analyze()/check_* wrappers sit
// on top of it). Renderers produce the gcc-style `file:line:col:` human
// format and a machine-readable JSON document for `fvn_cli lint --json`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fvn::ndlog {

enum class Severity : std::uint8_t { Note, Warning, Error };

std::string_view to_string(Severity severity) noexcept;

/// 1-based source position; line 0 means "unknown" (rules built
/// programmatically, e.g. by the localizer, carry no position).
struct SourceLoc {
  int line = 0;
  int column = 0;

  bool valid() const noexcept { return line > 0; }
};

/// Half-open span [begin, end); `end` may be invalid when only a point
/// position is known.
struct SourceSpan {
  SourceLoc begin;
  SourceLoc end;

  bool valid() const noexcept { return begin.valid(); }
  static SourceSpan at(SourceLoc loc) noexcept { return SourceSpan{loc, {}}; }
  /// Span covering `length` characters starting at `loc`.
  static SourceSpan token(SourceLoc loc, std::size_t length) noexcept {
    return SourceSpan{loc, SourceLoc{loc.line, loc.column + static_cast<int>(length)}};
  }
};

/// One lint/analysis finding.
struct Diagnostic {
  Severity severity = Severity::Error;
  std::string code;     // stable identifier, e.g. "ND0003"
  std::string message;
  SourceSpan span;
  std::string hint;     // optional fix-it hint; empty = none
  /// Originating rule index into Program::rules; -1 when the finding is not
  /// anchored to a rule (parse errors, materialize declarations).
  int rule_index = -1;
  /// Predicate the finding is about (head predicate for rule-level findings,
  /// the declared/read predicate otherwise); empty when not applicable.
  std::string predicate;

  /// Attach rule/predicate provenance; returns *this for chaining.
  Diagnostic& in_rule(int index, std::string pred) {
    rule_index = index;
    predicate = std::move(pred);
    return *this;
  }

  /// "3:7: error: ND0003: message" (location omitted when unknown).
  std::string to_string() const;
};

/// Collects every diagnostic of an analysis run. Passes report through the
/// sink and keep going, so one run surfaces all findings at once.
class DiagnosticSink {
 public:
  /// Append a diagnostic; returns a reference so callers can attach a hint.
  Diagnostic& report(Diagnostic d);
  Diagnostic& error(std::string code, std::string message, SourceSpan span = {});
  Diagnostic& warning(std::string code, std::string message, SourceSpan span = {});
  Diagnostic& note(std::string code, std::string message, SourceSpan span = {});

  const std::vector<Diagnostic>& diagnostics() const noexcept { return diags_; }
  bool empty() const noexcept { return diags_.empty(); }
  std::size_t size() const noexcept { return diags_.size(); }
  std::size_t count(Severity severity) const noexcept;
  bool has_errors() const noexcept { return count(Severity::Error) != 0; }
  /// First error-severity diagnostic in report order, or nullptr.
  const Diagnostic* first_error() const noexcept;
  /// Stable-sort by (line, column); diagnostics without a location sort last.
  void sort_by_location();
  void clear() { diags_.clear(); }

 private:
  std::vector<Diagnostic> diags_;
};

/// Render in the `file:line:col: severity: code: message` format, one line
/// per diagnostic (plus an indented `hint:` line when present). The file
/// prefix is omitted when `filename` is empty.
std::string render_human(const std::vector<Diagnostic>& diags,
                         std::string_view filename = {});

/// Escape a string for embedding in a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Render a JSON array of diagnostic objects:
///   [{"severity":"error","code":"ND0003","message":"...","line":3,
///     "column":7,"end_line":3,"end_column":11,"rule_index":2,
///     "predicate":"path","hint":"..."}, ...]
/// line/column are 0 when unknown; rule_index is -1 and predicate "" when the
/// finding is not anchored to a rule; "hint" is present only when non-empty.
std::string render_json(const std::vector<Diagnostic>& diags);

}  // namespace fvn::ndlog
