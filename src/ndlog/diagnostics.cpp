#include "ndlog/diagnostics.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <sstream>

namespace fvn::ndlog {

std::string_view to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "error";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  if (span.valid()) os << span.begin.line << ":" << span.begin.column << ": ";
  os << ndlog::to_string(severity) << ": " << code << ": " << message;
  return os.str();
}

Diagnostic& DiagnosticSink::report(Diagnostic d) {
  diags_.push_back(std::move(d));
  return diags_.back();
}

Diagnostic& DiagnosticSink::error(std::string code, std::string message, SourceSpan span) {
  return report(Diagnostic{Severity::Error, std::move(code), std::move(message), span, {}});
}

Diagnostic& DiagnosticSink::warning(std::string code, std::string message, SourceSpan span) {
  return report(Diagnostic{Severity::Warning, std::move(code), std::move(message), span, {}});
}

Diagnostic& DiagnosticSink::note(std::string code, std::string message, SourceSpan span) {
  return report(Diagnostic{Severity::Note, std::move(code), std::move(message), span, {}});
}

std::size_t DiagnosticSink::count(Severity severity) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [&](const Diagnostic& d) { return d.severity == severity; }));
}

const Diagnostic* DiagnosticSink::first_error() const noexcept {
  for (const auto& d : diags_) {
    if (d.severity == Severity::Error) return &d;
  }
  return nullptr;
}

void DiagnosticSink::sort_by_location() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     // Unknown locations (line 0) sort after located ones.
                     const bool av = a.span.valid(), bv = b.span.valid();
                     if (av != bv) return av;
                     return std::make_pair(a.span.begin.line, a.span.begin.column) <
                            std::make_pair(b.span.begin.line, b.span.begin.column);
                   });
}

std::string render_human(const std::vector<Diagnostic>& diags, std::string_view filename) {
  std::ostringstream os;
  for (const auto& d : diags) {
    if (!filename.empty()) os << filename << ":";
    os << d.to_string() << "\n";
    if (!d.hint.empty()) os << "    hint: " << d.hint << "\n";
  }
  return os.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x", c);
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_json(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const auto& d = diags[i];
    if (i != 0) os << ",";
    os << "{\"severity\":\"" << to_string(d.severity) << "\""
       << ",\"code\":\"" << json_escape(d.code) << "\""
       << ",\"message\":\"" << json_escape(d.message) << "\""
       << ",\"line\":" << d.span.begin.line << ",\"column\":" << d.span.begin.column
       << ",\"end_line\":" << d.span.end.line << ",\"end_column\":" << d.span.end.column
       << ",\"rule_index\":" << d.rule_index
       << ",\"predicate\":\"" << json_escape(d.predicate) << "\"";
    if (!d.hint.empty()) os << ",\"hint\":\"" << json_escape(d.hint) << "\"";
    os << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace fvn::ndlog
