// Multi-pass NDlog diagnostics engine. On top of the core well-formedness
// checks (arity ND0002, safety ND0003/ND0004, stratification ND0005, see
// analysis.hpp) this runs lint passes for hazards the evaluator, translator
// and codegen have no defense against:
//
//   ND0006  unused predicate      derived but never read and not materialized
//   ND0007  underivable predicate read in a body but never derived/declared
//   ND0008  duplicate rule        rule subsumed by an identical earlier rule
//   ND0009  singleton variable    body variable used exactly once (typo risk)
//   ND0010  cartesian product     body atoms share no join variable
//   ND0011  aggregate over empty  guarded aggregate body: empty groups vanish
//   ND0012  non-localizable rule  body spans > 2 location specifiers (arc 7)
//   ND0013  not link-restricted   two-location body where neither orientation
//                                 ships atoms carrying the join site — the
//                                 runtime localizer would reject it at
//                                 execution time
//
// All passes report through a DiagnosticSink, so one run surfaces every
// finding with its source position. `fvn_cli lint` is the CLI surface.
//
// Codes ND0014–ND0018 (dead rules, divergence prediction, CALM
// order-sensitivity) belong to the semantic analyzer — see semantic.hpp and
// `fvn_cli analyze`. ND0019–ND0021 belong to the cost analyzer (cost.hpp,
// `analyze --cost`), ND0022–ND0025 to the parallel-safety analyzer
// (parallel.hpp, `analyze --parallel`). They share this catalog so
// `diagnostic_catalog()` describes every code the toolchain can emit.
#pragma once

#include <string_view>
#include <vector>

#include "ndlog/analysis.hpp"
#include "ndlog/builtins.hpp"
#include "ndlog/diagnostics.hpp"

namespace fvn::ndlog {

/// Catalogue entry for one diagnostic code (used by docs and `--codes`).
struct DiagnosticCodeInfo {
  std::string_view code;
  Severity severity;
  std::string_view summary;
};

/// Every code the engine can emit (ND0001 is the CLI's parse-error wrapper).
const std::vector<DiagnosticCodeInfo>& diagnostic_catalog();

struct LintOptions {
  bool style_passes = true;         // ND0006..ND0011
  bool localization_pass = true;    // ND0012 / ND0013
};

// Individual lint passes (each appends to the sink; never throws).
void lint_unused_predicates(const Program& program, DiagnosticSink& sink);       // ND0006
void lint_underivable_predicates(const Program& program, DiagnosticSink& sink);  // ND0007
void lint_duplicate_rules(const Program& program, DiagnosticSink& sink);         // ND0008
void lint_singleton_variables(const Program& program, DiagnosticSink& sink);     // ND0009
void lint_cartesian_products(const Program& program, DiagnosticSink& sink);      // ND0010
void lint_aggregate_empty_groups(const Program& program, DiagnosticSink& sink);  // ND0011
void lint_localizability(const Program& program, DiagnosticSink& sink);          // ND0012
void lint_link_restriction(const Program& program, DiagnosticSink& sink);        // ND0013

/// Fold diagnostics attached to localize()-generated `<pred>_sh_<rule>_<k>`
/// ship rules back onto the originating source rule: the span, rule index
/// and predicate are retargeted to the origin rule, and findings that then
/// duplicate one already reported against that rule (same code) are
/// dropped. No-op for programs without ship rules.
void dedupe_localized_diagnostics(const Program& program, DiagnosticSink& sink);

/// Run the core checks plus every enabled lint pass, collecting all findings
/// into `sink` (localized ship-rule findings folded onto their origin rules,
/// sorted by source location on return).
void lint_program(const Program& program, DiagnosticSink& sink,
                  const BuiltinRegistry& builtins = BuiltinRegistry::standard(),
                  const LintOptions& options = {});

}  // namespace fvn::ndlog
