#include "ndlog/provenance.hpp"

#include <algorithm>

namespace fvn::ndlog {

std::size_t Derivation::height() const {
  std::size_t h = 0;
  for (const auto& p : premises) h = std::max(h, p->height());
  return h + 1;
}

std::size_t Derivation::size() const {
  std::size_t n = 1;
  for (const auto& p : premises) n += p->size();
  return n;
}

std::string Derivation::to_string(std::size_t indent) const {
  std::string pad(indent * 2, ' ');
  std::string out = pad + tuple.to_string();
  if (is_base_fact()) {
    out += "  [base fact]\n";
    return out;
  }
  out += "  [by " + rule;
  for (const auto& sc : side_conditions) out += "; " + sc;
  out += "]\n";
  for (const auto& p : premises) out += p->to_string(indent + 1);
  return out;
}

DerivationPtr ProvenanceResult::derivation_of(const Tuple& tuple) const {
  auto it = derivations.find(tuple);
  return it == derivations.end() ? nullptr : it->second;
}

namespace {

/// Build the derivation node for one rule firing.
DerivationPtr make_derivation(const Rule& rule, const Bindings& bindings,
                              const Tuple& head,
                              const std::map<Tuple, DerivationPtr>& known,
                              const BuiltinRegistry& builtins) {
  auto node = std::make_shared<Derivation>();
  node->tuple = head;
  node->rule = rule.name.empty() ? rule.head.predicate : rule.name;
  for (const auto& elem : rule.body) {
    if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
      std::vector<Value> values;
      values.reserve(ba->atom.args.size());
      bool ok = true;
      for (const auto& a : ba->atom.args) {
        auto v = eval_term(*a, bindings, builtins);
        if (!v) {
          ok = false;
          break;
        }
        values.push_back(std::move(*v));
      }
      if (!ok) continue;
      Tuple premise(ba->atom.predicate, std::move(values));
      if (ba->negated) {
        node->side_conditions.push_back("absent " + premise.to_string());
        continue;
      }
      auto it = known.find(premise);
      if (it != known.end()) {
        node->premises.push_back(it->second);
      } else {
        // Premise without recorded derivation (shouldn't happen in stratified
        // evaluation); record as an opaque leaf to stay total.
        auto leaf = std::make_shared<Derivation>();
        leaf->tuple = premise;
        node->premises.push_back(std::move(leaf));
      }
    } else {
      node->side_conditions.push_back(ndlog::to_string(elem));
    }
  }
  return node;
}

}  // namespace

ProvenanceResult eval_with_provenance(const Program& program,
                                      const std::vector<Tuple>& base_facts,
                                      const BuiltinRegistry& builtins,
                                      const EvalOptions& options) {
  const Stratification strat = analyze(program, builtins);
  RuleEngine engine(builtins);
  ProvenanceResult result;
  Database& db = result.database;
  auto& known = result.derivations;

  auto record_base = [&](const Tuple& t) {
    if (!db.insert(t)) return;
    auto leaf = std::make_shared<Derivation>();
    leaf->tuple = t;
    known.emplace(t, std::move(leaf));
  };
  for (const auto& fact : base_facts) record_base(fact);
  for (const auto& rule : program.rules) {
    if (!rule.is_fact()) continue;
    Bindings empty;
    record_base(instantiate_head_atom(rule.head, empty, builtins));
  }

  for (int s = 0; s < strat.stratum_count; ++s) {
    std::vector<const Rule*> normal_rules;
    std::vector<const Rule*> agg_rules;
    for (std::size_t r : strat.rules_by_stratum[static_cast<std::size_t>(s)]) {
      const Rule& rule = program.rules[r];
      if (rule.is_fact()) continue;
      (rule.head.has_aggregate() ? agg_rules : normal_rules).push_back(&rule);
    }

    // Aggregate rules: group solutions, keep the winning solution's premises.
    for (const Rule* rule : agg_rules) {
      std::size_t agg_pos = rule->head.args.size();
      for (std::size_t i = 0; i < rule->head.args.size(); ++i) {
        if (rule->head.args[i].is_agg()) agg_pos = i;
      }
      const auto& agg = rule->head.args[agg_pos];
      struct Group {
        Value best;
        Bindings winner;
        bool has = false;
        std::size_t count = 0;
        Value sum = Value::integer(0);
      };
      std::map<std::vector<Value>, Group> groups;
      engine.eval_rule_solutions(*rule, db, [&](const Bindings& env) {
        std::vector<Value> key;
        for (std::size_t i = 0; i < rule->head.args.size(); ++i) {
          if (i == agg_pos) {
            key.push_back(Value::nil());
            continue;
          }
          key.push_back(*eval_term(*rule->head.args[i].term, env, builtins));
        }
        const Value v = env.at(agg.agg_var);
        Group& g = groups[key];
        ++g.count;
        g.sum = g.sum.add(v.is_numeric() ? v : Value::integer(0));
        const bool better = !g.has || (*agg.agg == AggKind::Min ? v < g.best : g.best < v);
        if ((*agg.agg == AggKind::Min || *agg.agg == AggKind::Max) && better) {
          g.best = v;
          g.winner = env;
          g.has = true;
        } else if (!g.has) {
          g.winner = env;
          g.has = true;
        }
      },
      &result.stats);
      for (auto& [key, g] : groups) {
        std::vector<Value> values = key;
        switch (*agg.agg) {
          case AggKind::Min:
          case AggKind::Max:
            values[agg_pos] = g.best;
            break;
          case AggKind::Count:
            values[agg_pos] = Value::integer(static_cast<std::int64_t>(g.count));
            break;
          case AggKind::Sum:
            values[agg_pos] = g.sum;
            break;
        }
        Tuple head(rule->head.predicate, std::move(values));
        if (db.insert(head)) {
          ++result.stats.tuples_derived;
          known.emplace(head, make_derivation(*rule, g.winner, head, known, builtins));
        }
      }
    }

    if (normal_rules.empty()) continue;

    // Semi-naive fixpoint recording derivations.
    std::map<std::string, TupleSet> delta;
    auto fire = [&](const Rule& rule, const Bindings& env,
                    std::map<std::string, TupleSet>& next_delta) {
      Tuple head = instantiate_head_atom(rule.head, env, builtins);
      if (db.insert(head)) {
        ++result.stats.tuples_derived;
        known.emplace(head, make_derivation(rule, env, head, known, builtins));
        next_delta[head.predicate()].insert(std::move(head));
      }
    };
    ++result.stats.iterations;
    for (const Rule* rule : normal_rules) {
      engine.eval_rule_solutions(
          *rule, db, [&](const Bindings& env) { fire(*rule, env, delta); },
          &result.stats);
    }
    while (!delta.empty()) {
      if (++result.stats.iterations > options.max_iterations) {
        throw DivergenceError("provenance evaluation exceeded iteration budget");
      }
      std::map<std::string, TupleSet> next_delta;
      for (const Rule* rule : normal_rules) {
        const auto atoms = RuleEngine::positive_atoms(*rule);
        for (std::size_t i = 0; i < atoms.size(); ++i) {
          auto it = delta.find(atoms[i]->atom.predicate);
          if (it == delta.end() || it->second.empty()) continue;
          engine.eval_rule_delta_solutions(
              *rule, db, i, it->second,
              [&](const Bindings& env) { fire(*rule, env, next_delta); },
              &result.stats);
        }
      }
      delta = std::move(next_delta);
    }
  }
  return result;
}

}  // namespace fvn::ndlog
