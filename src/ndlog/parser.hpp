// Hand-written lexer + recursive-descent parser for the NDlog dialect.
//
// Conventions (matching the paper and P2):
//   * identifiers starting with an upper-case letter or '_' are variables;
//   * lower-case identifiers are predicate/function names in call position,
//     and node-address constants in argument position (`link(@n1,n2,1)`);
//   * `@Arg` marks the location specifier;
//   * `min<C>` / `max<C>` / `count<C>` / `sum<C>` are head aggregates;
//   * `X = expr` is assignment-or-test, other comparators are tests;
//   * `!p(...)` is stratified negation;
//   * `materialize(pred, lifetime, size, keys(...)).` declares tables
//     (lifetime `infinity` or seconds).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "ndlog/ast.hpp"
#include "ndlog/tuple.hpp"

namespace fvn::ndlog {

/// Syntax error with 1-based line/column position.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line, int column);
  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Token kinds produced by the lexer.
enum class TokenKind : std::uint8_t {
  Ident,     // lower-case initial
  Variable,  // upper-case initial or '_'
  Number,
  String,
  At,        // @
  Comma,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Period,
  If,        // :-
  Assign,    // :=
  Eq,        // =  (also ==)
  Ne,        // !=
  Lt,
  Le,
  Gt,
  Ge,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,      // !
  End,
};

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;
  double number = 0.0;
  bool number_is_int = true;
  std::int64_t int_value = 0;
  int line = 1;
  int column = 1;
};

/// Tokenize an NDlog source string. `//`, `%%`-free: comments are `//` to
/// end-of-line and `/* ... */` blocks.
std::vector<Token> tokenize(std::string_view source);

/// Parse a full NDlog program. Throws ParseError on malformed input.
Program parse_program(std::string_view source, std::string program_name = "program");

/// Parse a single ground fact like `link(@n1,n2,3)` (no trailing period
/// required). Used by tests and the simulator's input loaders.
Tuple parse_fact(std::string_view source);

}  // namespace fvn::ndlog
