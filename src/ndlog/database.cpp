#include "ndlog/database.hpp"

#include <algorithm>

namespace fvn::ndlog {

const TupleSet Database::kEmpty{};
const std::vector<const Tuple*> Database::kNoMatches{};

void Database::index_insert(const Tuple& stored) {
  for (auto& [key, index] : indexes_) {
    if (key.first != stored.predicate() || key.second >= stored.arity()) continue;
    index[stored.at(key.second)].push_back(&stored);
  }
}

void Database::index_erase(const Tuple& tuple) {
  for (auto& [key, index] : indexes_) {
    if (key.first != tuple.predicate() || key.second >= tuple.arity()) continue;
    auto it = index.find(tuple.at(key.second));
    if (it == index.end()) continue;
    auto& bucket = it->second;
    bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                                [&](const Tuple* p) { return *p == tuple; }),
                 bucket.end());
    if (bucket.empty()) index.erase(it);
  }
}

bool Database::insert(const Tuple& tuple) {
  auto [it, inserted] = relations_[tuple.predicate()].insert(tuple);
  if (inserted) index_insert(*it);
  return inserted;
}

bool Database::erase(const Tuple& tuple) {
  auto it = relations_.find(tuple.predicate());
  if (it == relations_.end()) return false;
  auto elem = it->second.find(tuple);
  if (elem == it->second.end()) return false;
  index_erase(*elem);
  it->second.erase(elem);
  return true;
}

bool Database::contains(const Tuple& tuple) const {
  auto it = relations_.find(tuple.predicate());
  return it != relations_.end() && it->second.count(tuple) != 0;
}

const TupleSet& Database::relation(const std::string& predicate) const {
  auto it = relations_.find(predicate);
  return it == relations_.end() ? kEmpty : it->second;
}

void Database::ensure_index(const std::string& predicate,
                            std::size_t position) const {
  const auto key = std::make_pair(predicate, position);
  if (indexes_.find(key) != indexes_.end()) return;
  ColumnIndex index;
  auto rel = relations_.find(predicate);
  if (rel != relations_.end()) {
    for (const auto& t : rel->second) {
      if (position < t.arity()) index[t.at(position)].push_back(&t);
    }
  }
  indexes_.emplace(key, std::move(index));
}

const std::vector<const Tuple*>& Database::lookup(const std::string& predicate,
                                                  std::size_t position,
                                                  const Value& value) const {
  const auto key = std::make_pair(predicate, position);
  auto idx = indexes_.find(key);
  if (idx == indexes_.end()) {
    ensure_index(predicate, position);  // lazily, from current contents
    idx = indexes_.find(key);
  }
  auto bucket = idx->second.find(value);
  return bucket == idx->second.end() ? kNoMatches : bucket->second;
}

bool Database::has_index(const std::string& predicate, std::size_t position) const {
  return indexes_.count({predicate, position}) != 0;
}

std::vector<std::string> Database::predicates() const {
  std::vector<std::string> out;
  for (const auto& [name, rel] : relations_) {
    if (!rel.empty()) out.push_back(name);
  }
  return out;
}

std::size_t Database::size(const std::string& predicate) const {
  return relation(predicate).size();
}

std::size_t Database::total_size() const {
  std::size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel.size();
  return n;
}

void Database::clear() {
  relations_.clear();
  indexes_.clear();
}

void Database::clear_relation(const std::string& predicate) {
  relations_.erase(predicate);
  for (auto it = indexes_.begin(); it != indexes_.end();) {
    if (it->first.first == predicate) {
      it = indexes_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<std::string> Database::dump() const {
  std::vector<std::string> out;
  for (const auto& [name, rel] : relations_) {
    for (const auto& t : rel) out.push_back(t.to_string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fvn::ndlog
