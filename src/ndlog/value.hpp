// FVN — Formally Verifiable Networking (HotNets 2009 reproduction).
//
// NDlog value system. Every attribute of an NDlog tuple is a Value: a
// dynamically-typed, immutable datum. The dialect in the paper manipulates
// integers (metrics), node addresses ("@S"), booleans (f_inPath(P,S)=false),
// strings, doubles and path vectors (lists built by f_init / f_concatPath).
//
// Values form a total order (kind-major, then value) so they can key
// std::map-based indices and drive aggregate selection deterministically.
#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace fvn::ndlog {

/// Discriminator for Value. Order matters: it defines the kind-major total
/// order used when heterogeneous values are compared.
enum class ValueKind : std::uint8_t {
  Nil = 0,  ///< absent / uninitialized
  Bool,
  Int,
  Double,
  Str,
  Addr,  ///< a network node address (location-specifier domain)
  List,  ///< a path vector (sequence of values)
};

/// Human-readable kind name ("int", "addr", ...).
std::string_view to_string(ValueKind kind) noexcept;

/// Thrown on ill-typed value operations (e.g. adding a list to a bool).
class TypeError : public std::runtime_error {
 public:
  explicit TypeError(const std::string& what) : std::runtime_error(what) {}
};

/// An immutable dynamically-typed datum. Cheap to copy: scalars are inline,
/// strings/addresses/lists share ownership of their payload.
class Value {
 public:
  Value() noexcept : kind_(ValueKind::Nil) {}

  static Value nil() noexcept { return Value{}; }
  static Value boolean(bool b) noexcept;
  static Value integer(std::int64_t i) noexcept;
  static Value real(double d) noexcept;
  static Value str(std::string s);
  static Value addr(std::string node);
  static Value list(std::vector<Value> items);

  ValueKind kind() const noexcept { return kind_; }
  bool is_nil() const noexcept { return kind_ == ValueKind::Nil; }
  bool is_bool() const noexcept { return kind_ == ValueKind::Bool; }
  bool is_int() const noexcept { return kind_ == ValueKind::Int; }
  bool is_double() const noexcept { return kind_ == ValueKind::Double; }
  bool is_str() const noexcept { return kind_ == ValueKind::Str; }
  bool is_addr() const noexcept { return kind_ == ValueKind::Addr; }
  bool is_list() const noexcept { return kind_ == ValueKind::List; }
  /// Int or Double.
  bool is_numeric() const noexcept { return is_int() || is_double(); }

  /// Accessors throw TypeError when the kind does not match.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;  ///< accepts Int (widening) and Double
  const std::string& as_str() const;
  const std::string& as_addr() const;
  const std::vector<Value>& as_list() const;

  /// String payload of either a Str or an Addr.
  const std::string& as_text() const;

  /// Total order: kind-major, then payload. Lists compare lexicographically.
  std::strong_ordering operator<=>(const Value& other) const;
  bool operator==(const Value& other) const;

  /// Arithmetic (Int/Int stays Int; any Double operand promotes).
  Value add(const Value& rhs) const;
  Value sub(const Value& rhs) const;
  Value mul(const Value& rhs) const;
  Value div(const Value& rhs) const;  ///< throws TypeError on division by zero
  Value mod(const Value& rhs) const;  ///< Int only

  /// Rendering as NDlog literal text ("[n1,n2]", "\"abc\"", "17", "n3").
  std::string to_string() const;

  /// FNV-1a style hash, consistent with operator==.
  std::size_t hash() const noexcept;

 private:
  ValueKind kind_;
  union Scalar {
    bool b;
    std::int64_t i;
    double d;
    Scalar() : i(0) {}
  } scalar_{};
  std::shared_ptr<const std::string> text_;        // Str / Addr
  std::shared_ptr<const std::vector<Value>> list_; // List
};

struct ValueHash {
  std::size_t operator()(const Value& v) const noexcept { return v.hash(); }
};

/// Hash of a value sequence (tuple bodies, keys).
std::size_t hash_values(const std::vector<Value>& values) noexcept;

}  // namespace fvn::ndlog
