// Goal-directed querying (declarative networking's "network queries", §2.2):
// evaluate only the rules relevant to a goal predicate (backward reachability
// over the dependency graph — a lightweight magic-sets cousin) and filter the
// goal relation against the query pattern's constants.
#pragma once

#include "ndlog/eval.hpp"

namespace fvn::ndlog {

struct QueryOptions {
  EvalOptions eval;
};

struct QueryResult {
  /// Tuples of the goal predicate matching the query pattern.
  TupleSet answers;
  /// Bindings of the pattern's variables, one map per answer.
  std::vector<Bindings> bindings;
  EvalStats stats;
  std::size_t rules_total = 0;
  std::size_t rules_relevant = 0;
};

/// Predicates the goal predicate transitively depends on (including itself).
std::set<std::string> relevant_predicates(const Program& program,
                                          const std::string& goal_predicate);

/// The program restricted to rules whose heads are relevant to the goal.
Program restrict_to_goal(const Program& program, const std::string& goal_predicate);

/// Evaluate the restricted program over `facts` and match `goal` (an atom
/// whose arguments are constants — filters — or variables — outputs).
QueryResult query(const Program& program, const Atom& goal,
                  const std::vector<Tuple>& facts, const QueryOptions& options = {},
                  const BuiltinRegistry& builtins = BuiltinRegistry::standard());

/// Convenience: parse the goal from text, e.g. "bestPath(@n0, n3, P, C)".
QueryResult query(const Program& program, std::string_view goal_text,
                  const std::vector<Tuple>& facts, const QueryOptions& options = {},
                  const BuiltinRegistry& builtins = BuiltinRegistry::standard());

}  // namespace fvn::ndlog
