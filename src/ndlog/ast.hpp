// Abstract syntax for the NDlog dialect used in the paper (§2.2):
//
//   r2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
//                        C=C1+C2, P=f_concatPath(S,P2),
//                        f_inPath(P2,S)=false.
//   r3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
//
// plus P2-style `materialize(pred, lifetime, size, keys(...)).` declarations
// for soft-state tables, ground facts, and stratified negation (`!p(...)`).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "ndlog/diagnostics.hpp"
#include "ndlog/value.hpp"

namespace fvn::ndlog {

// ---------------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------------

enum class BinOp : std::uint8_t { Add, Sub, Mul, Div, Mod };
enum class CmpOp : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };
enum class AggKind : std::uint8_t { Min, Max, Count, Sum };

std::string_view to_string(BinOp op) noexcept;
std::string_view to_string(CmpOp op) noexcept;
std::string_view to_string(AggKind kind) noexcept;
/// Negation of a comparison (used by the logic translator).
CmpOp negate(CmpOp op) noexcept;

struct Term;
using TermPtr = std::shared_ptr<const Term>;

/// A term expression: variable, constant, built-in function application, or
/// arithmetic. Immutable and shared.
struct Term {
  enum class Kind : std::uint8_t { Var, Const, Func, Binary };

  Kind kind;
  std::string name;          // Var: variable name; Func: function name
  Value constant;            // Const payload
  BinOp op = BinOp::Add;     // Binary payload
  std::vector<TermPtr> args; // Func arguments / Binary operands (exactly 2)

  static TermPtr var(std::string name);
  static TermPtr constant_of(Value v);
  static TermPtr func(std::string name, std::vector<TermPtr> args);
  static TermPtr binary(BinOp op, TermPtr lhs, TermPtr rhs);

  /// Collect variable names (in first-occurrence order) into `out`.
  void collect_vars(std::vector<std::string>& out) const;
  std::string to_string() const;
};

// ---------------------------------------------------------------------------
// Atoms, rules, programs
// ---------------------------------------------------------------------------

/// One head argument: a plain term or an aggregate over a variable
/// (e.g. `min<C>`). Aggregates only appear in rule heads.
struct HeadArg {
  TermPtr term;                 // nullptr iff aggregate
  std::optional<AggKind> agg;   // engaged iff aggregate
  std::string agg_var;          // the variable under the aggregate

  static HeadArg plain(TermPtr t) { return HeadArg{std::move(t), std::nullopt, {}}; }
  static HeadArg aggregate(AggKind k, std::string var) {
    return HeadArg{nullptr, k, std::move(var)};
  }
  bool is_agg() const noexcept { return agg.has_value(); }
  std::string to_string() const;
};

/// A predicate atom `pred(@X, Y, Z)`. `loc_index` is the position of the
/// location-specifier argument (-1 when the atom carries no '@'; the catalog
/// supplies a default of 0 for distributed execution).
struct Atom {
  std::string predicate;
  std::vector<TermPtr> args;
  int loc_index = -1;
  SourceLoc loc;  // position of the predicate name (line 0 when synthetic)

  std::string to_string() const;
  void collect_vars(std::vector<std::string>& out) const;
  /// Span covering the predicate name (invalid when the atom is synthetic).
  SourceSpan span() const noexcept { return SourceSpan::token(loc, predicate.size()); }
};

/// Rule-head atom: like Atom but each argument may be an aggregate.
struct HeadAtom {
  std::string predicate;
  std::vector<HeadArg> args;
  int loc_index = -1;
  SourceLoc loc;  // position of the predicate name (line 0 when synthetic)

  bool has_aggregate() const noexcept;
  std::string to_string() const;
  SourceSpan span() const noexcept { return SourceSpan::token(loc, predicate.size()); }
};

/// Body element: a (possibly negated) relational atom.
struct BodyAtom {
  Atom atom;
  bool negated = false;
  std::string to_string() const;
};

/// Body element: `Var = expr` assignment or `lhs op rhs` constraint. NDlog
/// overloads `=`: if one side is a single unbound variable it binds it,
/// otherwise it tests equality. The evaluator resolves this per binding
/// environment, matching the paper's usage (`C=C1+C2` binds,
/// `f_inPath(P2,S)=false` tests).
struct Comparison {
  CmpOp op = CmpOp::Eq;
  TermPtr lhs;
  TermPtr rhs;
  SourceLoc loc;  // position of the first token of the comparison
  std::string to_string() const;
};

using BodyElem = std::variant<BodyAtom, Comparison>;

std::string to_string(const BodyElem& elem);

/// One NDlog rule (`name head :- body.`). A rule with an empty body is a
/// ground fact.
struct Rule {
  std::string name;  // "r1", "r2", ... (optional label in source)
  HeadAtom head;
  std::vector<BodyElem> body;
  SourceLoc loc;  // position of the rule's first token (label or head)

  bool is_fact() const noexcept { return body.empty(); }
  std::string to_string() const;
  /// Span anchored at the rule's first token (invalid when synthetic).
  SourceSpan span() const noexcept {
    return SourceSpan::token(loc, name.empty() ? head.predicate.size() : name.size());
  }
  /// "r2" when labelled, otherwise the head predicate — for messages.
  const std::string& display_name() const noexcept {
    return name.empty() ? head.predicate : name;
  }
};

/// P2-style materialization declaration:
///   materialize(link, infinity, infinity, keys(1,2)).
///   materialize(neighbor, 10, infinity, keys(1,2)).   -- 10s soft state
struct Materialize {
  std::string predicate;
  std::optional<double> lifetime_seconds;  // nullopt = infinity (hard state)
  std::optional<std::size_t> max_size;     // nullopt = unbounded
  std::vector<std::size_t> key_fields;     // 1-based, as in P2
  SourceLoc loc;  // position of the `materialize` keyword

  std::string to_string() const;
};

/// A parsed NDlog program: declarations and rules (ground facts are rules
/// with an empty body).
struct Program {
  std::string name = "program";
  std::vector<Materialize> materializations;
  std::vector<Rule> rules;

  const Materialize* materialization_of(const std::string& pred) const;
  std::string to_string() const;
};

}  // namespace fvn::ndlog
