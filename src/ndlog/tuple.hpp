// NDlog tuples and relations. A Tuple is a named fact ("path(n1,n2,[n1,n2],5)").
// Relations are duplicate-free sets of tuples with optional soft-state
// bookkeeping (creation time + lifetime) as in P2's `materialize` declarations.
#pragma once

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "ndlog/value.hpp"

namespace fvn::ndlog {

/// A ground fact: predicate name plus attribute values.
class Tuple {
 public:
  Tuple() = default;
  Tuple(std::string predicate, std::vector<Value> values)
      : predicate_(std::move(predicate)), values_(std::move(values)) {}

  const std::string& predicate() const noexcept { return predicate_; }
  const std::vector<Value>& values() const noexcept { return values_; }
  std::size_t arity() const noexcept { return values_.size(); }
  const Value& at(std::size_t i) const { return values_.at(i); }

  bool operator==(const Tuple& other) const {
    return predicate_ == other.predicate_ && values_ == other.values_;
  }
  std::strong_ordering operator<=>(const Tuple& other) const {
    if (auto c = predicate_ <=> other.predicate_; c != 0) return c;
    const std::size_t n = std::min(values_.size(), other.values_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (auto c = values_[i] <=> other.values_[i]; c != 0) return c;
    }
    return values_.size() <=> other.values_.size();
  }

  std::size_t hash() const noexcept {
    std::size_t h = hash_values(values_);
    for (char c : predicate_) h = h * 131 + static_cast<unsigned char>(c);
    return h;
  }

  /// "path(n1,n2,[n1,n2],5)"
  std::string to_string() const;

 private:
  std::string predicate_;
  std::vector<Value> values_;
};

struct TupleHash {
  std::size_t operator()(const Tuple& t) const noexcept { return t.hash(); }
};

using TupleSet = std::unordered_set<Tuple, TupleHash>;

/// A timestamped tuple as stored in a soft-state table: the fact plus the
/// simulation time at which it expires (nullopt = hard state, never expires).
struct StoredTuple {
  Tuple tuple;
  std::optional<double> expires_at;
};

/// Sorted, deterministic rendering of a tuple set (tests & goldens).
std::vector<std::string> sorted_strings(const TupleSet& tuples);

}  // namespace fvn::ndlog
