// Built-in NDlog functions (the `f_*` family of the paper plus the usual P2
// list/arith helpers). A registry maps names to native implementations; user
// code may register additional functions before evaluation.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ndlog/value.hpp"

namespace fvn::ndlog {

using BuiltinFn = std::function<Value(const std::vector<Value>&)>;

/// Registry of built-in functions available to term evaluation.
class BuiltinRegistry {
 public:
  /// Registry pre-populated with the standard library:
  ///   f_init(S,D)        -> [S,D]            (paper r1)
  ///   f_concatPath(S,P)  -> [S | P]          (paper r2)
  ///   f_inPath(P,S)      -> bool membership  (paper r2)
  ///   f_size(P), f_head(P), f_last(P), f_tail(P), f_append(P,X),
  ///   f_reverse(P), f_member(P,X), f_list(...), f_min(A,B), f_max(A,B),
  ///   f_abs(X)
  static const BuiltinRegistry& standard();

  BuiltinRegistry();

  void register_fn(std::string name, BuiltinFn fn);
  bool contains(const std::string& name) const;
  /// Throws TypeError if the function is unknown.
  Value call(const std::string& name, const std::vector<Value>& args) const;

 private:
  std::unordered_map<std::string, BuiltinFn> fns_;
};

}  // namespace fvn::ndlog
