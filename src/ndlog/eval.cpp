#include "ndlog/eval.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace fvn::ndlog {

DivergenceError::DivergenceError(const std::string& context, std::size_t budget,
                                 std::size_t last_delta, const EvalStats& stats)
    : std::runtime_error(context + " (iteration budget=" + std::to_string(budget) +
                         ", last round delta=" + std::to_string(last_delta) +
                         " tuples; stats: iterations=" + std::to_string(stats.iterations) +
                         ", rule_firings=" + std::to_string(stats.rule_firings) +
                         ", tuples_derived=" + std::to_string(stats.tuples_derived) +
                         ", join_probes=" + std::to_string(stats.join_probes) + ")"),
      budget_(budget),
      last_delta_(last_delta),
      stats_(stats) {}

std::optional<Value> eval_term(const Term& term, const Bindings& bindings,
                               const BuiltinRegistry& builtins) {
  switch (term.kind) {
    case Term::Kind::Const:
      return term.constant;
    case Term::Kind::Var: {
      auto it = bindings.find(term.name);
      if (it == bindings.end()) return std::nullopt;
      return it->second;
    }
    case Term::Kind::Func: {
      std::vector<Value> args;
      args.reserve(term.args.size());
      for (const auto& a : term.args) {
        auto v = eval_term(*a, bindings, builtins);
        if (!v) return std::nullopt;
        args.push_back(std::move(*v));
      }
      return builtins.call(term.name, args);
    }
    case Term::Kind::Binary: {
      auto lhs = eval_term(*term.args[0], bindings, builtins);
      auto rhs = eval_term(*term.args[1], bindings, builtins);
      if (!lhs || !rhs) return std::nullopt;
      switch (term.op) {
        case BinOp::Add: return lhs->add(*rhs);
        case BinOp::Sub: return lhs->sub(*rhs);
        case BinOp::Mul: return lhs->mul(*rhs);
        case BinOp::Div: return lhs->div(*rhs);
        case BinOp::Mod: return lhs->mod(*rhs);
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

bool match_atom(const Atom& atom, const Tuple& tuple, Bindings& bindings,
                const BuiltinRegistry& builtins, std::vector<std::string>* added_keys) {
  if (atom.predicate != tuple.predicate() || atom.args.size() != tuple.arity()) {
    return false;
  }
  // Record-and-rollback: on mismatch, every binding added by *this call* is
  // erased again, so `bindings` is exactly as the caller passed it. A caller
  // that wants to roll back a *successful* match (the join does, between
  // probed tuples) supplies `added_keys` and erases them itself.
  std::vector<std::string> local_added;
  std::vector<std::string>& added = added_keys != nullptr ? *added_keys : local_added;
  const std::size_t added_base = added.size();
  auto fail = [&]() {
    while (added.size() > added_base) {
      bindings.erase(added.back());
      added.pop_back();
    }
    return false;
  };
  for (std::size_t i = 0; i < atom.args.size(); ++i) {
    const Term& arg = *atom.args[i];
    if (arg.kind == Term::Kind::Var) {
      auto [it, inserted] = bindings.emplace(arg.name, tuple.at(i));
      if (inserted) {
        added.push_back(arg.name);
      } else if (!(it->second == tuple.at(i))) {
        return fail();
      }
      continue;
    }
    auto v = eval_term(arg, bindings, builtins);
    if (!v || !(*v == tuple.at(i))) return fail();
  }
  return true;
}

namespace {

bool compare(CmpOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case CmpOp::Eq: return lhs == rhs;
    case CmpOp::Ne: return !(lhs == rhs);
    case CmpOp::Lt: return lhs < rhs;
    case CmpOp::Le: return lhs < rhs || lhs == rhs;
    case CmpOp::Gt: return rhs < lhs;
    case CmpOp::Ge: return rhs < lhs || rhs == lhs;
  }
  return false;
}

}  // namespace

std::vector<const BodyAtom*> RuleEngine::positive_atoms(const Rule& rule) {
  std::vector<const BodyAtom*> out;
  for (const auto& elem : rule.body) {
    if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
      if (!ba->negated) out.push_back(ba);
    }
  }
  return out;
}

void RuleEngine::join(
    const Rule& rule, const Database& db,
    const std::optional<std::pair<std::size_t, const TupleSet*>>& delta,
    const std::function<void(const Bindings&)>& on_solution, EvalStats* stats) const {
  struct Check {
    const Comparison* cmp = nullptr;
    const BodyAtom* neg = nullptr;
  };
  std::vector<const BodyAtom*> atoms;
  std::vector<Check> checks;
  for (const auto& elem : rule.body) {
    if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
      if (ba->negated) {
        checks.push_back(Check{nullptr, ba});
      } else {
        atoms.push_back(ba);
      }
    } else {
      checks.push_back(Check{&std::get<Comparison>(elem), nullptr});
    }
  }

  // Recursive backtracking join: at each step first discharge every ready
  // check (binding `=` assignments eagerly), then scan the next relational
  // atom. `done` flags parallel `checks`.
  std::vector<bool> done(checks.size(), false);
  // Solutions are buffered and delivered after enumeration completes: sinks
  // typically insert into `db`, and inserting while iterating relations (or
  // index buckets) would invalidate the iterators under our feet.
  std::vector<Bindings> solutions;

  std::function<bool(std::size_t, Bindings&, std::vector<bool>&)> run;

  auto term_bound = [&](const Term& t, const Bindings& env) {
    std::vector<std::string> vars;
    t.collect_vars(vars);
    return std::all_of(vars.begin(), vars.end(),
                       [&](const std::string& v) { return env.count(v) != 0; });
  };

  // Returns false if a check failed; true otherwise. Binds variables via Eq.
  std::function<bool(Bindings&, std::vector<bool>&)> discharge =
      [&](Bindings& env, std::vector<bool>& flags) -> bool {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t i = 0; i < checks.size(); ++i) {
        if (flags[i]) continue;
        if (checks[i].neg != nullptr) {
          const Atom& atom = checks[i].neg->atom;
          bool all_bound = true;
          for (const auto& a : atom.args) all_bound = all_bound && term_bound(*a, env);
          if (!all_bound) continue;
          std::vector<Value> values;
          values.reserve(atom.args.size());
          for (const auto& a : atom.args) values.push_back(*eval_term(*a, env, *builtins_));
          if (db.contains(Tuple(atom.predicate, std::move(values)))) return false;
          flags[i] = true;
          progressed = true;
          continue;
        }
        const Comparison& cmp = *checks[i].cmp;
        const bool lhs_ok = term_bound(*cmp.lhs, env);
        const bool rhs_ok = term_bound(*cmp.rhs, env);
        if (cmp.op == CmpOp::Eq) {
          if (lhs_ok && rhs_ok) {
            if (!compare(CmpOp::Eq, *eval_term(*cmp.lhs, env, *builtins_),
                         *eval_term(*cmp.rhs, env, *builtins_))) {
              return false;
            }
          } else if (!lhs_ok && rhs_ok && cmp.lhs->kind == Term::Kind::Var) {
            env[cmp.lhs->name] = *eval_term(*cmp.rhs, env, *builtins_);
          } else if (lhs_ok && !rhs_ok && cmp.rhs->kind == Term::Kind::Var) {
            env[cmp.rhs->name] = *eval_term(*cmp.lhs, env, *builtins_);
          } else {
            continue;  // not ready yet
          }
          flags[i] = true;
          progressed = true;
          continue;
        }
        if (!lhs_ok || !rhs_ok) continue;
        if (!compare(cmp.op, *eval_term(*cmp.lhs, env, *builtins_),
                     *eval_term(*cmp.rhs, env, *builtins_))) {
          return false;
        }
        flags[i] = true;
        progressed = true;
      }
    }
    return true;
  };

  run = [&](std::size_t atom_index, Bindings& env, std::vector<bool>& flags) -> bool {
    if (!discharge(env, flags)) return true;  // dead branch, keep searching siblings
    if (atom_index == atoms.size()) {
      // All relational atoms consumed; every check must be discharged (safety
      // analysis guarantees this for well-formed programs).
      if (std::all_of(flags.begin(), flags.end(), [](bool b) { return b; })) {
        if (stats) ++stats->rule_firings;
        solutions.push_back(env);
      }
      return true;
    }
    const Atom& atom = atoms[atom_index]->atom;
    auto try_tuple = [&](const Tuple& tuple) {
      if (stats) ++stats->join_probes;
      // match_atom restores `env` on mismatch, so the common non-matching
      // probe costs no environment copy; only a successful match pays for
      // the child environment that deeper levels are free to mutate.
      std::vector<std::string> added;
      if (!match_atom(atom, tuple, env, *builtins_, &added)) return;
      Bindings child = env;
      std::vector<bool> child_flags = flags;
      run(atom_index + 1, child, child_flags);
      for (const auto& key : added) env.erase(key);
    };
    if (delta && delta->first == atom_index) {
      for (const auto& tuple : *delta->second) try_tuple(tuple);
      return true;
    }
    // Index probe: use the first argument position whose value is already
    // determined by the environment (bound variable or constant).
    if (use_index_) {
      for (std::size_t pos = 0; pos < atom.args.size(); ++pos) {
        const auto& arg = atom.args[pos];
        std::optional<Value> bound;
        if (arg->kind == Term::Kind::Const) {
          bound = arg->constant;
        } else if (arg->kind == Term::Kind::Var) {
          auto it = env.find(arg->name);
          if (it != env.end()) bound = it->second;
        }
        if (!bound) continue;
        for (const Tuple* tuple : db.lookup(atom.predicate, pos, *bound)) {
          try_tuple(*tuple);
        }
        return true;
      }
    }
    for (const auto& tuple : db.relation(atom.predicate)) try_tuple(tuple);
    return true;
  };

  Bindings root;
  std::vector<bool> root_flags = done;
  run(0, root, root_flags);
  for (const auto& env : solutions) on_solution(env);
}

Tuple instantiate_head_atom(const HeadAtom& head, const Bindings& bindings,
                            const BuiltinRegistry& builtins) {
  std::vector<Value> values;
  values.reserve(head.args.size());
  for (const auto& arg : head.args) {
    auto v = eval_term(*arg.term, bindings, builtins);
    if (!v) throw AnalysisError("unbound head variable in " + head.to_string());
    values.push_back(std::move(*v));
  }
  return Tuple(head.predicate, std::move(values));
}

namespace {

Tuple instantiate_head(const HeadAtom& head, const Bindings& bindings,
                       const BuiltinRegistry& builtins) {
  return instantiate_head_atom(head, bindings, builtins);
}

}  // namespace

void RuleEngine::eval_rule(const Rule& rule, const Database& db, const Sink& sink,
                           EvalStats* stats) const {
  join(rule, db, std::nullopt,
       [&](const Bindings& env) { sink(instantiate_head(rule.head, env, *builtins_)); },
       stats);
}

void RuleEngine::eval_rule_delta(const Rule& rule, const Database& db,
                                 std::size_t delta_index, const TupleSet& delta,
                                 const Sink& sink, EvalStats* stats) const {
  join(rule, db, std::make_pair(delta_index, &delta),
       [&](const Bindings& env) { sink(instantiate_head(rule.head, env, *builtins_)); },
       stats);
}

void RuleEngine::eval_rule_solutions(const Rule& rule, const Database& db,
                                     const SolutionSink& sink, EvalStats* stats) const {
  join(rule, db, std::nullopt, sink, stats);
}

void RuleEngine::eval_rule_delta_solutions(const Rule& rule, const Database& db,
                                           std::size_t delta_index, const TupleSet& delta,
                                           const SolutionSink& sink,
                                           EvalStats* stats) const {
  join(rule, db, std::make_pair(delta_index, &delta), sink, stats);
}

void RuleEngine::eval_agg_rule(const Rule& rule, const Database& db, const Sink& sink,
                               EvalStats* stats) const {
  // Locate the aggregate argument (exactly one is supported, as in P2).
  std::size_t agg_pos = rule.head.args.size();
  for (std::size_t i = 0; i < rule.head.args.size(); ++i) {
    if (rule.head.args[i].is_agg()) {
      if (agg_pos != rule.head.args.size()) {
        throw AnalysisError("rule " + rule.name + ": multiple aggregates in head");
      }
      agg_pos = i;
    }
  }
  const HeadArg& agg = rule.head.args[agg_pos];
  const AggKind kind = *agg.agg;

  struct Group {
    std::vector<Value> key;   // full head args with nil at agg position
    Value best;               // min/max accumulator
    std::set<Value> distinct; // count/sum over distinct agg_var bindings
    bool has_best = false;
  };
  std::map<std::vector<Value>, Group> groups;

  join(rule, db, std::nullopt,
       [&](const Bindings& env) {
         std::vector<Value> key;
         key.reserve(rule.head.args.size());
         for (std::size_t i = 0; i < rule.head.args.size(); ++i) {
           if (i == agg_pos) {
             key.push_back(Value::nil());
             continue;
           }
           auto v = eval_term(*rule.head.args[i].term, env, *builtins_);
           if (!v) throw AnalysisError("unbound head variable in aggregate rule");
           key.push_back(std::move(*v));
         }
         auto it = env.find(agg.agg_var);
         if (it == env.end()) {
           throw AnalysisError("aggregate variable '" + agg.agg_var + "' unbound");
         }
         Group& g = groups[key];
         g.key = key;
         const Value& v = it->second;
         switch (kind) {
           case AggKind::Min:
             if (!g.has_best || v < g.best) {
               g.best = v;
               g.has_best = true;
             }
             break;
           case AggKind::Max:
             if (!g.has_best || g.best < v) {
               g.best = v;
               g.has_best = true;
             }
             break;
           case AggKind::Count:
           case AggKind::Sum:
             g.distinct.insert(v);
             break;
         }
       },
       stats);

  for (auto& [key, g] : groups) {
    std::vector<Value> values = g.key;
    switch (kind) {
      case AggKind::Min:
      case AggKind::Max:
        values[agg_pos] = g.best;
        break;
      case AggKind::Count:
        values[agg_pos] = Value::integer(static_cast<std::int64_t>(g.distinct.size()));
        break;
      case AggKind::Sum: {
        Value total = Value::integer(0);
        for (const auto& v : g.distinct) total = total.add(v);
        values[agg_pos] = total;
        break;
      }
    }
    sink(Tuple(rule.head.predicate, std::move(values)));
  }
}

// ---------------------------------------------------------------------------
// Centralized stratified evaluator
// ---------------------------------------------------------------------------

EvalResult Evaluator::run(const Program& program, const std::vector<Tuple>& base_facts,
                          const EvalOptions& options) const {
  const Stratification strat = analyze(program, *builtins_);
  EvalResult result;
  Database& db = result.database;

  for (const auto& fact : base_facts) db.insert(fact);
  // Ground facts embedded in the program.
  for (const auto& rule : program.rules) {
    if (!rule.is_fact()) continue;
    Bindings empty;
    db.insert(instantiate_head(rule.head, empty, *builtins_));
  }
  fixpoint(program, strat, db, options, result.stats);
  return result;
}

namespace {

std::size_t delta_total(const std::map<std::string, TupleSet>& delta) {
  std::size_t total = 0;
  for (const auto& [pred, tuples] : delta) total += tuples.size();
  return total;
}

std::string rule_label(const Rule& rule) {
  return rule.name.empty() ? rule.head.predicate : rule.name;
}

}  // namespace

void Evaluator::fixpoint(const Program& program, const Stratification& strat,
                         Database& db, const EvalOptions& options,
                         EvalStats& stats) const {
  RuleEngine engine(*builtins_, options.use_index);
  obs::Registry* metrics = options.metrics;
  obs::Trace* trace = options.trace;
  const bool observed = metrics != nullptr || trace != nullptr;

  // Wrap one rule evaluation: snapshot the shared stats around `body`, then
  // attribute the diffs to the rule's and the stratum's series. When nothing
  // observes the run, this is a branch and a direct call.
  auto observe_rule = [&](const Rule& rule, int stratum, const auto& body) {
    if (!observed) {
      body();
      return;
    }
    const EvalStats before = stats;
    obs::Span span(trace, rule_label(rule), "eval/rule");
    body();
    const std::uint64_t firings = stats.rule_firings - before.rule_firings;
    const std::uint64_t derived = stats.tuples_derived - before.tuples_derived;
    span.end("{\"firings\":" + std::to_string(firings) +
             ",\"derived\":" + std::to_string(derived) + "}");
    if (metrics != nullptr) {
      const std::string rule_base = "eval/rule/" + rule_label(rule) + "/";
      metrics->counter(rule_base + "firings").add(firings);
      metrics->counter(rule_base + "derived").add(derived);
      metrics->counter(rule_base + "probes").add(stats.join_probes - before.join_probes);
      const std::string stratum_base = "eval/stratum/" + std::to_string(stratum) + "/";
      metrics->counter(stratum_base + "firings").add(firings);
      metrics->counter(stratum_base + "derived").add(derived);
    }
  };
  auto note_round = [&](std::size_t round_delta) {
    if (metrics != nullptr) {
      metrics->counter("eval/rounds").add(1);
      metrics->histogram("eval/round_delta").observe(round_delta);
    }
    if (trace != nullptr) {
      trace->counter("eval/round_delta", "eval", static_cast<double>(round_delta));
    }
  };

  for (int s = 0; s < strat.stratum_count; ++s) {
    std::vector<const Rule*> normal_rules;
    std::vector<const Rule*> agg_rules;
    for (std::size_t r : strat.rules_by_stratum[static_cast<std::size_t>(s)]) {
      const Rule& rule = program.rules[r];
      if (rule.is_fact()) continue;
      (rule.head.has_aggregate() ? agg_rules : normal_rules).push_back(&rule);
    }

    obs::Span stratum_span(trace, "stratum " + std::to_string(s), "eval/stratum");

    // Aggregate rules read only strictly-lower strata (enforced by
    // stratification), so a single pass suffices and must come first: their
    // outputs may feed the stratum's recursive rules.
    for (const Rule* rule : agg_rules) {
      observe_rule(*rule, s, [&] {
        engine.eval_agg_rule(*rule, db, [&](Tuple t) {
          if (db.insert(std::move(t))) ++stats.tuples_derived;
        },
        &stats);
      });
    }

    if (normal_rules.empty()) continue;

    if (!options.semi_naive) {
      // Naive mode: repeat full evaluation of every rule until no change.
      std::size_t last_round_new = 0;
      bool changed = true;
      while (changed) {
        if (++stats.iterations > options.max_iterations) {
          throw DivergenceError("naive evaluation exceeded iteration budget in stratum " +
                                    std::to_string(s),
                                options.max_iterations, last_round_new, stats);
        }
        changed = false;
        std::size_t round_new = 0;
        obs::Span round_span(trace, "round", "eval/round");
        for (const Rule* rule : normal_rules) {
          observe_rule(*rule, s, [&] {
            engine.eval_rule(*rule, db, [&](Tuple t) {
              if (db.insert(std::move(t))) {
                ++stats.tuples_derived;
                ++round_new;
                changed = true;
              }
            },
            &stats);
          });
        }
        if (observed) {
          round_span.end("{\"delta\":" + std::to_string(round_new) + "}");
          note_round(round_new);
        }
        last_round_new = round_new;
      }
      continue;
    }

    // Semi-naive: round 0 evaluates every rule in full; subsequent rounds
    // join each rule with the previous round's delta at every positive-atom
    // position.
    std::map<std::string, TupleSet> delta;
    ++stats.iterations;
    {
      obs::Span round_span(trace, "round 0", "eval/round");
      for (const Rule* rule : normal_rules) {
        observe_rule(*rule, s, [&] {
          engine.eval_rule(*rule, db, [&](Tuple t) {
            if (db.insert(t)) {
              ++stats.tuples_derived;
              delta[t.predicate()].insert(std::move(t));
            }
          },
          &stats);
        });
      }
      if (observed) {
        round_span.end("{\"delta\":" + std::to_string(delta_total(delta)) + "}");
        note_round(delta_total(delta));
      }
    }
    while (!delta.empty()) {
      if (++stats.iterations > options.max_iterations) {
        throw DivergenceError("semi-naive evaluation exceeded iteration budget in stratum " +
                                  std::to_string(s),
                              options.max_iterations, delta_total(delta), stats);
      }
      std::map<std::string, TupleSet> next_delta;
      obs::Span round_span(trace, "round", "eval/round");
      for (const Rule* rule : normal_rules) {
        const auto atoms = RuleEngine::positive_atoms(*rule);
        for (std::size_t i = 0; i < atoms.size(); ++i) {
          auto it = delta.find(atoms[i]->atom.predicate);
          if (it == delta.end() || it->second.empty()) continue;
          observe_rule(*rule, s, [&] {
            engine.eval_rule_delta(*rule, db, i, it->second, [&](Tuple t) {
              if (db.insert(t)) {
                ++stats.tuples_derived;
                next_delta[t.predicate()].insert(std::move(t));
              }
            },
            &stats);
          });
        }
      }
      if (observed) {
        round_span.end("{\"delta\":" + std::to_string(delta_total(next_delta)) + "}");
        note_round(delta_total(next_delta));
      }
      delta = std::move(next_delta);
    }
  }
}

Evaluator::RetractStats Evaluator::retract(const Program& program, Database& db,
                                           const Tuple& fact,
                                           const EvalOptions& options) const {
  const Stratification strat = analyze(program, *builtins_);
  RuleEngine engine(*builtins_, options.use_index);
  RetractStats stats;
  if (!db.contains(fact)) return stats;

  // Phase 1 — over-delete: everything with a derivation through `fact`.
  // Delta joins run against the pre-deletion database (an over-approximation,
  // as in classic DRed). Aggregate heads are treated like rule heads: any
  // aggregate row whose group had a deleted contributor is removed and later
  // recomputed.
  TupleSet to_delete{fact};
  TupleSet delta{fact};
  std::size_t guard = options.max_iterations;
  while (!delta.empty()) {
    if (guard-- == 0) {
      throw DivergenceError("overdeletion exceeded iteration budget",
                            options.max_iterations, delta.size(), stats.eval);
    }
    TupleSet next;
    auto note = [&](Tuple t) {
      if (!db.contains(t)) return;
      if (to_delete.insert(t).second) next.insert(std::move(t));
    };
    for (const auto& rule : program.rules) {
      if (rule.is_fact()) continue;
      const auto atoms = RuleEngine::positive_atoms(rule);
      for (std::size_t i = 0; i < atoms.size(); ++i) {
        bool relevant = false;
        for (const auto& d : delta) {
          if (atoms[i]->atom.predicate == d.predicate()) relevant = true;
        }
        if (!relevant) continue;
        if (rule.head.has_aggregate()) {
          // Any group touching a deleted contributor: delete every stored
          // row of the head predicate whose group-by columns match some
          // body solution over the delta. Conservative: recompute restores
          // survivors.
          engine.eval_rule_delta_solutions(rule, db, i, delta, [&](const Bindings& env) {
            for (const auto& row : db.relation(rule.head.predicate)) {
              bool same_group = true;
              for (std::size_t k = 0; k < rule.head.args.size(); ++k) {
                if (rule.head.args[k].is_agg()) continue;
                auto v = eval_term(*rule.head.args[k].term, env, *builtins_);
                if (!v || !(*v == row.at(k))) same_group = false;
              }
              if (same_group) note(row);
            }
          },
          &stats.eval);
        } else {
          engine.eval_rule_delta(rule, db, i, delta,
                                 [&](Tuple t) { note(std::move(t)); }, &stats.eval);
        }
      }
    }
    delta = std::move(next);
  }
  for (const auto& t : to_delete) db.erase(t);
  stats.overdeleted = to_delete.size();

  // Phase 2 — re-derive from the survivors.
  const std::size_t before = db.total_size();
  fixpoint(program, strat, db, options, stats.eval);
  stats.rederived = db.total_size() - before;
  return stats;
}

}  // namespace fvn::ndlog
