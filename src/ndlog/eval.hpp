// NDlog evaluation.
//
// * TermEval / match_atom — binding environments, term evaluation against the
//   built-in registry, and atom unification.
// * RuleEngine — evaluates a single rule against a Database: full join,
//   semi-naive delta join (one body atom restricted to a delta set), and
//   aggregate rules (group-by + min/max/count/sum). Reused verbatim by the
//   distributed runtime's per-node engines.
// * Evaluator — the centralized reference evaluator: stratified, semi-naive
//   (or naive, for the E8 ablation) bottom-up fixpoint. This realizes the
//   declarative (proof-theoretic) semantics the paper's verification story
//   relies on (§3.1 footnote 1: proof-theoretic ≡ operational semantics).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "ndlog/analysis.hpp"
#include "ndlog/ast.hpp"
#include "ndlog/builtins.hpp"
#include "ndlog/database.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fvn::ndlog {

/// A variable-binding environment.
using Bindings = std::unordered_map<std::string, Value>;

/// Statistics accumulated by an evaluation run.
struct EvalStats {
  std::size_t iterations = 0;     // fixpoint rounds across all strata
  std::size_t rule_firings = 0;   // body solutions found
  std::size_t tuples_derived = 0; // inserts that were new
  std::size_t join_probes = 0;    // tuples scanned during joins
};

/// Thrown when the fixpoint exceeds the configured iteration budget — the
/// evaluator-level symptom of a divergent program (e.g. count-to-infinity
/// without a hop bound). Carries the budget, the last round's delta size and
/// an EvalStats snapshot so divergence is diagnosable from the exception.
class DivergenceError : public std::runtime_error {
 public:
  explicit DivergenceError(const std::string& what) : std::runtime_error(what) {}
  DivergenceError(const std::string& context, std::size_t budget,
                  std::size_t last_delta, const EvalStats& stats);

  std::size_t budget() const noexcept { return budget_; }
  /// New tuples produced by the last completed round before the guard fired.
  std::size_t last_delta_size() const noexcept { return last_delta_; }
  const EvalStats& stats() const noexcept { return stats_; }

 private:
  std::size_t budget_ = 0;
  std::size_t last_delta_ = 0;
  EvalStats stats_{};
};

/// Evaluate `term` under `bindings`; nullopt if it mentions an unbound
/// variable. Throws TypeError on ill-typed operations.
std::optional<Value> eval_term(const Term& term, const Bindings& bindings,
                               const BuiltinRegistry& builtins);

/// Unify `atom`'s arguments against `tuple`'s values, extending `bindings`.
/// Restore-on-failure: on mismatch, every binding this call added is rolled
/// back before returning false, so callers can probe many tuples against one
/// environment without copying it. On success, the names of the added
/// bindings are appended to `*added_keys` (when non-null) so the caller can
/// roll them back itself after exploring the match.
bool match_atom(const Atom& atom, const Tuple& tuple, Bindings& bindings,
                const BuiltinRegistry& builtins,
                std::vector<std::string>* added_keys = nullptr);

/// Instantiate a (non-aggregate) rule head under a binding environment.
/// Throws AnalysisError on unbound head variables.
Tuple instantiate_head_atom(const HeadAtom& head, const Bindings& bindings,
                            const BuiltinRegistry& builtins);

/// Evaluates individual rules against a database.
class RuleEngine {
 public:
  explicit RuleEngine(const BuiltinRegistry& builtins = BuiltinRegistry::standard(),
                      bool use_index = true)
      : builtins_(&builtins), use_index_(use_index) {}

  using Sink = std::function<void(Tuple)>;

  /// Full evaluation of a non-aggregate rule: emit every head instantiation.
  void eval_rule(const Rule& rule, const Database& db, const Sink& sink,
                 EvalStats* stats = nullptr) const;

  /// Semi-naive step: like eval_rule but body atom `delta_index` (an index
  /// into the rule's *positive relational atoms*, in body order) ranges over
  /// `delta` instead of the full relation.
  void eval_rule_delta(const Rule& rule, const Database& db, std::size_t delta_index,
                       const TupleSet& delta, const Sink& sink,
                       EvalStats* stats = nullptr) const;

  /// Aggregate rule: full body evaluation, group by the non-aggregate head
  /// arguments, emit one tuple per group.
  void eval_agg_rule(const Rule& rule, const Database& db, const Sink& sink,
                     EvalStats* stats = nullptr) const;

  /// Positive relational atoms of a rule body, in order.
  static std::vector<const BodyAtom*> positive_atoms(const Rule& rule);

  using SolutionSink = std::function<void(const Bindings&)>;
  /// Enumerate body solutions (binding environments) instead of head tuples
  /// — used by the provenance evaluator to reconstruct premises.
  void eval_rule_solutions(const Rule& rule, const Database& db,
                           const SolutionSink& sink, EvalStats* stats = nullptr) const;
  void eval_rule_delta_solutions(const Rule& rule, const Database& db,
                                 std::size_t delta_index, const TupleSet& delta,
                                 const SolutionSink& sink,
                                 EvalStats* stats = nullptr) const;

  const BuiltinRegistry& builtins() const noexcept { return *builtins_; }

 private:
  void join(const Rule& rule, const Database& db,
            const std::optional<std::pair<std::size_t, const TupleSet*>>& delta,
            const std::function<void(const Bindings&)>& on_solution,
            EvalStats* stats) const;

  const BuiltinRegistry* builtins_;
  bool use_index_;  // probe column indexes instead of scanning (ablation hook)
};

/// Options for the centralized evaluator.
struct EvalOptions {
  bool semi_naive = true;          // false = naive re-derivation (E8 ablation)
  bool use_index = true;           // false = full-scan joins (E8 ablation)
  std::size_t max_iterations = 100000;  // fixpoint-round budget before DivergenceError
  /// Observability sinks (may be null — the default — for zero overhead).
  /// With `metrics`, the evaluator records per-rule and per-stratum series
  /// (eval/rule/<name>/{firings,derived,probes}, eval/stratum/<s>/...,
  /// eval/rounds, eval/round_delta). With `trace`, it emits nested
  /// stratum/round/rule spans in Chrome trace_event form.
  obs::Registry* metrics = nullptr;
  obs::Trace* trace = nullptr;
};

/// Result of a centralized evaluation.
struct EvalResult {
  Database database;
  EvalStats stats;
};

/// Centralized stratified bottom-up evaluator (reference semantics).
class Evaluator {
 public:
  explicit Evaluator(const BuiltinRegistry& builtins = BuiltinRegistry::standard())
      : builtins_(&builtins) {}

  /// Evaluate `program` over `base_facts` to fixpoint. Runs analyze() first;
  /// throws AnalysisError / DivergenceError accordingly.
  EvalResult run(const Program& program, const std::vector<Tuple>& base_facts,
                 const EvalOptions& options = {}) const;

  /// DRed-style incremental deletion (delete-and-rederive): remove a base
  /// fact from an already-evaluated database and restore the fixpoint —
  /// the evaluator-level model of a link failure. Over-deletes everything
  /// transitively derivable through the fact, then re-derives from the
  /// surviving tuples. Aggregate rows are recomputed from scratch in their
  /// strata. Returns the deletion statistics.
  struct RetractStats {
    std::size_t overdeleted = 0;   // tuples removed in the delete phase
    std::size_t rederived = 0;     // tuples restored by re-derivation
    EvalStats eval;
  };
  RetractStats retract(const Program& program, Database& db, const Tuple& fact,
                       const EvalOptions& options = {}) const;

 private:
  /// Stratified (semi-)naive fixpoint over whatever `db` already contains.
  void fixpoint(const Program& program, const Stratification& strat, Database& db,
                const EvalOptions& options, EvalStats& stats) const;

  const BuiltinRegistry* builtins_;
};

}  // namespace fvn::ndlog
