#include "ndlog/tuple.hpp"

#include <algorithm>

namespace fvn::ndlog {

std::string Tuple::to_string() const {
  std::string out = predicate_ + "(";
  bool first = true;
  for (const auto& v : values_) {
    if (!first) out += ",";
    first = false;
    out += v.to_string();
  }
  out += ")";
  return out;
}

std::vector<std::string> sorted_strings(const TupleSet& tuples) {
  std::vector<std::string> out;
  out.reserve(tuples.size());
  for (const auto& t : tuples) out.push_back(t.to_string());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fvn::ndlog
