#include "ndlog/catalog.hpp"

#include <stdexcept>
#include <variant>

#include "ndlog/analysis.hpp"

namespace fvn::ndlog {

Catalog Catalog::from_program(const Program& program) {
  Catalog cat;
  std::map<std::string, bool> explicit_loc;
  auto note = [&](const std::string& pred, std::size_t arity, int loc) {
    auto it = cat.infos_.find(pred);
    if (it == cat.infos_.end()) {
      PredicateInfo info;
      info.name = pred;
      info.arity = arity;
      info.loc_index = loc >= 0 ? static_cast<std::size_t>(loc) : 0;
      explicit_loc[pred] = loc >= 0;
      cat.infos_.emplace(pred, std::move(info));
      return;
    }
    if (loc < 0) return;
    if (!explicit_loc[pred]) {
      it->second.loc_index = static_cast<std::size_t>(loc);
      explicit_loc[pred] = true;
      return;
    }
    if (it->second.loc_index != static_cast<std::size_t>(loc)) {
      throw AnalysisError("predicate '" + pred + "' uses '@' at inconsistent positions");
    }
  };
  for (const auto& rule : program.rules) {
    note(rule.head.predicate, rule.head.args.size(), rule.head.loc_index);
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        note(ba->atom.predicate, ba->atom.args.size(), ba->atom.loc_index);
      }
    }
  }
  for (const auto& m : program.materializations) {
    auto it = cat.infos_.find(m.predicate);
    if (it == cat.infos_.end()) {
      PredicateInfo info;
      info.name = m.predicate;
      cat.infos_.emplace(m.predicate, std::move(info));
      it = cat.infos_.find(m.predicate);
    }
    it->second.lifetime_seconds = m.lifetime_seconds;
    it->second.max_size = m.max_size;
    it->second.key_fields = m.key_fields;
  }
  return cat;
}

bool Catalog::contains(const std::string& predicate) const {
  return infos_.count(predicate) != 0;
}

const PredicateInfo& Catalog::info(const std::string& predicate) const {
  auto it = infos_.find(predicate);
  if (it == infos_.end()) {
    throw std::out_of_range("unknown predicate '" + predicate + "'");
  }
  return it->second;
}

std::size_t Catalog::loc_index(const std::string& predicate) const {
  auto it = infos_.find(predicate);
  return it == infos_.end() ? 0 : it->second.loc_index;
}

std::vector<std::string> Catalog::predicates() const {
  std::vector<std::string> out;
  out.reserve(infos_.size());
  for (const auto& [name, info] : infos_) out.push_back(name);
  return out;
}

void Catalog::add(PredicateInfo info) { infos_[info.name] = std::move(info); }

}  // namespace fvn::ndlog
