// Static cost & cardinality analysis for NDlog programs (DESIGN.md §13).
//
// Computes, per predicate, a symbolic upper bound on the number of distinct
// tuples ever derived ("derivations"), and per rule an upper bound on body
// solutions enumerated over a whole run ("firings"), on tuples shipped
// across node boundaries ("messages"), and on wire bytes ("bytes"). Bounds
// are monomials over a small symbol vocabulary:
//
//   V        number of distinct node addresses in the run
//   V!       factorial of V (simple-path enumeration: ≤ V·V! paths)
//   A        maximum wire size of one scalar value, in bytes
//   |pred|   number of tuples externally injected into base table `pred`
//
// The model reuses the existing analyses: table-size bounds come from the
// key/FD chase (semantic.hpp) and the interval abstraction (absint.hpp);
// join fan-out follows the body-atom ordering with FD-closure pruning; and
// message classes fall out of which rules ship their heads to another
// location specifier. Three diagnostics are emitted (only by this pass):
//
//   ND0019  expensive join order    the written body order is quadratic or
//                                   worse while a provably cheaper ordering
//                                   of the same atoms exists (warning)
//   ND0020  message amplification   a rule ships tuples on an async channel
//                                   and its static message bound is
//                                   unbounded (warning)
//   ND0021  recompute-heavy agg     an aggregate whose recomputation cost
//                                   grows with its input although
//                                   incremental maintenance is statically
//                                   safe for it (note)
//
// The bounds are falsifiable: tests/test_cost_crossval.cpp runs every
// example through the evaluator and the simulator with obs metrics enabled
// and asserts measured per-rule firings and per-channel bytes stay within
// the static bounds. `plan_orders` feeds the dataflow planner's opt-in
// cost-guided join-order mode (PlanOptions::cost_order).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ndlog/ast.hpp"
#include "ndlog/diagnostics.hpp"
#include "ndlog/semantic.hpp"

namespace fvn::ndlog::cost {

// ---------------------------------------------------------------------------
// Symbolic bounds
// ---------------------------------------------------------------------------

/// One symbolic upper bound: `constant · Π sym^power · (V!)^factorial`, or
/// the distinguished unbounded element. `constant == 0` is canonical zero
/// (no symbols). Soundness of `plus` assumes every symbol evaluates to ≥ 1;
/// `evaluate` clamps accordingly.
struct Bound {
  bool unbounded = false;
  double constant = 1.0;
  std::map<std::string, int> powers;  // symbol -> exponent (> 0)
  int factorial = 0;                  // exponent of V!

  static Bound zero() { return Bound{false, 0.0, {}, 0}; }
  static Bound one() { return Bound{false, 1.0, {}, 0}; }
  static Bound count(double n) { return Bound{false, n, {}, 0}; }
  static Bound sym(const std::string& name, int power = 1);
  /// Number of simple paths reachable from any seed: ≤ V · V!.
  static Bound paths();
  static Bound top() { return Bound{true, 1.0, {}, 0}; }

  bool is_zero() const noexcept { return !unbounded && constant == 0.0; }
  /// Total symbolic degree (factorial counts as `factorial_degree_weight`).
  int degree() const noexcept;

  /// Evaluate under `env` (symbol -> value, clamped to ≥ 1). "V" also feeds
  /// the factorial part. Missing symbols evaluate to +inf (conservative);
  /// unbounded evaluates to +inf.
  double evaluate(const std::map<std::string, double>& env) const;
  void collect_symbols(std::set<std::string>& out) const;

  /// "unbounded", "0", "12", "V^2", "3*V*|link|", "V*V!".
  std::string to_string() const;
  /// Asymptotic class, constants stripped: "unbounded", "O(exp)" (any
  /// factorial part), "O(1)", "O(V^2*|link|)".
  std::string complexity_class() const;

  bool operator==(const Bound& other) const noexcept;
};

/// How much factorial weighs in `degree()` comparisons (V! dominates any
/// fixed polynomial degree we meet in practice).
inline constexpr int factorial_degree_weight = 8;

Bound times(const Bound& a, const Bound& b);
/// Sound upper bound on a + b: summed constants, pointwise-max exponents
/// (requires symbols ≥ 1 at evaluation time).
Bound plus(const Bound& a, const Bound& b);
/// Strict-weak order by asymptotic rank: unbounded > factorial > total
/// degree > per-symbol exponents > constant.
bool cheaper(const Bound& a, const Bound& b);
/// Whichever of the two valid upper bounds ranks cheaper.
Bound min_bound(const Bound& a, const Bound& b);

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

struct RuleCost {
  std::size_t rule_index = 0;
  std::string rule;        // display name ("r2" or head predicate)
  std::string head;        // head predicate
  bool ships = false;      // head crosses a location-specifier boundary
  bool aggregate = false;
  /// Body-element indices of positive atoms in the order they are joined
  /// (the written order).
  std::vector<std::size_t> order;
  /// Upper bound on distinct body solutions under the written order.
  Bound solutions;
  /// Upper bound on solutions enumerated over a whole run, including
  /// semi-naive re-enumeration slack and (for aggregates) recompute rounds.
  Bound firings;
  Bound messages;          // zero when the rule never ships
  Bound bytes;             // messages × static per-tuple wire size
  std::string message_class;  // complexity_class of `messages`; "-" if local
  /// Cheapest safe ordering found (== `order` when none is cheaper or
  /// reordering is unsafe for bit-identical fixpoints).
  std::vector<std::size_t> best_order;
  Bound best_solutions;
  /// Reordering this rule cannot change the final database: the head is not
  /// a materialized predicate whose keys drop non-FD-determined columns.
  bool reorder_safe = false;
};

struct PredicateCost {
  std::string predicate;
  bool base = false;       // no deriving non-fact rule: externally populated
  Bound derivations;       // distinct tuples ever derived/injected
};

struct CostReport {
  std::vector<PredicateCost> predicates;  // sorted by name
  std::vector<RuleCost> rules;            // program rule order, facts skipped
  Bound total_messages;
  Bound total_bytes;

  const PredicateCost* predicate(const std::string& name) const;
  const RuleCost* rule_at(std::size_t rule_index) const;
};

struct CostOptions {
  /// Exhaustive join-order search up to this many positive atoms per rule
  /// (n! permutations); larger bodies fall back to a greedy order.
  int max_exhaustive_atoms = 7;
  /// Multiplier slack applied to `solutions` to cover semi-naive
  /// re-enumeration (round 0 + per-delta-position passes).
  bool firing_slack = true;
};

/// Run the cost pass on top of an existing semantic report (the CLI reuses
/// the one `analyze` already computed). Emits ND0019–ND0021 into `sink`.
CostReport analyze(const Program& program, const SemanticReport& semantics,
                   DiagnosticSink& sink, const CostOptions& options = {});

/// Convenience overload: computes its own SemanticReport into a scratch
/// sink, so only ND0019–ND0021 land in `sink`.
CostReport analyze(const Program& program, DiagnosticSink& sink,
                   const CostOptions& options = {});

/// Deterministic JSON object (parsable by obs::json_parse): symbols,
/// per-predicate derivations, per-rule costs, totals.
std::string to_json(const CostReport& report);
/// Human-readable table for `fvn_cli analyze --cost`.
std::string to_human(const CostReport& report);
/// Graphviz DOT: predicate dependency graph annotated with derivation
/// bounds; rule edges labelled with firing bounds, shipping edges dashed.
std::string to_dot(const Program& program, const CostReport& report);

/// Per-rule body-element permutation for cost-guided planning: for every
/// rule whose cheapest safe order differs from the written one, positive
/// atoms in the cheap order followed by the remaining body elements
/// (comparisons, then negated atoms) in written order; the identity
/// permutation otherwise. Aggregate rules are never reordered.
std::vector<std::vector<std::size_t>> plan_orders(const Program& program);

}  // namespace fvn::ndlog::cost
