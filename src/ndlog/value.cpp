#include "ndlog/value.hpp"

#include <sstream>

namespace fvn::ndlog {

std::string_view to_string(ValueKind kind) noexcept {
  switch (kind) {
    case ValueKind::Nil: return "nil";
    case ValueKind::Bool: return "bool";
    case ValueKind::Int: return "int";
    case ValueKind::Double: return "double";
    case ValueKind::Str: return "str";
    case ValueKind::Addr: return "addr";
    case ValueKind::List: return "list";
  }
  return "?";
}

Value Value::boolean(bool b) noexcept {
  Value v;
  v.kind_ = ValueKind::Bool;
  v.scalar_.b = b;
  return v;
}

Value Value::integer(std::int64_t i) noexcept {
  Value v;
  v.kind_ = ValueKind::Int;
  v.scalar_.i = i;
  return v;
}

Value Value::real(double d) noexcept {
  Value v;
  v.kind_ = ValueKind::Double;
  v.scalar_.d = d;
  return v;
}

Value Value::str(std::string s) {
  Value v;
  v.kind_ = ValueKind::Str;
  v.text_ = std::make_shared<const std::string>(std::move(s));
  return v;
}

Value Value::addr(std::string node) {
  Value v;
  v.kind_ = ValueKind::Addr;
  v.text_ = std::make_shared<const std::string>(std::move(node));
  return v;
}

Value Value::list(std::vector<Value> items) {
  Value v;
  v.kind_ = ValueKind::List;
  v.list_ = std::make_shared<const std::vector<Value>>(std::move(items));
  return v;
}

namespace {
[[noreturn]] void bad_kind(const char* want, ValueKind got) {
  std::ostringstream os;
  os << "value type error: expected " << want << ", got " << to_string(got);
  throw TypeError(os.str());
}
}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) bad_kind("bool", kind_);
  return scalar_.b;
}

std::int64_t Value::as_int() const {
  if (!is_int()) bad_kind("int", kind_);
  return scalar_.i;
}

double Value::as_double() const {
  if (is_int()) return static_cast<double>(scalar_.i);
  if (!is_double()) bad_kind("double", kind_);
  return scalar_.d;
}

const std::string& Value::as_str() const {
  if (!is_str()) bad_kind("str", kind_);
  return *text_;
}

const std::string& Value::as_addr() const {
  if (!is_addr()) bad_kind("addr", kind_);
  return *text_;
}

const std::string& Value::as_text() const {
  if (!is_str() && !is_addr()) bad_kind("str|addr", kind_);
  return *text_;
}

const std::vector<Value>& Value::as_list() const {
  if (!is_list()) bad_kind("list", kind_);
  return *list_;
}

std::strong_ordering Value::operator<=>(const Value& other) const {
  if (kind_ != other.kind_) return kind_ <=> other.kind_;
  switch (kind_) {
    case ValueKind::Nil: return std::strong_ordering::equal;
    case ValueKind::Bool: return scalar_.b <=> other.scalar_.b;
    case ValueKind::Int: return scalar_.i <=> other.scalar_.i;
    case ValueKind::Double: {
      // Doubles only flow from user programs with finite metrics; order by
      // bit-faithful partial order collapsed to strong ordering.
      if (scalar_.d < other.scalar_.d) return std::strong_ordering::less;
      if (scalar_.d > other.scalar_.d) return std::strong_ordering::greater;
      return std::strong_ordering::equal;
    }
    case ValueKind::Str:
    case ValueKind::Addr: {
      const int c = text_->compare(*other.text_);
      if (c < 0) return std::strong_ordering::less;
      if (c > 0) return std::strong_ordering::greater;
      return std::strong_ordering::equal;
    }
    case ValueKind::List: {
      const auto& a = *list_;
      const auto& b = *other.list_;
      const std::size_t n = std::min(a.size(), b.size());
      for (std::size_t i = 0; i < n; ++i) {
        const auto c = a[i] <=> b[i];
        if (c != std::strong_ordering::equal) return c;
      }
      return a.size() <=> b.size();
    }
  }
  return std::strong_ordering::equal;
}

bool Value::operator==(const Value& other) const {
  return (*this <=> other) == std::strong_ordering::equal;
}

namespace {
bool both_numeric(const Value& a, const Value& b) {
  return a.is_numeric() && b.is_numeric();
}
}  // namespace

Value Value::add(const Value& rhs) const {
  if (is_list() && rhs.is_list()) {  // list concatenation
    std::vector<Value> out = as_list();
    const auto& r = rhs.as_list();
    out.insert(out.end(), r.begin(), r.end());
    return Value::list(std::move(out));
  }
  if ((is_str() && rhs.is_str())) return Value::str(as_str() + rhs.as_str());
  if (!both_numeric(*this, rhs)) bad_kind("numeric", kind_);
  if (is_int() && rhs.is_int()) return Value::integer(as_int() + rhs.as_int());
  return Value::real(as_double() + rhs.as_double());
}

Value Value::sub(const Value& rhs) const {
  if (!both_numeric(*this, rhs)) bad_kind("numeric", kind_);
  if (is_int() && rhs.is_int()) return Value::integer(as_int() - rhs.as_int());
  return Value::real(as_double() - rhs.as_double());
}

Value Value::mul(const Value& rhs) const {
  if (!both_numeric(*this, rhs)) bad_kind("numeric", kind_);
  if (is_int() && rhs.is_int()) return Value::integer(as_int() * rhs.as_int());
  return Value::real(as_double() * rhs.as_double());
}

Value Value::div(const Value& rhs) const {
  if (!both_numeric(*this, rhs)) bad_kind("numeric", kind_);
  if (is_int() && rhs.is_int()) {
    if (rhs.as_int() == 0) throw TypeError("integer division by zero");
    return Value::integer(as_int() / rhs.as_int());
  }
  if (rhs.as_double() == 0.0) throw TypeError("division by zero");
  return Value::real(as_double() / rhs.as_double());
}

Value Value::mod(const Value& rhs) const {
  if (!is_int() || !rhs.is_int()) bad_kind("int", kind_);
  if (rhs.as_int() == 0) throw TypeError("modulo by zero");
  return Value::integer(as_int() % rhs.as_int());
}

std::string Value::to_string() const {
  switch (kind_) {
    case ValueKind::Nil: return "nil";
    case ValueKind::Bool: return scalar_.b ? "true" : "false";
    case ValueKind::Int: return std::to_string(scalar_.i);
    case ValueKind::Double: {
      std::ostringstream os;
      os << scalar_.d;
      return os.str();
    }
    case ValueKind::Str: return "\"" + *text_ + "\"";
    case ValueKind::Addr: return *text_;
    case ValueKind::List: {
      std::string out = "[";
      bool first = true;
      for (const auto& v : *list_) {
        if (!first) out += ",";
        first = false;
        out += v.to_string();
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

std::size_t Value::hash() const noexcept {
  constexpr std::size_t kFnvOffset = 1469598103934665603ULL;
  constexpr std::size_t kFnvPrime = 1099511628211ULL;
  std::size_t h = kFnvOffset;
  auto mix = [&h](std::size_t x) {
    h ^= x;
    h *= kFnvPrime;
  };
  mix(static_cast<std::size_t>(kind_));
  switch (kind_) {
    case ValueKind::Nil: break;
    case ValueKind::Bool: mix(scalar_.b ? 1u : 0u); break;
    case ValueKind::Int: mix(static_cast<std::size_t>(scalar_.i)); break;
    case ValueKind::Double: {
      double d = scalar_.d;
      std::size_t bits = 0;
      static_assert(sizeof(bits) >= sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(d));
      mix(bits);
      break;
    }
    case ValueKind::Str:
    case ValueKind::Addr:
      for (char c : *text_) mix(static_cast<unsigned char>(c));
      break;
    case ValueKind::List:
      for (const auto& v : *list_) mix(v.hash());
      break;
  }
  return h;
}

std::size_t hash_values(const std::vector<Value>& values) noexcept {
  std::size_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& v : values) {
    h ^= v.hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace fvn::ndlog
