#include "ndlog/query.hpp"

#include <algorithm>
#include <deque>

#include "ndlog/analysis.hpp"
#include "ndlog/parser.hpp"

namespace fvn::ndlog {

std::set<std::string> relevant_predicates(const Program& program,
                                          const std::string& goal_predicate) {
  // Backward reachability: head -> body edges.
  std::map<std::string, std::set<std::string>> depends_on;
  for (const auto& rule : program.rules) {
    auto& deps = depends_on[rule.head.predicate];
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        deps.insert(ba->atom.predicate);
      }
    }
  }
  std::set<std::string> relevant{goal_predicate};
  std::deque<std::string> frontier{goal_predicate};
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    auto it = depends_on.find(current);
    if (it == depends_on.end()) continue;
    for (const auto& dep : it->second) {
      if (relevant.insert(dep).second) frontier.push_back(dep);
    }
  }
  return relevant;
}

Program restrict_to_goal(const Program& program, const std::string& goal_predicate) {
  const auto relevant = relevant_predicates(program, goal_predicate);
  Program out;
  out.name = program.name + "_query_" + goal_predicate;
  for (const auto& m : program.materializations) {
    if (relevant.count(m.predicate)) out.materializations.push_back(m);
  }
  for (const auto& rule : program.rules) {
    if (relevant.count(rule.head.predicate)) out.rules.push_back(rule);
  }
  return out;
}

QueryResult query(const Program& program, const Atom& goal,
                  const std::vector<Tuple>& facts, const QueryOptions& options,
                  const BuiltinRegistry& builtins) {
  QueryResult result;
  result.rules_total = program.rules.size();
  Program restricted = restrict_to_goal(program, goal.predicate);
  result.rules_relevant = restricted.rules.size();

  Evaluator eval(builtins);
  auto evaluated = eval.run(restricted, facts, options.eval);
  result.stats = evaluated.stats;

  for (const auto& t : evaluated.database.relation(goal.predicate)) {
    Bindings env;
    if (!match_atom(goal, t, env, builtins)) continue;
    result.answers.insert(t);
    result.bindings.push_back(std::move(env));
  }
  return result;
}

QueryResult query(const Program& program, std::string_view goal_text,
                  const std::vector<Tuple>& facts, const QueryOptions& options,
                  const BuiltinRegistry& builtins) {
  // Parse "pred(arg,...)" by wrapping it as a rule body of a dummy program.
  const std::string wrapped = "q__(@X) :- " + std::string(goal_text) + ", X = n0.";
  Program parsed = parse_program(wrapped, "goal");
  const auto* ba = std::get_if<BodyAtom>(&parsed.rules.at(0).body.at(0));
  if (ba == nullptr) {
    // The goal parsed as a comparison, not an atom. Report its position in
    // the caller's goal text by undoing the "q__(@X) :- " wrapper offset.
    const auto* cmp = std::get_if<Comparison>(&parsed.rules.at(0).body.at(0));
    const int col =
        cmp != nullptr ? std::max(1, cmp->loc.column - 11) : 1;
    throw ParseError("goal must be a single atom", 1, col);
  }
  return query(program, ba->atom, facts, options, builtins);
}

}  // namespace fvn::ndlog
