#include "ndlog/parser.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

namespace fvn::ndlog {

ParseError::ParseError(const std::string& message, int line, int column)
    : std::runtime_error(message + " (line " + std::to_string(line) + ", col " +
                         std::to_string(column) + ")"),
      line_(line),
      column_(column) {}

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  std::size_t i = 0;
  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  // Start position of the token currently being lexed (multi-character
  // tokens advance line/col past their end before the Token is built).
  int tok_line = 1;
  int tok_col = 1;
  auto make = [&](TokenKind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = tok_line;
    t.column = tok_col;
    return t;
  };

  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') advance();
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      const int open_line = line;
      const int open_col = col;
      advance(2);
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) advance();
      if (i + 1 >= src.size()) {
        throw ParseError("unterminated block comment", open_line, open_col);
      }
      advance(2);
      continue;
    }
    tok_line = line;
    tok_col = col;
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t start = i;
      bool is_double = false;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) advance();
      if (i + 1 < src.size() && src[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(src[i + 1]))) {
        is_double = true;
        advance();
        while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) advance();
      }
      Token t = make(TokenKind::Number, std::string(src.substr(start, i - start)));
      t.number_is_int = !is_double;
      if (is_double) {
        try {
          t.number = std::stod(t.text);
        } catch (const std::exception&) {
          throw ParseError("bad number literal '" + t.text + "'", tok_line, tok_col);
        }
      } else {
        std::int64_t v = 0;
        auto [ptr, ec] = std::from_chars(t.text.data(), t.text.data() + t.text.size(), v);
        (void)ptr;
        if (ec != std::errc{}) {
          throw ParseError("bad integer literal '" + t.text + "'", tok_line, tok_col);
        }
        t.int_value = v;
        t.number = static_cast<double>(v);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < src.size() && is_ident_char(src[i])) advance();
      std::string text(src.substr(start, i - start));
      const bool is_var = std::isupper(static_cast<unsigned char>(text[0])) || text[0] == '_';
      out.push_back(make(is_var ? TokenKind::Variable : TokenKind::Ident, std::move(text)));
      continue;
    }
    if (c == '"') {
      advance();
      std::string text;
      while (i < src.size() && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < src.size()) {
          advance();
          switch (src[i]) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            default: text += src[i]; break;
          }
          advance();
          continue;
        }
        text += src[i];
        advance();
      }
      if (i >= src.size()) {
        throw ParseError("unterminated string literal", tok_line, tok_col);
      }
      advance();  // closing quote
      out.push_back(make(TokenKind::String, std::move(text)));
      continue;
    }
    auto two = (i + 1 < src.size()) ? src.substr(i, 2) : std::string_view{};
    if (two == ":-") { out.push_back(make(TokenKind::If, ":-")); advance(2); continue; }
    if (two == ":=") { out.push_back(make(TokenKind::Assign, ":=")); advance(2); continue; }
    if (two == "==") { out.push_back(make(TokenKind::Eq, "==")); advance(2); continue; }
    if (two == "!=") { out.push_back(make(TokenKind::Ne, "!=")); advance(2); continue; }
    if (two == "<=") { out.push_back(make(TokenKind::Le, "<=")); advance(2); continue; }
    if (two == ">=") { out.push_back(make(TokenKind::Ge, ">=")); advance(2); continue; }
    switch (c) {
      case '@': out.push_back(make(TokenKind::At, "@")); advance(); continue;
      case ',': out.push_back(make(TokenKind::Comma, ",")); advance(); continue;
      case '(': out.push_back(make(TokenKind::LParen, "(")); advance(); continue;
      case ')': out.push_back(make(TokenKind::RParen, ")")); advance(); continue;
      case '[': out.push_back(make(TokenKind::LBracket, "[")); advance(); continue;
      case ']': out.push_back(make(TokenKind::RBracket, "]")); advance(); continue;
      case '.': out.push_back(make(TokenKind::Period, ".")); advance(); continue;
      case '=': out.push_back(make(TokenKind::Eq, "=")); advance(); continue;
      case '<': out.push_back(make(TokenKind::Lt, "<")); advance(); continue;
      case '>': out.push_back(make(TokenKind::Gt, ">")); advance(); continue;
      case '+': out.push_back(make(TokenKind::Plus, "+")); advance(); continue;
      case '-': out.push_back(make(TokenKind::Minus, "-")); advance(); continue;
      case '*': out.push_back(make(TokenKind::Star, "*")); advance(); continue;
      case '/': out.push_back(make(TokenKind::Slash, "/")); advance(); continue;
      case '%': out.push_back(make(TokenKind::Percent, "%")); advance(); continue;
      case '!': out.push_back(make(TokenKind::Bang, "!")); advance(); continue;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", line, col);
    }
  }
  out.push_back(Token{TokenKind::End, "", 0.0, true, 0, line, col});
  return out;
}

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program parse_program(std::string name) {
    Program prog;
    prog.name = std::move(name);
    while (!at(TokenKind::End)) {
      if (at(TokenKind::Ident) && peek().text == "materialize") {
        prog.materializations.push_back(parse_materialize());
      } else {
        prog.rules.push_back(parse_rule());
      }
    }
    return prog;
  }

  Tuple parse_single_fact() {
    Atom atom = parse_atom();
    if (at(TokenKind::Period)) next();
    expect(TokenKind::End, "end of fact");
    std::vector<Value> values;
    values.reserve(atom.args.size());
    for (const auto& t : atom.args) {
      if (t->kind != Term::Kind::Const) {
        throw ParseError("fact arguments must be constants", atom.loc.line,
                         atom.loc.column);
      }
      values.push_back(t->constant);
    }
    return Tuple(atom.predicate, std::move(values));
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  bool at(TokenKind k) const { return peek().kind == k; }
  Token next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  Token expect(TokenKind k, const char* what) {
    if (!at(k)) {
      throw ParseError(std::string("expected ") + what + ", found '" + peek().text + "'",
                       peek().line, peek().column);
    }
    return next();
  }

  Materialize parse_materialize() {
    const Token kw = next();  // 'materialize'
    expect(TokenKind::LParen, "'('");
    Materialize m;
    m.loc = SourceLoc{kw.line, kw.column};
    m.predicate = expect(TokenKind::Ident, "predicate name").text;
    expect(TokenKind::Comma, "','");
    m.lifetime_seconds = parse_inf_or_number();
    expect(TokenKind::Comma, "','");
    if (auto size = parse_inf_or_number()) m.max_size = static_cast<std::size_t>(*size);
    expect(TokenKind::Comma, "','");
    Token keys = expect(TokenKind::Ident, "'keys'");
    if (keys.text != "keys") throw ParseError("expected 'keys'", keys.line, keys.column);
    expect(TokenKind::LParen, "'('");
    if (!at(TokenKind::RParen)) {
      for (;;) {
        Token n = expect(TokenKind::Number, "key field index");
        m.key_fields.push_back(static_cast<std::size_t>(n.int_value));
        if (!at(TokenKind::Comma)) break;
        next();
      }
    }
    expect(TokenKind::RParen, "')'");
    expect(TokenKind::RParen, "')'");
    expect(TokenKind::Period, "'.'");
    return m;
  }

  std::optional<double> parse_inf_or_number() {
    if (at(TokenKind::Ident) && peek().text == "infinity") {
      next();
      return std::nullopt;
    }
    Token n = expect(TokenKind::Number, "number or 'infinity'");
    return n.number;
  }

  Rule parse_rule() {
    Rule rule;
    rule.loc = SourceLoc{peek().line, peek().column};
    // Optional rule label: an identifier immediately followed by another
    // identifier that begins the head atom ("r1 path(...) :- ...").
    if (at(TokenKind::Ident) && peek(1).kind == TokenKind::Ident) {
      rule.name = next().text;
    }
    rule.head = parse_head_atom();
    if (at(TokenKind::If)) {
      next();
      for (;;) {
        rule.body.push_back(parse_body_elem());
        if (at(TokenKind::Comma)) {
          next();
          continue;
        }
        break;
      }
    }
    expect(TokenKind::Period, "'.' at end of rule");
    return rule;
  }

  HeadAtom parse_head_atom() {
    HeadAtom head;
    const Token name = expect(TokenKind::Ident, "predicate name");
    head.predicate = name.text;
    head.loc = SourceLoc{name.line, name.column};
    expect(TokenKind::LParen, "'('");
    std::size_t index = 0;
    if (!at(TokenKind::RParen)) {
      for (;;) {
        bool located = false;
        if (at(TokenKind::At)) {
          next();
          located = true;
        }
        head.args.push_back(parse_head_arg());
        if (located) head.loc_index = static_cast<int>(index);
        ++index;
        if (!at(TokenKind::Comma)) break;
        next();
      }
    }
    expect(TokenKind::RParen, "')'");
    return head;
  }

  HeadArg parse_head_arg() {
    if (at(TokenKind::Ident)) {
      const std::string& t = peek().text;
      if ((t == "min" || t == "max" || t == "count" || t == "sum") &&
          peek(1).kind == TokenKind::Lt) {
        AggKind kind = t == "min"   ? AggKind::Min
                       : t == "max" ? AggKind::Max
                       : t == "count" ? AggKind::Count
                                      : AggKind::Sum;
        next();  // agg name
        next();  // '<'
        std::string var = expect(TokenKind::Variable, "aggregate variable").text;
        expect(TokenKind::Gt, "'>'");
        return HeadArg::aggregate(kind, std::move(var));
      }
    }
    return HeadArg::plain(parse_expr());
  }

  Atom parse_atom() {
    Atom atom;
    const Token name = expect(TokenKind::Ident, "predicate name");
    atom.predicate = name.text;
    atom.loc = SourceLoc{name.line, name.column};
    expect(TokenKind::LParen, "'('");
    std::size_t index = 0;
    if (!at(TokenKind::RParen)) {
      for (;;) {
        if (at(TokenKind::At)) {
          next();
          atom.loc_index = static_cast<int>(index);
        }
        atom.args.push_back(parse_expr());
        ++index;
        if (!at(TokenKind::Comma)) break;
        next();
      }
    }
    expect(TokenKind::RParen, "')'");
    return atom;
  }

  BodyElem parse_body_elem() {
    const SourceLoc elem_loc{peek().line, peek().column};
    if (at(TokenKind::Bang)) {
      next();
      BodyAtom ba;
      ba.negated = true;
      ba.atom = parse_atom();
      return ba;
    }
    // A relational atom begins with `ident (` and is not followed by a
    // comparison operator (which would make it a function-call expression,
    // e.g. `f_inPath(P2,S)=false`).
    if (at(TokenKind::Ident) && peek(1).kind == TokenKind::LParen) {
      const std::size_t save = pos_;
      Atom atom = parse_atom();
      if (!is_cmp(peek().kind) && peek().kind != TokenKind::Assign) {
        BodyAtom ba;
        ba.atom = std::move(atom);
        return ba;
      }
      pos_ = save;  // it was an expression; reparse as comparison
    }
    TermPtr lhs = parse_expr();
    if (at(TokenKind::Assign)) {
      next();
      Comparison cmp;
      cmp.op = CmpOp::Eq;
      cmp.lhs = std::move(lhs);
      cmp.rhs = parse_expr();
      cmp.loc = elem_loc;
      return cmp;
    }
    if (!is_cmp(peek().kind)) {
      throw ParseError("expected comparison operator after expression", peek().line,
                       peek().column);
    }
    Comparison cmp;
    cmp.op = cmp_op(next().kind);
    cmp.lhs = std::move(lhs);
    cmp.rhs = parse_expr();
    cmp.loc = elem_loc;
    return cmp;
  }

  static bool is_cmp(TokenKind k) {
    switch (k) {
      case TokenKind::Eq:
      case TokenKind::Ne:
      case TokenKind::Lt:
      case TokenKind::Le:
      case TokenKind::Gt:
      case TokenKind::Ge:
        return true;
      default:
        return false;
    }
  }
  static CmpOp cmp_op(TokenKind k) {
    switch (k) {
      case TokenKind::Eq: return CmpOp::Eq;
      case TokenKind::Ne: return CmpOp::Ne;
      case TokenKind::Lt: return CmpOp::Lt;
      case TokenKind::Le: return CmpOp::Le;
      case TokenKind::Gt: return CmpOp::Gt;
      case TokenKind::Ge: return CmpOp::Ge;
      default: return CmpOp::Eq;
    }
  }

  TermPtr parse_expr() {
    TermPtr lhs = parse_term();
    while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
      BinOp op = at(TokenKind::Plus) ? BinOp::Add : BinOp::Sub;
      next();
      lhs = Term::binary(op, std::move(lhs), parse_term());
    }
    return lhs;
  }

  TermPtr parse_term() {
    TermPtr lhs = parse_factor();
    while (at(TokenKind::Star) || at(TokenKind::Slash) || at(TokenKind::Percent)) {
      BinOp op = at(TokenKind::Star)    ? BinOp::Mul
                 : at(TokenKind::Slash) ? BinOp::Div
                                        : BinOp::Mod;
      next();
      lhs = Term::binary(op, std::move(lhs), parse_factor());
    }
    return lhs;
  }

  TermPtr parse_factor() {
    if (at(TokenKind::Number)) {
      Token n = next();
      return Term::constant_of(n.number_is_int ? Value::integer(n.int_value)
                                               : Value::real(n.number));
    }
    if (at(TokenKind::Minus)) {
      next();
      Token n = expect(TokenKind::Number, "number after unary minus");
      return Term::constant_of(n.number_is_int ? Value::integer(-n.int_value)
                                               : Value::real(-n.number));
    }
    if (at(TokenKind::String)) return Term::constant_of(Value::str(next().text));
    if (at(TokenKind::Variable)) return Term::var(next().text);
    if (at(TokenKind::LParen)) {
      next();
      TermPtr inner = parse_expr();
      expect(TokenKind::RParen, "')'");
      return inner;
    }
    if (at(TokenKind::LBracket)) {
      next();
      std::vector<TermPtr> items;
      if (!at(TokenKind::RBracket)) {
        for (;;) {
          items.push_back(parse_expr());
          if (!at(TokenKind::Comma)) break;
          next();
        }
      }
      expect(TokenKind::RBracket, "']'");
      // Constant-fold fully-constant list literals; otherwise a list
      // constructor function.
      bool all_const = true;
      for (const auto& t : items) all_const = all_const && t->kind == Term::Kind::Const;
      if (all_const) {
        std::vector<Value> values;
        values.reserve(items.size());
        for (const auto& t : items) values.push_back(t->constant);
        return Term::constant_of(Value::list(std::move(values)));
      }
      return Term::func("f_list", std::move(items));
    }
    if (at(TokenKind::Ident)) {
      Token id = next();
      if (id.text == "true") return Term::constant_of(Value::boolean(true));
      if (id.text == "false") return Term::constant_of(Value::boolean(false));
      if (at(TokenKind::LParen)) {
        next();
        std::vector<TermPtr> args;
        if (!at(TokenKind::RParen)) {
          for (;;) {
            args.push_back(parse_expr());
            if (!at(TokenKind::Comma)) break;
            next();
          }
        }
        expect(TokenKind::RParen, "')'");
        return Term::func(id.text, std::move(args));
      }
      // Bare lower-case identifier in expression position: an address constant.
      return Term::constant_of(Value::addr(id.text));
    }
    throw ParseError("expected expression, found '" + peek().text + "'", peek().line,
                     peek().column);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse_program(std::string_view source, std::string program_name) {
  Parser parser(tokenize(source));
  return parser.parse_program(std::move(program_name));
}

Tuple parse_fact(std::string_view source) {
  Parser parser(tokenize(source));
  return parser.parse_single_fact();
}

}  // namespace fvn::ndlog
