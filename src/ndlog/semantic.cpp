#include "ndlog/semantic.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "ndlog/analysis.hpp"
#include "obs/metrics.hpp"

namespace fvn::ndlog {

namespace {

const std::string& var_name(const TermPtr& t) {
  static const std::string kEmpty;
  if (t && t->kind == Term::Kind::Var) return t->name;
  return kEmpty;
}

std::map<std::string, std::size_t> arities_of(const Program& program) {
  std::map<std::string, std::size_t> arity;
  for (const auto& rule : program.rules) {
    arity.emplace(rule.head.predicate, rule.head.args.size());
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        arity.emplace(ba->atom.predicate, ba->atom.args.size());
      }
    }
  }
  return arity;
}

std::string join_names(const std::set<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

// -------------------------------------------------------------------------
// Tarjan SCC over the predicate dependency graph (head → body edges).
// Components are emitted dependencies-first.
// -------------------------------------------------------------------------

struct SccResult {
  std::vector<std::vector<std::string>> components;
  std::map<std::string, int> component_of;
  std::set<std::string> recursive;  // |scc| > 1 or self-edge
};

SccResult compute_sccs(const Program& program) {
  std::map<std::string, std::set<std::string>> adj;
  std::set<std::string> self_loop;
  for (const auto& p : predicates_of(program)) adj[p];
  for (const auto& e : dependency_edges(program)) {
    adj[e.head].insert(e.body);
    if (e.head == e.body) self_loop.insert(e.head);
  }

  SccResult result;
  std::map<std::string, int> index;
  std::map<std::string, int> lowlink;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  int next_index = 0;

  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack.insert(v);
        for (const auto& w : adj[v]) {
          if (index.find(w) == index.end()) {
            strongconnect(w);
            lowlink[v] = std::min(lowlink[v], lowlink[w]);
          } else if (on_stack.count(w) != 0) {
            lowlink[v] = std::min(lowlink[v], index[w]);
          }
        }
        if (lowlink[v] == index[v]) {
          std::vector<std::string> comp;
          while (true) {
            const std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            comp.push_back(w);
            if (w == v) break;
          }
          std::sort(comp.begin(), comp.end());
          const int id = static_cast<int>(result.components.size());
          for (const auto& m : comp) result.component_of[m] = id;
          if (comp.size() > 1 || self_loop.count(v) != 0) {
            for (const auto& m : comp) result.recursive.insert(m);
          }
          result.components.push_back(std::move(comp));
        }
      };
  for (const auto& [pred, _] : adj) {
    if (index.find(pred) == index.end()) strongconnect(pred);
  }
  return result;
}

// -------------------------------------------------------------------------
// Divergence prediction (ND0015)
// -------------------------------------------------------------------------

bool is_const_bool(const TermPtr& t, bool value) {
  return t && t->kind == Term::Kind::Const && t->constant.is_bool() &&
         t->constant.as_bool() == value;
}

bool is_func_named(const TermPtr& t, std::initializer_list<const char*> names) {
  if (!t || t->kind != Term::Kind::Func) return false;
  for (const char* n : names) {
    if (t->name == n) return true;
  }
  return false;
}

/// `f_inPath(...) = false` / `f_member(...) = false` (either orientation,
/// also `!= true`): the idiom that makes path recursion terminate on cyclic
/// topologies.
bool is_cycle_guard(const Comparison& cmp) {
  const auto guard = [](const TermPtr& fn, const TermPtr& cst, CmpOp op) {
    if (!is_func_named(fn, {"f_inPath", "f_member"})) return false;
    return (op == CmpOp::Eq && is_const_bool(cst, false)) ||
           (op == CmpOp::Ne && is_const_bool(cst, true));
  };
  return guard(cmp.lhs, cmp.rhs, cmp.op) || guard(cmp.rhs, cmp.lhs, cmp.op);
}

/// Per-rule context for growth detection: which variables originate from
/// in-component body atoms, resolved through `V = expr` binding chains.
class GrowthScan {
 public:
  GrowthScan(const Rule& rule, const std::set<std::string>& scc) {
    for (const auto& elem : rule.body) {
      const auto* ba = std::get_if<BodyAtom>(&elem);
      if (ba == nullptr || ba->negated) continue;
      const bool in_scc = scc.count(ba->atom.predicate) != 0;
      for (const auto& arg : ba->atom.args) {
        const std::string& v = var_name(arg);
        if (v.empty()) continue;
        atom_vars_.insert(v);
        if (in_scc) scc_vars_.insert(v);
      }
    }
    for (const auto& elem : rule.body) {
      const auto* cmp = std::get_if<Comparison>(&elem);
      if (cmp == nullptr || cmp->op != CmpOp::Eq) continue;
      const std::string& lv = var_name(cmp->lhs);
      const std::string& rv = var_name(cmp->rhs);
      if (!lv.empty() && atom_vars_.count(lv) == 0) {
        bindings_.emplace(lv, cmp->rhs.get());
      } else if (!rv.empty() && atom_vars_.count(rv) == 0) {
        bindings_.emplace(rv, cmp->lhs.get());
      }
    }
  }

  /// Does evaluating `term` involve a value carried around the cycle?
  bool has_scc_origin(const Term& term, std::set<std::string>& visiting) const {
    if (term.kind == Term::Kind::Var) {
      if (scc_vars_.count(term.name) != 0) return true;
      if (atom_vars_.count(term.name) != 0) return false;
      auto it = bindings_.find(term.name);
      if (it == bindings_.end() || visiting.count(term.name) != 0) return false;
      visiting.insert(term.name);
      return has_scc_origin(*it->second, visiting);
    }
    for (const auto& a : term.args) {
      if (a && has_scc_origin(*a, visiting)) return true;
    }
    return false;
  }

  /// Does `term` *grow* a cycle-carried value (arithmetic accumulation or
  /// path concatenation)?
  bool grows(const Term& term, std::set<std::string>& visiting) const {
    std::set<std::string> origin_visiting;
    switch (term.kind) {
      case Term::Kind::Binary:
        if (term.op == BinOp::Add || term.op == BinOp::Mul) {
          return has_scc_origin(term, origin_visiting);
        }
        return false;
      case Term::Kind::Func:
        if (term.name == "f_concatPath" || term.name == "f_append") {
          return has_scc_origin(term, origin_visiting);
        }
        return false;
      case Term::Kind::Var: {
        if (atom_vars_.count(term.name) != 0) return false;
        auto it = bindings_.find(term.name);
        if (it == bindings_.end() || visiting.count(term.name) != 0) return false;
        visiting.insert(term.name);
        return grows(*it->second, visiting);
      }
      default:
        return false;
    }
  }

 private:
  std::set<std::string> atom_vars_;  // bound by any positive body atom
  std::set<std::string> scc_vars_;   // bound by an in-component body atom
  std::map<std::string, const Term*> bindings_;  // V = expr chains
};

/// Is the head variable `v` bounded above by some comparison in the rule
/// (evaluated under the rule's refined variable abstraction)? Covers the
/// `C < 1000` / `D < 100` termination idiom.
bool bounded_above_by_comparison(const Rule& rule, const std::string& v,
                                 const std::map<std::string, absint::AbstractValue>& vars) {
  for (const auto& elem : rule.body) {
    const auto* cmp = std::get_if<Comparison>(&elem);
    if (cmp == nullptr) continue;
    const std::string& lv = var_name(cmp->lhs);
    const std::string& rv = var_name(cmp->rhs);
    if (lv == v && (cmp->op == CmpOp::Lt || cmp->op == CmpOp::Le)) {
      const auto b = absint::eval_term(*cmp->rhs, vars);
      if (b.is_num() && b.num.bounded_above()) return true;
    }
    if (rv == v && (cmp->op == CmpOp::Gt || cmp->op == CmpOp::Ge)) {
      const auto b = absint::eval_term(*cmp->lhs, vars);
      if (b.is_num() && b.num.bounded_above()) return true;
    }
  }
  return false;
}

// -------------------------------------------------------------------------
// Functional-dependency inference (ND0017)
// -------------------------------------------------------------------------

bool is_injective_builtin(const std::string& name) {
  // Reconstructible constructors: the output determines every input.
  return name == "f_init" || name == "f_concatPath" || name == "f_append" ||
         name == "f_list";
}

/// All vars of `term` are in `determined` (constants trivially qualify).
bool fully_determined(const Term& term, const std::set<std::string>& determined) {
  if (term.kind == Term::Kind::Var) return determined.count(term.name) != 0;
  for (const auto& a : term.args) {
    if (a && !fully_determined(*a, determined)) return false;
  }
  return true;
}

/// Mark the variables of `term` determined where the term's value pins them
/// down: a bare variable, an injective constructor's arguments, or the
/// non-constant side of an add/sub with a constant.
void invert_into(const Term& term, std::set<std::string>& determined) {
  switch (term.kind) {
    case Term::Kind::Var:
      determined.insert(term.name);
      return;
    case Term::Kind::Func:
      if (is_injective_builtin(term.name)) {
        for (const auto& a : term.args) {
          if (a) invert_into(*a, determined);
        }
      }
      return;
    case Term::Kind::Binary:
      if (term.op == BinOp::Add || term.op == BinOp::Sub) {
        const bool l_const = term.args[0]->kind == Term::Kind::Const;
        const bool r_const = term.args[1]->kind == Term::Kind::Const;
        if (l_const && !r_const) invert_into(*term.args[1], determined);
        if (r_const && !l_const) invert_into(*term.args[0], determined);
      }
      return;
    default:
      return;
  }
}

using FdMap = std::map<std::string, std::vector<Fd>>;

/// Resolve a head term to the constructor that produces it: a constant, a
/// function application (directly or through a `Var = f(...)`/`Var = const`
/// body equality), or nullptr when the value is an opaque variable.
const Term* resolve_constructor(const Rule& rule, const TermPtr& t) {
  if (!t) return nullptr;
  if (t->kind == Term::Kind::Const || t->kind == Term::Kind::Func) return t.get();
  if (t->kind != Term::Kind::Var) return nullptr;
  for (const auto& elem : rule.body) {
    const auto* cmp = std::get_if<Comparison>(&elem);
    if (cmp == nullptr || cmp->op != CmpOp::Eq) continue;
    const Term* lhs = cmp->lhs.get();
    const Term* rhs = cmp->rhs.get();
    for (int flip = 0; flip < 2; ++flip) {
      if (lhs != nullptr && rhs != nullptr && lhs->kind == Term::Kind::Var &&
          lhs->name == t->name &&
          (rhs->kind == Term::Kind::Const || rhs->kind == Term::Kind::Func)) {
        return rhs;
      }
      std::swap(lhs, rhs);
    }
  }
  return nullptr;
}

/// True when `rule` merely copies an existing tuple of its own head predicate
/// through the FD: the dependent head term is the very variable sitting at
/// the dependent position of a positive same-predicate body atom, and every
/// determinant position carries the identical variable (or equal constant) in
/// head and body. Such a rule can never introduce a fresh dependent value for
/// a determinant, so it is consistent with any other defining rule.
bool fd_copy_rule(const Rule& rule, const Fd& fd) {
  if (static_cast<std::size_t>(fd.dependent) >= rule.head.args.size()) return false;
  const auto& dep = rule.head.args[static_cast<std::size_t>(fd.dependent)];
  if (dep.is_agg() || !dep.term || dep.term->kind != Term::Kind::Var) return false;
  for (const auto& elem : rule.body) {
    const auto* ba = std::get_if<BodyAtom>(&elem);
    if (ba == nullptr || ba->negated || ba->atom.predicate != rule.head.predicate) {
      continue;
    }
    if (static_cast<std::size_t>(fd.dependent) >= ba->atom.args.size()) continue;
    const auto& bdep = ba->atom.args[static_cast<std::size_t>(fd.dependent)];
    if (!bdep || bdep->kind != Term::Kind::Var || bdep->name != dep.term->name) {
      continue;
    }
    bool dets_match = true;
    for (const int p : fd.determinant) {
      if (static_cast<std::size_t>(p) >= rule.head.args.size() ||
          static_cast<std::size_t>(p) >= ba->atom.args.size()) {
        dets_match = false;
        break;
      }
      const auto& h = rule.head.args[static_cast<std::size_t>(p)];
      const auto& b = ba->atom.args[static_cast<std::size_t>(p)];
      if (h.is_agg() || !h.term || !b) { dets_match = false; break; }
      const bool same_var = h.term->kind == Term::Kind::Var &&
                            b->kind == Term::Kind::Var &&
                            h.term->name == b->name;
      const bool same_const = h.term->kind == Term::Kind::Const &&
                              b->kind == Term::Kind::Const &&
                              h.term->constant == b->constant;
      if (!same_var && !same_const) { dets_match = false; break; }
    }
    if (dets_match) return true;
  }
  return false;
}

/// True when two defining rules can never derive tuples that agree on the
/// FD's determinant: some determinant position is built by provably disjoint
/// constructors (distinct constants, distinct function symbols, or a constant
/// vs. a constructor application — built-ins like f_init/f_concatPath are
/// injective with disjoint ranges). Aggregate dependents of the same kind are
/// also fine: the final-state aggregate stores one merged value per group no
/// matter which rules contributed.
bool fd_pair_separated(const Rule& a, const Rule& b, const Fd& fd) {
  const auto& da = a.head.args[static_cast<std::size_t>(fd.dependent)];
  const auto& db = b.head.args[static_cast<std::size_t>(fd.dependent)];
  if (da.is_agg() && db.is_agg() && da.agg == db.agg) return true;
  for (const int p : fd.determinant) {
    if (static_cast<std::size_t>(p) >= a.head.args.size() ||
        static_cast<std::size_t>(p) >= b.head.args.size()) {
      continue;
    }
    const auto& ha = a.head.args[static_cast<std::size_t>(p)];
    const auto& hb = b.head.args[static_cast<std::size_t>(p)];
    if (ha.is_agg() || hb.is_agg()) continue;
    const Term* ca = resolve_constructor(a, ha.term);
    const Term* cb = resolve_constructor(b, hb.term);
    if (ca == nullptr || cb == nullptr) continue;
    if (ca->kind != cb->kind) return true;
    if (ca->kind == Term::Kind::Const && !(ca->constant == cb->constant)) return true;
    if (ca->kind == Term::Kind::Func && ca->name != cb->name) return true;
  }
  return false;
}

/// Chase-style justification: starting from the head positions of
/// `fd.determinant`, close the set of determined variables under equality
/// bindings and the body atoms' surviving FDs; the FD holds for this rule if
/// the dependent head position ends up determined.
bool fd_justified(const Rule& rule, const Fd& fd, const FdMap& fds) {
  std::set<std::string> determined;
  for (const int pos : fd.determinant) {
    if (pos < 0 || static_cast<std::size_t>(pos) >= rule.head.args.size()) continue;
    const auto& arg = rule.head.args[static_cast<std::size_t>(pos)];
    if (!arg.is_agg() && arg.term) invert_into(*arg.term, determined);
  }

  bool grew = true;
  while (grew) {
    grew = false;
    const std::size_t before = determined.size();
    for (const auto& elem : rule.body) {
      if (const auto* cmp = std::get_if<Comparison>(&elem)) {
        if (cmp->op != CmpOp::Eq) continue;
        if (fully_determined(*cmp->lhs, determined)) invert_into(*cmp->rhs, determined);
        if (fully_determined(*cmp->rhs, determined)) invert_into(*cmp->lhs, determined);
        continue;
      }
      const auto& ba = std::get<BodyAtom>(elem);
      if (ba.negated) continue;
      auto it = fds.find(ba.atom.predicate);
      if (it == fds.end()) continue;
      for (const Fd& bfd : it->second) {
        bool dets_known = true;
        for (const int p : bfd.determinant) {
          if (static_cast<std::size_t>(p) >= ba.atom.args.size() ||
              !fully_determined(*ba.atom.args[static_cast<std::size_t>(p)],
                                determined)) {
            dets_known = false;
            break;
          }
        }
        if (!dets_known) continue;
        if (static_cast<std::size_t>(bfd.dependent) < ba.atom.args.size()) {
          invert_into(*ba.atom.args[static_cast<std::size_t>(bfd.dependent)],
                      determined);
        }
      }
    }
    grew = determined.size() > before;
  }

  const auto& dep = rule.head.args[static_cast<std::size_t>(fd.dependent)];
  if (dep.is_agg()) {
    // An aggregate value is a function of its group (the plain head args)
    // and the final input set; as a final-state FD the group suffices.
    for (const auto& arg : rule.head.args) {
      if (!arg.is_agg() && arg.term && !fully_determined(*arg.term, determined)) {
        return false;
      }
    }
    return true;
  }
  return dep.term && fully_determined(*dep.term, determined);
}

}  // namespace

std::set<std::string> async_predicates(const Program& program) {
  std::set<std::string> async;
  for (const auto& rule : program.rules) {
    if (rule.is_fact()) continue;
    const auto body_locs = body_location_vars(rule);
    bool direct = body_locs.size() >= 2;
    if (!direct && rule.head.loc_index >= 0 &&
        static_cast<std::size_t>(rule.head.loc_index) < rule.head.args.size()) {
      const auto& loc_arg = rule.head.args[static_cast<std::size_t>(rule.head.loc_index)];
      const std::string& head_loc = var_name(loc_arg.term);
      if (!head_loc.empty() && body_locs.size() == 1 &&
          body_locs.count(head_loc) == 0) {
        direct = true;  // head is shipped to a different node
      }
    }
    if (direct) async.insert(rule.head.predicate);
  }
  // Anything depending on an async predicate inherits its timing.
  const auto edges = dependency_edges(program);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& e : edges) {
      if (async.count(e.body) != 0 && async.insert(e.head).second) changed = true;
    }
  }
  return async;
}

FdMap infer_fds(const Program& program, int fd_max_arity) {
  const auto arity = arities_of(program);
  const auto derived = derived_predicates(program);

  FdMap fds;
  for (const auto& [pred, n] : arity) {
    const Materialize* mat = program.materialization_of(pred);
    if (derived.count(pred) == 0) {
      // Base predicate: P2 key overwrite makes the table key-functional, and
      // the injected fact set is the same on every run.
      if (mat == nullptr || mat->key_fields.empty()) continue;
      std::vector<int> keys;
      for (const std::size_t k : mat->key_fields) {
        if (k >= 1 && k <= n) keys.push_back(static_cast<int>(k - 1));
      }
      std::sort(keys.begin(), keys.end());
      for (std::size_t d = 0; d < n; ++d) {
        if (std::find(keys.begin(), keys.end(), static_cast<int>(d)) == keys.end()) {
          fds[pred].push_back(Fd{keys, static_cast<int>(d)});
        }
      }
      continue;
    }
    // Derived predicate: optimistic start, greatest fixpoint below.
    auto& out = fds[pred];
    if (n <= static_cast<std::size_t>(fd_max_arity)) {
      const std::size_t masks = std::size_t{1} << n;
      for (std::size_t mask = 0; mask < masks; ++mask) {
        for (std::size_t d = 0; d < n; ++d) {
          if ((mask >> d) & 1U) continue;
          std::vector<int> det;
          for (std::size_t i = 0; i < n; ++i) {
            if ((mask >> i) & 1U) det.push_back(static_cast<int>(i));
          }
          out.push_back(Fd{std::move(det), static_cast<int>(d)});
        }
      }
    } else if (mat != nullptr && !mat->key_fields.empty()) {
      std::vector<int> keys;
      for (const std::size_t k : mat->key_fields) {
        if (k >= 1 && k <= n) keys.push_back(static_cast<int>(k - 1));
      }
      std::sort(keys.begin(), keys.end());
      for (std::size_t d = 0; d < n; ++d) {
        if (std::find(keys.begin(), keys.end(), static_cast<int>(d)) == keys.end()) {
          out.push_back(Fd{keys, static_cast<int>(d)});
        }
      }
    }
  }

  // Pre-pass: two ground facts agreeing on a determinant but differing at
  // the dependent refute the FD outright.
  for (const auto& pred : derived) {
    std::vector<const Rule*> facts;
    for (const auto& rule : program.rules) {
      if (rule.is_fact() && rule.head.predicate == pred) facts.push_back(&rule);
    }
    if (facts.size() < 2) continue;
    auto& out = fds[pred];
    out.erase(std::remove_if(out.begin(), out.end(),
                             [&](const Fd& fd) {
                               for (std::size_t i = 0; i < facts.size(); ++i) {
                                 for (std::size_t j = i + 1; j < facts.size(); ++j) {
                                   const auto& a = facts[i]->head.args;
                                   const auto& b = facts[j]->head.args;
                                   bool agree = true;
                                   for (const int p : fd.determinant) {
                                     const auto& ta = a[static_cast<std::size_t>(p)].term;
                                     const auto& tb = b[static_cast<std::size_t>(p)].term;
                                     if (!ta || !tb ||
                                         ta->kind != Term::Kind::Const ||
                                         tb->kind != Term::Kind::Const ||
                                         !(ta->constant == tb->constant)) {
                                       agree = false;
                                       break;
                                     }
                                   }
                                   if (!agree) continue;
                                   const auto& da = a[static_cast<std::size_t>(fd.dependent)].term;
                                   const auto& db = b[static_cast<std::size_t>(fd.dependent)].term;
                                   if (!da || !db || da->kind != Term::Kind::Const ||
                                       db->kind != Term::Kind::Const ||
                                       !(da->constant == db->constant)) {
                                     return true;  // violated by this fact pair
                                   }
                                 }
                               }
                               return false;
                             }),
              out.end());
  }

  // Pre-pass: per-rule chase justification (below) is coinductive — each
  // rule is checked in isolation under the hypothesis that the FD already
  // holds for its body atoms. That is sound for a single defining rule (by
  // induction on derivation depth) but unsound across rules: spanning_tree's
  // st4 (`D=0`) and st5 (`D=D2+1`) each justify `distCand: {0} -> 1` alone
  // while jointly deriving many distances per node. Require every pair of
  // defining rules to be consistent: one of them is a verbatim copy rule for
  // the FD, or their determinants are constructor-disjoint so the pair can
  // never agree on a determinant in the first place. (Ground facts for
  // derived predicates are handled pairwise above; a fact/rule overlap is
  // still assumed not to collide, matching the chase's optimism.)
  for (const auto& pred : derived) {
    std::vector<const Rule*> defs;
    for (const auto& rule : program.rules) {
      if (rule.head.predicate == pred && !rule.is_fact()) defs.push_back(&rule);
    }
    if (defs.size() < 2) continue;
    auto& out = fds[pred];
    out.erase(std::remove_if(out.begin(), out.end(),
                             [&](const Fd& fd) {
                               for (std::size_t i = 0; i < defs.size(); ++i) {
                                 for (std::size_t j = i + 1; j < defs.size(); ++j) {
                                   if (fd_copy_rule(*defs[i], fd) ||
                                       fd_copy_rule(*defs[j], fd)) {
                                     continue;
                                   }
                                   if (!fd_pair_separated(*defs[i], *defs[j], fd)) {
                                     return true;
                                   }
                                 }
                               }
                               return false;
                             }),
              out.end());
  }

  // Greatest fixpoint: drop every FD some defining rule cannot justify.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& pred : derived) {
      auto& out = fds[pred];
      out.erase(std::remove_if(out.begin(), out.end(),
                               [&](const Fd& fd) {
                                 for (const auto& rule : program.rules) {
                                   if (rule.head.predicate != pred || rule.is_fact()) {
                                     continue;
                                   }
                                   if (!fd_justified(rule, fd, fds)) {
                                     changed = true;
                                     return true;
                                   }
                                 }
                                 return false;
                               }),
                out.end());
    }
  }
  return fds;
}

bool fd_determines(const FdMap& fds, const std::string& predicate,
                   const std::set<int>& determinant, int dependent) {
  auto it = fds.find(predicate);
  if (it == fds.end()) return false;
  for (const Fd& fd : it->second) {
    if (fd.dependent != dependent) continue;
    bool subset = true;
    for (const int p : fd.determinant) {
      if (determinant.count(p) == 0) {
        subset = false;
        break;
      }
    }
    if (subset) return true;
  }
  return false;
}

SemanticReport analyze_semantics(const Program& program, DiagnosticSink& sink,
                                 const SemanticOptions& options) {
  SemanticReport report;
  obs::Registry* metrics = options.metrics;
  auto timer = [&](const char* name) {
    return obs::Timer::Scope(metrics != nullptr ? &metrics->timer(name) : nullptr);
  };

  // --- Interval abstraction + dead rules (ND0014) -------------------------
  {
    auto scope = timer("analyze/pass/absint");
    report.abstraction = absint::analyze_program(program);
    for (std::size_t i = 0; i < program.rules.size(); ++i) {
      const Rule& rule = program.rules[i];
      if (rule.is_fact()) continue;
      const auto ra = absint::abstract_rule(rule, report.abstraction);
      if (!ra.unsat || !ra.unsat_is_comparison) continue;
      report.dead_rules.push_back(i);
      auto& d = sink.warning(
          "ND0014",
          "rule '" + rule.display_name() + "' can never fire: '" +
              ra.unsat_detail + "' is always false under interval analysis",
          ra.unsat_loc.valid() ? SourceSpan::at(ra.unsat_loc) : rule.span())
                    .in_rule(static_cast<int>(i), rule.head.predicate);
      d.hint = "delete the rule or fix the comparison";
    }
  }

  // --- Structure: strata + SCCs ------------------------------------------
  {
    DiagnosticSink scratch;
    if (auto strat = stratify(program, scratch)) {
      report.stratum_count = strat->stratum_count;
      report.stratum_of = strat->stratum_of;
    }
  }
  const SccResult sccs = compute_sccs(program);
  report.sccs = sccs.components;
  report.recursive_predicates = sccs.recursive;

  // --- Divergence prediction (ND0015) ------------------------------------
  {
    auto scope = timer("analyze/pass/divergence");
    for (const auto& comp : sccs.components) {
      const std::set<std::string> members(comp.begin(), comp.end());
      if (sccs.recursive.count(comp.front()) == 0) continue;

      bool guarded = false;
      for (const auto& rule : program.rules) {
        if (members.count(rule.head.predicate) == 0) continue;
        for (const auto& elem : rule.body) {
          if (const auto* cmp = std::get_if<Comparison>(&elem)) {
            if (is_cycle_guard(*cmp)) guarded = true;
          }
        }
      }

      for (std::size_t i = 0; i < program.rules.size(); ++i) {
        const Rule& rule = program.rules[i];
        if (rule.is_fact() || members.count(rule.head.predicate) == 0) continue;
        bool recursive_rule = false;
        for (const auto& elem : rule.body) {
          const auto* ba = std::get_if<BodyAtom>(&elem);
          if (ba != nullptr && !ba->negated &&
              members.count(ba->atom.predicate) != 0) {
            recursive_rule = true;
          }
        }
        if (!recursive_rule) continue;

        const GrowthScan scan(rule, members);
        const auto ra = absint::abstract_rule(rule, report.abstraction);
        for (std::size_t h = 0; h < rule.head.args.size(); ++h) {
          const auto& arg = rule.head.args[h];
          if (arg.is_agg() || !arg.term) continue;
          std::set<std::string> visiting;
          if (!scan.grows(*arg.term, visiting)) continue;

          bool bounded = guarded;
          if (!bounded && h < ra.head.size() && ra.head[h].is_num() &&
              ra.head[h].num.bounded_above()) {
            bounded = true;
          }
          const std::string& hv = var_name(arg.term);
          if (!bounded && !hv.empty()) {
            bounded = bounded_above_by_comparison(rule, hv, ra.vars);
          }
          if (bounded) continue;

          auto& d = sink.warning(
              "ND0015",
              "rule '" + rule.display_name() + "' grows argument " +
                  std::to_string(h + 1) + " of '" + rule.head.predicate +
                  "' around recursive cycle {" + join_names(members) +
                  "} without a bound or cycle guard: evaluation can diverge "
                  "(DivergenceError at runtime)",
              rule.span())
                        .in_rule(static_cast<int>(i), rule.head.predicate);
          d.hint =
              "add an upper-bound comparison (e.g. C < 1000) or a cycle guard "
              "(f_inPath(P, S) = false)";
          for (const auto& m : members) report.divergent_predicates.insert(m);
          break;  // one diagnostic per rule
        }
      }
    }
  }

  // --- Asynchrony + CALM classification (ND0016/ND0017/ND0018) ------------
  report.async_predicates = async_predicates(program);
  {
    auto scope = timer("analyze/pass/fd");
    report.fds = infer_fds(program, options.fd_max_arity);
  }
  {
    auto scope = timer("analyze/pass/calm");
    const auto derived = derived_predicates(program);
    const auto arity = arities_of(program);

    // ND0016: negation over asynchronously derived input.
    for (const auto& rule : program.rules) {
      for (const auto& elem : rule.body) {
        const auto* ba = std::get_if<BodyAtom>(&elem);
        if (ba == nullptr || !ba->negated) continue;
        if (report.async_predicates.count(ba->atom.predicate) == 0) continue;
        auto& d = sink.warning(
            "ND0016",
            "rule '" + rule.display_name() + "' negates '" + ba->atom.predicate +
                "', which is derived asynchronously across nodes: whether the "
                "negation holds depends on message arrival order",
            ba->atom.span())
                      .in_rule(static_cast<int>(&rule - program.rules.data()),
                               rule.head.predicate);
        d.hint = "derive the negated predicate locally or accept an "
                 "order-dependent fixpoint";
        report.order_sensitive_predicates.insert(rule.head.predicate);
      }
    }

    // ND0017: materialized key projection dropping non-functional columns.
    for (const auto& mat : program.materializations) {
      if (derived.count(mat.predicate) == 0 || mat.key_fields.empty()) continue;
      if (report.async_predicates.count(mat.predicate) == 0) continue;
      auto it = arity.find(mat.predicate);
      if (it == arity.end()) continue;
      const std::size_t n = it->second;
      std::set<int> keys;
      for (const std::size_t k : mat.key_fields) {
        if (k >= 1 && k <= n) keys.insert(static_cast<int>(k - 1));
      }
      if (keys.size() >= n) continue;  // whole-tuple key: no projection
      std::string dropped;
      for (std::size_t d = 0; d < n; ++d) {
        if (keys.count(static_cast<int>(d)) != 0) continue;
        if (fd_determines(report.fds, mat.predicate, keys, static_cast<int>(d))) {
          continue;
        }
        if (!dropped.empty()) dropped += ", ";
        dropped += std::to_string(d + 1);
      }
      if (dropped.empty()) continue;
      auto& d = sink.warning(
          "ND0017",
          "materialized predicate '" + mat.predicate + "' is keyed on a " +
              "projection that drops column(s) " + dropped +
              " not functionally determined by the keys: concurrent updates "
              "race and the stored value depends on message arrival order",
          SourceSpan::at(mat.loc))
                    .in_rule(-1, mat.predicate);
      d.hint = "add the racing column to keys(...) or make it functionally "
               "dependent on the keys (e.g. via an aggregate)";
      report.order_sensitive_predicates.insert(mat.predicate);
    }

    // ND0018: aggregates recomputed over asynchronous input (CALM note).
    for (const auto& rule : program.rules) {
      if (!rule.head.has_aggregate()) continue;
      for (const auto& elem : rule.body) {
        const auto* ba = std::get_if<BodyAtom>(&elem);
        if (ba == nullptr || ba->negated) continue;
        if (report.async_predicates.count(ba->atom.predicate) == 0) continue;
        sink.note("ND0018",
                  "rule '" + rule.display_name() + "' aggregates over '" +
                      ba->atom.predicate +
                      "', which arrives asynchronously: the aggregate is "
                      "recomputed non-monotonically (CALM) and converges only "
                      "with its input",
                  rule.span())
            .in_rule(static_cast<int>(&rule - program.rules.data()),
                     rule.head.predicate);
        break;  // one note per rule
      }
    }

    // CALM verdict: a program with no negation, no aggregation and no racing
    // key projection is monotone, hence confluent under any ordering.
    bool has_nonmonotone = !report.order_sensitive_predicates.empty();
    for (const auto& e : dependency_edges(program)) {
      if (e.negated || e.through_aggregate) has_nonmonotone = true;
    }
    report.monotone = !has_nonmonotone;
  }

  if (metrics != nullptr) {
    metrics->counter("analyze/rules").add(program.rules.size());
    metrics->counter("analyze/predicates").add(predicates_of(program).size());
    metrics->counter("analyze/sccs").add(report.sccs.size());
    metrics->counter("analyze/sccs/recursive").add(report.recursive_predicates.size());
    metrics->counter("analyze/async_predicates").add(report.async_predicates.size());
    metrics->counter("analyze/dead_rules").add(report.dead_rules.size());
    metrics->counter("analyze/divergent_predicates").add(report.divergent_predicates.size());
    metrics->counter("analyze/order_flags").add(report.order_sensitive_predicates.size());
    std::size_t survived = 0;
    for (const auto& [pred, list] : report.fds) survived += list.size();
    metrics->counter("analyze/fd/survived").add(survived);
  }
  return report;
}

std::string semantic_dot(const Program& program, const SemanticReport& report) {
  std::ostringstream os;
  os << "digraph dependencies {\n";
  os << "  rankdir=BT;\n";
  os << "  node [shape=box, fontname=\"Helvetica\"];\n";
  for (const auto& pred : predicates_of(program)) {
    os << "  \"" << pred << "\" [label=\"" << pred;
    auto st = report.stratum_of.find(pred);
    if (st != report.stratum_of.end()) os << "\\nstratum " << st->second;
    os << "\"";
    std::string fill;
    if (report.divergent_predicates.count(pred) != 0) {
      fill = "salmon";
    } else if (report.recursive_predicates.count(pred) != 0) {
      fill = "lightblue";
    }
    std::string style = fill.empty() ? "" : "filled";
    if (report.async_predicates.count(pred) != 0) {
      style += style.empty() ? "dashed" : ",dashed";
    }
    if (!style.empty()) os << ", style=\"" << style << "\"";
    if (!fill.empty()) os << ", fillcolor=\"" << fill << "\"";
    os << "];\n";
  }
  // Dedup edges across rules; keep attributes deterministic.
  std::set<std::tuple<std::string, std::string, bool, bool>> seen;
  for (const auto& e : dependency_edges(program)) {
    seen.insert({e.body, e.head, e.negated, e.through_aggregate});
  }
  for (const auto& [body, head, negated, agg] : seen) {
    os << "  \"" << body << "\" -> \"" << head << "\"";
    std::vector<std::string> attrs;
    if (negated) attrs.push_back("style=dashed, label=\"!\"");
    if (agg) attrs.push_back("label=\"agg\"");
    bool same_scc = false;
    for (const auto& comp : report.sccs) {
      if (comp.size() > 1 &&
          std::find(comp.begin(), comp.end(), head) != comp.end() &&
          std::find(comp.begin(), comp.end(), body) != comp.end()) {
        same_scc = true;
      }
    }
    if (head == body) same_scc = true;
    if (same_scc) attrs.push_back("penwidth=2");
    if (!attrs.empty()) {
      os << " [";
      for (std::size_t i = 0; i < attrs.size(); ++i) {
        os << (i != 0 ? ", " : "") << attrs[i];
      }
      os << "]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

namespace {

void append_string_array(std::ostringstream& os, const char* key,
                         const std::set<std::string>& values) {
  os << "\"" << key << "\":[";
  bool first = true;
  for (const auto& v : values) {
    os << (first ? "" : ",") << "\"" << json_escape(v) << "\"";
    first = false;
  }
  os << "]";
}

}  // namespace

std::string semantic_json(const SemanticReport& report) {
  std::ostringstream os;
  std::set<std::string> all_preds;
  for (const auto& comp : report.sccs) {
    for (const auto& p : comp) all_preds.insert(p);
  }
  os << "{\"predicates\":" << all_preds.size();
  os << ",\"strata\":" << report.stratum_count;
  os << ",\"sccs\":[";
  for (std::size_t i = 0; i < report.sccs.size(); ++i) {
    os << (i != 0 ? "," : "") << "[";
    for (std::size_t j = 0; j < report.sccs[i].size(); ++j) {
      os << (j != 0 ? "," : "") << "\"" << json_escape(report.sccs[i][j]) << "\"";
    }
    os << "]";
  }
  os << "],";
  append_string_array(os, "recursive", report.recursive_predicates);
  os << ",";
  append_string_array(os, "async", report.async_predicates);
  os << ",";
  append_string_array(os, "divergent", report.divergent_predicates);
  os << ",\"dead_rules\":[";
  for (std::size_t i = 0; i < report.dead_rules.size(); ++i) {
    os << (i != 0 ? "," : "") << report.dead_rules[i];
  }
  os << "],";
  append_string_array(os, "order_sensitive", report.order_sensitive_predicates);
  os << ",\"monotone\":" << (report.monotone ? "true" : "false") << "}";
  return os.str();
}

}  // namespace fvn::ndlog
