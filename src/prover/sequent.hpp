// Sequents, proof commands, and proof traces for the FVN prover (the PVS
// substitute of the reproduction — see DESIGN.md §2).
#pragma once

#include <string>
#include <vector>

#include "logic/formula.hpp"

namespace fvn::prover {

/// A sequent  ante_1, ..., ante_n  ⊢  cons_1, ..., cons_m  (the consequents
/// are an implicit disjunction, PVS-style).
struct Sequent {
  std::vector<logic::FormulaPtr> ante;
  std::vector<logic::FormulaPtr> cons;

  std::string to_string() const;
};

/// One prover command (the analogue of a PVS proof-script step).
struct Command {
  enum class Kind : std::uint8_t {
    Skolem,    // repeatedly skolemize cons-FORALL / ante-EXISTS
    Flatten,   // propositional flattening (implication, negation, and/or)
    Split,     // branch on cons-AND / ante-OR / ante-IMPLIES / IFF
    Expand,    // unfold an inductive definition (pred)
    Inst,      // instantiate first ante-FORALL / cons-EXISTS with terms
    Assert,    // close by syntactic match / rewriting / linear arithmetic
    Induct,    // derivation induction on `pred` for goals  pred(xs) => phi
    Grind,     // bounded automation: assert/flatten/skolem/expand/auto-inst
    Case,      // case split on `formula`
  };

  Kind kind = Kind::Assert;
  std::string pred;                       // Expand / Induct
  std::vector<logic::LTermPtr> terms;     // Inst
  logic::FormulaPtr formula;              // Case

  static Command skolem() { return {Kind::Skolem, {}, {}, nullptr}; }
  static Command flatten() { return {Kind::Flatten, {}, {}, nullptr}; }
  static Command split() { return {Kind::Split, {}, {}, nullptr}; }
  static Command expand(std::string pred) { return {Kind::Expand, std::move(pred), {}, nullptr}; }
  static Command inst(std::vector<logic::LTermPtr> terms) {
    return {Kind::Inst, {}, std::move(terms), nullptr};
  }
  static Command assert_() { return {Kind::Assert, {}, {}, nullptr}; }
  static Command induct(std::string pred) { return {Kind::Induct, std::move(pred), {}, nullptr}; }
  static Command grind() { return {Kind::Grind, {}, {}, nullptr}; }
  static Command case_split(logic::FormulaPtr f) { return {Kind::Case, {}, {}, std::move(f)}; }

  std::string to_string() const;
};

/// Execution record of one command.
struct ProofStep {
  std::string command;
  bool automated = false;  // executed inside grind (vs. scripted by a human)
  std::size_t goals_before = 0;
  std::size_t goals_after = 0;
};

/// Outcome of a proof attempt.
struct ProofResult {
  bool proved = false;
  std::vector<ProofStep> steps;
  /// Script commands actually consumed (the paper's "7 proof steps" metric;
  /// a grind command counts as one even though its micro-steps are logged
  /// individually as automated).
  std::size_t scripted_steps = 0;
  double elapsed_seconds = 0.0;
  std::string failure_reason;
  std::vector<Sequent> open_goals;

  std::size_t total_steps() const noexcept { return steps.size(); }
  std::size_t automated_steps() const noexcept;
  std::size_t manual_steps() const noexcept { return total_steps() - automated_steps(); }
};

}  // namespace fvn::prover
