#include "prover/linear.hpp"

#include <numeric>
#include <sstream>

namespace fvn::prover {

Rational::Rational(std::int64_t n, std::int64_t d) : num_(n), den_(d) { normalize(); }

void Rational::normalize() {
  if (den_ == 0) {
    throw std::invalid_argument("rational with zero denominator");
  }
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

Rational Rational::operator+(const Rational& o) const {
  return Rational(num_ * o.den_ + o.num_ * den_, den_ * o.den_);
}
Rational Rational::operator-(const Rational& o) const {
  return Rational(num_ * o.den_ - o.num_ * den_, den_ * o.den_);
}
Rational Rational::operator*(const Rational& o) const {
  return Rational(num_ * o.num_, den_ * o.den_);
}
Rational Rational::operator/(const Rational& o) const {
  return Rational(num_ * o.den_, den_ * o.num_);
}
bool Rational::operator<(const Rational& o) const {
  return num_ * o.den_ < o.num_ * den_;
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

LinearExpr& LinearExpr::add(const LinearExpr& o, const Rational& scale) {
  for (const auto& [atom, c] : o.coeffs) {
    auto& mine = coeffs[atom];
    mine = mine + c * scale;
    if (mine.is_zero()) coeffs.erase(atom);
  }
  constant = constant + o.constant * scale;
  return *this;
}

std::string LinearExpr::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [atom, c] : coeffs) {
    if (!first) os << " + ";
    first = false;
    os << c.to_string() << "*" << atom;
  }
  if (!constant.is_zero() || first) {
    if (!first) os << " + ";
    os << constant.to_string();
  }
  return os.str();
}

std::string LinearConstraint::to_string() const {
  return expr.to_string() + (equality ? " = 0" : (strict ? " < 0" : " <= 0"));
}

LinearExpr linearize(const logic::LTerm& term) {
  using Kind = logic::LTerm::Kind;
  LinearExpr out;
  switch (term.kind) {
    case Kind::Var:
      out.coeffs[term.name] = Rational(1);
      return out;
    case Kind::Const:
      if (term.constant.is_int()) {
        out.constant = Rational(term.constant.as_int());
        return out;
      }
      // Non-integer constants become opaque atoms (sound: treated symbolically).
      out.coeffs[term.to_string()] = Rational(1);
      return out;
    case Kind::Func:
      out.coeffs[term.to_string()] = Rational(1);
      return out;
    case Kind::Arith: {
      const LinearExpr lhs = linearize(*term.args[0]);
      const LinearExpr rhs = linearize(*term.args[1]);
      switch (term.op) {
        case ndlog::BinOp::Add:
          out = lhs;
          out.add(rhs);
          return out;
        case ndlog::BinOp::Sub:
          out = lhs;
          out.add(rhs, Rational(-1));
          return out;
        case ndlog::BinOp::Mul:
          if (lhs.coeffs.empty()) {
            out = rhs;
            for (auto& [a, c] : out.coeffs) c = c * lhs.constant;
            out.constant = out.constant * lhs.constant;
            return out;
          }
          if (rhs.coeffs.empty()) {
            out = lhs;
            for (auto& [a, c] : out.coeffs) c = c * rhs.constant;
            out.constant = out.constant * rhs.constant;
            return out;
          }
          out.coeffs[term.to_string()] = Rational(1);
          return out;
        case ndlog::BinOp::Div:
        case ndlog::BinOp::Mod:
          out.coeffs[term.to_string()] = Rational(1);
          return out;
      }
      break;
    }
  }
  out.coeffs[term.to_string()] = Rational(1);
  return out;
}

std::optional<std::vector<LinearConstraint>> constraint_of(const logic::Formula& f) {
  if (f.kind != logic::Formula::Kind::Cmp) return std::nullopt;
  // Comparisons over non-numeric values (paths, nodes, bools) are not linear
  // facts; detect the obvious cases and bail.
  const LinearExpr lhs = linearize(*f.terms[0]);
  const LinearExpr rhs = linearize(*f.terms[1]);
  LinearExpr diff = lhs;  // lhs - rhs
  diff.add(rhs, Rational(-1));

  std::vector<LinearConstraint> out;
  switch (f.cmp_op) {
    case ndlog::CmpOp::Le:
      out.push_back(LinearConstraint{diff, false, false});
      return out;
    case ndlog::CmpOp::Lt:
      out.push_back(LinearConstraint{diff, true, false});
      return out;
    case ndlog::CmpOp::Ge: {
      LinearExpr neg;
      neg.add(diff, Rational(-1));
      out.push_back(LinearConstraint{neg, false, false});
      return out;
    }
    case ndlog::CmpOp::Gt: {
      LinearExpr neg;
      neg.add(diff, Rational(-1));
      out.push_back(LinearConstraint{neg, true, false});
      return out;
    }
    case ndlog::CmpOp::Eq:
      out.push_back(LinearConstraint{diff, false, true});
      return out;
    case ndlog::CmpOp::Ne:
      return std::nullopt;  // disjunctive; handled by case splits upstream
  }
  return std::nullopt;
}

bool infeasible(std::vector<LinearConstraint> constraints, std::size_t budget) {
  // Expand equalities into two inequalities.
  std::vector<LinearConstraint> work;
  for (auto& c : constraints) {
    if (c.equality) {
      LinearConstraint le{c.expr, false, false};
      LinearConstraint ge;
      ge.expr.add(c.expr, Rational(-1));
      work.push_back(std::move(le));
      work.push_back(std::move(ge));
    } else {
      work.push_back(std::move(c));
    }
  }

  // Eliminate variables one at a time.
  while (true) {
    // Constant-only contradiction check: expr = const; const <= 0 required.
    for (const auto& c : work) {
      if (!c.expr.coeffs.empty()) continue;
      const Rational& k = c.expr.constant;
      if ((c.strict && !(k < Rational(0))) || (!c.strict && Rational(0) < k)) {
        return true;
      }
    }
    // Pick a variable to eliminate.
    std::string var;
    for (const auto& c : work) {
      if (!c.expr.coeffs.empty()) {
        var = c.expr.coeffs.begin()->first;
        break;
      }
    }
    if (var.empty()) return false;  // only constants left, all satisfiable

    std::vector<LinearConstraint> lower, upper, rest;
    for (auto& c : work) {
      auto it = c.expr.coeffs.find(var);
      if (it == c.expr.coeffs.end()) {
        rest.push_back(std::move(c));
      } else if (Rational(0) < it->second) {
        upper.push_back(std::move(c));  // a*v + r <= 0, a>0: v <= -r/a
      } else {
        lower.push_back(std::move(c));  // a<0: v >= -r/a
      }
    }
    if (lower.size() * upper.size() + rest.size() > budget) {
      return false;  // give up (sound: report feasible/unknown)
    }
    for (const auto& lo : lower) {
      for (const auto& up : upper) {
        const Rational a_lo = lo.expr.coeffs.at(var);  // negative
        const Rational a_up = up.expr.coeffs.at(var);  // positive
        // Combine: up/a_up + (-lo)/a_lo ... standard positive combination:
        // (-a_lo)*up + a_up*lo eliminates var.
        LinearConstraint combined;
        combined.expr.add(up.expr, -a_lo);
        combined.expr.add(lo.expr, a_up);
        combined.expr.coeffs.erase(var);
        combined.strict = lo.strict || up.strict;
        rest.push_back(std::move(combined));
      }
    }
    work = std::move(rest);
  }
}

}  // namespace fvn::prover
