// The FVN theorem prover (arc 5 of Figure 1): an interactive sequent prover
// with PVS-style tactics over the logic of translated NDlog programs —
// inductive definitions, linear arithmetic, and the interpreted path theory.
//
// Scope (what the paper's proofs need, and what we are sound for):
//   * skolemization, propositional flattening and splitting,
//   * unfolding of inductive definitions,
//   * quantifier instantiation (manual and relevance-bounded automatic),
//   * derivation induction on inductively defined predicates,
//   * an `assert` end-game: path-theory rewriting, equality substitution,
//     unit propagation, and Fourier–Motzkin linear arithmetic,
//   * `grind`: the bounded automation loop (used to measure the paper's
//     "two-thirds of proof steps are automated" claim, experiment E7).
#pragma once

#include <map>
#include <optional>

#include "logic/finite_model.hpp"
#include "logic/formula.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prover/sequent.hpp"

namespace fvn::prover {

/// Limits for the automation loop.
struct GrindOptions {
  std::size_t max_rounds = 64;
  std::size_t max_inst_candidates = 512;  // instantiation combos per quantifier
};

class Prover {
 public:
  explicit Prover(logic::Theory theory);

  /// Axioms are added to the antecedent of every initial sequent (e.g.
  /// "FORALL S,D,C: link(S,D,C) => C >= 1" for cost-positivity proofs).
  void add_axiom(logic::Theorem axiom);

  /// Run a proof script. The script is applied left-to-right; remaining open
  /// goals after the last command mean failure (recorded in the result).
  ProofResult prove(const logic::Theorem& theorem, const std::vector<Command>& script,
                    const GrindOptions& options = {});

  /// Fully automatic attempt: a single grind.
  ProofResult prove_auto(const logic::Theorem& theorem, const GrindOptions& options = {});

  /// Search a finite model for a counterexample to a universally quantified
  /// theorem. Returns a description of the falsifying instance, if any.
  std::optional<std::string> find_counterexample(const logic::Theorem& theorem,
                                                 const logic::FiniteModel& model) const;

  const logic::Theory& theory() const noexcept { return theory_; }

  /// Observability sinks (may be null — the default — for zero overhead).
  /// With `metrics`, every script command records
  /// prover/tactic/<kind>/invocations and a prover/tactic/<kind> timer, and
  /// grind's micro-steps count under prover/grind/<step>. With `trace`, each
  /// command becomes a span named by its script text.
  void set_metrics(obs::Registry* metrics) noexcept { metrics_ = metrics; }
  void set_trace(obs::Trace* trace) noexcept { trace_ = trace; }

 private:
  struct State {
    std::vector<Sequent> goals;
    logic::NameSupply supply;
    std::map<std::string, logic::Sort> sorts;  // skolem-constant sorts
    GrindOptions options;
  };

  bool is_recursive(const std::string& pred) const;
  logic::FormulaPtr instantiate_def(const logic::InductiveDef& def,
                                    const std::vector<logic::LTermPtr>& args,
                                    State& state) const;
  logic::FormulaPtr instantiate_formula(const logic::FormulaPtr& formula,
                                        const std::vector<logic::TypedVar>& params,
                                        const std::vector<logic::LTermPtr>& args,
                                        State& state) const;
  logic::FormulaPtr refresh_binders(const logic::FormulaPtr& f, State& state) const;

  // Tactics: operate on state.goals.front(); return true on progress.
  bool tac_skolem(State& state) const;
  bool tac_flatten(State& state) const;
  bool tac_split(State& state) const;
  bool tac_expand(State& state, const std::string& pred) const;
  bool tac_inst(State& state, const std::vector<logic::LTermPtr>& terms) const;
  bool tac_assert(State& state) const;
  bool tac_induct(State& state, const std::string& pred) const;
  bool tac_case(State& state, const logic::FormulaPtr& f) const;
  bool tac_auto_inst(State& state) const;

  /// True if the (simplified) sequent is closed.
  bool closed(const Sequent& s) const;
  /// Simplify a sequent in place (rewriting, dedup, MP, equality subst);
  /// returns true if it became closed.
  bool simplify(Sequent& s) const;
  /// Arithmetic end-game on a simplified sequent.
  bool arith_closes(const Sequent& s) const;

  bool run_command(const Command& cmd, State& state, bool automated, ProofResult& result);
  void grind(State& state, ProofResult& result);

  logic::Theory theory_;
  std::vector<logic::Theorem> axioms_;
  obs::Registry* metrics_ = nullptr;
  obs::Trace* trace_ = nullptr;
};

}  // namespace fvn::prover
