// Linear integer/rational arithmetic for the prover's `assert` end-game: a
// normalized linear-constraint form and a Fourier–Motzkin feasibility check.
// Non-linear subterms are treated as opaque atoms, which is sound for
// UNSAT answers (the only answers the prover acts on).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "logic/formula.hpp"

namespace fvn::prover {

/// Exact rational with int64 numerator/denominator (inputs are small route
/// metrics; intermediate growth is modest after normalization).
class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  Rational(std::int64_t n) : num_(n), den_(1) {}  // NOLINT implicit by design
  Rational(std::int64_t n, std::int64_t d);

  std::int64_t num() const noexcept { return num_; }
  std::int64_t den() const noexcept { return den_; }

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;
  Rational operator-() const { return Rational(-num_, den_); }

  bool operator==(const Rational& o) const { return num_ == o.num_ && den_ == o.den_; }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return *this < o || *this == o; }
  bool is_zero() const noexcept { return num_ == 0; }

  std::string to_string() const;

 private:
  void normalize();
  std::int64_t num_;
  std::int64_t den_;
};

/// A linear expression: sum of coeff * atom + constant. Atoms are opaque
/// strings (variable names or rendered non-linear subterms).
struct LinearExpr {
  std::map<std::string, Rational> coeffs;
  Rational constant;

  LinearExpr& add(const LinearExpr& o, const Rational& scale = Rational(1));
  std::string to_string() const;
};

/// One constraint: expr <= 0 (strict = expr < 0), or expr == 0.
struct LinearConstraint {
  LinearExpr expr;
  bool strict = false;
  bool equality = false;
  std::string to_string() const;
};

/// Convert a logical term to a linear expression. Non-linear parts (products
/// of atoms, function applications, list constants...) become opaque atoms
/// keyed by their printed form.
LinearExpr linearize(const logic::LTerm& term);

/// Convert an arithmetic comparison formula (Kind::Cmp over numeric terms)
/// into constraints asserting it TRUE. `Ne` yields no constraint (it would
/// need a disjunction) — the caller treats it as unusable.
std::optional<std::vector<LinearConstraint>> constraint_of(const logic::Formula& cmp);

/// Fourier–Motzkin: true iff the constraint set is infeasible over the
/// rationals (hence over the integers — sound for contradiction detection).
/// `budget` caps generated constraints to keep elimination polynomial-ish.
bool infeasible(std::vector<LinearConstraint> constraints, std::size_t budget = 20000);

}  // namespace fvn::prover
