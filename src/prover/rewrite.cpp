#include "prover/rewrite.hpp"

#include "ndlog/builtins.hpp"

namespace fvn::prover {

using logic::Formula;
using logic::FormulaPtr;
using logic::LTerm;
using logic::LTermPtr;
using logic::Value;

namespace {

bool is_const(const LTermPtr& t) { return t->kind == LTerm::Kind::Const; }

bool is_fn(const LTermPtr& t, const char* name) {
  return t->kind == LTerm::Kind::Func && t->name == name;
}

LTermPtr int_const(std::int64_t v) { return LTerm::constant_of(Value::integer(v)); }

/// One top-level rewrite step; nullptr if no rule applies.
LTermPtr step(const LTermPtr& t) {
  const auto& reg = ndlog::BuiltinRegistry::standard();

  if (t->kind == LTerm::Kind::Func) {
    // Constant folding of fully-ground applications.
    bool all_const = !t->args.empty();
    for (const auto& a : t->args) all_const = all_const && is_const(a);
    if (all_const && reg.contains(t->name)) {
      std::vector<Value> args;
      for (const auto& a : t->args) args.push_back(a->constant);
      return LTerm::constant_of(reg.call(t->name, args));
    }
    const auto& a = t->args;
    if (t->name == "f_head" && a.size() == 1) {
      if (is_fn(a[0], "f_init")) return a[0]->args[0];        // f_head(f_init(X,Y)) -> X
      if (is_fn(a[0], "f_concatPath")) return a[0]->args[0];  // f_head(X::P) -> X
    }
    if (t->name == "f_last" && a.size() == 1) {
      if (is_fn(a[0], "f_init")) return a[0]->args[1];  // f_last(f_init(X,Y)) -> Y
      if (is_fn(a[0], "f_concatPath")) {
        return LTerm::func("f_last", {a[0]->args[1]});  // f_last(X::P) -> f_last(P)
      }
    }
    if (t->name == "f_size" && a.size() == 1) {
      if (is_fn(a[0], "f_init")) return int_const(2);
      if (is_fn(a[0], "f_concatPath")) {
        return LTerm::arith(ndlog::BinOp::Add,
                            LTerm::func("f_size", {a[0]->args[1]}), int_const(1));
      }
    }
    if (t->name == "f_inPath" && a.size() == 2) {
      // f_inPath(f_init(X,Y),Z) -> true when Z is syntactically X or Y.
      if (is_fn(a[0], "f_init") &&
          (a[0]->args[0]->equals(*a[1]) || a[0]->args[1]->equals(*a[1]))) {
        return LTerm::constant_of(Value::boolean(true));
      }
      // f_inPath(X::P, X) -> true.
      if (is_fn(a[0], "f_concatPath") && a[0]->args[0]->equals(*a[1])) {
        return LTerm::constant_of(Value::boolean(true));
      }
    }
    return nullptr;
  }

  if (t->kind == LTerm::Kind::Arith && is_const(t->args[0]) && is_const(t->args[1])) {
    const Value& l = t->args[0]->constant;
    const Value& r = t->args[1]->constant;
    if (l.is_numeric() && r.is_numeric()) {
      switch (t->op) {
        case ndlog::BinOp::Add: return LTerm::constant_of(l.add(r));
        case ndlog::BinOp::Sub: return LTerm::constant_of(l.sub(r));
        case ndlog::BinOp::Mul: return LTerm::constant_of(l.mul(r));
        case ndlog::BinOp::Div:
          if ((r.is_int() && r.as_int() == 0) || r.as_double() == 0.0) return nullptr;
          return LTerm::constant_of(l.div(r));
        case ndlog::BinOp::Mod:
          if (!l.is_int() || !r.is_int() || r.as_int() == 0) return nullptr;
          return LTerm::constant_of(l.mod(r));
      }
    }
  }
  return nullptr;
}

}  // namespace

LTermPtr rewrite_term(const logic::LTermPtr& term) {
  // Bottom-up, to fixpoint (bounded by structure: every rule shrinks or
  // constant-folds, except f_size which introduces one + node but consumes a
  // constructor — overall terminating; a depth guard keeps us honest).
  LTermPtr current = term;
  for (int guard = 0; guard < 64; ++guard) {
    // Rewrite children first.
    if (!current->args.empty()) {
      std::vector<LTermPtr> new_args;
      new_args.reserve(current->args.size());
      bool changed = false;
      for (const auto& a : current->args) {
        LTermPtr na = rewrite_term(a);
        changed = changed || na.get() != a.get();
        new_args.push_back(std::move(na));
      }
      if (changed) {
        current = current->kind == LTerm::Kind::Func
                      ? LTerm::func(current->name, std::move(new_args))
                      : LTerm::arith(current->op, new_args[0], new_args[1]);
      }
    }
    LTermPtr next = step(current);
    if (!next) return current;
    current = next;
  }
  return current;
}

FormulaPtr rewrite_formula(const logic::FormulaPtr& f) {
  auto copy = std::make_shared<Formula>(*f);
  for (auto& t : copy->terms) t = rewrite_term(t);
  for (auto& s : copy->subs) s = rewrite_formula(s);

  if (copy->kind == Formula::Kind::Cmp) {
    const auto& l = copy->terms[0];
    const auto& r = copy->terms[1];
    if (is_const(l) && is_const(r)) {
      bool value = false;
      const Value& a = l->constant;
      const Value& b = r->constant;
      switch (copy->cmp_op) {
        case ndlog::CmpOp::Eq: value = a == b; break;
        case ndlog::CmpOp::Ne: value = !(a == b); break;
        case ndlog::CmpOp::Lt: value = a < b; break;
        case ndlog::CmpOp::Le: value = a < b || a == b; break;
        case ndlog::CmpOp::Gt: value = b < a; break;
        case ndlog::CmpOp::Ge: value = b < a || a == b; break;
      }
      return value ? Formula::truth() : Formula::falsity();
    }
    // Reflexivity: t = t.
    if (copy->cmp_op == ndlog::CmpOp::Eq && l->equals(*r)) return Formula::truth();
  }
  // Propositional re-normalization via the smart constructors.
  switch (copy->kind) {
    case Formula::Kind::Not: return Formula::negate(copy->subs[0]);
    case Formula::Kind::And: return Formula::conj(copy->subs);
    case Formula::Kind::Or: return Formula::disj(copy->subs);
    default: break;
  }
  return copy;
}

}  // namespace fvn::prover
