// Path-theory rewriting: simplification rules for the interpreted list
// functions (f_init, f_concatPath, f_head, f_last, f_size, f_inPath) used by
// the prover's `assert` end-game. Each rule is an oriented equation that is
// valid for the concrete built-in implementations (tested property-style in
// tests/test_prover_rewrite.cpp).
#pragma once

#include "logic/formula.hpp"

namespace fvn::prover {

/// Exhaustively rewrite a term with the path-theory rules and constant
/// folding (ground built-in applications and arithmetic on constants).
logic::LTermPtr rewrite_term(const logic::LTermPtr& term);

/// Rewrite every term inside a formula; additionally fold ground comparisons
/// to TRUE/FALSE.
logic::FormulaPtr rewrite_formula(const logic::FormulaPtr& formula);

}  // namespace fvn::prover
