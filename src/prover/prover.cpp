#include "prover/prover.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <sstream>

#include "prover/linear.hpp"
#include "prover/rewrite.hpp"

namespace fvn::prover {

using logic::Formula;
using logic::FormulaPtr;
using logic::InductiveDef;
using logic::LTerm;
using logic::LTermPtr;
using logic::Sort;
using logic::TypedVar;

std::string Sequent::to_string() const {
  std::string out;
  for (const auto& a : ante) out += "  " + a->to_string() + "\n";
  out += "  |-------\n";
  for (const auto& c : cons) out += "  " + c->to_string() + "\n";
  return out;
}

std::string Command::to_string() const {
  switch (kind) {
    case Kind::Skolem: return "(skolem!)";
    case Kind::Flatten: return "(flatten)";
    case Kind::Split: return "(split)";
    case Kind::Expand: return "(expand \"" + pred + "\")";
    case Kind::Inst: {
      std::string out = "(inst";
      for (const auto& t : terms) out += " " + t->to_string();
      return out + ")";
    }
    case Kind::Assert: return "(assert)";
    case Kind::Induct: return "(induct \"" + pred + "\")";
    case Kind::Grind: return "(grind)";
    case Kind::Case: return "(case " + (formula ? formula->to_string() : "?") + ")";
  }
  return "(?)";
}

std::size_t ProofResult::automated_steps() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(steps.begin(), steps.end(), [](const ProofStep& s) { return s.automated; }));
}

Prover::Prover(logic::Theory theory) : theory_(std::move(theory)) {}

void Prover::add_axiom(logic::Theorem axiom) { axioms_.push_back(std::move(axiom)); }

bool Prover::is_recursive(const std::string& pred) const {
  const InductiveDef* def = theory_.find_definition(pred);
  if (!def) return false;
  bool found = false;
  std::function<void(const Formula&)> walk = [&](const Formula& f) {
    if (f.kind == Formula::Kind::Pred && f.pred_name == pred) found = true;
    for (const auto& s : f.subs) walk(*s);
  };
  for (const auto& c : def->clauses) walk(*c);
  return found;
}

FormulaPtr Prover::refresh_binders(const FormulaPtr& f, State& state) const {
  if (f->kind == Formula::Kind::Forall || f->kind == Formula::Kind::Exists) {
    FormulaPtr body = f->subs[0];
    std::vector<TypedVar> new_binders;
    new_binders.reserve(f->binders.size());
    for (const auto& b : f->binders) {
      const std::string fresh = state.supply.fresh(b.name);
      state.sorts[fresh] = b.sort;
      new_binders.push_back(TypedVar{fresh, b.sort});
      body = body->substitute(b.name, LTerm::var(fresh));
    }
    body = refresh_binders(body, state);
    return f->kind == Formula::Kind::Forall
               ? Formula::forall(std::move(new_binders), std::move(body))
               : Formula::exists(std::move(new_binders), std::move(body));
  }
  if (f->subs.empty()) return f;
  auto copy = std::make_shared<Formula>(*f);
  for (auto& s : copy->subs) s = refresh_binders(s, state);
  return copy;
}

FormulaPtr Prover::instantiate_formula(const FormulaPtr& formula,
                                       const std::vector<TypedVar>& params,
                                       const std::vector<LTermPtr>& args,
                                       State& state) const {
  FormulaPtr body = refresh_binders(formula, state);
  std::vector<std::string> temps;
  for (const auto& p : params) {
    const std::string tmp = state.supply.fresh("#" + p.name);
    temps.push_back(tmp);
    body = body->substitute(p.name, LTerm::var(tmp));
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    body = body->substitute(temps[i], args[i]);
  }
  return body;
}

FormulaPtr Prover::instantiate_def(const InductiveDef& def,
                                   const std::vector<LTermPtr>& args,
                                   State& state) const {
  FormulaPtr body = refresh_binders(def.body(), state);
  // Substitute params by args. Two-phase (via fresh intermediates) to avoid
  // capture when an arg mentions a name equal to a later param.
  std::vector<std::string> temps;
  for (const auto& p : def.params) {
    const std::string tmp = state.supply.fresh("#" + p.name);
    temps.push_back(tmp);
    body = body->substitute(p.name, LTerm::var(tmp));
  }
  for (std::size_t i = 0; i < def.params.size(); ++i) {
    body = body->substitute(temps[i], args[i]);
  }
  return body;
}

// ---------------------------------------------------------------------------
// Sequent helpers
// ---------------------------------------------------------------------------

namespace {

bool contains_formula(const std::vector<FormulaPtr>& fs, const Formula& f) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const FormulaPtr& g) { return g->equals(f); });
}

void push_unique(std::vector<FormulaPtr>& fs, FormulaPtr f) {
  if (!contains_formula(fs, *f)) fs.push_back(std::move(f));
}

/// Negation of a comparison as a comparison (for arithmetic refutation).
FormulaPtr negate_cmp(const Formula& f) {
  return Formula::cmp(ndlog::negate(f.cmp_op), f.terms[0], f.terms[1]);
}

}  // namespace

bool Prover::closed(const Sequent& s) const {
  for (const auto& a : s.ante) {
    if (a->kind == Formula::Kind::False) return true;
    if (contains_formula(s.cons, *a)) return true;
  }
  for (const auto& c : s.cons) {
    if (c->kind == Formula::Kind::True) return true;
  }
  return false;
}

bool Prover::simplify(Sequent& s) const {
  bool changed = true;
  int guard = 64;
  while (changed && guard-- > 0) {
    changed = false;
    // Rewrite + drop trivials.
    std::vector<FormulaPtr> new_ante, new_cons;
    for (auto& a : s.ante) {
      FormulaPtr r = rewrite_formula(a);
      if (r->kind == Formula::Kind::True) {
        changed = true;
        continue;
      }
      changed = changed || !r->equals(*a);
      push_unique(new_ante, std::move(r));
    }
    for (auto& c : s.cons) {
      FormulaPtr r = rewrite_formula(c);
      if (r->kind == Formula::Kind::False) {
        changed = true;
        continue;
      }
      changed = changed || !r->equals(*c);
      push_unique(new_cons, std::move(r));
    }
    s.ante = std::move(new_ante);
    s.cons = std::move(new_cons);
    if (closed(s)) return true;

    // Flatten antecedent conjunctions (cheap, keeps MP effective).
    std::vector<FormulaPtr> flat;
    for (const auto& a : s.ante) {
      if (a->kind == Formula::Kind::And) {
        for (const auto& sub : a->subs) push_unique(flat, sub);
        changed = true;
      } else {
        push_unique(flat, a);
      }
    }
    s.ante = std::move(flat);

    // Modus ponens: ante implication whose hypothesis is (conjunction of)
    // present antecedents.
    for (const auto& a : s.ante) {
      if (a->kind != Formula::Kind::Implies) continue;
      const FormulaPtr& hyp = a->subs[0];
      bool have = false;
      if (contains_formula(s.ante, *hyp)) {
        have = true;
      } else if (hyp->kind == Formula::Kind::And) {
        have = std::all_of(hyp->subs.begin(), hyp->subs.end(), [&](const FormulaPtr& h) {
          return contains_formula(s.ante, *h);
        });
      }
      if (have && !contains_formula(s.ante, *a->subs[1])) {
        s.ante.push_back(a->subs[1]);
        changed = true;
        break;  // restart (iterator invalidation)
      }
    }

    // Equality substitution: ante  X = t  (or t = X) with X a variable not
    // occurring in t — substitute X by t everywhere and drop the equation.
    for (std::size_t i = 0; i < s.ante.size(); ++i) {
      const auto& a = s.ante[i];
      if (a->kind != Formula::Kind::Cmp || a->cmp_op != ndlog::CmpOp::Eq) continue;
      const LTermPtr* var_side = nullptr;
      const LTermPtr* term_side = nullptr;
      if (a->terms[0]->kind == LTerm::Kind::Var) {
        var_side = &a->terms[0];
        term_side = &a->terms[1];
      } else if (a->terms[1]->kind == LTerm::Kind::Var) {
        var_side = &a->terms[1];
        term_side = &a->terms[0];
      }
      if (!var_side) continue;
      std::set<std::string> tv;
      (*term_side)->free_vars(tv);
      if (tv.count((*var_side)->name)) continue;
      const std::string var = (*var_side)->name;
      const LTermPtr replacement = *term_side;
      Sequent next;
      for (std::size_t j = 0; j < s.ante.size(); ++j) {
        if (j == i) continue;
        next.ante.push_back(s.ante[j]->substitute(var, replacement));
      }
      for (const auto& c : s.cons) next.cons.push_back(c->substitute(var, replacement));
      s = std::move(next);
      changed = true;
      break;
    }
    if (closed(s)) return true;
  }
  return closed(s) || arith_closes(s);
}

bool Prover::arith_closes(const Sequent& s) const {
  std::vector<LinearConstraint> constraints;
  bool any_numeric = false;
  for (const auto& a : s.ante) {
    if (a->kind != Formula::Kind::Cmp) continue;
    if (auto cs = constraint_of(*a)) {
      constraints.insert(constraints.end(), cs->begin(), cs->end());
      any_numeric = true;
    }
  }
  std::vector<const Formula*> eq_cons;  // consequent equalities: special-cased
  for (const auto& c : s.cons) {
    if (c->kind != Formula::Kind::Cmp) continue;
    if (c->cmp_op == ndlog::CmpOp::Eq) {
      eq_cons.push_back(c.get());
      continue;
    }
    FormulaPtr neg = negate_cmp(*c);
    if (auto cs = constraint_of(*neg)) {
      constraints.insert(constraints.end(), cs->begin(), cs->end());
      any_numeric = true;
    }
  }
  if (!any_numeric && eq_cons.empty()) return false;
  if (!constraints.empty() && infeasible(constraints)) return true;

  // Consequent equality a=b: closed if both assuming a<b and assuming b>a
  // are infeasible with the antecedent constraints.
  for (const Formula* eq : eq_cons) {
    auto lt = Formula::cmp(ndlog::CmpOp::Lt, eq->terms[0], eq->terms[1]);
    auto gt = Formula::cmp(ndlog::CmpOp::Gt, eq->terms[0], eq->terms[1]);
    auto cs_lt = constraint_of(*lt);
    auto cs_gt = constraint_of(*gt);
    if (!cs_lt || !cs_gt) continue;
    auto with_lt = constraints;
    with_lt.insert(with_lt.end(), cs_lt->begin(), cs_lt->end());
    auto with_gt = constraints;
    with_gt.insert(with_gt.end(), cs_gt->begin(), cs_gt->end());
    if (infeasible(with_lt) && infeasible(with_gt)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Tactics
// ---------------------------------------------------------------------------

bool Prover::tac_skolem(State& state) const {
  Sequent& s = state.goals.front();
  bool progress = false;
  bool again = true;
  int guard = 64;
  while (again && guard-- > 0) {
    again = false;
    for (auto& c : s.cons) {
      if (c->kind != Formula::Kind::Forall) continue;
      FormulaPtr body = c->subs[0];
      for (const auto& b : c->binders) {
        const std::string fresh = state.supply.fresh(b.name);
        state.sorts[fresh] = b.sort;
        body = body->substitute(b.name, LTerm::var(fresh));
      }
      c = body;
      progress = again = true;
      break;
    }
    for (auto& a : s.ante) {
      if (a->kind != Formula::Kind::Exists) continue;
      FormulaPtr body = a->subs[0];
      for (const auto& b : a->binders) {
        const std::string fresh = state.supply.fresh(b.name);
        state.sorts[fresh] = b.sort;
        body = body->substitute(b.name, LTerm::var(fresh));
      }
      a = body;
      progress = again = true;
      break;
    }
  }
  return progress;
}

bool Prover::tac_flatten(State& state) const {
  Sequent& s = state.goals.front();
  bool progress = false;
  bool again = true;
  int guard = 128;
  while (again && guard-- > 0) {
    again = false;
    for (std::size_t i = 0; i < s.cons.size(); ++i) {
      const FormulaPtr c = s.cons[i];
      if (c->kind == Formula::Kind::Implies) {
        s.cons.erase(s.cons.begin() + static_cast<std::ptrdiff_t>(i));
        push_unique(s.ante, c->subs[0]);
        push_unique(s.cons, c->subs[1]);
        progress = again = true;
        break;
      }
      if (c->kind == Formula::Kind::Or) {
        s.cons.erase(s.cons.begin() + static_cast<std::ptrdiff_t>(i));
        for (const auto& sub : c->subs) push_unique(s.cons, sub);
        progress = again = true;
        break;
      }
      if (c->kind == Formula::Kind::Not) {
        s.cons.erase(s.cons.begin() + static_cast<std::ptrdiff_t>(i));
        push_unique(s.ante, c->subs[0]);
        progress = again = true;
        break;
      }
    }
    if (again) continue;
    for (std::size_t i = 0; i < s.ante.size(); ++i) {
      const FormulaPtr a = s.ante[i];
      if (a->kind == Formula::Kind::And) {
        s.ante.erase(s.ante.begin() + static_cast<std::ptrdiff_t>(i));
        for (const auto& sub : a->subs) push_unique(s.ante, sub);
        progress = again = true;
        break;
      }
      if (a->kind == Formula::Kind::Not) {
        s.ante.erase(s.ante.begin() + static_cast<std::ptrdiff_t>(i));
        push_unique(s.cons, a->subs[0]);
        progress = again = true;
        break;
      }
      if (a->kind == Formula::Kind::True) {
        s.ante.erase(s.ante.begin() + static_cast<std::ptrdiff_t>(i));
        progress = again = true;
        break;
      }
    }
  }
  return progress;
}

bool Prover::tac_split(State& state) const {
  Sequent s = state.goals.front();
  // Consequent conjunction.
  for (std::size_t i = 0; i < s.cons.size(); ++i) {
    if (s.cons[i]->kind != Formula::Kind::And) continue;
    const FormulaPtr target = s.cons[i];
    state.goals.erase(state.goals.begin());
    std::vector<Sequent> subgoals;
    for (const auto& member : target->subs) {
      Sequent sub = s;
      sub.cons[i] = member;
      subgoals.push_back(std::move(sub));
    }
    state.goals.insert(state.goals.begin(), subgoals.begin(), subgoals.end());
    return true;
  }
  // Antecedent disjunction.
  for (std::size_t i = 0; i < s.ante.size(); ++i) {
    if (s.ante[i]->kind != Formula::Kind::Or) continue;
    const FormulaPtr target = s.ante[i];
    state.goals.erase(state.goals.begin());
    std::vector<Sequent> subgoals;
    for (const auto& member : target->subs) {
      Sequent sub = s;
      sub.ante[i] = member;
      subgoals.push_back(std::move(sub));
    }
    state.goals.insert(state.goals.begin(), subgoals.begin(), subgoals.end());
    return true;
  }
  // Antecedent implication: prove the hypothesis, or use the conclusion.
  for (std::size_t i = 0; i < s.ante.size(); ++i) {
    if (s.ante[i]->kind != Formula::Kind::Implies) continue;
    const FormulaPtr target = s.ante[i];
    state.goals.erase(state.goals.begin());
    Sequent use = s;
    use.ante[i] = target->subs[1];
    Sequent prove_hyp = s;
    prove_hyp.ante.erase(prove_hyp.ante.begin() + static_cast<std::ptrdiff_t>(i));
    prove_hyp.cons.insert(prove_hyp.cons.begin(), target->subs[0]);
    state.goals.insert(state.goals.begin(), {use, prove_hyp});
    return true;
  }
  // Consequent iff.
  for (std::size_t i = 0; i < s.cons.size(); ++i) {
    if (s.cons[i]->kind != Formula::Kind::Iff) continue;
    const FormulaPtr target = s.cons[i];
    state.goals.erase(state.goals.begin());
    Sequent fwd = s;
    fwd.cons[i] = Formula::implies(target->subs[0], target->subs[1]);
    Sequent bwd = s;
    bwd.cons[i] = Formula::implies(target->subs[1], target->subs[0]);
    state.goals.insert(state.goals.begin(), {fwd, bwd});
    return true;
  }
  return false;
}

bool Prover::tac_expand(State& state, const std::string& pred) const {
  const InductiveDef* def = theory_.find_definition(pred);
  if (!def) return false;
  Sequent& s = state.goals.front();
  bool progress = false;
  std::function<FormulaPtr(const FormulaPtr&)> walk = [&](const FormulaPtr& f) -> FormulaPtr {
    if (f->kind == Formula::Kind::Pred && f->pred_name == pred &&
        f->terms.size() == def->params.size()) {
      progress = true;
      return instantiate_def(*def, f->terms, state);
    }
    if (f->subs.empty()) return f;
    auto copy = std::make_shared<Formula>(*f);
    for (auto& sub : copy->subs) sub = walk(sub);
    return copy;
  };
  for (auto& a : s.ante) a = walk(a);
  for (auto& c : s.cons) c = walk(c);
  return progress;
}

bool Prover::tac_inst(State& state, const std::vector<LTermPtr>& terms) const {
  Sequent& s = state.goals.front();
  auto instantiate = [&](const FormulaPtr& q) -> FormulaPtr {
    FormulaPtr body = q->subs[0];
    std::vector<TypedVar> rest;
    for (std::size_t i = 0; i < q->binders.size(); ++i) {
      if (i < terms.size()) {
        body = body->substitute(q->binders[i].name, terms[i]);
      } else {
        rest.push_back(q->binders[i]);
      }
    }
    return q->kind == Formula::Kind::Forall ? Formula::forall(rest, body)
                                            : Formula::exists(rest, body);
  };
  for (const auto& a : s.ante) {
    if (a->kind != Formula::Kind::Forall) continue;
    FormulaPtr inst = instantiate(a);
    if (!contains_formula(s.ante, *inst)) {
      s.ante.push_back(std::move(inst));
      return true;
    }
  }
  for (const auto& c : s.cons) {
    if (c->kind != Formula::Kind::Exists) continue;
    FormulaPtr inst = instantiate(c);
    if (!contains_formula(s.cons, *inst)) {
      s.cons.push_back(std::move(inst));
      return true;
    }
  }
  return false;
}

bool Prover::tac_assert(State& state) const {
  Sequent& s = state.goals.front();
  if (simplify(s)) {
    state.goals.erase(state.goals.begin());
    return true;
  }
  return false;
}

bool Prover::tac_case(State& state, const FormulaPtr& f) const {
  if (!f) return false;
  Sequent s = state.goals.front();
  state.goals.erase(state.goals.begin());
  Sequent with = s;
  with.ante.push_back(f);
  Sequent without = s;
  without.cons.push_back(f);
  state.goals.insert(state.goals.begin(), {with, without});
  return true;
}

bool Prover::tac_induct(State& state, const std::string& pred) const {
  const InductiveDef* def = theory_.find_definition(pred);
  if (!def) return false;
  Sequent s = state.goals.front();
  if (s.cons.size() != 1) return false;
  const FormulaPtr goal = s.cons[0];
  if (goal->kind != Formula::Kind::Forall) return false;
  const FormulaPtr body = goal->subs[0];
  if (body->kind != Formula::Kind::Implies) return false;
  const FormulaPtr head = body->subs[0];
  const FormulaPtr phi = body->subs[1];
  if (head->kind != Formula::Kind::Pred || head->pred_name != pred) return false;
  if (head->terms.size() != def->params.size()) return false;
  // The predicate's arguments must be distinct bound variables.
  std::vector<std::string> arg_vars;
  for (const auto& t : head->terms) {
    if (t->kind != LTerm::Kind::Var) return false;
    if (std::find(arg_vars.begin(), arg_vars.end(), t->name) != arg_vars.end()) return false;
    arg_vars.push_back(t->name);
  }

  state.goals.erase(state.goals.begin());
  std::vector<Sequent> subgoals;
  for (const auto& clause : def->clauses) {
    // Fresh constants for the induction variables.
    std::map<std::string, LTermPtr> consts;
    for (const auto& b : goal->binders) {
      const std::string fresh = state.supply.fresh(b.name);
      state.sorts[fresh] = b.sort;
      consts[b.name] = LTerm::var(fresh);
    }
    // Clause over the fresh constants (def params positionally match the
    // predicate arguments).
    std::vector<LTermPtr> args;
    for (const auto& v : arg_vars) args.push_back(consts.at(v));
    FormulaPtr inst_clause = instantiate_formula(clause, def->params, args, state);
    // Skolemize clause existentials so recursive occurrences are visible.
    while (inst_clause->kind == Formula::Kind::Exists) {
      FormulaPtr inner = inst_clause->subs[0];
      for (const auto& b : inst_clause->binders) {
        const std::string fresh = state.supply.fresh(b.name);
        state.sorts[fresh] = b.sort;
        inner = inner->substitute(b.name, LTerm::var(fresh));
      }
      inst_clause = inner;
    }

    Sequent sub = s;
    sub.cons.clear();
    // Antecedents: the clause conjuncts; induction hypotheses for recursive
    // occurrences at positive conjunct positions.
    std::vector<FormulaPtr> conjuncts;
    std::function<void(const FormulaPtr&)> collect = [&](const FormulaPtr& f) {
      if (f->kind == Formula::Kind::And) {
        for (const auto& c : f->subs) collect(c);
        return;
      }
      conjuncts.push_back(f);
    };
    collect(inst_clause);
    for (const auto& c : conjuncts) {
      push_unique(sub.ante, c);
      if (c->kind == Formula::Kind::Pred && c->pred_name == pred &&
          c->terms.size() == arg_vars.size()) {
        FormulaPtr ih = phi;
        // Map the induction variables to this occurrence's arguments (other
        // goal binders stay universally quantified inside phi already).
        for (std::size_t i = 0; i < arg_vars.size(); ++i) {
          ih = ih->substitute(arg_vars[i], c->terms[i]);
        }
        // Any remaining binder variables in ih refer to the outer quantifier;
        // replace with the fresh constants.
        for (const auto& [name, value] : consts) ih = ih->substitute(name, value);
        push_unique(sub.ante, ih);
      }
    }
    // Conclusion: phi at the fresh constants.
    FormulaPtr conclusion = phi;
    for (const auto& [name, value] : consts) {
      conclusion = conclusion->substitute(name, value);
    }
    sub.cons.push_back(conclusion);
    subgoals.push_back(std::move(sub));
  }
  state.goals.insert(state.goals.begin(), subgoals.begin(), subgoals.end());
  return true;
}

bool Prover::tac_auto_inst(State& state) const {
  Sequent& s = state.goals.front();
  // Candidate terms: free variables (skolem constants) and integer constants
  // occurring in the sequent, grouped by sort.
  std::set<std::string> vars;
  for (const auto& a : s.ante) a->free_vars(vars);
  for (const auto& c : s.cons) c->free_vars(vars);
  std::vector<std::pair<LTermPtr, Sort>> candidates;
  for (const auto& v : vars) {
    auto it = state.sorts.find(v);
    candidates.emplace_back(LTerm::var(v), it == state.sorts.end() ? Sort::Unknown : it->second);
  }

  auto compatible = [](Sort want, Sort have) {
    return want == Sort::Unknown || have == Sort::Unknown || want == have;
  };

  auto try_quantifier = [&](const FormulaPtr& q, bool antecedent) -> bool {
    // Enumerate combinations (bounded).
    const std::size_t n = q->binders.size();
    std::vector<std::size_t> idx(n, 0);
    std::size_t combos = 0;
    while (combos < state.options.max_inst_candidates) {
      ++combos;
      std::vector<LTermPtr> terms(n);
      bool ok = !candidates.empty();
      for (std::size_t i = 0; i < n && ok; ++i) {
        const auto& [term, sort] = candidates[idx[i] % candidates.size()];
        if (!compatible(q->binders[i].sort, sort)) ok = false;
        terms[i] = term;
      }
      if (ok) {
        FormulaPtr body = q->subs[0];
        for (std::size_t i = 0; i < n; ++i) {
          body = body->substitute(q->binders[i].name, terms[i]);
        }
        Sequent trial = s;
        if (antecedent) {
          trial.ante.push_back(body);
        } else {
          trial.cons.push_back(body);
        }
        if (simplify(trial)) {
          state.goals.front() = std::move(trial);
          state.goals.erase(state.goals.begin());
          return true;
        }
        // Keep useful instantiations even when they don't close the goal:
        // a modus-ponens-enabling antecedent instantiation is progress.
        if (antecedent && body->kind == Formula::Kind::Implies &&
            contains_formula(s.ante, *body->subs[0]) &&
            !contains_formula(s.ante, *body)) {
          s.ante.push_back(body);
          return true;
        }
      }
      // Advance the odometer.
      std::size_t pos = 0;
      while (pos < n) {
        if (++idx[pos] % std::max<std::size_t>(candidates.size(), 1) != 0) break;
        idx[pos] = 0;
        ++pos;
      }
      if (pos == n || n == 0) break;
    }
    return false;
  };

  // Index-based iteration with a copied handle: try_quantifier may push to
  // the sequent's own vectors.
  for (std::size_t i = 0; i < s.ante.size(); ++i) {
    const FormulaPtr a = s.ante[i];
    if (a->kind == Formula::Kind::Forall && try_quantifier(a, true)) return true;
  }
  for (std::size_t i = 0; i < s.cons.size(); ++i) {
    const FormulaPtr c = s.cons[i];
    if (c->kind == Formula::Kind::Exists && try_quantifier(c, false)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

namespace {

const char* kind_name(Command::Kind kind) {
  switch (kind) {
    case Command::Kind::Skolem: return "skolem";
    case Command::Kind::Flatten: return "flatten";
    case Command::Kind::Split: return "split";
    case Command::Kind::Expand: return "expand";
    case Command::Kind::Inst: return "inst";
    case Command::Kind::Assert: return "assert";
    case Command::Kind::Induct: return "induct";
    case Command::Kind::Case: return "case";
    case Command::Kind::Grind: return "grind";
  }
  return "unknown";
}

}  // namespace

bool Prover::run_command(const Command& cmd, State& state, bool automated,
                         ProofResult& result) {
  if (state.goals.empty()) return false;
  const std::string kind = kind_name(cmd.kind);
  if (metrics_ != nullptr) {
    metrics_->counter("prover/tactic/" + kind + "/invocations").add(1);
  }
  obs::Timer::Scope timing(metrics_ != nullptr ? &metrics_->timer("prover/tactic/" + kind)
                                               : nullptr);
  obs::Span span(trace_, cmd.to_string(), "prover/tactic");
  ProofStep step;
  step.command = cmd.to_string();
  step.automated = automated;
  step.goals_before = state.goals.size();
  bool progress = false;
  switch (cmd.kind) {
    case Command::Kind::Skolem: progress = tac_skolem(state); break;
    case Command::Kind::Flatten: progress = tac_flatten(state); break;
    case Command::Kind::Split: progress = tac_split(state); break;
    case Command::Kind::Expand: progress = tac_expand(state, cmd.pred); break;
    case Command::Kind::Inst: progress = tac_inst(state, cmd.terms); break;
    case Command::Kind::Assert: progress = tac_assert(state); break;
    case Command::Kind::Induct: progress = tac_induct(state, cmd.pred); break;
    case Command::Kind::Case: progress = tac_case(state, cmd.formula); break;
    case Command::Kind::Grind:
      // The grind command's internal micro-steps are recorded as automated;
      // the command itself still counts toward scripted_steps (in prove()).
      grind(state, result);
      return true;
  }
  step.goals_after = state.goals.size();
  result.steps.push_back(std::move(step));
  return progress;
}

void Prover::grind(State& state, ProofResult& result) {
  auto log = [&](const char* name) {
    if (metrics_ != nullptr) metrics_->counter(std::string("prover/grind/") + name).add(1);
    ProofStep step;
    step.command = std::string("(") + name + ")";
    step.automated = true;
    step.goals_before = state.goals.size();
    step.goals_after = state.goals.size();
    result.steps.push_back(std::move(step));
  };
  for (std::size_t round = 0; round < state.options.max_rounds; ++round) {
    if (state.goals.empty()) return;
    if (tac_assert(state)) {
      log("assert");
      continue;
    }
    if (tac_flatten(state)) {
      log("flatten");
      continue;
    }
    if (tac_skolem(state)) {
      log("skolem!");
      continue;
    }
    // Expand non-recursive definitions mentioned in the goal.
    bool expanded = false;
    for (const auto& def : theory_.definitions) {
      if (is_recursive(def.pred_name)) continue;
      // Present in the sequent?
      const Sequent& s = state.goals.front();
      auto mentions = [&](const FormulaPtr& f) {
        bool found = false;
        std::function<void(const Formula&)> walk = [&](const Formula& g) {
          if (g.kind == Formula::Kind::Pred && g.pred_name == def.pred_name) found = true;
          for (const auto& sub : g.subs) walk(*sub);
        };
        walk(*f);
        return found;
      };
      bool present = std::any_of(s.ante.begin(), s.ante.end(), mentions) ||
                     std::any_of(s.cons.begin(), s.cons.end(), mentions);
      if (present && tac_expand(state, def.pred_name)) {
        log(("expand " + def.pred_name).c_str());
        expanded = true;
        break;
      }
    }
    if (expanded) continue;
    if (tac_auto_inst(state)) {
      log("inst?");
      continue;
    }
    if (tac_split(state)) {
      log("split");
      continue;
    }
    return;  // stuck
  }
}

ProofResult Prover::prove(const logic::Theorem& theorem, const std::vector<Command>& script,
                          const GrindOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  ProofResult result;
  State state;
  state.options = options;
  Sequent root;
  for (const auto& ax : axioms_) root.ante.push_back(ax.statement);
  root.cons.push_back(theorem.statement);
  state.goals.push_back(std::move(root));

  for (const auto& cmd : script) {
    if (state.goals.empty()) break;
    ++result.scripted_steps;
    run_command(cmd, state, /*automated=*/false, result);
  }
  result.proved = state.goals.empty();
  result.open_goals = state.goals;
  if (!result.proved) {
    result.failure_reason = std::to_string(state.goals.size()) + " open goal(s) remain";
  }
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

ProofResult Prover::prove_auto(const logic::Theorem& theorem, const GrindOptions& options) {
  return prove(theorem, {Command::grind()}, options);
}

std::optional<std::string> Prover::find_counterexample(
    const logic::Theorem& theorem, const logic::FiniteModel& model) const {
  // A universally quantified implication fails iff the negation is
  // satisfiable; the finite model enumerates witnesses directly.
  if (model.eval(*theorem.statement)) return std::nullopt;
  // Narrow the witness: peel the outer quantifier and report the assignment
  // that falsifies the body.
  const logic::Formula& f = *theorem.statement;
  if (f.kind != Formula::Kind::Forall) return "theorem is false in the finite model";
  std::vector<const logic::TypedVar*> binders;
  for (const auto& b : f.binders) binders.push_back(&b);
  std::map<std::string, logic::Value> env;
  std::function<std::optional<std::string>(std::size_t)> search =
      [&](std::size_t i) -> std::optional<std::string> {
    if (i == binders.size()) {
      if (!model.eval(*f.subs[0], env)) {
        std::ostringstream os;
        os << "counterexample:";
        for (const auto& [k, v] : env) os << " " << k << "=" << v.to_string();
        return os.str();
      }
      return std::nullopt;
    }
    for (const auto& v : model.domain(binders[i]->sort)) {
      env[binders[i]->name] = v;
      if (auto r = search(i + 1)) return r;
    }
    env.erase(binders[i]->name);
    return std::nullopt;
  };
  return search(0);
}

}  // namespace fvn::prover
