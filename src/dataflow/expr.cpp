#include "dataflow/expr.hpp"

#include <sstream>

#include "ndlog/analysis.hpp"
#include "ndlog/eval.hpp"

namespace fvn::dataflow {

CompiledExpr CompiledExpr::of_slot(int s) {
  CompiledExpr e;
  e.kind = Kind::Slot;
  e.slot = s;
  return e;
}

CompiledExpr CompiledExpr::of_const(ndlog::Value v) {
  CompiledExpr e;
  e.kind = Kind::Const;
  e.constant = std::move(v);
  return e;
}

ndlog::Value CompiledExpr::eval(const std::vector<ndlog::Value>& regs,
                                const ndlog::BuiltinRegistry& builtins) const {
  switch (kind) {
    case Kind::Slot:
      return regs[static_cast<std::size_t>(slot)];
    case Kind::Const:
      return constant;
    case Kind::Func: {
      std::vector<ndlog::Value> vals;
      vals.reserve(args.size());
      for (const auto& a : args) vals.push_back(a.eval(regs, builtins));
      return builtins.call(func, vals);
    }
    case Kind::Binary: {
      const ndlog::Value lhs = args[0].eval(regs, builtins);
      const ndlog::Value rhs = args[1].eval(regs, builtins);
      switch (op) {
        case ndlog::BinOp::Add: return lhs.add(rhs);
        case ndlog::BinOp::Sub: return lhs.sub(rhs);
        case ndlog::BinOp::Mul: return lhs.mul(rhs);
        case ndlog::BinOp::Div: return lhs.div(rhs);
        case ndlog::BinOp::Mod: return lhs.mod(rhs);
      }
      return ndlog::Value::nil();
    }
  }
  return ndlog::Value::nil();
}

std::string CompiledExpr::to_string() const {
  switch (kind) {
    case Kind::Slot:
      return "$" + std::to_string(slot);
    case Kind::Const:
      return constant.to_string();
    case Kind::Func: {
      std::ostringstream os;
      os << func << '(';
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) os << ',';
        os << args[i].to_string();
      }
      os << ')';
      return os.str();
    }
    case Kind::Binary: {
      std::ostringstream os;
      os << '(' << args[0].to_string() << ndlog::to_string(op)
         << args[1].to_string() << ')';
      return os.str();
    }
  }
  return "?";
}

int SlotMap::lookup(const std::string& var) const {
  auto it = slots_.find(var);
  return it == slots_.end() ? -1 : it->second;
}

int SlotMap::bind(const std::string& var) {
  int slot = static_cast<int>(names_.size());
  slots_.emplace(var, slot);
  names_.push_back(var);
  return slot;
}

CompiledExpr compile_term(const ndlog::Term& term, const SlotMap& slots) {
  using ndlog::Term;
  switch (term.kind) {
    case Term::Kind::Var: {
      int slot = slots.lookup(term.name);
      if (slot < 0) {
        throw ndlog::AnalysisError("dataflow planner: variable '" + term.name +
                                   "' used before it is bound");
      }
      return CompiledExpr::of_slot(slot);
    }
    case Term::Kind::Const:
      return CompiledExpr::of_const(term.constant);
    case Term::Kind::Func: {
      CompiledExpr e;
      e.kind = CompiledExpr::Kind::Func;
      e.func = term.name;
      e.args.reserve(term.args.size());
      for (const auto& a : term.args) e.args.push_back(compile_term(*a, slots));
      return e;
    }
    case Term::Kind::Binary: {
      CompiledExpr e;
      e.kind = CompiledExpr::Kind::Binary;
      e.op = term.op;
      e.args.push_back(compile_term(*term.args[0], slots));
      e.args.push_back(compile_term(*term.args[1], slots));
      return e;
    }
  }
  throw ndlog::AnalysisError("dataflow planner: unknown term kind");
}

}  // namespace fvn::dataflow
