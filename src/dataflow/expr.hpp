// Register-compiled NDlog terms. The planner resolves every variable of a
// rule strand to a slot in a flat register file at compile time, so the
// per-tuple hot path of the dataflow engine never touches a name-keyed
// binding map (the generic evaluator's Bindings) — slot reads are array
// indexing. This is the per-element analogue of P2's compiled element
// configuration.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ndlog/ast.hpp"
#include "ndlog/builtins.hpp"

namespace fvn::dataflow {

/// A Term with variables resolved to register slots. Mirrors Term::Kind but
/// is self-contained so plans can outlive the AST they were compiled from.
struct CompiledExpr {
  enum class Kind : std::uint8_t { Slot, Const, Func, Binary };

  Kind kind = Kind::Const;
  int slot = -1;                   // Slot payload
  ndlog::Value constant;           // Const payload
  ndlog::BinOp op = ndlog::BinOp::Add;  // Binary payload
  std::string func;                // Func payload
  std::vector<CompiledExpr> args;  // Func arguments / Binary operands

  static CompiledExpr of_slot(int s);
  static CompiledExpr of_const(ndlog::Value v);

  /// Evaluate against a register file. The planner only emits an expression
  /// once every slot it reads is bound, so evaluation is total.
  ndlog::Value eval(const std::vector<ndlog::Value>& regs,
                    const ndlog::BuiltinRegistry& builtins) const;

  /// "$3", "f_concatPath($0,$2)", "$1+$2" — used by DOT/JSON plan dumps.
  std::string to_string() const;
};

/// Variable-name → register-slot mapping built while planning one strand.
class SlotMap {
 public:
  /// Slot of `var`, or -1 when the variable is not yet bound.
  int lookup(const std::string& var) const;
  /// Allocate a slot for `var` (must not be bound yet).
  int bind(const std::string& var);
  std::size_t size() const noexcept { return names_.size(); }
  /// Slot index → variable name (plan dumps).
  const std::vector<std::string>& names() const noexcept { return names_; }

 private:
  std::unordered_map<std::string, int> slots_;
  std::vector<std::string> names_;
};

/// Compile `term` against `slots`. Throws ndlog::AnalysisError when the term
/// mentions a variable without a slot — the planner's scheduling guarantees
/// boundness for well-formed (safe) rules, so this indicates a planner bug
/// or an unsafe rule that bypassed check_safety.
CompiledExpr compile_term(const ndlog::Term& term, const SlotMap& slots);

}  // namespace fvn::dataflow
