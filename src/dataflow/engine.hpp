// Per-node execution of a compiled Plan: one tuple delta at a time through
// the rule strands (true incremental semi-naive — no per-message
// re-evaluation), plus incremental aggregate view maintenance driven by
// database-mirror hooks. The executive (runtime::Simulator) owns message
// routing, keyed overwrite, and soft-state expiry; the engine owns only the
// compiled hot path.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "dataflow/plan.hpp"
#include "ndlog/builtins.hpp"
#include "ndlog/database.hpp"
#include "ndlog/eval.hpp"
#include "obs/metrics.hpp"

namespace fvn::dataflow {

/// Counters for one engine (aggregated across elements; per-element in/out
/// counters live in the obs registry under dataflow/elem/...).
struct EngineStats {
  std::uint64_t deltas_processed = 0;  // process() calls
  std::uint64_t tuples_emitted = 0;    // head tuples handed to the executive
  std::uint64_t probes = 0;            // tuples examined by relational elements
  std::uint64_t agg_updates = 0;       // group-state ± applications
};

class Engine {
 public:
  /// `plan` must outlive the engine. `metrics` may be null; when set, every
  /// element gets dataflow/elem/<rule>[d<pos>]/<elem>/{in,out} counters
  /// (shared across engines — i.e. across simulated nodes).
  Engine(const Plan& plan, const ndlog::BuiltinRegistry& builtins,
         obs::Registry* metrics = nullptr);

  /// Push one delta tuple through every strand whose delta predicate
  /// matches, in plan order, appending head tuples to `out` in exactly the
  /// order the interpreter's eval_rule_delta loop would produce them. `db`
  /// is the node's local database (the delta itself need not be stored —
  /// transient periodic tuples are processed without installation).
  void process(const ndlog::Tuple& delta, const ndlog::Database& db,
               std::vector<ndlog::Tuple>& out);

  /// Database-mirror hooks: the executive MUST call these for every local
  /// table mutation (install, overwrite, expiry, retraction, aggregate-row
  /// erasure) so incremental aggregate state tracks the database exactly.
  void on_insert(const ndlog::Tuple& tuple, const ndlog::Database& db);
  void on_erase(const ndlog::Tuple& tuple, const ndlog::Database& db);

  /// Recompute aggregate rule `index`'s output view. Returns nullopt when no
  /// relevant mutation occurred since the last flush (the view provably
  /// equals whatever was returned last). The executive diffs the returned
  /// set against its cache and routes retractions/additions.
  std::optional<ndlog::TupleSet> flush_aggregate(std::size_t index,
                                                 const ndlog::Database& db);
  std::size_t aggregate_count() const noexcept { return plan_->aggregates.size(); }
  bool aggregate_dirty(std::size_t index) const { return agg_[index].dirty; }
  bool aggregate_incremental(std::size_t index) const {
    return plan_->aggregates[index].incremental;
  }

  /// One aggregate group whose output row changed since the last diff flush.
  /// `retract` is the previously-emitted row (absent for a new group),
  /// `assert_now` the current row (absent when the group emptied).
  struct AggDelta {
    std::optional<ndlog::Tuple> retract;
    std::optional<ndlog::Tuple> assert_now;
  };

  /// Incremental alternative to flush_aggregate(): touches only the groups
  /// dirtied since the last diff flush and emits retract/assert pairs for
  /// those whose aggregate value actually moved, in sorted group-key order.
  /// O(changed groups) instead of O(all groups) per flush — this is what
  /// makes per-batch aggregate maintenance cheap on the distributed hot
  /// path. Only valid when aggregate_incremental(index); an index must use
  /// either this or flush_aggregate() exclusively (each keeps its own notion
  /// of "what was last emitted"). Returns true when `out` is non-empty.
  bool flush_aggregate_diff(std::size_t index, std::vector<AggDelta>& out);

  const EngineStats& stats() const noexcept { return stats_; }
  const Plan& plan() const noexcept { return *plan_; }

 private:
  struct ElemObs {
    obs::Counter* in = nullptr;
    obs::Counter* out = nullptr;
  };
  using StrandObs = std::vector<ElemObs>;
  /// Per-group aggregate state: group key (full head-args vector, nil at the
  /// aggregate position) -> multiset of bound aggregate-variable values.
  using GroupState = std::map<std::vector<ndlog::Value>,
                              std::map<ndlog::Value, std::int64_t>>;
  struct AggState {
    GroupState groups;
    bool dirty = false;
    /// Diff-flush bookkeeping (flush_aggregate_diff only): groups touched
    /// since the last diff flush, and the aggregate value last emitted per
    /// group (absent = group never emitted / last emitted a retraction).
    std::set<std::vector<ndlog::Value>> dirty_keys;
    std::map<std::vector<ndlog::Value>, ndlog::Value> emitted;
  };
  struct RunCtx {
    const Strand* strand = nullptr;
    const StrandObs* obs = nullptr;
    const ndlog::Tuple* delta = nullptr;
    const ndlog::Database* db = nullptr;
    std::vector<ndlog::Tuple>* out = nullptr;  // Project sink
    GroupState* groups = nullptr;              // Aggregate sink
    std::set<std::vector<ndlog::Value>>* dirty_keys = nullptr;  // diff-flush log
    int sign = +1;
  };

  void run_strand(const Strand& strand, const StrandObs& obs, const ndlog::Tuple& delta,
                  const ndlog::Database& db, std::vector<ndlog::Tuple>* out,
                  GroupState* groups, int sign,
                  std::set<std::vector<ndlog::Value>>* dirty_keys = nullptr);
  static ndlog::Value aggregate_value(const AggregateRulePlan& ap,
                                      const std::map<ndlog::Value, std::int64_t>& group);
  void exec(RunCtx& ctx, std::size_t ei);
  bool match(const Element& element, const ndlog::Tuple& tuple);
  void touch(const ndlog::Tuple& tuple, int sign, const ndlog::Database& db);
  StrandObs make_obs(const Strand& strand) const;

  const Plan* plan_;
  const ndlog::BuiltinRegistry* builtins_;
  obs::Registry* metrics_;
  std::vector<StrandObs> strand_obs_;               // parallel to plan_->strands
  std::vector<std::vector<StrandObs>> agg_obs_;     // parallel to aggregates
  std::vector<AggState> agg_;
  ndlog::RuleEngine fallback_;  // recompute-mode aggregate evaluation
  std::vector<ndlog::Value> regs_;
  EngineStats stats_;
};

}  // namespace fvn::dataflow
