// The dataflow planner: compiles each rule of a *localized* NDlog program
// into explicit element strands (one strand per positive body-atom position,
// the delta position). The planner statically replays the interpreter's join
// schedule — body-order atom enumeration, eager check discharge, first-bound
// index-probe selection — so a compiled strand enumerates exactly the
// solutions (in exactly the order) that RuleEngine::eval_rule_delta would,
// which is what makes interpreter/dataflow differential runs bit-identical.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dataflow/element.hpp"
#include "ndlog/ast.hpp"

namespace fvn::dataflow {

/// The compiled pipeline for one (rule, delta position) pair.
struct Strand {
  std::size_t rule_index = 0;      // into Plan::program.rules
  std::string rule_label;          // Rule::display_name()
  std::string delta_predicate;     // predicate consumed by the Delta element
  std::size_t delta_position = 0;  // index among the rule's positive atoms
  /// A dead strand can never emit (an undischargeable check or an atom
  /// argument mentioning a never-bound variable) — mirroring the
  /// interpreter, which silently enumerates zero solutions for such rules.
  bool dead = false;
  std::vector<Element> elements;
  std::size_t nslots = 0;               // register-file size
  std::vector<std::string> slot_names;  // slot -> variable name (dumps)
};

/// Compilation of one aggregate rule: either true incremental view
/// maintenance (per-group multiset state updated by ±delta strands) or the
/// interpreter-identical full recompute fallback.
struct AggregateRulePlan {
  std::size_t rule_index = 0;
  std::string rule_label;
  bool incremental = true;
  std::string mode_reason;  // why recompute was forced (empty if incremental)
  ndlog::AggKind kind = ndlog::AggKind::Min;
  std::size_t agg_pos = 0;
  /// Incremental mode: one maintenance strand per positive atom position,
  /// each terminated by an Aggregate element.
  std::vector<Strand> strands;
  /// Every predicate the rule body reads (positive and negated) — the
  /// engine's dirty-tracking set.
  std::set<std::string> body_predicates;
};

struct PlanOptions {
  /// When false every aggregate rule uses the recompute fallback (ablation).
  bool incremental_aggregates = true;
  /// Reorder each rule's body atoms into the statically cheapest join order
  /// (ndlog::cost::plan_orders) before building strands. Only rules whose
  /// reordering provably cannot change the final database are touched, so
  /// the fixpoint stays bit-identical to the interpreter's.
  bool cost_order = false;
};

/// A compiled program: self-contained (owns a copy of the localized program
/// so plans can be dumped or executed independently of the caller's AST).
struct Plan {
  ndlog::Program program;
  /// Rule bodies were permuted by the cost-guided join-order pass.
  bool cost_ordered = false;
  std::vector<Strand> strands;               // (rule order, delta position)
  std::vector<AggregateRulePlan> aggregates; // rule order
  /// delta predicate -> strand indices, preserving global strand order.
  std::map<std::string, std::vector<std::size_t>> strands_by_predicate;

  /// Interned dispatch tables. Every predicate the engine can be handed a
  /// delta for — normal-strand delta predicates, aggregate body predicates,
  /// aggregate maintenance-strand deltas — gets a dense id at compile time.
  /// The engine's hot path then costs one hash probe per delta instead of a
  /// std::map string walk plus per-aggregate set<string> membership scans.
  std::unordered_map<std::string, std::uint32_t> predicate_ids;
  /// id -> normal strand indices (same contents/order as strands_by_predicate).
  std::vector<std::vector<std::size_t>> strands_by_id;
  /// id -> aggregate indices whose body reads the predicate (dirty marking).
  std::vector<std::vector<std::size_t>> aggregates_by_id;
  /// id -> (aggregate index, maintenance strand index) pairs whose delta is
  /// the predicate, in (aggregate, strand) order — incremental plans only.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> agg_strands_by_id;

  /// Interned id for a predicate, or -1 when the plan never dispatches on it.
  int pred_id(const std::string& predicate) const {
    auto it = predicate_ids.find(predicate);
    return it == predicate_ids.end() ? -1 : static_cast<int>(it->second);
  }

  std::size_t element_count() const;
  /// Graphviz rendering: one cluster per strand.
  std::string to_dot() const;
  /// Machine-readable rendering (parsable by obs::json).
  std::string to_json() const;
  /// Compact per-strand text ("r2[d1] link -> join path@0 ..."), for the CLI.
  std::string summary() const;
};

/// Compile an already-localized program (run runtime::localize first; the
/// planner itself is location-agnostic and never rewrites rules). Throws
/// ndlog::AnalysisError on rules that violate planning preconditions the
/// safety check would also reject (unbound head/aggregate variables).
Plan compile(const ndlog::Program& localized, const PlanOptions& options = {});

}  // namespace fvn::dataflow
