#include "dataflow/workers.hpp"

#include <algorithm>
#include <set>

namespace fvn::dataflow {

using ndlog::Tuple;
using ndlog::TupleSet;

ShardRouter::ShardRouter(const ndlog::parallel::Report& report,
                         const ndlog::Catalog& catalog) {
  for (const auto& name : catalog.predicates()) {
    auto it = report.keys.find(name);
    columns_[name] = it != report.keys.end()
                         ? it->second.column
                         : static_cast<int>(catalog.info(name).loc_index);
  }
}

std::size_t ShardRouter::shard_of(const Tuple& tuple, std::size_t workers) const {
  if (workers <= 1) return 0;
  auto it = columns_.find(tuple.predicate());
  const int col = it == columns_.end() ? -1 : it->second;
  if (col < 0 || static_cast<std::size_t>(col) >= tuple.arity()) return 0;
  return ndlog::ValueHash{}(tuple.at(static_cast<std::size_t>(col))) % workers;
}

int ShardRouter::column_of(const std::string& predicate) const {
  auto it = columns_.find(predicate);
  return it == columns_.end() ? -1 : it->second;
}

std::uint64_t WorkerPool::bell_ticket(Doorbell& bell) {
  return bell.signal.load(std::memory_order_acquire);
}

void WorkerPool::bell_ring(Doorbell& bell) {
  {
    // The increment happens under the mutex so a waiter between its ticket
    // check and cv.wait cannot miss it (same argument as the transport's
    // doorbell — see net/transport.hpp).
    std::lock_guard<std::mutex> lock(bell.mutex);
    bell.signal.fetch_add(1, std::memory_order_acq_rel);
  }
  bell.cv.notify_all();
}

void WorkerPool::bell_wait(Doorbell& bell, std::uint64_t ticket) {
  std::unique_lock<std::mutex> lock(bell.mutex);
  bell.cv.wait(lock, [&] {
    return bell.signal.load(std::memory_order_acquire) != ticket;
  });
}

WorkerPool::WorkerPool(Config config) : config_(std::move(config)) {
  const std::size_t count = std::max<std::size_t>(1, config_.workers);
  if (config_.plan == nullptr && config_.program != nullptr) {
    for (const auto& rule : config_.program->rules) {
      if (rule.is_fact()) continue;
      if (rule.head.has_aggregate()) continue;  // aggregates stay serial
      normal_rules_.push_back(&rule);
    }
  }
  // The prewarm universe: in plan mode exactly the IndexJoin probe sites; in
  // interpreter mode eval_rule_delta picks probe columns dynamically, so
  // cover every column of every predicate (a superset is merely a few empty
  // indexes).
  std::set<std::pair<std::string, std::size_t>> sites;
  if (config_.plan != nullptr) {
    for (const auto& strand : config_.plan->strands) {
      for (const auto& element : strand.elements) {
        if (element.kind != Element::Kind::IndexJoin || element.probe_pos < 0) continue;
        sites.emplace(element.predicate, static_cast<std::size_t>(element.probe_pos));
      }
    }
  } else if (config_.catalog != nullptr) {
    for (const auto& name : config_.catalog->predicates()) {
      const auto& info = config_.catalog->info(name);
      for (std::size_t col = 0; col < info.arity; ++col) sites.emplace(name, col);
    }
  }
  prewarm_sites_.assign(sites.begin(), sites.end());

  workers_.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    auto worker = std::make_unique<Worker>();
    if (config_.plan != nullptr) {
      // Per-worker engine: Engine keeps mutable register/stat state, and the
      // obs registry is not thread-safe, so workers run metrics-free.
      worker->engine = std::make_unique<Engine>(*config_.plan, *config_.builtins,
                                                /*metrics=*/nullptr);
    } else {
      worker->rules = std::make_unique<ndlog::RuleEngine>(*config_.builtins);
    }
    workers_.push_back(std::move(worker));
  }
  if (workers_.size() >= 2) {
    for (auto& worker : workers_) {
      worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
    }
  }
}

WorkerPool::~WorkerPool() {
  stop_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) bell_ring(worker->bell);
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void WorkerPool::prewarm(const ndlog::Database& db) const {
  // Single-worker pools evaluate rounds inline on the calling thread, where
  // lazy index creation is as safe as in the serial engine — skip the walk
  // (it is a per-round cost, and the workers=1 overhead budget is tight).
  if (workers_.size() < 2) return;
  for (const auto& [predicate, column] : prewarm_sites_) {
    db.ensure_index(predicate, column);
  }
}

void WorkerPool::evaluate(Worker& worker, const RoundItem& item) {
  const Tuple& delta = *item.delta;
  if (worker.engine) {
    worker.scratch.clear();
    worker.engine->process(delta, *item.db, worker.scratch);
    for (auto& t : worker.scratch) worker.out.emplace_back(item.tag, std::move(t));
    return;
  }
  TupleSet delta_set{delta};
  for (const ndlog::Rule* rule : normal_rules_) {
    const auto atoms = ndlog::RuleEngine::positive_atoms(*rule);
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      if (atoms[i]->atom.predicate != delta.predicate()) continue;
      worker.rules->eval_rule_delta(*rule, *item.db, i, delta_set, [&](Tuple t) {
        worker.out.emplace_back(item.tag, std::move(t));
      });
    }
  }
}

void WorkerPool::push_to(Worker& worker, const RoundItem* item) {
  const RoundItem* p = item;
  while (!worker.queue.try_push(p)) {
    // Ring full: the worker is lagging — wake it and let it drain. The round
    // sizes in practice fit the ring, so this is a cold path.
    bell_ring(worker.bell);
    std::this_thread::yield();
  }
}

void WorkerPool::worker_loop(Worker& worker) {
  const RoundItem* item = nullptr;
  for (;;) {
    const std::uint64_t ticket = bell_ticket(worker.bell);
    if (worker.queue.try_pop(item)) {
      if (item == nullptr) {
        // End-of-round sentinel: the fetch_sub's acq_rel publishes this
        // worker's out buffer to the executive's remaining_ acquire load.
        if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          bell_ring(done_);
        }
        continue;
      }
      evaluate(worker, *item);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    bell_wait(worker.bell, ticket);
  }
}

void WorkerPool::process_round(const std::vector<RoundItem>& items,
                               std::vector<std::pair<std::size_t, Tuple>>& out) {
  ++rounds_;
  if (workers_.size() < 2) {
    Worker& only = *workers_.front();
    for (const auto& item : items) evaluate(only, item);
    for (auto& entry : only.out) out.push_back(std::move(entry));
    only.out.clear();
    return;
  }
  std::vector<bool> active(workers_.size(), false);
  std::int64_t active_count = 0;
  for (const auto& item : items) {
    const std::size_t w = config_.router.shard_of(*item.delta, workers_.size());
    if (!active[w]) {
      active[w] = true;
      ++active_count;
    }
    push_to(*workers_[w], &item);
  }
  if (active_count == 0) return;
  remaining_.store(active_count, std::memory_order_release);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!active[w]) continue;
    push_to(*workers_[w], nullptr);
    bell_ring(workers_[w]->bell);
  }
  for (;;) {
    const std::uint64_t ticket = bell_ticket(done_);
    if (remaining_.load(std::memory_order_acquire) == 0) break;
    bell_wait(done_, ticket);
  }
  // Shard-major merge: worker order, per-worker push order — a deterministic
  // function of the items' order and shard keys.
  for (auto& worker : workers_) {
    for (auto& entry : worker->out) out.push_back(std::move(entry));
    worker->out.clear();
  }
}

}  // namespace fvn::dataflow
