#include "dataflow/engine.hpp"

namespace fvn::dataflow {

using ndlog::CmpOp;
using ndlog::Database;
using ndlog::Tuple;
using ndlog::TupleSet;
using ndlog::Value;

namespace {

bool compare(CmpOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case CmpOp::Eq: return lhs == rhs;
    case CmpOp::Ne: return !(lhs == rhs);
    case CmpOp::Lt: return lhs < rhs;
    case CmpOp::Le: return lhs < rhs || lhs == rhs;
    case CmpOp::Gt: return rhs < lhs;
    case CmpOp::Ge: return rhs < lhs || rhs == lhs;
  }
  return false;
}

void bump(obs::Counter* c) {
  if (c != nullptr) c->add(1);
}

}  // namespace

Engine::Engine(const Plan& plan, const ndlog::BuiltinRegistry& builtins,
               obs::Registry* metrics)
    : plan_(&plan), builtins_(&builtins), metrics_(metrics), fallback_(builtins) {
  strand_obs_.reserve(plan.strands.size());
  for (const auto& s : plan.strands) strand_obs_.push_back(make_obs(s));
  agg_.resize(plan.aggregates.size());
  agg_obs_.resize(plan.aggregates.size());
  for (std::size_t i = 0; i < plan.aggregates.size(); ++i) {
    for (const auto& s : plan.aggregates[i].strands) {
      agg_obs_[i].push_back(make_obs(s));
    }
  }
}

Engine::StrandObs Engine::make_obs(const Strand& strand) const {
  StrandObs obs(strand.elements.size());
  if (metrics_ == nullptr) return obs;
  const std::string base = "dataflow/elem/" + strand.rule_label + "[d" +
                           std::to_string(strand.delta_position) + "]/";
  for (std::size_t i = 0; i < strand.elements.size(); ++i) {
    obs[i].in = &metrics_->counter(base + strand.elements[i].id + "/in");
    obs[i].out = &metrics_->counter(base + strand.elements[i].id + "/out");
  }
  return obs;
}

bool Engine::match(const Element& element, const Tuple& tuple) {
  if (tuple.arity() != element.arity) return false;
  for (const auto& step : element.steps) {
    const Value& v = tuple.at(step.pos);
    switch (step.kind) {
      case ArgStep::Kind::Bind:
        regs_[static_cast<std::size_t>(step.slot)] = v;
        break;
      case ArgStep::Kind::TestSlot:
        if (!(regs_[static_cast<std::size_t>(step.slot)] == v)) return false;
        break;
      case ArgStep::Kind::TestExpr:
        if (!(step.expr.eval(regs_, *builtins_) == v)) return false;
        break;
    }
  }
  return true;
}

void Engine::exec(RunCtx& ctx, std::size_t ei) {
  const Element& e = ctx.strand->elements[ei];
  const ElemObs& obs = (*ctx.obs)[ei];
  bump(obs.in);
  switch (e.kind) {
    case Element::Kind::Delta: {
      ++stats_.probes;
      if (!match(e, *ctx.delta)) return;
      bump(obs.out);
      exec(ctx, ei + 1);
      return;
    }
    case Element::Kind::IndexJoin: {
      const Value key = e.probe.eval(regs_, *builtins_);
      // The lookup reference is stable here: strand execution never mutates
      // the database (produced tuples are buffered by the executive).
      const auto& bucket =
          ctx.db->lookup(e.predicate, static_cast<std::size_t>(e.probe_pos), key);
      for (const Tuple* tuple : bucket) {
        ++stats_.probes;
        if (!match(e, *tuple)) continue;
        bump(obs.out);
        exec(ctx, ei + 1);
      }
      return;
    }
    case Element::Kind::Scan: {
      for (const Tuple& tuple : ctx.db->relation(e.predicate)) {
        ++stats_.probes;
        if (!match(e, tuple)) continue;
        bump(obs.out);
        exec(ctx, ei + 1);
      }
      return;
    }
    case Element::Kind::Bind: {
      regs_[static_cast<std::size_t>(e.slot)] = e.rhs.eval(regs_, *builtins_);
      bump(obs.out);
      exec(ctx, ei + 1);
      return;
    }
    case Element::Kind::Select: {
      if (!compare(e.cmp, e.lhs.eval(regs_, *builtins_), e.rhs.eval(regs_, *builtins_))) {
        return;
      }
      bump(obs.out);
      exec(ctx, ei + 1);
      return;
    }
    case Element::Kind::NegProbe: {
      std::vector<Value> values;
      values.reserve(e.args.size());
      for (const auto& a : e.args) values.push_back(a.eval(regs_, *builtins_));
      if (ctx.db->contains(Tuple(e.predicate, std::move(values)))) return;
      bump(obs.out);
      exec(ctx, ei + 1);
      return;
    }
    case Element::Kind::Project: {
      std::vector<Value> values;
      values.reserve(e.head_args.size());
      for (const auto& a : e.head_args) values.push_back(a.eval(regs_, *builtins_));
      bump(obs.out);
      // The Demux element is the strand terminal: count the routed tuple and
      // hand it to the executive (which resolves the location specifier).
      const ElemObs& demux = (*ctx.obs)[ei + 1];
      bump(demux.in);
      bump(demux.out);
      ctx.out->push_back(Tuple(e.head_predicate, std::move(values)));
      ++stats_.tuples_emitted;
      return;
    }
    case Element::Kind::Aggregate: {
      std::vector<Value> key;
      key.reserve(e.head_args.size());
      for (std::size_t i = 0; i < e.head_args.size(); ++i) {
        if (i == e.agg_pos) {
          key.push_back(Value::nil());
        } else {
          key.push_back(e.head_args[i].eval(regs_, *builtins_));
        }
      }
      const Value& v = regs_[static_cast<std::size_t>(e.agg_slot)];
      if (ctx.dirty_keys != nullptr) ctx.dirty_keys->insert(key);
      auto& group = (*ctx.groups)[key];
      auto it = group.emplace(v, 0).first;
      it->second += ctx.sign;
      if (it->second <= 0) group.erase(it);
      if (group.empty()) ctx.groups->erase(key);
      ++stats_.agg_updates;
      bump(obs.out);
      return;
    }
    case Element::Kind::Demux:
      // Reached only via Project (handled there); nothing to do.
      return;
  }
}

void Engine::run_strand(const Strand& strand, const StrandObs& obs, const Tuple& delta,
                        const Database& db, std::vector<Tuple>* out, GroupState* groups,
                        int sign, std::set<std::vector<Value>>* dirty_keys) {
  if (strand.dead || strand.elements.empty()) return;
  if (regs_.size() < strand.nslots) regs_.resize(strand.nslots);
  RunCtx ctx;
  ctx.strand = &strand;
  ctx.obs = &obs;
  ctx.delta = &delta;
  ctx.db = &db;
  ctx.out = out;
  ctx.groups = groups;
  ctx.dirty_keys = dirty_keys;
  ctx.sign = sign;
  exec(ctx, 0);
}

void Engine::process(const Tuple& delta, const Database& db, std::vector<Tuple>& out) {
  ++stats_.deltas_processed;
  const int id = plan_->pred_id(delta.predicate());
  if (id < 0) return;
  for (std::size_t si : plan_->strands_by_id[static_cast<std::size_t>(id)]) {
    run_strand(plan_->strands[si], strand_obs_[si], delta, db, &out, nullptr, +1);
  }
}

void Engine::touch(const Tuple& tuple, int sign, const Database& db) {
  const int id = plan_->pred_id(tuple.predicate());
  if (id < 0) return;
  const auto uid = static_cast<std::size_t>(id);
  for (std::size_t ai : plan_->aggregates_by_id[uid]) agg_[ai].dirty = true;
  for (const auto& [ai, si] : plan_->agg_strands_by_id[uid]) {
    const AggregateRulePlan& ap = plan_->aggregates[ai];
    if (!ap.incremental) continue;
    run_strand(ap.strands[si], agg_obs_[ai][si], tuple, db, nullptr, &agg_[ai].groups,
               sign, &agg_[ai].dirty_keys);
  }
}

void Engine::on_insert(const Tuple& tuple, const Database& db) { touch(tuple, +1, db); }

void Engine::on_erase(const Tuple& tuple, const Database& db) { touch(tuple, -1, db); }

std::optional<TupleSet> Engine::flush_aggregate(std::size_t index, const Database& db) {
  const AggregateRulePlan& ap = plan_->aggregates[index];
  AggState& state = agg_[index];
  if (!state.dirty) return std::nullopt;
  // Clear *before* building: mutations the executive performs while routing
  // this flush's diff (aggregate-row erasures, recursive installs) re-dirty
  // the rule and are picked up by the next flush, exactly like the
  // interpreter's per-delivery recompute.
  state.dirty = false;
  const ndlog::Rule& rule = plan_->program.rules[ap.rule_index];
  TupleSet outputs;
  if (ap.incremental) {
    // Iterate groups in sorted key order — the same order the interpreter's
    // eval_agg_rule sinks rows in — so the output set is built by an
    // identical insertion sequence (identical iteration order downstream).
    for (const auto& [key, multiset] : state.groups) {
      std::vector<Value> values = key;
      values[ap.agg_pos] = aggregate_value(ap, multiset);
      outputs.insert(Tuple(rule.head.predicate, std::move(values)));
    }
  } else {
    fallback_.eval_agg_rule(rule, db, [&](Tuple t) { outputs.insert(std::move(t)); });
  }
  return outputs;
}

Value Engine::aggregate_value(const AggregateRulePlan& ap,
                              const std::map<Value, std::int64_t>& group) {
  switch (ap.kind) {
    case ndlog::AggKind::Min:
      return group.begin()->first;
    case ndlog::AggKind::Max:
      return group.rbegin()->first;
    case ndlog::AggKind::Count:
      return Value::integer(static_cast<std::int64_t>(group.size()));
    case ndlog::AggKind::Sum: {
      Value total = Value::integer(0);
      for (const auto& [v, n] : group) total = total.add(v);
      return total;
    }
  }
  return Value::nil();  // unreachable: all AggKind cases covered above
}

bool Engine::flush_aggregate_diff(std::size_t index, std::vector<AggDelta>& out) {
  const AggregateRulePlan& ap = plan_->aggregates[index];
  AggState& state = agg_[index];
  out.clear();
  if (!state.dirty) return false;
  // Clear before diffing, mirroring flush_aggregate(): mutations the
  // executive performs while applying this diff re-dirty the rule for the
  // next flush pass.
  state.dirty = false;
  const ndlog::Rule& rule = plan_->program.rules[ap.rule_index];
  for (const auto& key : state.dirty_keys) {
    auto git = state.groups.find(key);
    std::optional<Value> now;
    if (git != state.groups.end()) now = aggregate_value(ap, git->second);
    auto eit = state.emitted.find(key);
    AggDelta delta;
    if (eit != state.emitted.end()) {
      if (now.has_value() && *now == eit->second) continue;  // value unmoved
      std::vector<Value> values = key;
      values[ap.agg_pos] = eit->second;
      delta.retract = Tuple(rule.head.predicate, std::move(values));
    } else if (!now.has_value()) {
      continue;  // appeared and vanished between flushes: never emitted
    }
    if (now.has_value()) {
      std::vector<Value> values = key;
      values[ap.agg_pos] = *now;
      delta.assert_now = Tuple(rule.head.predicate, std::move(values));
      if (eit != state.emitted.end()) {
        eit->second = *now;
      } else {
        state.emitted.emplace(key, *now);
      }
    } else {
      state.emitted.erase(eit);
    }
    out.push_back(std::move(delta));
  }
  state.dirty_keys.clear();
  return !out.empty();
}

}  // namespace fvn::dataflow
