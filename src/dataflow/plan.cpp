#include "dataflow/plan.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <variant>

#include "ndlog/analysis.hpp"
#include "ndlog/cost.hpp"
#include "ndlog/eval.hpp"
#include "obs/json.hpp"

namespace fvn::dataflow {

using ndlog::AggKind;
using ndlog::Atom;
using ndlog::BodyAtom;
using ndlog::CmpOp;
using ndlog::Comparison;
using ndlog::Program;
using ndlog::Rule;
using ndlog::Term;

std::string_view kind_name(Element::Kind kind) noexcept {
  switch (kind) {
    case Element::Kind::Delta: return "delta";
    case Element::Kind::IndexJoin: return "index_join";
    case Element::Kind::Scan: return "scan";
    case Element::Kind::Bind: return "bind";
    case Element::Kind::Select: return "select";
    case Element::Kind::NegProbe: return "neg_probe";
    case Element::Kind::Project: return "project";
    case Element::Kind::Aggregate: return "aggregate";
    case Element::Kind::Demux: return "demux";
  }
  return "?";
}

std::string Element::label() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::Delta:
      os << "delta " << predicate;
      break;
    case Kind::IndexJoin:
      os << "join " << predicate << " probe@" << probe_pos << "=" << probe.to_string();
      break;
    case Kind::Scan:
      os << "scan " << predicate;
      break;
    case Kind::Bind:
      os << "bind $" << slot << " = " << rhs.to_string();
      break;
    case Kind::Select:
      os << "select " << lhs.to_string() << ndlog::to_string(cmp) << rhs.to_string();
      break;
    case Kind::NegProbe: {
      os << "neg !" << predicate << "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) os << ",";
        os << args[i].to_string();
      }
      os << ")";
      break;
    }
    case Kind::Project: {
      os << "project " << head_predicate << "(";
      for (std::size_t i = 0; i < head_args.size(); ++i) {
        if (i) os << ",";
        os << head_args[i].to_string();
      }
      os << ")";
      break;
    }
    case Kind::Aggregate:
      os << "agg " << ndlog::to_string(agg) << "<$" << agg_slot << "> -> "
         << head_predicate << "@" << agg_pos;
      break;
    case Kind::Demux:
      os << "demux " << head_predicate;
      break;
  }
  return os.str();
}

namespace {

/// A not-yet-discharged body check (negated atom or comparison), mirroring
/// the interpreter's `Check` list (eval.cpp join()).
struct CheckRef {
  const Comparison* cmp = nullptr;
  const BodyAtom* neg = nullptr;
  bool done = false;
};

bool term_vars_bound(const Term& term, const SlotMap& slots) {
  std::vector<std::string> vars;
  term.collect_vars(vars);
  return std::all_of(vars.begin(), vars.end(),
                     [&](const std::string& v) { return slots.lookup(v) >= 0; });
}

/// Static replay of the interpreter's check-discharge loop: repeatedly scan
/// the checks in body order, emitting a Select / Bind / NegProbe element for
/// each check that becomes ready. Boundness is purely syntactic (the set of
/// bound variables at each point is the same for every runtime environment),
/// so this compile-time schedule is exact.
void discharge_static(std::vector<CheckRef>& checks, SlotMap& slots,
                      std::vector<Element>& elements, int& check_seq) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& check : checks) {
      if (check.done) continue;
      if (check.neg != nullptr) {
        const Atom& atom = check.neg->atom;
        bool all_bound = true;
        for (const auto& a : atom.args) all_bound = all_bound && term_vars_bound(*a, slots);
        if (!all_bound) continue;
        Element e;
        e.kind = Element::Kind::NegProbe;
        e.id = "neg" + std::to_string(check_seq++);
        e.predicate = atom.predicate;
        e.arity = atom.args.size();
        for (const auto& a : atom.args) e.args.push_back(compile_term(*a, slots));
        elements.push_back(std::move(e));
        check.done = true;
        progressed = true;
        continue;
      }
      const Comparison& cmp = *check.cmp;
      const bool lhs_ok = term_vars_bound(*cmp.lhs, slots);
      const bool rhs_ok = term_vars_bound(*cmp.rhs, slots);
      if (cmp.op == CmpOp::Eq) {
        if (lhs_ok && rhs_ok) {
          Element e;
          e.kind = Element::Kind::Select;
          e.id = "sel" + std::to_string(check_seq++);
          e.cmp = CmpOp::Eq;
          e.lhs = compile_term(*cmp.lhs, slots);
          e.rhs = compile_term(*cmp.rhs, slots);
          elements.push_back(std::move(e));
        } else if (!lhs_ok && rhs_ok && cmp.lhs->kind == Term::Kind::Var) {
          Element e;
          e.kind = Element::Kind::Bind;
          e.id = "bind" + std::to_string(check_seq++);
          e.rhs = compile_term(*cmp.rhs, slots);
          e.slot = slots.bind(cmp.lhs->name);
          elements.push_back(std::move(e));
        } else if (lhs_ok && !rhs_ok && cmp.rhs->kind == Term::Kind::Var) {
          Element e;
          e.kind = Element::Kind::Bind;
          e.id = "bind" + std::to_string(check_seq++);
          e.rhs = compile_term(*cmp.lhs, slots);
          e.slot = slots.bind(cmp.rhs->name);
          elements.push_back(std::move(e));
        } else {
          continue;  // not ready yet
        }
        check.done = true;
        progressed = true;
        continue;
      }
      if (!lhs_ok || !rhs_ok) continue;
      Element e;
      e.kind = Element::Kind::Select;
      e.id = "sel" + std::to_string(check_seq++);
      e.cmp = cmp.op;
      e.lhs = compile_term(*cmp.lhs, slots);
      e.rhs = compile_term(*cmp.rhs, slots);
      elements.push_back(std::move(e));
      check.done = true;
      progressed = true;
    }
  }
}

Strand build_strand(const Rule& rule, std::size_t rule_index, std::size_t delta_pos,
                    bool aggregate_terminal) {
  Strand strand;
  strand.rule_index = rule_index;
  strand.rule_label = rule.display_name();
  strand.delta_position = delta_pos;

  std::vector<const BodyAtom*> atoms;
  std::vector<CheckRef> checks;
  for (const auto& elem : rule.body) {
    if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
      if (ba->negated) {
        checks.push_back(CheckRef{nullptr, ba, false});
      } else {
        atoms.push_back(ba);
      }
    } else {
      checks.push_back(CheckRef{&std::get<Comparison>(elem), nullptr, false});
    }
  }
  strand.delta_predicate = atoms[delta_pos]->atom.predicate;

  SlotMap slots;
  int check_seq = 0;
  discharge_static(checks, slots, strand.elements, check_seq);

  for (std::size_t k = 0; k < atoms.size() && !strand.dead; ++k) {
    const Atom& atom = atoms[k]->atom;
    Element e;
    e.predicate = atom.predicate;
    e.arity = atom.args.size();
    if (k == delta_pos) {
      e.kind = Element::Kind::Delta;
      e.id = "delta";
    } else {
      // Index-probe selection, mirroring the interpreter: the first argument
      // position already determined (constant or bound variable) *before*
      // this atom binds anything.
      for (std::size_t pos = 0; pos < atom.args.size(); ++pos) {
        const auto& arg = atom.args[pos];
        if (arg->kind == Term::Kind::Const) {
          e.probe_pos = static_cast<int>(pos);
          e.probe = CompiledExpr::of_const(arg->constant);
          break;
        }
        if (arg->kind == Term::Kind::Var) {
          const int slot = slots.lookup(arg->name);
          if (slot >= 0) {
            e.probe_pos = static_cast<int>(pos);
            e.probe = CompiledExpr::of_slot(slot);
            break;
          }
        }
      }
      e.kind = e.probe_pos >= 0 ? Element::Kind::IndexJoin : Element::Kind::Scan;
      e.id = (e.probe_pos >= 0 ? "join" : "scan") + std::to_string(k);
    }
    // Argument steps, in position order: first occurrence of a variable
    // binds, repeats test; constant/function arguments test by value. An
    // argument over never-bound variables can never match (the interpreter's
    // eval_term yields nullopt for every tuple) — the strand is dead.
    for (std::size_t pos = 0; pos < atom.args.size(); ++pos) {
      const auto& arg = atom.args[pos];
      ArgStep step;
      step.pos = pos;
      if (arg->kind == Term::Kind::Var) {
        const int slot = slots.lookup(arg->name);
        if (slot < 0) {
          step.kind = ArgStep::Kind::Bind;
          step.slot = slots.bind(arg->name);
        } else {
          step.kind = ArgStep::Kind::TestSlot;
          step.slot = slot;
        }
      } else {
        if (!term_vars_bound(*arg, slots)) {
          strand.dead = true;
          break;
        }
        step.kind = ArgStep::Kind::TestExpr;
        step.expr = compile_term(*arg, slots);
      }
      e.steps.push_back(std::move(step));
    }
    if (strand.dead) break;
    strand.elements.push_back(std::move(e));
    discharge_static(checks, slots, strand.elements, check_seq);
  }

  // Any check still pending can never discharge, so no environment ever
  // passes the interpreter's all-discharged gate: the strand is dead.
  for (const auto& check : checks) {
    if (!check.done) strand.dead = true;
  }

  if (!strand.dead) {
    if (!aggregate_terminal) {
      Element project;
      project.kind = Element::Kind::Project;
      project.id = "project";
      project.head_predicate = rule.head.predicate;
      for (const auto& arg : rule.head.args) {
        project.head_args.push_back(compile_term(*arg.term, slots));
      }
      strand.elements.push_back(std::move(project));
      Element demux;
      demux.kind = Element::Kind::Demux;
      demux.id = "demux";
      demux.head_predicate = rule.head.predicate;
      strand.elements.push_back(std::move(demux));
    } else {
      Element agg;
      agg.kind = Element::Kind::Aggregate;
      agg.id = "agg";
      agg.head_predicate = rule.head.predicate;
      for (std::size_t i = 0; i < rule.head.args.size(); ++i) {
        const auto& arg = rule.head.args[i];
        if (arg.is_agg()) {
          agg.agg_pos = i;
          agg.agg = *arg.agg;
          agg.agg_slot = slots.lookup(arg.agg_var);
          if (agg.agg_slot < 0) {
            throw ndlog::AnalysisError("rule " + rule.display_name() +
                                       ": aggregate variable '" + arg.agg_var +
                                       "' is never bound by the body");
          }
          agg.head_args.push_back(CompiledExpr::of_const(ndlog::Value::nil()));
        } else {
          agg.head_args.push_back(compile_term(*arg.term, slots));
        }
      }
      strand.elements.push_back(std::move(agg));
    }
  }

  strand.nslots = slots.size();
  strand.slot_names = slots.names();
  return strand;
}

}  // namespace

Plan compile(const Program& localized, const PlanOptions& options) {
  if (options.cost_order) {
    // Permute each rule's body into the statically cheapest safe join order,
    // then compile the rewritten program as usual. plan_orders returns the
    // identity for rules where reordering could perturb the fixpoint.
    Program ordered = localized;
    const auto orders = ndlog::cost::plan_orders(localized);
    for (std::size_t ri = 0; ri < ordered.rules.size() && ri < orders.size(); ++ri) {
      Rule& rule = ordered.rules[ri];
      const auto& perm = orders[ri];
      if (perm.size() != rule.body.size()) continue;
      bool identity = true;
      std::vector<ndlog::BodyElem> body;
      body.reserve(perm.size());
      for (std::size_t i = 0; i < perm.size(); ++i) {
        if (perm[i] != i) identity = false;
        body.push_back(rule.body[perm[i]]);
      }
      if (!identity) rule.body = std::move(body);
    }
    PlanOptions inner = options;
    inner.cost_order = false;
    Plan plan = compile(ordered, inner);
    plan.cost_ordered = true;
    return plan;
  }
  Plan plan;
  plan.program = localized;
  for (std::size_t ri = 0; ri < localized.rules.size(); ++ri) {
    const Rule& rule = localized.rules[ri];
    if (rule.is_fact()) continue;
    const auto atoms = ndlog::RuleEngine::positive_atoms(rule);
    if (rule.head.has_aggregate()) {
      AggregateRulePlan ap;
      ap.rule_index = ri;
      ap.rule_label = rule.display_name();
      for (std::size_t i = 0; i < rule.head.args.size(); ++i) {
        if (rule.head.args[i].is_agg()) {
          ap.agg_pos = i;
          ap.kind = *rule.head.args[i].agg;
        }
      }
      bool has_negation = false;
      std::map<std::string, int> positive_count;
      for (const auto& elem : rule.body) {
        if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
          ap.body_predicates.insert(ba->atom.predicate);
          if (ba->negated) {
            has_negation = true;
          } else {
            ++positive_count[ba->atom.predicate];
          }
        }
      }
      const bool self_join = std::any_of(positive_count.begin(), positive_count.end(),
                                         [](const auto& kv) { return kv.second > 1; });
      // Incremental per-group maintenance is exact only when one inserted or
      // erased tuple changes solutions at exactly one body position and only
      // monotonically; otherwise fall back to the interpreter-identical full
      // recompute (still flushed through the same diff machinery).
      if (!options.incremental_aggregates) {
        ap.incremental = false;
        ap.mode_reason = "incremental aggregates disabled";
      } else if (has_negation) {
        ap.incremental = false;
        ap.mode_reason = "body contains a negated atom";
      } else if (self_join) {
        ap.incremental = false;
        ap.mode_reason = "body self-joins a predicate";
      } else if (atoms.empty()) {
        ap.incremental = false;
        ap.mode_reason = "body has no positive atom";
      }
      if (ap.incremental) {
        for (std::size_t i = 0; i < atoms.size(); ++i) {
          ap.strands.push_back(build_strand(rule, ri, i, /*aggregate_terminal=*/true));
        }
      }
      plan.aggregates.push_back(std::move(ap));
    } else {
      for (std::size_t i = 0; i < atoms.size(); ++i) {
        plan.strands.push_back(build_strand(rule, ri, i, /*aggregate_terminal=*/false));
      }
    }
  }
  for (std::size_t si = 0; si < plan.strands.size(); ++si) {
    plan.strands_by_predicate[plan.strands[si].delta_predicate].push_back(si);
  }
  const auto intern = [&plan](const std::string& name) -> std::uint32_t {
    const auto [it, inserted] = plan.predicate_ids.emplace(
        name, static_cast<std::uint32_t>(plan.predicate_ids.size()));
    if (inserted) {
      plan.strands_by_id.emplace_back();
      plan.aggregates_by_id.emplace_back();
      plan.agg_strands_by_id.emplace_back();
    }
    return it->second;
  };
  for (std::size_t si = 0; si < plan.strands.size(); ++si) {
    plan.strands_by_id[intern(plan.strands[si].delta_predicate)].push_back(si);
  }
  for (std::size_t ai = 0; ai < plan.aggregates.size(); ++ai) {
    for (const auto& pred : plan.aggregates[ai].body_predicates) {
      plan.aggregates_by_id[intern(pred)].push_back(ai);
    }
    for (std::size_t si = 0; si < plan.aggregates[ai].strands.size(); ++si) {
      plan.agg_strands_by_id[intern(plan.aggregates[ai].strands[si].delta_predicate)]
          .emplace_back(ai, si);
    }
  }
  return plan;
}

std::size_t Plan::element_count() const {
  std::size_t n = 0;
  for (const auto& s : strands) n += s.elements.size();
  for (const auto& a : aggregates) {
    for (const auto& s : a.strands) n += s.elements.size();
  }
  return n;
}

namespace {

std::string strand_tag(const Strand& s) {
  return s.rule_label + "[d" + std::to_string(s.delta_position) + "]";
}

void strand_dot(std::ostringstream& os, const Strand& s, const std::string& cluster,
                const std::string& extra) {
  os << "  subgraph cluster_" << cluster << " {\n";
  os << "    label=\"" << strand_tag(s) << (s.dead ? " (dead)" : "") << extra << "\";\n";
  std::string prev;
  for (const auto& e : s.elements) {
    const std::string node = cluster + "_" + e.id;
    os << "    " << node << " [label=\"" << obs::json_escape(e.label()) << "\", shape=box];\n";
    if (!prev.empty()) os << "    " << prev << " -> " << node << ";\n";
    prev = node;
  }
  os << "  }\n";
}

void strand_json(std::ostringstream& os, const Strand& s) {
  os << "{\"rule\":\"" << obs::json_escape(s.rule_label) << "\""
     << ",\"rule_index\":" << s.rule_index
     << ",\"delta_predicate\":\"" << obs::json_escape(s.delta_predicate) << "\""
     << ",\"delta_position\":" << s.delta_position
     << ",\"dead\":" << (s.dead ? "true" : "false")
     << ",\"slots\":[";
  for (std::size_t i = 0; i < s.slot_names.size(); ++i) {
    if (i) os << ",";
    os << "\"" << obs::json_escape(s.slot_names[i]) << "\"";
  }
  os << "],\"elements\":[";
  for (std::size_t i = 0; i < s.elements.size(); ++i) {
    const Element& e = s.elements[i];
    if (i) os << ",";
    os << "{\"id\":\"" << obs::json_escape(e.id) << "\",\"kind\":\"" << kind_name(e.kind)
       << "\",\"label\":\"" << obs::json_escape(e.label()) << "\"}";
  }
  os << "]}";
}

}  // namespace

std::string Plan::to_dot() const {
  std::ostringstream os;
  os << "digraph dataflow {\n  rankdir=LR;\n  node [fontsize=10];\n";
  std::size_t c = 0;
  for (const auto& s : strands) strand_dot(os, s, "s" + std::to_string(c++), "");
  for (const auto& a : aggregates) {
    if (a.incremental) {
      for (const auto& s : a.strands) strand_dot(os, s, "s" + std::to_string(c++), "");
    } else {
      os << "  agg_" << c++ << " [label=\"" << obs::json_escape(a.rule_label)
         << ": recompute aggregate (" << obs::json_escape(a.mode_reason)
         << ")\", shape=box, style=dashed];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string Plan::to_json() const {
  std::ostringstream os;
  os << "{\"program\":\"" << obs::json_escape(program.name) << "\"";
  if (cost_ordered) os << ",\"cost_ordered\":true";
  os << ",\"strands\":[";
  for (std::size_t i = 0; i < strands.size(); ++i) {
    if (i) os << ",";
    strand_json(os, strands[i]);
  }
  os << "],\"aggregates\":[";
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    const auto& a = aggregates[i];
    if (i) os << ",";
    os << "{\"rule\":\"" << obs::json_escape(a.rule_label) << "\""
       << ",\"rule_index\":" << a.rule_index
       << ",\"mode\":\"" << (a.incremental ? "incremental" : "recompute") << "\""
       << ",\"reason\":\"" << obs::json_escape(a.mode_reason) << "\""
       << ",\"aggregate\":\"" << ndlog::to_string(a.kind) << "\""
       << ",\"strands\":[";
    for (std::size_t j = 0; j < a.strands.size(); ++j) {
      if (j) os << ",";
      strand_json(os, a.strands[j]);
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string Plan::summary() const {
  std::ostringstream os;
  auto line = [&](const Strand& s) {
    os << "  " << strand_tag(s) << (s.dead ? " (dead)" : "") << ":";
    for (const auto& e : s.elements) os << " -> [" << e.label() << "]";
    os << "\n";
  };
  os << "dataflow plan: " << strands.size() << " rule strand(s), " << aggregates.size()
     << " aggregate rule(s), " << element_count() << " element(s)\n";
  for (const auto& s : strands) line(s);
  for (const auto& a : aggregates) {
    if (a.incremental) {
      os << "  " << a.rule_label << ": incremental " << ndlog::to_string(a.kind)
         << " aggregate\n";
      for (const auto& s : a.strands) line(s);
    } else {
      os << "  " << a.rule_label << ": recompute aggregate (" << a.mode_reason << ")\n";
    }
  }
  return os.str();
}

}  // namespace fvn::dataflow
