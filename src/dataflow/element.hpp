// The element vocabulary of the compiled dataflow (P2/Click-style). A rule
// strand is a straight-line sequence of elements; relational elements
// (Delta / IndexJoin / Scan) enumerate candidate tuples, the rest filter,
// bind, or emit. See DESIGN.md §10 for the planning rules and the
// interpreter-equivalence argument.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dataflow/expr.hpp"
#include "ndlog/ast.hpp"

namespace fvn::dataflow {

/// Handling of one argument position while matching a tuple against an atom:
/// bind a fresh register, test against an already-bound register, or test
/// against a compiled expression (constants and f_* terms).
struct ArgStep {
  enum class Kind : std::uint8_t { Bind, TestSlot, TestExpr };
  Kind kind = Kind::Bind;
  std::size_t pos = 0;  // argument position in the atom/tuple
  int slot = -1;        // Bind / TestSlot register
  CompiledExpr expr;    // TestExpr operand
};

/// One element of a strand.
struct Element {
  enum class Kind : std::uint8_t {
    Delta,      ///< match the incoming delta tuple against the rule's delta atom
    IndexJoin,  ///< probe the (predicate, probe_pos) hash index with `probe`
    Scan,       ///< full-relation scan (no argument determined yet)
    Bind,       ///< `V = expr` assignment discharged from the rule body
    Select,     ///< comparison filter (including `expr = expr` equality tests)
    NegProbe,   ///< negated atom: drop the env if the ground tuple exists
    Project,    ///< instantiate the rule head
    Aggregate,  ///< fold the solution into per-group aggregate state
    Demux,      ///< route on the head's location specifier (executive-side)
  };

  Kind kind = Kind::Scan;
  std::string id;  // unique within the strand ("delta", "join1", "sel0", ...)

  // Delta / IndexJoin / Scan / NegProbe
  std::string predicate;
  std::size_t arity = 0;
  std::vector<ArgStep> steps;  // argument handling, in position order

  // IndexJoin
  int probe_pos = -1;
  CompiledExpr probe;  // Slot or Const — the probed column's value

  // Bind
  int slot = -1;

  // Select (lhs `cmp` rhs) / Bind (slot = rhs)
  ndlog::CmpOp cmp = ndlog::CmpOp::Eq;
  CompiledExpr lhs;
  CompiledExpr rhs;

  // NegProbe: ground argument expressions
  std::vector<CompiledExpr> args;

  // Project / Aggregate / Demux
  std::string head_predicate;
  std::vector<CompiledExpr> head_args;  // Aggregate: placeholder at agg_pos
  std::size_t agg_pos = 0;
  int agg_slot = -1;
  ndlog::AggKind agg = ndlog::AggKind::Min;

  /// One-line human-readable description ("join path probe@1=$0", ...).
  std::string label() const;
};

std::string_view kind_name(Element::Kind kind) noexcept;

}  // namespace fvn::dataflow
