// Shard-parallel delta evaluation (DESIGN.md §16). A WorkerPool evaluates
// one *round* of delta tuples across N worker threads and hands the derived
// tuples back to the executive in a deterministic order; the executive
// (runtime::Simulator or net::Node) keeps sole ownership of installs, keyed
// overwrite, aggregate flushes and message routing, all of which stay serial
// at the round barrier.
//
// Safety rests on the static certificate from fvn::ndlog::parallel: every
// rule group either carries a shard key (all joins of the group align on the
// key column, so two deltas in different shards can never contribute to the
// same derivation chain of a round) or was forced Serial, in which case the
// executive must not construct a pool at all. Within a round the database is
// frozen — workers only read it (the executive pre-warms every index a probe
// can touch via prewarm(), so concurrent lookup() calls are pure reads) —
// and each worker appends derivations to its private output buffer. The
// merge concatenates those buffers shard-major, and items are routed to
// shards in input order, so the merged order is a pure function of the input
// order: re-running a round yields byte-identical output, which is what
// keeps parallel fixpoints comparable with serial ones tuple for tuple.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dataflow/engine.hpp"
#include "dataflow/plan.hpp"
#include "ndlog/catalog.hpp"
#include "ndlog/database.hpp"
#include "ndlog/eval.hpp"
#include "ndlog/parallel.hpp"
#include "net/spsc_ring.hpp"

namespace fvn::dataflow {

/// Maps each delta tuple to its shard, per the static certificate: the
/// certified shard-key column where fvn::ndlog::parallel chose one, the
/// predicate's location column otherwise (every predicate of a localized
/// program has one, so every tuple routes deterministically).
class ShardRouter {
 public:
  ShardRouter() = default;
  ShardRouter(const ndlog::parallel::Report& report, const ndlog::Catalog& catalog);

  /// Shard index in [0, workers) for this delta. Out-of-range or unknown
  /// routing columns collapse to shard 0 (never happens on certified
  /// programs; keeps the router total anyway).
  std::size_t shard_of(const ndlog::Tuple& tuple, std::size_t workers) const;

  /// Routing column for `predicate` (-1 when the predicate is unknown).
  int column_of(const std::string& predicate) const;

 private:
  std::map<std::string, int> columns_;
};

/// One delta of a round: the tuple, the (frozen) database it evaluates
/// against, and an executive-chosen tag threaded through to the output so
/// derivations can be attributed to their origin (the simulator tags by
/// batch position to recover the owning node).
struct RoundItem {
  const ndlog::Tuple* delta = nullptr;
  const ndlog::Database* db = nullptr;
  std::size_t tag = 0;
};

/// A fixed set of worker threads evaluating delta rounds. One pool per
/// executive thread (per simulator, per cluster node) — process_round() is
/// not reentrant. With workers == 1 the pool spawns no threads at all and
/// evaluates rounds inline on the caller, so the single-worker overhead is
/// one virtual-free function call per delta (the bench gate relies on this).
class WorkerPool {
 public:
  struct Config {
    std::size_t workers = 1;
    /// Compiled mode: each worker owns an Engine over this plan. Null =
    /// interpreter mode (each worker owns a RuleEngine over `program`).
    const Plan* plan = nullptr;
    /// Localized program (interpreter mode rule list; must outlive the pool).
    const ndlog::Program* program = nullptr;
    const ndlog::BuiltinRegistry* builtins = nullptr;
    /// Index pre-warm universe (interpreter mode probes any column).
    const ndlog::Catalog* catalog = nullptr;
    ShardRouter router;
  };

  explicit WorkerPool(Config config);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  /// Build every index a worker probe can touch on `db` (no-ops once built).
  /// The executive must call this for each database a round's items point at
  /// *before* process_round — lookup() builds indexes lazily under const,
  /// which is a data race once readers are concurrent.
  void prewarm(const ndlog::Database& db) const;

  /// Evaluate one round: shard `items` across the workers, run every delta
  /// through the rule strands against its (frozen) database, and append the
  /// derived head tuples to `out` as (item tag, tuple) pairs in shard-major,
  /// per-shard-input order — deterministic for a given input order.
  void process_round(const std::vector<RoundItem>& items,
                     std::vector<std::pair<std::size_t, ndlog::Tuple>>& out);

  std::size_t workers() const noexcept { return workers_.size(); }
  /// Rounds evaluated so far (executive thread only).
  std::uint64_t rounds() const noexcept { return rounds_; }
  const ShardRouter& router() const noexcept { return config_.router; }

 private:
  /// Same lost-wakeup-free doorbell as net::Transport's: ring() bumps the
  /// ticket under the mutex, wait() sleeps until the ticket moves past the
  /// value read before the caller's last empty poll.
  struct Doorbell {
    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<std::uint64_t> signal{0};
  };

  struct Worker {
    /// Exactly one of engine/rules is set (plan vs interpreter mode).
    std::unique_ptr<Engine> engine;
    std::unique_ptr<ndlog::RuleEngine> rules;
    /// Round inbox: item pointers, terminated by a nullptr sentinel. Writes
    /// by the executive are published to the worker by the ring's
    /// release/acquire pair.
    net::SpscRing<const RoundItem*, 4096> queue;
    Doorbell bell;
    /// Private output buffer; read by the executive only after the round's
    /// completion handshake (remaining_ acq_rel) orders it.
    std::vector<std::pair<std::size_t, ndlog::Tuple>> out;
    std::vector<ndlog::Tuple> scratch;
    std::thread thread;
  };

  static std::uint64_t bell_ticket(Doorbell& bell);
  static void bell_ring(Doorbell& bell);
  static void bell_wait(Doorbell& bell, std::uint64_t ticket);

  void worker_loop(Worker& worker);
  void evaluate(Worker& worker, const RoundItem& item);
  void push_to(Worker& worker, const RoundItem* item);

  Config config_;
  /// Interpreter mode: non-fact, non-aggregate rules in program order (the
  /// exact list the serial executives iterate, so emission order matches).
  std::vector<const ndlog::Rule*> normal_rules_;
  /// (predicate, column) pairs prewarm() touches.
  std::vector<std::pair<std::string, std::size_t>> prewarm_sites_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  /// Workers still owing an end-of-round sentinel acknowledgement.
  std::atomic<std::int64_t> remaining_{0};
  Doorbell done_;
  std::uint64_t rounds_ = 0;
};

}  // namespace fvn::dataflow
