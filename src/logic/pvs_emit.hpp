// PVS source emission: render FVN theories as .pvs files in the style of the
// paper's §3.1/§3.2 listings (INDUCTIVE definitions, THEOREM declarations,
// type preludes). The output is the artifact a user would hand to the real
// PVS for independent checking.
#pragma once

#include <filesystem>
#include <string>

#include "logic/formula.hpp"

namespace fvn::logic {

struct PvsEmitOptions {
  /// Emit the FVN prelude (Node/Metric/Path type declarations and the
  /// uninterpreted path-function signatures) before the theory body.
  bool include_prelude = true;
  /// Declare base (undefined) predicates appearing in definitions/theorems.
  bool declare_base_predicates = true;
};

/// Render a theory as a complete PVS file.
std::string to_pvs_source(const Theory& theory, const PvsEmitOptions& options = {});

/// Write the rendering to `path` (creating parent directories).
void write_pvs_file(const Theory& theory, const std::filesystem::path& path,
                    const PvsEmitOptions& options = {});

}  // namespace fvn::logic
