#include "logic/formula.hpp"

#include <algorithm>
#include <sstream>

namespace fvn::logic {

std::string_view to_string(Sort sort) noexcept {
  switch (sort) {
    case Sort::Unknown: return "T";
    case Sort::Node: return "Node";
    case Sort::Metric: return "Metric";
    case Sort::Path: return "Path";
    case Sort::Bool: return "bool";
    case Sort::Str: return "string";
    case Sort::Time: return "Time";
  }
  return "?";
}

std::string TypedVar::to_string() const {
  return name + ":" + std::string(logic::to_string(sort));
}

// ---------------------------------------------------------------------------
// LTerm
// ---------------------------------------------------------------------------

LTermPtr LTerm::var(std::string name) {
  auto t = std::make_shared<LTerm>();
  t->kind = Kind::Var;
  t->name = std::move(name);
  return t;
}

LTermPtr LTerm::constant_of(Value v) {
  auto t = std::make_shared<LTerm>();
  t->kind = Kind::Const;
  t->constant = std::move(v);
  return t;
}

LTermPtr LTerm::func(std::string name, std::vector<LTermPtr> args) {
  auto t = std::make_shared<LTerm>();
  t->kind = Kind::Func;
  t->name = std::move(name);
  t->args = std::move(args);
  return t;
}

LTermPtr LTerm::arith(BinOp op, LTermPtr lhs, LTermPtr rhs) {
  auto t = std::make_shared<LTerm>();
  t->kind = Kind::Arith;
  t->op = op;
  t->args = {std::move(lhs), std::move(rhs)};
  return t;
}

bool LTerm::equals(const LTerm& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::Var: return name == other.name;
    case Kind::Const: return constant == other.constant;
    case Kind::Func:
      if (name != other.name || args.size() != other.args.size()) return false;
      break;
    case Kind::Arith:
      if (op != other.op || args.size() != other.args.size()) return false;
      break;
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (!args[i]->equals(*other.args[i])) return false;
  }
  return true;
}

void LTerm::free_vars(std::set<std::string>& out) const {
  if (kind == Kind::Var) {
    out.insert(name);
    return;
  }
  for (const auto& a : args) a->free_vars(out);
}

LTermPtr LTerm::substitute(const std::string& var, const LTermPtr& replacement) const {
  switch (kind) {
    case Kind::Var:
      return name == var ? replacement : LTerm::var(name);
    case Kind::Const:
      return LTerm::constant_of(constant);
    case Kind::Func:
    case Kind::Arith: {
      std::vector<LTermPtr> new_args;
      new_args.reserve(args.size());
      for (const auto& a : args) new_args.push_back(a->substitute(var, replacement));
      if (kind == Kind::Func) return LTerm::func(name, std::move(new_args));
      return LTerm::arith(op, std::move(new_args[0]), std::move(new_args[1]));
    }
  }
  return nullptr;
}

std::string LTerm::to_string() const {
  switch (kind) {
    case Kind::Var: return name;
    case Kind::Const: return constant.to_string();
    case Kind::Func: {
      std::string out = name + "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) out += ",";
        out += args[i]->to_string();
      }
      return out + ")";
    }
    case Kind::Arith:
      return "(" + args[0]->to_string() + std::string(ndlog::to_string(op)) +
             args[1]->to_string() + ")";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Formula
// ---------------------------------------------------------------------------

FormulaPtr Formula::truth() {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::True;
  return f;
}

FormulaPtr Formula::falsity() {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::False;
  return f;
}

FormulaPtr Formula::pred(std::string name, std::vector<LTermPtr> args) {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::Pred;
  f->pred_name = std::move(name);
  f->terms = std::move(args);
  return f;
}

FormulaPtr Formula::cmp(CmpOp op, LTermPtr lhs, LTermPtr rhs) {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::Cmp;
  f->cmp_op = op;
  f->terms = {std::move(lhs), std::move(rhs)};
  return f;
}

FormulaPtr Formula::negate(FormulaPtr sub) {
  if (sub->kind == Kind::True) return falsity();
  if (sub->kind == Kind::False) return truth();
  if (sub->kind == Kind::Not) return sub->subs[0];
  auto f = std::make_shared<Formula>();
  f->kind = Kind::Not;
  f->subs = {std::move(sub)};
  return f;
}

FormulaPtr Formula::conj(std::vector<FormulaPtr> fs) {
  std::vector<FormulaPtr> flat;
  for (auto& f : fs) {
    if (f->kind == Kind::True) continue;
    if (f->kind == Kind::False) return falsity();
    if (f->kind == Kind::And) {
      flat.insert(flat.end(), f->subs.begin(), f->subs.end());
    } else {
      flat.push_back(std::move(f));
    }
  }
  if (flat.empty()) return truth();
  if (flat.size() == 1) return flat[0];
  auto f = std::make_shared<Formula>();
  f->kind = Kind::And;
  f->subs = std::move(flat);
  return f;
}

FormulaPtr Formula::disj(std::vector<FormulaPtr> fs) {
  std::vector<FormulaPtr> flat;
  for (auto& f : fs) {
    if (f->kind == Kind::False) continue;
    if (f->kind == Kind::True) return truth();
    if (f->kind == Kind::Or) {
      flat.insert(flat.end(), f->subs.begin(), f->subs.end());
    } else {
      flat.push_back(std::move(f));
    }
  }
  if (flat.empty()) return falsity();
  if (flat.size() == 1) return flat[0];
  auto f = std::make_shared<Formula>();
  f->kind = Kind::Or;
  f->subs = std::move(flat);
  return f;
}

FormulaPtr Formula::implies(FormulaPtr lhs, FormulaPtr rhs) {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::Implies;
  f->subs = {std::move(lhs), std::move(rhs)};
  return f;
}

FormulaPtr Formula::iff(FormulaPtr lhs, FormulaPtr rhs) {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::Iff;
  f->subs = {std::move(lhs), std::move(rhs)};
  return f;
}

FormulaPtr Formula::forall(std::vector<TypedVar> vars, FormulaPtr body) {
  if (vars.empty()) return body;
  if (body->kind == Kind::Forall) {
    std::vector<TypedVar> merged = std::move(vars);
    merged.insert(merged.end(), body->binders.begin(), body->binders.end());
    return forall(std::move(merged), body->subs[0]);
  }
  auto f = std::make_shared<Formula>();
  f->kind = Kind::Forall;
  f->binders = std::move(vars);
  f->subs = {std::move(body)};
  return f;
}

FormulaPtr Formula::exists(std::vector<TypedVar> vars, FormulaPtr body) {
  if (vars.empty()) return body;
  if (body->kind == Kind::Exists) {
    std::vector<TypedVar> merged = std::move(vars);
    merged.insert(merged.end(), body->binders.begin(), body->binders.end());
    return exists(std::move(merged), body->subs[0]);
  }
  auto f = std::make_shared<Formula>();
  f->kind = Kind::Exists;
  f->binders = std::move(vars);
  f->subs = {std::move(body)};
  return f;
}

bool Formula::equals(const Formula& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::True:
    case Kind::False:
      return true;
    case Kind::Pred:
      if (pred_name != other.pred_name) return false;
      break;
    case Kind::Cmp:
      if (cmp_op != other.cmp_op) return false;
      break;
    case Kind::Forall:
    case Kind::Exists:
      if (binders != other.binders) return false;
      break;
    default:
      break;
  }
  if (terms.size() != other.terms.size() || subs.size() != other.subs.size()) return false;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (!terms[i]->equals(*other.terms[i])) return false;
  }
  for (std::size_t i = 0; i < subs.size(); ++i) {
    if (!subs[i]->equals(*other.subs[i])) return false;
  }
  return true;
}

void Formula::free_vars(std::set<std::string>& out) const {
  std::set<std::string> inner;
  for (const auto& t : terms) t->free_vars(inner);
  for (const auto& s : subs) s->free_vars(inner);
  for (const auto& b : binders) inner.erase(b.name);
  out.insert(inner.begin(), inner.end());
}

FormulaPtr Formula::substitute(const std::string& var, const LTermPtr& replacement) const {
  // Bound occurrences shadow.
  if (kind == Kind::Forall || kind == Kind::Exists) {
    for (const auto& b : binders) {
      if (b.name == var) return std::make_shared<Formula>(*this);
    }
  }
  auto f = std::make_shared<Formula>(*this);
  for (auto& t : f->terms) t = t->substitute(var, replacement);
  for (auto& s : f->subs) s = s->substitute(var, replacement);
  return f;
}

std::string Formula::to_string() const {
  switch (kind) {
    case Kind::True: return "TRUE";
    case Kind::False: return "FALSE";
    case Kind::Pred: {
      std::string out = pred_name + "(";
      for (std::size_t i = 0; i < terms.size(); ++i) {
        if (i) out += ",";
        out += terms[i]->to_string();
      }
      return out + ")";
    }
    case Kind::Cmp: {
      std::string_view op = cmp_op == CmpOp::Eq   ? "="
                            : cmp_op == CmpOp::Ne ? "/="
                                               : ndlog::to_string(cmp_op);
      return terms[0]->to_string() + std::string(op) + terms[1]->to_string();
    }
    case Kind::Not: return "NOT " + subs[0]->to_string();
    case Kind::And:
    case Kind::Or: {
      const char* sep = kind == Kind::And ? " AND " : " OR ";
      std::string out = "(";
      for (std::size_t i = 0; i < subs.size(); ++i) {
        if (i) out += sep;
        out += subs[i]->to_string();
      }
      return out + ")";
    }
    case Kind::Implies: return "(" + subs[0]->to_string() + " => " + subs[1]->to_string() + ")";
    case Kind::Iff: return "(" + subs[0]->to_string() + " <=> " + subs[1]->to_string() + ")";
    case Kind::Forall:
    case Kind::Exists: {
      std::string out = kind == Kind::Forall ? "FORALL (" : "EXISTS (";
      for (std::size_t i = 0; i < binders.size(); ++i) {
        if (i) out += ", ";
        out += binders[i].to_string();
      }
      out += "): " + subs[0]->to_string();
      return out;
    }
  }
  return "?";
}

std::string NameSupply::fresh(const std::string& base) {
  return base + "!" + std::to_string(++counter_);
}

// ---------------------------------------------------------------------------
// Definitions / theories
// ---------------------------------------------------------------------------

FormulaPtr InductiveDef::body() const {
  std::vector<FormulaPtr> cs = clauses;
  return Formula::disj(std::move(cs));
}

std::string InductiveDef::to_string() const {
  std::string out = pred_name + "(";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i) out += ",";
    out += params[i].to_string();
  }
  out += "): INDUCTIVE bool =\n  " + body()->to_string();
  return out;
}

std::string Theorem::to_string() const {
  return name + ": THEOREM\n  " + statement->to_string();
}

const InductiveDef* Theory::find_definition(const std::string& p) const {
  for (const auto& d : definitions) {
    if (d.pred_name == p) return &d;
  }
  return nullptr;
}

std::string Theory::to_string() const {
  std::ostringstream os;
  os << name << ": THEORY\nBEGIN\n";
  for (const auto& d : definitions) os << "\n" << d.to_string() << "\n";
  for (const auto& a : axioms) os << "\n" << a.name << ": AXIOM\n  " << a.statement->to_string() << "\n";
  for (const auto& t : theorems) os << "\n" << t.to_string() << "\n";
  os << "\nEND " << name << "\n";
  return os.str();
}

}  // namespace fvn::logic
