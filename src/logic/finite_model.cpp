#include "logic/finite_model.hpp"

#include <algorithm>

namespace fvn::logic {

namespace {

Sort sort_of_value(const Value& v) {
  switch (v.kind()) {
    case ndlog::ValueKind::Addr: return Sort::Node;
    case ndlog::ValueKind::Int:
    case ndlog::ValueKind::Double: return Sort::Metric;
    case ndlog::ValueKind::List: return Sort::Path;
    case ndlog::ValueKind::Bool: return Sort::Bool;
    case ndlog::ValueKind::Str: return Sort::Str;
    default: return Sort::Unknown;
  }
}

bool compare(ndlog::CmpOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case ndlog::CmpOp::Eq: return lhs == rhs;
    case ndlog::CmpOp::Ne: return !(lhs == rhs);
    case ndlog::CmpOp::Lt: return lhs < rhs;
    case ndlog::CmpOp::Le: return lhs < rhs || lhs == rhs;
    case ndlog::CmpOp::Gt: return rhs < lhs;
    case ndlog::CmpOp::Ge: return rhs < lhs || rhs == lhs;
  }
  return false;
}

}  // namespace

void FiniteModel::note_domain(const Value& v) {
  auto& dom = domains_[sort_of_value(v)];
  if (std::find(dom.begin(), dom.end(), v) == dom.end()) dom.push_back(v);
  if (std::find(universe_.begin(), universe_.end(), v) == universe_.end()) {
    universe_.push_back(v);
  }
}

void FiniteModel::load_database(const ndlog::Database& db, bool harvest_domain) {
  for (const auto& pred : db.predicates()) {
    for (const auto& t : db.relation(pred)) {
      relations_[pred].insert(t);
      if (harvest_domain) {
        for (const auto& v : t.values()) note_domain(v);
      }
    }
  }
}

void FiniteModel::add_tuple(const ndlog::Tuple& tuple) {
  relations_[tuple.predicate()].insert(tuple);
  for (const auto& v : tuple.values()) note_domain(v);
}

void FiniteModel::add_domain_value(Sort sort, Value v) {
  auto& dom = domains_[sort];
  if (std::find(dom.begin(), dom.end(), v) == dom.end()) dom.push_back(std::move(v));
  if (std::find(universe_.begin(), universe_.end(), dom.back()) == universe_.end()) {
    universe_.push_back(dom.back());
  }
}

void FiniteModel::add_metric_range(std::int64_t lo, std::int64_t hi) {
  for (std::int64_t v = lo; v <= hi; ++v) {
    add_domain_value(Sort::Metric, Value::integer(v));
  }
}

const std::vector<Value>& FiniteModel::domain(Sort sort) const {
  if (sort == Sort::Unknown) return universe_;
  static const std::vector<Value> empty;
  auto it = domains_.find(sort);
  return it == domains_.end() ? empty : it->second;
}

Value FiniteModel::eval_term(const LTerm& term,
                             const std::map<std::string, Value>& env) const {
  switch (term.kind) {
    case LTerm::Kind::Var: {
      auto it = env.find(term.name);
      if (it == env.end()) {
        throw ndlog::TypeError("unbound variable '" + term.name + "' in finite model");
      }
      return it->second;
    }
    case LTerm::Kind::Const:
      return term.constant;
    case LTerm::Kind::Func: {
      std::vector<Value> args;
      args.reserve(term.args.size());
      for (const auto& a : term.args) args.push_back(eval_term(*a, env));
      return builtins_->call(term.name, args);
    }
    case LTerm::Kind::Arith: {
      const Value lhs = eval_term(*term.args[0], env);
      const Value rhs = eval_term(*term.args[1], env);
      switch (term.op) {
        case ndlog::BinOp::Add: return lhs.add(rhs);
        case ndlog::BinOp::Sub: return lhs.sub(rhs);
        case ndlog::BinOp::Mul: return lhs.mul(rhs);
        case ndlog::BinOp::Div: return lhs.div(rhs);
        case ndlog::BinOp::Mod: return lhs.mod(rhs);
      }
      break;
    }
  }
  throw ndlog::TypeError("unreachable term kind in finite model");
}

bool FiniteModel::eval(const Formula& formula,
                       const std::map<std::string, Value>& env) const {
  instantiations_ = 0;
  std::map<std::string, Value> mutable_env = env;
  return eval_inner(formula, mutable_env);
}

bool FiniteModel::eval_inner(const Formula& f, std::map<std::string, Value>& env) const {
  switch (f.kind) {
    case Formula::Kind::True: return true;
    case Formula::Kind::False: return false;
    case Formula::Kind::Pred: {
      std::vector<Value> values;
      values.reserve(f.terms.size());
      for (const auto& t : f.terms) values.push_back(eval_term(*t, env));
      auto it = relations_.find(f.pred_name);
      return it != relations_.end() &&
             it->second.count(ndlog::Tuple(f.pred_name, std::move(values))) != 0;
    }
    case Formula::Kind::Cmp: {
      const Value lhs = eval_term(*f.terms[0], env);
      const Value rhs = eval_term(*f.terms[1], env);
      return compare(f.cmp_op, lhs, rhs);
    }
    case Formula::Kind::Not:
      return !eval_inner(*f.subs[0], env);
    case Formula::Kind::And:
      return std::all_of(f.subs.begin(), f.subs.end(),
                         [&](const FormulaPtr& s) { return eval_inner(*s, env); });
    case Formula::Kind::Or:
      return std::any_of(f.subs.begin(), f.subs.end(),
                         [&](const FormulaPtr& s) { return eval_inner(*s, env); });
    case Formula::Kind::Implies:
      return !eval_inner(*f.subs[0], env) || eval_inner(*f.subs[1], env);
    case Formula::Kind::Iff:
      return eval_inner(*f.subs[0], env) == eval_inner(*f.subs[1], env);
    case Formula::Kind::Forall:
    case Formula::Kind::Exists: {
      const bool is_forall = f.kind == Formula::Kind::Forall;
      // Enumerate binder assignments depth-first.
      std::function<bool(std::size_t)> enumerate = [&](std::size_t i) -> bool {
        if (i == f.binders.size()) {
          ++instantiations_;
          return eval_inner(*f.subs[0], env);
        }
        const auto& binder = f.binders[i];
        const auto& dom = domain(binder.sort);
        const bool had = env.count(binder.name) != 0;
        const Value saved = had ? env[binder.name] : Value::nil();
        for (const auto& v : dom) {
          env[binder.name] = v;
          const bool sub = enumerate(i + 1);
          if (is_forall && !sub) {
            if (had) env[binder.name] = saved; else env.erase(binder.name);
            return false;
          }
          if (!is_forall && sub) {
            if (had) env[binder.name] = saved; else env.erase(binder.name);
            return true;
          }
        }
        if (had) env[binder.name] = saved; else env.erase(binder.name);
        return is_forall;
      };
      return enumerate(0);
    }
  }
  return false;
}

}  // namespace fvn::logic
