// Finite-model semantics for FVN formulas: evaluate a Formula against a
// concrete finite structure (relations = tuple sets, functions = the NDlog
// built-ins, quantifiers ranging over a finite per-sort domain).
//
// Used to (a) validate the property-preserving translations of arcs 3/4 on
// concrete instances, (b) search for counterexamples before attempting a
// proof, and (c) give the model checker a property language.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "logic/formula.hpp"
#include "ndlog/builtins.hpp"
#include "ndlog/database.hpp"

namespace fvn::logic {

/// A finite first-order structure.
class FiniteModel {
 public:
  explicit FiniteModel(const ndlog::BuiltinRegistry& builtins =
                           ndlog::BuiltinRegistry::standard())
      : builtins_(&builtins) {}

  /// Interpret every relation of `db` and (by default) harvest the domain:
  /// every value occurring in any tuple joins the domain of its matching
  /// sort (addresses → Node, ints/doubles → Metric, lists → Path, ...).
  void load_database(const ndlog::Database& db, bool harvest_domain = true);

  void add_tuple(const ndlog::Tuple& tuple);
  void add_domain_value(Sort sort, Value v);
  /// Extra Metric values worth quantifying over (e.g. bounds in properties).
  void add_metric_range(std::int64_t lo, std::int64_t hi);

  const std::vector<Value>& domain(Sort sort) const;

  /// Evaluate a closed formula (or one whose free variables are bound by
  /// `env`). Quantifiers enumerate the per-sort domain; Sort::Unknown ranges
  /// over the union of all domains.
  bool eval(const Formula& formula,
            const std::map<std::string, Value>& env = {}) const;

  /// Evaluate a term; throws TypeError on unbound variables.
  Value eval_term(const LTerm& term, const std::map<std::string, Value>& env) const;

  /// Number of ground quantifier instantiations performed by the last eval.
  std::size_t last_instantiations() const noexcept { return instantiations_; }

 private:
  const ndlog::BuiltinRegistry* builtins_;
  std::map<std::string, ndlog::TupleSet> relations_;
  std::map<Sort, std::vector<Value>> domains_;
  std::vector<Value> universe_;  // union, deduplicated
  mutable std::size_t instantiations_ = 0;

  void note_domain(const Value& v);
  bool eval_inner(const Formula& formula, std::map<std::string, Value>& env) const;
};

}  // namespace fvn::logic
