// First-order logic AST — FVN's specification language.
//
// Terms and formulas are immutable, shared trees. The vocabulary matches the
// paper's PVS encodings (§3.1): typed variables (Node, Metric, Path, ...),
// uninterpreted predicates defined inductively from NDlog rules, equality,
// linear integer arithmetic atoms, and the interpreted path functions
// (f_init, f_concatPath, f_inPath, ...).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ndlog/ast.hpp"  // reuse CmpOp/BinOp enums and Value

namespace fvn::logic {

using ndlog::BinOp;
using ndlog::CmpOp;
using ndlog::Value;

/// Sorts (PVS types) used in specifications.
enum class Sort : std::uint8_t { Unknown, Node, Metric, Path, Bool, Str, Time };

std::string_view to_string(Sort sort) noexcept;

/// A typed variable declaration "(S:Node)".
struct TypedVar {
  std::string name;
  Sort sort = Sort::Unknown;
  bool operator==(const TypedVar&) const = default;
  std::string to_string() const;
};

// ---------------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------------

struct LTerm;
using LTermPtr = std::shared_ptr<const LTerm>;

/// A logical term: variable, constant (any NDlog Value), interpreted function
/// application, or arithmetic expression.
struct LTerm {
  enum class Kind : std::uint8_t { Var, Const, Func, Arith };

  Kind kind = Kind::Var;
  std::string name;  // Var name or Func name
  Value constant;
  BinOp op = BinOp::Add;
  std::vector<LTermPtr> args;

  static LTermPtr var(std::string name);
  static LTermPtr constant_of(Value v);
  static LTermPtr func(std::string name, std::vector<LTermPtr> args);
  static LTermPtr arith(BinOp op, LTermPtr lhs, LTermPtr rhs);

  bool equals(const LTerm& other) const;
  void free_vars(std::set<std::string>& out) const;
  /// Capture-avoidance is the caller's job (the prover renames bound vars
  /// apart before instantiating).
  LTermPtr substitute(const std::string& var, const LTermPtr& replacement) const;
  std::string to_string() const;
};

// ---------------------------------------------------------------------------
// Formulas
// ---------------------------------------------------------------------------

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

struct Formula {
  enum class Kind : std::uint8_t {
    True,
    False,
    Pred,     // name(args)
    Cmp,      // lhs op rhs (equality / arithmetic comparison)
    Not,
    And,      // n-ary
    Or,       // n-ary
    Implies,  // subs[0] => subs[1]
    Iff,      // subs[0] <=> subs[1]
    Forall,
    Exists,
  };

  Kind kind = Kind::True;
  // Pred
  std::string pred_name;
  std::vector<LTermPtr> terms;  // Pred args, or Cmp {lhs, rhs}
  CmpOp cmp_op = CmpOp::Eq;
  // Composite
  std::vector<FormulaPtr> subs;
  // Quantifiers
  std::vector<TypedVar> binders;

  static FormulaPtr truth();
  static FormulaPtr falsity();
  static FormulaPtr pred(std::string name, std::vector<LTermPtr> args);
  static FormulaPtr cmp(CmpOp op, LTermPtr lhs, LTermPtr rhs);
  static FormulaPtr eq(LTermPtr lhs, LTermPtr rhs) { return cmp(CmpOp::Eq, lhs, rhs); }
  static FormulaPtr negate(FormulaPtr f);
  static FormulaPtr conj(std::vector<FormulaPtr> fs);  // flattens, drops True
  static FormulaPtr disj(std::vector<FormulaPtr> fs);  // flattens, drops False
  static FormulaPtr implies(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr iff(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr forall(std::vector<TypedVar> vars, FormulaPtr body);
  static FormulaPtr exists(std::vector<TypedVar> vars, FormulaPtr body);

  bool equals(const Formula& other) const;
  void free_vars(std::set<std::string>& out) const;
  FormulaPtr substitute(const std::string& var, const LTermPtr& replacement) const;
  std::string to_string() const;
};

/// Fresh-name generator: "X!1", "X!2", ... (PVS skolem-constant style).
class NameSupply {
 public:
  std::string fresh(const std::string& base);

 private:
  std::uint64_t counter_ = 0;
};

// ---------------------------------------------------------------------------
// Definitions, theorems, theories
// ---------------------------------------------------------------------------

/// An inductive predicate definition (the image of a set of NDlog rules,
/// paper §3.1):
///   path(S,D,P,C): INDUCTIVE bool = clause_1 OR clause_2 ...
struct InductiveDef {
  std::string pred_name;
  std::vector<TypedVar> params;
  /// One disjunct per NDlog rule; each is typically EXISTS(...) AND(...).
  std::vector<FormulaPtr> clauses;

  FormulaPtr body() const;  // disjunction of clauses
  std::string to_string() const;
};

struct Theorem {
  std::string name;
  FormulaPtr statement;
  std::string to_string() const;
};

/// A PVS-style theory: a named collection of definitions, axioms and
/// theorems (the unit handled by theory interpretation in §3.3).
struct Theory {
  std::string name;
  std::vector<InductiveDef> definitions;
  std::vector<Theorem> axioms;
  std::vector<Theorem> theorems;

  const InductiveDef* find_definition(const std::string& pred) const;
  std::string to_string() const;  // full PVS-style rendering
};

}  // namespace fvn::logic
