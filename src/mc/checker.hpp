// Explicit-state model checking for FVN (the complementary verification
// technique of §4.3): bounded BFS invariant checking with counterexample
// traces, and reachable-cycle (lasso) detection for divergence properties
// such as Disagree oscillation and count-to-infinity.
//
// Header-only template: a State must be hashable, equality-comparable and
// printable via the supplied render function.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"

namespace fvn::mc {

namespace detail {

/// Flushes an exploration's totals into the registry on every exit path
/// (found-violation, budget-exhausted, fixpoint). Null registry: no-op.
template <typename Result>
struct MetricsFlush {
  obs::Registry* metrics;
  const Result& result;
  ~MetricsFlush() {
    if (metrics == nullptr) return;
    metrics->counter("mc/states_expanded").add(result.states_explored);
    metrics->counter("mc/transitions").add(result.transitions);
  }
};

}  // namespace detail

template <typename State>
struct ExplorationResult {
  bool property_holds = true;
  bool exhausted = true;  // full state space visited within budget
  std::size_t states_explored = 0;
  std::size_t transitions = 0;
  std::vector<State> counterexample;  // trace to violation / the lasso cycle
};

/// Bounded breadth-first invariant check: explores from `initial`; if some
/// reachable state violates `invariant`, returns the shortest trace to it.
template <typename State, typename Hash = std::hash<State>>
ExplorationResult<State> check_invariant(
    const std::vector<State>& initial,
    const std::function<std::vector<State>(const State&)>& successors,
    const std::function<bool(const State&)>& invariant, std::size_t max_states = 100000,
    obs::Registry* metrics = nullptr) {
  ExplorationResult<State> result;
  detail::MetricsFlush<ExplorationResult<State>> flush{metrics, result};
  std::unordered_map<State, State, Hash> parent;  // child -> parent (BFS tree)
  std::unordered_set<State, Hash> visited;
  std::deque<State> frontier;

  auto trace_back = [&](State state) {
    std::vector<State> trace{state};
    while (parent.count(state)) {
      state = parent.at(state);
      trace.push_back(state);
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  };

  for (const auto& s : initial) {
    if (visited.insert(s).second) frontier.push_back(s);
  }
  while (!frontier.empty()) {
    State current = frontier.front();
    frontier.pop_front();
    ++result.states_explored;
    if (!invariant(current)) {
      result.property_holds = false;
      result.counterexample = trace_back(current);
      return result;
    }
    if (result.states_explored >= max_states) {
      result.exhausted = false;
      return result;
    }
    for (auto& next : successors(current)) {
      ++result.transitions;
      if (visited.insert(next).second) {
        parent.emplace(next, current);
        frontier.push_back(std::move(next));
      }
    }
  }
  return result;
}

/// Reachable-cycle detection among states satisfying `on_cycle_candidate`
/// (pass a tautology to find any cycle). Returns the cycle as the
/// counterexample when found — the witness of divergence/livelock.
template <typename State, typename Hash = std::hash<State>>
ExplorationResult<State> find_cycle(
    const std::vector<State>& initial,
    const std::function<std::vector<State>(const State&)>& successors,
    const std::function<bool(const State&)>& on_cycle_candidate,
    std::size_t max_states = 100000, obs::Registry* metrics = nullptr) {
  ExplorationResult<State> result;
  detail::MetricsFlush<ExplorationResult<State>> flush{metrics, result};
  enum class Color : std::uint8_t { Gray, Black };
  std::unordered_map<State, Color, Hash> color;
  std::vector<State> stack;  // current DFS path

  std::function<bool(const State&)> dfs = [&](const State& s) -> bool {
    color[s] = Color::Gray;
    stack.push_back(s);
    ++result.states_explored;
    if (result.states_explored >= max_states) {
      result.exhausted = false;
      stack.pop_back();
      color[s] = Color::Black;
      return false;
    }
    for (auto& next : successors(s)) {
      ++result.transitions;
      if (!on_cycle_candidate(next)) continue;
      auto it = color.find(next);
      if (it == color.end()) {
        if (dfs(next)) return true;
      } else if (it->second == Color::Gray) {
        // Found a cycle: slice the DFS stack from next's position.
        auto pos = std::find(stack.begin(), stack.end(), next);
        result.counterexample.assign(pos, stack.end());
        result.counterexample.push_back(next);
        result.property_holds = false;  // "no divergence cycle" is violated
        return true;
      }
    }
    stack.pop_back();
    color[s] = Color::Black;
    return false;
  };

  for (const auto& s : initial) {
    if (!on_cycle_candidate(s)) continue;
    if (!color.count(s) && dfs(s)) return result;
  }
  return result;
}

}  // namespace fvn::mc
