#include "mc/ndlog_ts.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "runtime/localize.hpp"

namespace fvn::mc {

using ndlog::Database;
using ndlog::Rule;
using ndlog::Tuple;
using ndlog::TupleSet;

std::string NetState::encode() const {
  std::ostringstream os;
  for (const auto& [node, tuples] : stored) {
    os << node << "{";
    for (const auto& t : tuples) os << t.to_string() << ";";
    os << "}";
  }
  os << "|";
  for (const auto& [dest, t] : inflight) os << dest << "<-" << t.to_string() << ";";
  return os.str();
}

std::string render_state(const NetState& state, std::string_view indent) {
  std::ostringstream os;
  for (const auto& [node, tuples] : state.stored) {
    os << indent << "node " << node << ":";
    if (tuples.empty()) os << " (empty)";
    os << "\n";
    for (const auto& t : tuples) os << indent << indent << t.to_string() << "\n";
  }
  if (state.inflight.empty()) {
    os << indent << "in flight: (none)\n";
  } else {
    os << indent << "in flight:\n";
    for (const auto& [dest, t] : state.inflight) {
      os << indent << indent << dest << " <- " << t.to_string() << "\n";
    }
  }
  return os.str();
}

NdlogTransitionSystem::NdlogTransitionSystem(ndlog::Program program,
                                             const ndlog::BuiltinRegistry& builtins)
    : program_(runtime::localize(program)),
      catalog_(ndlog::Catalog::from_program(program_)),
      builtins_(&builtins),
      engine_(builtins) {
  ndlog::analyze(program_, builtins);
  for (const auto& rule : program_.rules) {
    if (rule.is_fact()) continue;
    (rule.head.has_aggregate() ? agg_rules_ : normal_rules_).push_back(&rule);
  }
}

std::string NdlogTransitionSystem::location_of(const Tuple& tuple) const {
  const std::size_t idx =
      catalog_.contains(tuple.predicate()) ? catalog_.loc_index(tuple.predicate()) : 0;
  return tuple.at(idx).as_addr();
}

std::string NdlogTransitionSystem::key_of(const Tuple& tuple) const {
  std::string key = tuple.predicate();
  if (!catalog_.contains(tuple.predicate())) return key + "|" + tuple.to_string();
  const auto& info = catalog_.info(tuple.predicate());
  if (info.key_fields.empty()) return key + "|" + tuple.to_string();
  for (std::size_t f : info.key_fields) {
    if (f >= 1 && f <= tuple.arity()) key += "|" + tuple.at(f - 1).to_string();
  }
  return key;
}

NetState NdlogTransitionSystem::initial(const std::vector<Tuple>& facts) const {
  NetState state;
  for (const auto& f : facts) state.inflight.emplace(location_of(f), f);
  for (const auto& rule : program_.rules) {
    if (!rule.is_fact()) continue;
    ndlog::Bindings empty;
    std::vector<ndlog::Value> values;
    for (const auto& arg : rule.head.args) {
      values.push_back(*ndlog::eval_term(*arg.term, empty, *builtins_));
    }
    Tuple t(rule.head.predicate, std::move(values));
    state.inflight.emplace(location_of(t), t);
  }
  return state;
}

void NdlogTransitionSystem::local_step(NetState& state, const std::string& node,
                                       const Tuple& arriving) const {
  auto& tuples = state.stored[node];

  // Rebuild the node's Database view and key index.
  Database db;
  std::map<std::string, Tuple> by_key;
  for (const auto& t : tuples) {
    db.insert(t);
    by_key.emplace(key_of(t), t);
  }

  auto install = [&](const Tuple& t) -> bool {
    const std::string key = key_of(t);
    auto it = by_key.find(key);
    if (it == by_key.end()) {
      by_key.emplace(key, t);
      db.insert(t);
      return true;
    }
    if (it->second == t) return false;
    db.erase(it->second);
    it->second = t;
    db.insert(t);
    return true;
  };

  std::deque<Tuple> work;
  if (install(arriving)) work.push_back(arriving);

  while (!work.empty()) {
    const Tuple delta = work.front();
    work.pop_front();
    TupleSet delta_set{delta};
    std::vector<Tuple> produced;
    for (const Rule* rule : normal_rules_) {
      const auto atoms = ndlog::RuleEngine::positive_atoms(*rule);
      for (std::size_t i = 0; i < atoms.size(); ++i) {
        if (atoms[i]->atom.predicate != delta.predicate()) continue;
        engine_.eval_rule_delta(*rule, db, i, delta_set,
                                [&](Tuple t) { produced.push_back(std::move(t)); });
      }
    }
    // Aggregate recomputation (local view maintenance).
    for (const Rule* rule : agg_rules_) {
      engine_.eval_agg_rule(*rule, db,
                            [&](Tuple t) { produced.push_back(std::move(t)); });
    }
    for (auto& t : produced) {
      const std::string dest = location_of(t);
      if (dest == node) {
        if (install(t)) work.push_back(t);
      } else {
        // Outbound; duplicates in flight are allowed (message multiset).
        if (!state.stored[dest].count(t)) state.inflight.emplace(dest, t);
      }
    }
  }

  // Write the mutated view back.
  tuples.clear();
  for (const auto& pred : db.predicates()) {
    for (const auto& t : db.relation(pred)) tuples.insert(t);
  }
}

NetState NdlogTransitionSystem::deliver(const NetState& state, std::size_t index) const {
  NetState next = state;
  auto it = next.inflight.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(index));
  const auto [dest, tuple] = *it;
  next.inflight.erase(it);
  local_step(next, dest, tuple);
  return next;
}

std::vector<NetState> NdlogTransitionSystem::successors(const NetState& state) const {
  std::vector<NetState> out;
  std::size_t index = 0;
  auto it = state.inflight.begin();
  std::set<std::pair<std::string, Tuple>> done;
  for (; it != state.inflight.end(); ++it, ++index) {
    if (!done.insert(*it).second) continue;  // identical message: same successor
    out.push_back(deliver(state, index));
  }
  return out;
}

std::vector<std::string> NdlogTransitionSystem::successor_keys(const NetState& state) const {
  std::vector<std::string> out;
  for (const auto& s : successors(state)) out.push_back(s.encode());
  return out;
}

ExplorationResult<NetState> NdlogTransitionSystem::check_invariant_all_interleavings(
    const NetState& initial_state, const std::function<bool(const NetState&)>& invariant,
    std::size_t max_states) const {
  // States are explored as full snapshots so the counterexample trace renders
  // every intermediate routing table (not just encoded transition labels).
  auto successors_fn = [this](const NetState& s) { return this->successors(s); };
  return check_invariant<NetState, NetStateHash>({initial_state}, successors_fn,
                                                 invariant, max_states);
}

NdlogTransitionSystem::QuiescenceReport NdlogTransitionSystem::check_quiescent_states(
    const NetState& initial_state, const std::function<bool(const NetState&)>& property,
    std::size_t max_states) const {
  QuiescenceReport report;
  std::unordered_map<std::string, NetState> table;
  std::unordered_map<std::string, std::string> parent;  // child key -> parent key
  std::deque<std::string> frontier;
  std::string first_quiescent_stores;

  auto stores_of = [](const NetState& s) {
    NetState stores_only;
    stores_only.stored = s.stored;
    return stores_only.encode();
  };

  const std::string initial_key = initial_state.encode();
  table.emplace(initial_key, initial_state);
  frontier.push_back(initial_key);
  std::unordered_set<std::string> visited{initial_key};

  while (!frontier.empty()) {
    const std::string key = frontier.front();
    frontier.pop_front();
    const NetState& state = table.at(key);
    ++report.states_explored;
    if (report.states_explored >= max_states) {
      report.exhausted = false;
      break;
    }
    if (state.quiescent()) {
      ++report.quiescent_states;
      if (!property(state)) {
        report.all_satisfy = false;
        if (report.violating_state.empty()) {
          report.violating_state = key;
          // Reconstruct the snapshot trace back to the initial state.
          std::string cursor = key;
          report.violating_trace.push_back(table.at(cursor));
          while (parent.count(cursor)) {
            cursor = parent.at(cursor);
            report.violating_trace.push_back(table.at(cursor));
          }
          std::reverse(report.violating_trace.begin(), report.violating_trace.end());
        }
      }
      const std::string stores = stores_of(state);
      if (first_quiescent_stores.empty()) {
        first_quiescent_stores = stores;
      } else if (stores != first_quiescent_stores) {
        report.confluent = false;
      }
      continue;
    }
    for (auto& next : successors(state)) {
      std::string next_key = next.encode();
      if (visited.insert(next_key).second) {
        parent.emplace(next_key, key);
        table.emplace(next_key, std::move(next));
        frontier.push_back(std::move(next_key));
      }
    }
  }
  return report;
}

}  // namespace fvn::mc
