// Distance-vector routing as a transition system for the model checker —
// the count-to-infinity demonstration of §3.1 ([22]), experiment E2.
//
// A state is every node's current (cost, next-hop) entry for one destination
// (node 0). A transition activates one node, which re-selects its entry from
// its live neighbors' advertisements. After a link failure, plain DV exhibits
// the classic count-to-infinity climb — the checker produces the trace; with
// split horizon the two-node loop disappears.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mc/checker.hpp"

namespace fvn::mc {

struct DvConfig {
  std::size_t node_count = 3;
  /// Undirected weighted edges (u, v, cost).
  std::vector<std::tuple<std::size_t, std::size_t, std::int64_t>> edges;
  /// The link that fails before exploration starts (undirected pair).
  std::optional<std::pair<std::size_t, std::size_t>> failed_link;
  /// Split horizon: a neighbor whose next hop is `u` does not advertise the
  /// route back to u.
  bool split_horizon = false;
  /// Cost ceiling: entries at or above this count as "counting to infinity".
  std::int64_t infinity_threshold = 16;
};

/// One routing entry: cost and next hop (nullopt = no route).
struct DvEntry {
  std::int64_t cost = 0;
  std::size_t next_hop = 0;
  bool operator==(const DvEntry&) const = default;
};

/// State: entry per node for destination 0 (entry of node 0 is implicit 0).
using DvState = std::vector<std::optional<DvEntry>>;

std::string to_string(const DvState& state);

/// The converged routing state for the configuration's *pre-failure*
/// topology (classic Bellman-Ford fixpoint) — exploration starts here.
DvState converged_state(const DvConfig& config);

/// Successor states: every single-node recomputation against the
/// *post-failure* topology.
std::vector<DvState> dv_successors(const DvConfig& config, const DvState& state);

/// Run the count-to-infinity check: explores from the converged pre-failure
/// state and checks the invariant "every route cost < infinity_threshold".
/// A false result carries the climbing-cost trace. With `metrics`, the
/// exploration totals land in mc/states_expanded and mc/transitions.
ExplorationResult<std::string> check_count_to_infinity(const DvConfig& config,
                                                       std::size_t max_states = 200000,
                                                       obs::Registry* metrics = nullptr);

/// Serialize/deserialize states for the generic checker.
std::string encode(const DvState& state);
DvState decode(const std::string& encoded, std::size_t node_count);

}  // namespace fvn::mc
