#include "mc/dv_model.hpp"

#include <algorithm>
#include <sstream>

namespace fvn::mc {

namespace {

/// Live undirected neighbor list with costs, honoring the failed link.
std::vector<std::vector<std::pair<std::size_t, std::int64_t>>> live_adjacency(
    const DvConfig& config, bool include_failed) {
  std::vector<std::vector<std::pair<std::size_t, std::int64_t>>> adj(config.node_count);
  for (const auto& [u, v, c] : config.edges) {
    if (!include_failed && config.failed_link) {
      const auto& [a, b] = *config.failed_link;
      if ((u == a && v == b) || (u == b && v == a)) continue;
    }
    adj[u].emplace_back(v, c);
    adj[v].emplace_back(u, c);
  }
  return adj;
}

/// The advertisement node v makes to node u under the configuration's
/// policies: v's cost to the destination, or nullopt (no route / split
/// horizon suppression). Node 0 always advertises cost 0.
std::optional<std::int64_t> advertised(const DvConfig& config, const DvState& state,
                                       std::size_t v, std::size_t u) {
  if (v == 0) return 0;
  const auto& entry = state[v];
  if (!entry) return std::nullopt;
  if (config.split_horizon && entry->next_hop == u) return std::nullopt;
  return entry->cost;
}

}  // namespace

std::string to_string(const DvState& state) {
  std::ostringstream os;
  for (std::size_t u = 1; u < state.size(); ++u) {
    os << u << ":";
    if (state[u]) {
      os << state[u]->cost << "via" << state[u]->next_hop;
    } else {
      os << "-";
    }
    os << " ";
  }
  return os.str();
}

std::string encode(const DvState& state) { return to_string(state); }

DvState decode(const std::string& encoded, std::size_t node_count) {
  DvState state(node_count);
  std::istringstream is(encoded);
  std::string token;
  while (is >> token) {
    const auto colon = token.find(':');
    const std::size_t u = std::stoul(token.substr(0, colon));
    const std::string rest = token.substr(colon + 1);
    if (rest == "-") continue;
    const auto via = rest.find("via");
    DvEntry entry;
    entry.cost = std::stoll(rest.substr(0, via));
    entry.next_hop = std::stoul(rest.substr(via + 3));
    state[u] = entry;
  }
  return state;
}

DvState converged_state(const DvConfig& config) {
  const auto adj = live_adjacency(config, /*include_failed=*/true);
  DvState state(config.node_count);
  // Bellman-Ford to fixpoint (pre-failure topology).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t u = 1; u < config.node_count; ++u) {
      std::optional<DvEntry> best;
      for (const auto& [v, c] : adj[u]) {
        std::optional<std::int64_t> adv = v == 0 ? std::optional<std::int64_t>(0)
                                                 : (state[v] ? std::optional<std::int64_t>(
                                                                   state[v]->cost)
                                                             : std::nullopt);
        if (!adv) continue;
        const DvEntry cand{*adv + c, v};
        if (!best || cand.cost < best->cost ||
            (cand.cost == best->cost && cand.next_hop < best->next_hop)) {
          best = cand;
        }
      }
      if (best != state[u]) {
        state[u] = best;
        changed = true;
      }
    }
  }
  return state;
}

std::vector<DvState> dv_successors(const DvConfig& config, const DvState& state) {
  const auto adj = live_adjacency(config, /*include_failed=*/false);
  std::vector<DvState> out;
  for (std::size_t u = 1; u < config.node_count; ++u) {
    std::optional<DvEntry> best;
    for (const auto& [v, c] : adj[u]) {
      const auto adv = advertised(config, state, v, u);
      if (!adv) continue;
      const DvEntry cand{*adv + c, v};
      if (!best || cand.cost < best->cost ||
          (cand.cost == best->cost && cand.next_hop < best->next_hop)) {
        best = cand;
      }
    }
    if (best != state[u]) {
      DvState next = state;
      next[u] = best;
      out.push_back(std::move(next));
    }
  }
  return out;
}

ExplorationResult<std::string> check_count_to_infinity(const DvConfig& config,
                                                       std::size_t max_states,
                                                       obs::Registry* metrics) {
  const DvState start = converged_state(config);
  auto successors = [config](const std::string& s) {
    std::vector<std::string> out;
    for (const auto& next : dv_successors(config, decode(s, config.node_count))) {
      out.push_back(encode(next));
    }
    return out;
  };
  auto invariant = [config](const std::string& s) {
    const DvState state = decode(s, config.node_count);
    for (std::size_t u = 1; u < state.size(); ++u) {
      if (state[u] && state[u]->cost >= config.infinity_threshold) return false;
    }
    return true;
  };
  return check_invariant<std::string>({encode(start)}, successors, invariant, max_states,
                                      metrics);
}

}  // namespace fvn::mc
