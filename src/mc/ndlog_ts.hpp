// NDlog programs as transition systems (the §4.2/§4.3 linear-logic view,
// arcs 6/8 of Figure 1): a state is every node's local table contents plus
// the multiset of in-flight messages; a transition delivers one in-flight
// tuple to its destination node, which runs its local rules to fixpoint and
// emits new messages. The model checker then explores *all* message
// interleavings — the verification mechanism the paper envisions on top of
// the transition-system representation.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "mc/checker.hpp"
#include "ndlog/catalog.hpp"
#include "ndlog/eval.hpp"

namespace fvn::mc {

/// A network state: per-node stored tuples plus in-flight messages.
struct NetState {
  std::map<std::string, std::set<ndlog::Tuple>> stored;
  /// In-flight (destination, tuple) messages, canonically sorted.
  std::multiset<std::pair<std::string, ndlog::Tuple>> inflight;

  bool quiescent() const { return inflight.empty(); }
  std::string encode() const;
  bool operator==(const NetState& other) const = default;
};

/// Hash over the canonical encoding (consistent with operator==).
struct NetStateHash {
  std::size_t operator()(const NetState& state) const {
    return std::hash<std::string>{}(state.encode());
  }
};

/// Human rendering: one block per node listing its stored tuples, then the
/// in-flight messages. Counterexample traces print one of these per step.
std::string render_state(const NetState& state, std::string_view indent = "  ");

/// Transition system for one (localized) NDlog program.
class NdlogTransitionSystem {
 public:
  explicit NdlogTransitionSystem(
      ndlog::Program program,
      const ndlog::BuiltinRegistry& builtins = ndlog::BuiltinRegistry::standard());

  /// Initial state: all base facts in flight toward their location nodes.
  NetState initial(const std::vector<ndlog::Tuple>& facts) const;

  /// Deliver the in-flight message at `index` (into the sorted multiset).
  NetState deliver(const NetState& state, std::size_t index) const;

  /// All successor states (one per distinct in-flight message).
  std::vector<NetState> successors(const NetState& state) const;
  /// String-keyed successor map for the generic checker.
  std::vector<std::string> successor_keys(const NetState& state) const;

  /// Find a state by exploring; predicate-driven (BFS, bounded). The
  /// counterexample carries *full state snapshots* (per-node tables plus
  /// in-flight messages), not just encoded transition labels, so temporal
  /// counterexamples can render each intermediate routing table.
  ExplorationResult<NetState> check_invariant_all_interleavings(
      const NetState& initial_state,
      const std::function<bool(const NetState&)>& invariant,
      std::size_t max_states = 50000) const;

  struct QuiescenceReport {
    std::size_t states_explored = 0;
    std::size_t quiescent_states = 0;
    bool exhausted = true;
    bool all_satisfy = true;      // every quiescent state satisfies the predicate
    bool confluent = true;        // all quiescent states have identical stores
    std::string violating_state;  // encoded witness, when !all_satisfy
    /// Full snapshot trace from the initial state to the first violating
    /// quiescent state (empty when all_satisfy).
    std::vector<NetState> violating_trace;
  };

  /// Explore every message interleaving to quiescence and check an
  /// *eventual* property: does every terminal (no in-flight messages) state
  /// satisfy `property`? Also reports confluence (a Church–Rosser check for
  /// the program on this instance) — the eventual-consistency question the
  /// paper's §4.2 raises for soft-state reasoning.
  QuiescenceReport check_quiescent_states(
      const NetState& initial_state,
      const std::function<bool(const NetState&)>& property,
      std::size_t max_states = 50000) const;

  /// Decode support: exploration uses string keys; keep a side table.
  const ndlog::Program& program() const noexcept { return program_; }

 private:
  ndlog::Program program_;
  ndlog::Catalog catalog_;
  const ndlog::BuiltinRegistry* builtins_;
  ndlog::RuleEngine engine_;
  std::vector<const ndlog::Rule*> normal_rules_;
  std::vector<const ndlog::Rule*> agg_rules_;

  std::string location_of(const ndlog::Tuple& tuple) const;
  std::string key_of(const ndlog::Tuple& tuple) const;
  /// Install + run local fixpoint at one node; appends outbound messages.
  void local_step(NetState& state, const std::string& node,
                  const ndlog::Tuple& tuple) const;
};

}  // namespace fvn::mc
