#include "obs/json.hpp"

#include <cctype>
#include <cstdio>

namespace fvn::obs {

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse_document() {
    skip_ws();
    JsonValue value;
    if (!parse_value(value)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // The exporters only escape control characters; decode BMP code
          // points to UTF-8 without surrogate-pair handling (reject pairs).
          if (code >= 0xD800 && code <= 0xDFFF) return false;
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    if (eat('-')) {}
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (++depth_ > kMaxDepth) return false;
    skip_ws();
    bool ok = false;
    switch (peek()) {
      case '{': ok = parse_object(out); break;
      case '[': ok = parse_array(out); break;
      case '"':
        out.kind = JsonValue::Kind::String;
        ok = parse_string(out.string);
        break;
      case 't':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        ok = literal("true");
        break;
      case 'f':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        ok = literal("false");
        break;
      case 'n':
        out.kind = JsonValue::Kind::Null;
        ok = literal("null");
        break;
      default:
        out.kind = JsonValue::Kind::Number;
        ok = parse_number(out.number);
        break;
    }
    --depth_;
    return ok;
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object[std::move(key)] = std::move(value);
      skip_ws();
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (eat(',')) continue;
      return eat(']');
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  static constexpr std::size_t kMaxDepth = 256;
  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool json_valid(std::string_view text) { return json_parse(text).has_value(); }

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace fvn::obs
