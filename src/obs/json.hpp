// Minimal strict JSON reader for the observability layer: enough of a DOM to
// let tests and the bench self-check validate the documents the exporters in
// metrics.{hpp,cpp} / trace.{hpp,cpp} emit. Zero dependencies by design — the
// whole point of fvn::obs is that it can be linked everywhere.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fvn::obs {

/// Parsed JSON value. Objects preserve no duplicate keys (last wins, as in
/// most permissive readers); numbers are held as doubles, which is exact for
/// the counter magnitudes the exporters produce (< 2^53).
struct JsonValue {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const noexcept { return kind == Kind::Object; }
  bool is_array() const noexcept { return kind == Kind::Array; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const {
    if (kind != Kind::Object) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). nullopt on any syntax error.
std::optional<JsonValue> json_parse(std::string_view text);

/// Well-formedness check without building the DOM result.
bool json_valid(std::string_view text);

/// Escape a string for embedding inside a JSON string literal (no quotes).
std::string json_escape(std::string_view text);

}  // namespace fvn::obs
