// fvn::obs metrics — zero-dependency counters, histograms, timers and the
// Registry that names them. This is the measurement substrate the evaluator,
// the distributed simulator, the prover and the model checker report into
// (DESIGN.md §9): every hot layer takes an optional `Registry*` and records
// nothing when it is null, so disabled instrumentation stays off the profile.
//
// Naming convention: slash-separated hierarchical series names, e.g.
//   eval/rule/r2/firings      sim/node/n3/sent      prover/tactic/assert
// The JSON exporter emits one deterministic document per registry
// (std::map ordering), which is what `fvn_cli --metrics`, the BENCH_*.json
// trajectories, and the golden tests all consume.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace fvn::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Power-of-two-bucketed distribution of non-negative integer samples
/// (delta sizes, queue depths, message counts). Bucket b counts samples whose
/// bit width is b: bucket 0 holds sample 0, bucket 1 holds 1, bucket 2 holds
/// 2-3, bucket 3 holds 4-7, ... — fixed memory, no configuration.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit widths 0..64

  void observe(std::uint64_t sample) noexcept {
    ++count_;
    sum_ += sample;
    if (count_ == 1 || sample < min_) min_ = sample;
    if (sample > max_) max_ = sample;
    ++buckets_[bucket_of(sample)];
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  const std::array<std::uint64_t, kBuckets>& buckets() const noexcept { return buckets_; }

  static std::size_t bucket_of(std::uint64_t sample) noexcept {
    std::size_t bits = 0;
    while (sample != 0) {
      ++bits;
      sample >>= 1;
    }
    return bits;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Accumulated wall time. Use `Timer::Scope` to time a block, or record_ns()
/// directly (which is also what deterministic tests do).
class Timer {
 public:
  void record_ns(std::uint64_t ns) noexcept {
    total_ns_ += ns;
    ++count_;
  }
  std::uint64_t total_ns() const noexcept { return total_ns_; }
  std::uint64_t count() const noexcept { return count_; }
  double total_ms() const noexcept { return static_cast<double>(total_ns_) / 1e6; }

  /// RAII measurement; tolerates a null timer (disabled instrumentation).
  class Scope {
   public:
    explicit Scope(Timer* timer) noexcept
        : timer_(timer),
          start_(timer ? std::chrono::steady_clock::now()
                       : std::chrono::steady_clock::time_point{}) {}
    ~Scope() {
      if (timer_ == nullptr) return;
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      timer_->record_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Timer* timer_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  std::uint64_t total_ns_ = 0;
  std::uint64_t count_ = 0;
};

/// Named metric store. Lookup creates on first use; references remain valid
/// for the registry's lifetime (node-based map storage).
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }
  Timer& timer(const std::string& name) { return timers_[name]; }

  /// Read-only lookups (nullptr when the series was never recorded).
  const Counter* find_counter(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;
  const Timer* find_timer(const std::string& name) const;

  const std::map<std::string, Counter>& counters() const noexcept { return counters_; }
  const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }
  const std::map<std::string, Timer>& timers() const noexcept { return timers_; }

  bool empty() const noexcept {
    return counters_.empty() && histograms_.empty() && timers_.empty();
  }
  std::size_t series_count() const noexcept {
    return counters_.size() + histograms_.size() + timers_.size();
  }

  /// Sum of every counter whose name starts with `prefix` — the consistency
  /// checks use this to pin per-rule series against the EvalStats aggregate.
  std::uint64_t sum_counters_with_prefix(std::string_view prefix) const;

  /// Deterministic JSON document:
  ///   {"counters":{...},"histograms":{name:{count,sum,min,max,mean}},
  ///    "timers":{name:{count,total_ns}}}
  /// Histogram buckets are elided from JSON (summary stats carry the
  /// trajectory signal); render_summary() shows them as a sparkline instead.
  std::string to_json() const;

  /// Human-readable aligned dump (what `fvn_cli --metrics` prints).
  std::string render_summary() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, Timer> timers_;
};

/// Write `content` to `path`, throwing std::runtime_error on I/O failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace fvn::obs
