// fvn::obs structured tracing — span-based event recording with a Chrome
// `trace_event` JSON exporter (load the output in chrome://tracing or
// https://ui.perfetto.dev) and a human summary renderer.
//
// Two time bases coexist:
//   * the wall clock (default, or an injected clock for deterministic tests):
//     span()/instant()/counter() stamp events as they happen — the evaluator
//     and prover use this;
//   * explicit timestamps: the *_at() variants let the discrete-event
//     simulator stamp events in *virtual* seconds, so the exported trace
//     shows protocol time rather than host time.
//
// All instrumentation points take a `Trace*` and do nothing when it is null;
// `Span` itself tolerates a null trace, so call sites need no branching.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace fvn::obs {

/// One recorded trace event (Chrome trace_event phases B/E/i/C).
struct TraceEvent {
  char phase = 'i';       // 'B' begin span, 'E' end span, 'i' instant, 'C' counter
  std::uint64_t ts_us = 0;
  std::string name;
  std::string cat;
  std::string args_json;  // pre-rendered JSON object ("{...}") or empty
  double counter_value = 0.0;  // 'C' only
};

class Trace {
 public:
  using Clock = std::function<std::uint64_t()>;  // microseconds, monotonic

  /// Default clock: steady_clock microseconds since Trace construction.
  /// Tests inject a fake clock for byte-stable golden output.
  explicit Trace(Clock clock = {});

  std::uint64_t now_us() const { return clock_(); }

  /// Span lifecycle (B/E events at the current clock). Unbalanced end_span()
  /// calls are ignored; depth() reports the current nesting.
  void begin_span(std::string_view name, std::string_view cat,
                  std::string args_json = {});
  void end_span(std::string args_json = {});
  std::size_t depth() const noexcept { return depth_; }

  /// Point event / numeric series sample at the current clock.
  void instant(std::string_view name, std::string_view cat, std::string args_json = {});
  void counter(std::string_view name, std::string_view cat, double value);

  /// Explicit-timestamp variants (virtual time; microseconds).
  void instant_at(std::uint64_t ts_us, std::string_view name, std::string_view cat,
                  std::string args_json = {});
  void counter_at(std::uint64_t ts_us, std::string_view name, std::string_view cat,
                  double value);

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }

  /// Chrome trace_event JSON:
  ///   {"traceEvents":[{"name":...,"cat":...,"ph":"B","ts":...,"pid":1,"tid":1,
  ///                    "args":{...}},...],"displayTimeUnit":"ms"}
  std::string to_json() const;

  /// Write to_json() to `path` (throws std::runtime_error on I/O failure).
  void write(const std::string& path) const;

 private:
  Clock clock_;
  std::vector<TraceEvent> events_;
  std::size_t depth_ = 0;
};

/// RAII span. `Span(nullptr, ...)` is a no-op, which is how disabled
/// instrumentation costs nothing but a branch.
class Span {
 public:
  Span(Trace* trace, std::string_view name, std::string_view cat,
       std::string args_json = {})
      : trace_(trace) {
    if (trace_ != nullptr) trace_->begin_span(name, cat, std::move(args_json));
  }
  ~Span() { end(); }

  /// Close early, optionally attaching result args to the end event.
  void end(std::string args_json = {}) {
    if (trace_ == nullptr) return;
    trace_->end_span(std::move(args_json));
    trace_ = nullptr;
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Trace* trace_;
};

}  // namespace fvn::obs
