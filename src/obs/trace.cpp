#include "obs/trace.hpp"

#include <chrono>
#include <sstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"  // write_file

namespace fvn::obs {

Trace::Trace(Clock clock) : clock_(std::move(clock)) {
  if (!clock_) {
    const auto epoch = std::chrono::steady_clock::now();
    clock_ = [epoch]() {
      return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                            std::chrono::steady_clock::now() - epoch)
                                            .count());
    };
  }
}

void Trace::begin_span(std::string_view name, std::string_view cat,
                       std::string args_json) {
  events_.push_back(TraceEvent{'B', now_us(), std::string(name), std::string(cat),
                               std::move(args_json), 0.0});
  ++depth_;
}

void Trace::end_span(std::string args_json) {
  if (depth_ == 0) return;  // unbalanced end: ignore
  --depth_;
  events_.push_back(TraceEvent{'E', now_us(), {}, {}, std::move(args_json), 0.0});
}

void Trace::instant(std::string_view name, std::string_view cat, std::string args_json) {
  instant_at(now_us(), name, cat, std::move(args_json));
}

void Trace::counter(std::string_view name, std::string_view cat, double value) {
  counter_at(now_us(), name, cat, value);
}

void Trace::instant_at(std::uint64_t ts_us, std::string_view name, std::string_view cat,
                       std::string args_json) {
  events_.push_back(TraceEvent{'i', ts_us, std::string(name), std::string(cat),
                               std::move(args_json), 0.0});
}

void Trace::counter_at(std::uint64_t ts_us, std::string_view name, std::string_view cat,
                       double value) {
  events_.push_back(
      TraceEvent{'C', ts_us, std::string(name), std::string(cat), {}, value});
}

std::string Trace::to_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    os << (first ? "" : ",") << "{\"ph\":\"" << e.phase << "\",\"ts\":" << e.ts_us
       << ",\"pid\":1,\"tid\":1";
    if (!e.name.empty()) os << ",\"name\":\"" << json_escape(e.name) << "\"";
    if (!e.cat.empty()) os << ",\"cat\":\"" << json_escape(e.cat) << "\"";
    if (e.phase == 'C') {
      // Counter events carry their series value in args.
      os << ",\"args\":{\"value\":" << e.counter_value << "}";
    } else if (!e.args_json.empty()) {
      os << ",\"args\":" << e.args_json;
    }
    if (e.phase == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
    os << "}";
    first = false;
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

void Trace::write(const std::string& path) const { write_file(path, to_json()); }

}  // namespace fvn::obs
