#include "obs/metrics.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace fvn::obs {

const Counter* Registry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const Timer* Registry::find_timer(const std::string& name) const {
  auto it = timers_.find(name);
  return it == timers_.end() ? nullptr : &it->second;
}

std::uint64_t Registry::sum_counters_with_prefix(std::string_view prefix) const {
  std::uint64_t total = 0;
  // std::map: the matching range is contiguous; lower_bound gets us there.
  for (auto it = counters_.lower_bound(std::string(prefix)); it != counters_.end();
       ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second.value();
  }
  return total;
}

namespace {

/// Format a double without trailing-zero noise (mean fields).
std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string Registry::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\"" << json_escape(name) << "\":" << c.value();
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\"" << json_escape(name) << "\":{\"count\":" << h.count()
       << ",\"sum\":" << h.sum() << ",\"min\":" << h.min() << ",\"max\":" << h.max()
       << ",\"mean\":" << format_double(h.mean()) << "}";
    first = false;
  }
  os << "},\"timers\":{";
  first = true;
  for (const auto& [name, t] : timers_) {
    os << (first ? "" : ",") << "\"" << json_escape(name) << "\":{\"count\":" << t.count()
       << ",\"total_ns\":" << t.total_ns() << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string Registry::render_summary() const {
  std::ostringstream os;
  std::size_t width = 0;
  for (const auto& [name, c] : counters_) width = std::max(width, name.size());
  for (const auto& [name, h] : histograms_) width = std::max(width, name.size());
  for (const auto& [name, t] : timers_) width = std::max(width, name.size());

  auto pad = [&](const std::string& name) {
    return name + std::string(width - name.size() + 2, ' ');
  };
  if (!counters_.empty()) {
    os << "counters:\n";
    for (const auto& [name, c] : counters_) {
      os << "  " << pad(name) << c.value() << "\n";
    }
  }
  if (!histograms_.empty()) {
    os << "histograms:\n";
    for (const auto& [name, h] : histograms_) {
      os << "  " << pad(name) << "count=" << h.count() << " sum=" << h.sum()
         << " min=" << h.min() << " max=" << h.max() << " mean=" << format_double(h.mean());
      // Sparkline over the occupied power-of-two buckets.
      std::size_t lo = Histogram::kBuckets, hi = 0;
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        if (h.buckets()[b] != 0) {
          lo = std::min(lo, b);
          hi = std::max(hi, b);
        }
      }
      if (lo <= hi) {
        std::uint64_t peak = 0;
        for (std::size_t b = lo; b <= hi; ++b) peak = std::max(peak, h.buckets()[b]);
        static const char* kLevels = " .:-=+*#";
        os << "  [";
        for (std::size_t b = lo; b <= hi; ++b) {
          const std::size_t level =
              h.buckets()[b] == 0 ? 0 : 1 + (h.buckets()[b] * 6) / peak;
          os << kLevels[std::min<std::size_t>(level, 7)];
        }
        os << "]";
      }
      os << "\n";
    }
  }
  if (!timers_.empty()) {
    os << "timers:\n";
    for (const auto& [name, t] : timers_) {
      os << "  " << pad(name) << "count=" << t.count() << " total="
         << format_double(t.total_ms()) << "ms\n";
    }
  }
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << content;
  if (!out.good()) throw std::runtime_error("short write to " + path);
}

}  // namespace fvn::obs
