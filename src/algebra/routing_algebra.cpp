#include "algebra/routing_algebra.hpp"

#include <chrono>
#include <cmath>
#include <sstream>

namespace fvn::algebra {

namespace {

std::string render(const Value& v) { return v.to_string(); }

}  // namespace

std::string DischargeReport::to_string() const {
  std::ostringstream os;
  os << "algebra " << algebra << ": ";
  auto show = [&](const Obligation& o) {
    os << o.name << "=" << (o.holds ? "ok" : "FAIL");
    if (!o.holds) os << "(" << o.counterexample << ")";
    os << " ";
  };
  show(totality);
  show(maximality);
  show(absorption);
  show(monotonicity);
  show(strict_monotonicity);
  show(isotonicity);
  os << "[" << total_checks << " checks, " << elapsed_seconds << "s]";
  return os.str();
}

DischargeReport discharge(const RoutingAlgebra& alg) {
  const auto start = std::chrono::steady_clock::now();
  DischargeReport report;
  report.algebra = alg.name;
  report.totality.name = "totality";
  report.maximality.name = "maximality";
  report.absorption.name = "absorption";
  report.monotonicity.name = "monotonicity";
  report.strict_monotonicity.name = "strict-monotonicity";
  report.isotonicity.name = "isotonicity";

  // Totality of the preference preorder.
  for (const auto& a : alg.signatures) {
    for (const auto& b : alg.signatures) {
      ++report.totality.checks;
      if (!alg.leq(a, b) && !alg.leq(b, a)) {
        report.totality.holds = false;
        report.totality.counterexample = render(a) + " incomparable to " + render(b);
        break;
      }
    }
    if (!report.totality.holds) break;
  }

  // Maximality: every signature is at least as preferred as φ.
  for (const auto& s : alg.signatures) {
    ++report.maximality.checks;
    if (!alg.leq(s, alg.phi)) {
      report.maximality.holds = false;
      report.maximality.counterexample = "phi preferred to " + render(s);
      break;
    }
  }

  // Absorption: l ⊕ φ = φ (up to preference-equivalence with φ).
  for (const auto& l : alg.labels) {
    ++report.absorption.checks;
    const Value extended = alg.apply(l, alg.phi);
    if (!(extended == alg.phi) && !alg.equivalent(extended, alg.phi)) {
      report.absorption.holds = false;
      report.absorption.counterexample =
          render(l) + " (+) phi = " + render(extended);
      break;
    }
  }

  // Monotonicity: s ⪯ l ⊕ s.
  for (const auto& l : alg.labels) {
    for (const auto& s : alg.signatures) {
      ++report.monotonicity.checks;
      const Value extended = alg.apply(l, s);
      if (!alg.leq(s, extended)) {
        report.monotonicity.holds = false;
        report.monotonicity.counterexample =
            render(l) + " (+) " + render(s) + " = " + render(extended) +
            " preferred to " + render(s);
        break;
      }
    }
    if (!report.monotonicity.holds) break;
  }

  // Strict monotonicity: s ≺ l ⊕ s for s ≠ φ.
  for (const auto& l : alg.labels) {
    for (const auto& s : alg.signatures) {
      if (s == alg.phi) continue;
      ++report.strict_monotonicity.checks;
      const Value extended = alg.apply(l, s);
      if (!alg.strictly_better(s, extended)) {
        report.strict_monotonicity.holds = false;
        report.strict_monotonicity.counterexample =
            render(l) + " (+) " + render(s) + " = " + render(extended);
        break;
      }
    }
    if (!report.strict_monotonicity.holds) break;
  }

  // Isotonicity: a ⪯ b => l⊕a ⪯ l⊕b.
  for (const auto& l : alg.labels) {
    for (const auto& a : alg.signatures) {
      for (const auto& b : alg.signatures) {
        ++report.isotonicity.checks;
        if (!alg.leq(a, b)) continue;
        if (!alg.leq(alg.apply(l, a), alg.apply(l, b))) {
          report.isotonicity.holds = false;
          report.isotonicity.counterexample =
              render(a) + " <= " + render(b) + " but not after applying " + render(l);
          break;
        }
      }
      if (!report.isotonicity.holds) break;
    }
    if (!report.isotonicity.holds) break;
  }

  report.total_checks = report.totality.checks + report.maximality.checks +
                        report.absorption.checks + report.monotonicity.checks +
                        report.strict_monotonicity.checks + report.isotonicity.checks;
  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return report;
}

// ---------------------------------------------------------------------------
// Base algebras
// ---------------------------------------------------------------------------

RoutingAlgebra add_algebra(std::int64_t max_metric, std::int64_t max_label) {
  RoutingAlgebra alg;
  alg.name = "addA";
  const std::int64_t inf = max_metric * 100;  // φ sentinel beyond any sum
  alg.phi = Value::integer(inf);
  for (std::int64_t v = 0; v <= max_metric; ++v) alg.signatures.push_back(Value::integer(v));
  alg.signatures.push_back(alg.phi);
  for (std::int64_t l = 1; l <= max_label; ++l) alg.labels.push_back(Value::integer(l));
  alg.origins = {Value::integer(0)};
  alg.leq = [](const Value& a, const Value& b) { return a.as_int() <= b.as_int(); };
  alg.apply = [inf](const Value& l, const Value& s) {
    if (s.as_int() >= inf) return Value::integer(inf);
    const std::int64_t sum = l.as_int() + s.as_int();
    return Value::integer(sum >= inf ? inf : sum);
  };
  return alg;
}

RoutingAlgebra hop_algebra(std::int64_t max_metric) {
  RoutingAlgebra alg = add_algebra(max_metric, 1);
  alg.name = "hopA";
  return alg;
}

RoutingAlgebra lp_algebra(std::int64_t levels) {
  // Exactly the paper's snippet: labelApply(l,s) = l; prefRel(s1,s2) = s1<=s2;
  // prohibitPath = a dedicated worst level.
  RoutingAlgebra alg;
  alg.name = "lpA";
  const std::int64_t worst = levels + 1;
  alg.phi = Value::integer(worst);
  for (std::int64_t v = 1; v <= levels; ++v) {
    alg.signatures.push_back(Value::integer(v));
    alg.labels.push_back(Value::integer(v));
  }
  alg.signatures.push_back(alg.phi);
  alg.origins = {Value::integer(1)};
  alg.leq = [](const Value& a, const Value& b) { return a.as_int() <= b.as_int(); };
  alg.apply = [worst](const Value& l, const Value& s) {
    if (s.as_int() >= worst) return Value::integer(worst);  // absorption
    return l;
  };
  return alg;
}

RoutingAlgebra bandwidth_algebra(std::int64_t max_bw) {
  RoutingAlgebra alg;
  alg.name = "bwA";
  alg.phi = Value::integer(0);  // zero bandwidth = unusable
  for (std::int64_t v = 0; v <= max_bw; ++v) alg.signatures.push_back(Value::integer(v));
  for (std::int64_t l = 1; l <= max_bw; ++l) alg.labels.push_back(Value::integer(l));
  alg.origins = {Value::integer(max_bw)};
  // Larger bandwidth preferred.
  alg.leq = [](const Value& a, const Value& b) { return a.as_int() >= b.as_int(); };
  alg.apply = [](const Value& l, const Value& s) {
    return Value::integer(std::min(l.as_int(), s.as_int()));
  };
  return alg;
}

RoutingAlgebra reliability_algebra() {
  RoutingAlgebra alg;
  alg.name = "relA";
  alg.phi = Value::real(0.0);
  for (int i = 0; i <= 10; ++i) alg.signatures.push_back(Value::real(i / 10.0));
  for (int i = 1; i <= 10; ++i) alg.labels.push_back(Value::real(i / 10.0));
  alg.origins = {Value::real(1.0)};
  alg.leq = [](const Value& a, const Value& b) { return a.as_double() >= b.as_double(); };
  alg.apply = [](const Value& l, const Value& s) {
    // Quantize back onto the sample grid so the carrier stays closed.
    const double p = l.as_double() * s.as_double();
    return Value::real(std::round(p * 10.0) / 10.0);
  };
  return alg;
}

// ---------------------------------------------------------------------------
// Composition
// ---------------------------------------------------------------------------

RoutingAlgebra lex_product(const RoutingAlgebra& a, const RoutingAlgebra& b) {
  RoutingAlgebra out;
  out.name = "lexProduct[" + a.name + "," + b.name + "]";
  out.phi = Value::list({a.phi, b.phi});
  // φ canonicalization: any pair with a φ component is prohibited.
  auto canon = [phiA = a.phi, phiB = b.phi, phi = out.phi](Value v) {
    const auto& items = v.as_list();
    if (items[0] == phiA || items[1] == phiB) return phi;
    return v;
  };
  for (const auto& sa : a.signatures) {
    for (const auto& sb : b.signatures) {
      const Value pair = canon(Value::list({sa, sb}));
      bool dup = false;
      for (const auto& existing : out.signatures) {
        if (existing == pair) dup = true;
      }
      if (!dup) out.signatures.push_back(pair);
    }
  }
  for (const auto& la : a.labels) {
    for (const auto& lb : b.labels) {
      out.labels.push_back(Value::list({la, lb}));
    }
  }
  for (const auto& oa : a.origins) {
    for (const auto& ob : b.origins) {
      out.origins.push_back(Value::list({oa, ob}));
    }
  }
  out.leq = [a, b](const Value& x, const Value& y) {
    const auto& xs = x.as_list();
    const auto& ys = y.as_list();
    if (a.strictly_better(xs[0], ys[0])) return true;
    if (a.strictly_better(ys[0], xs[0])) return false;
    return b.leq(xs[1], ys[1]);
  };
  out.apply = [a, b, canon](const Value& l, const Value& s) {
    const auto& ls = l.as_list();
    const auto& ss = s.as_list();
    return canon(Value::list({a.apply(ls[0], ss[0]), b.apply(ls[1], ss[1])}));
  };
  return out;
}

RoutingAlgebra reverse_preference(const RoutingAlgebra& a, Value new_phi) {
  RoutingAlgebra out = a;
  out.name = "rev[" + a.name + "]";
  out.phi = std::move(new_phi);
  out.leq = [inner = a.leq](const Value& x, const Value& y) { return inner(y, x); };
  return out;
}

RoutingAlgebra direct_product(const RoutingAlgebra& a, const RoutingAlgebra& b) {
  RoutingAlgebra out = lex_product(a, b);  // same carrier/apply/φ machinery
  out.name = "directProduct[" + a.name + "," + b.name + "]";
  out.leq = [a, b](const Value& x, const Value& y) {
    const auto& xs = x.as_list();
    const auto& ys = y.as_list();
    return a.leq(xs[0], ys[0]) && b.leq(xs[1], ys[1]);
  };
  return out;
}

RoutingAlgebra bgp_system() {
  // LP compared first (the paper's BGPSystem), then route cost.
  RoutingAlgebra sys = lex_product(lp_algebra(3), add_algebra(8, 3));
  sys.name = "BGPSystem=lexProduct[LP,RC]";
  return sys;
}

}  // namespace fvn::algebra
