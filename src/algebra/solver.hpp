// Generalized path-vector solver: synchronous Bellman–Ford–style iteration
// over an arbitrary routing algebra on a labeled digraph. Demonstrates the
// metarouting convergence theorem empirically (monotone + isotone algebras
// reach the optimal fixpoint; non-monotone ones may cycle), experiment E6.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "algebra/routing_algebra.hpp"

namespace fvn::algebra {

struct LabeledEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  Value label;  // must be (convertible to) a label of the algebra
};

struct SolveResult {
  /// best[n] = most preferred signature from node n to the destination
  /// (phi when unreachable).
  std::vector<Value> best;
  std::size_t iterations = 0;
  bool converged = false;   // fixpoint reached within the iteration budget
  std::size_t updates = 0;  // signature improvements applied
};

/// Solve single-destination route selection: node `dest` originates
/// `origin` (defaults to the algebra's first origin signature).
SolveResult solve(const RoutingAlgebra& algebra, std::size_t node_count,
                  const std::vector<LabeledEdge>& edges, std::size_t dest,
                  std::optional<Value> origin = std::nullopt,
                  std::size_t max_iterations = 1000);

/// Brute-force optimal signatures by enumerating simple paths (exponential;
/// for validation on small graphs). Requires isotone algebras for the
/// Bellman–Ford result to match this ground truth.
SolveResult solve_by_path_enumeration(const RoutingAlgebra& algebra,
                                      std::size_t node_count,
                                      const std::vector<LabeledEdge>& edges,
                                      std::size_t dest,
                                      std::optional<Value> origin = std::nullopt);

}  // namespace fvn::algebra
