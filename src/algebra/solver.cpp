#include "algebra/solver.hpp"

#include <algorithm>
#include <functional>

namespace fvn::algebra {

SolveResult solve(const RoutingAlgebra& algebra, std::size_t node_count,
                  const std::vector<LabeledEdge>& edges, std::size_t dest,
                  std::optional<Value> origin, std::size_t max_iterations) {
  SolveResult result;
  const Value org = origin.value_or(algebra.origins.empty() ? algebra.phi
                                                            : algebra.origins.front());
  result.best.assign(node_count, algebra.phi);
  result.best[dest] = org;

  for (std::size_t iter = 1; iter <= max_iterations; ++iter) {
    result.iterations = iter;
    bool changed = false;
    // Synchronous round: every node re-selects from its neighbors' previous
    // signatures (destination keeps its origination).
    std::vector<Value> next = result.best;
    for (std::size_t n = 0; n < node_count; ++n) {
      if (n == dest) continue;
      Value chosen = algebra.phi;
      for (const auto& e : edges) {
        if (e.from != n) continue;
        const Value candidate = algebra.apply(e.label, result.best[e.to]);
        if (algebra.strictly_better(candidate, chosen)) chosen = candidate;
      }
      if (!(chosen == next[n])) {
        next[n] = chosen;
        changed = true;
        ++result.updates;
      }
    }
    result.best = std::move(next);
    if (!changed) {
      result.converged = true;
      return result;
    }
  }
  result.converged = false;
  return result;
}

SolveResult solve_by_path_enumeration(const RoutingAlgebra& algebra,
                                      std::size_t node_count,
                                      const std::vector<LabeledEdge>& edges,
                                      std::size_t dest, std::optional<Value> origin) {
  SolveResult result;
  const Value org = origin.value_or(algebra.origins.empty() ? algebra.phi
                                                            : algebra.origins.front());
  result.best.assign(node_count, algebra.phi);
  result.best[dest] = org;

  // Enumerate simple paths explicitly, then fold labels right-to-left
  // (path signature = l1 ⊕ (l2 ⊕ ( ... ⊕ origin))); ⊕ prepends, so the fold
  // happens after the whole path is known.
  std::vector<std::size_t> stack;
  std::function<void(std::size_t)> explore = [&](std::size_t node) {
    if (node == dest) {
      // Fold the recorded edges from the back: signature of the whole path.
      Value sig = org;
      for (std::size_t i = stack.size(); i >= 2; --i) {
        const std::size_t from = stack[i - 2];
        const std::size_t to = stack[i - 1];
        // Find the best label among parallel edges (any label yields a valid
        // path; enumerate all for optimality).
        Value best_ext = algebra.phi;
        for (const auto& e : edges) {
          if (e.from == from && e.to == to) {
            const Value ext = algebra.apply(e.label, sig);
            if (algebra.strictly_better(ext, best_ext)) best_ext = ext;
          }
        }
        sig = best_ext;
      }
      const std::size_t src = stack.front();
      if (algebra.strictly_better(sig, result.best[src])) result.best[src] = sig;
      return;
    }
    for (const auto& e : edges) {
      if (e.from != node) continue;
      if (std::find(stack.begin(), stack.end(), e.to) != stack.end()) continue;
      stack.push_back(e.to);
      explore(e.to);
      stack.pop_back();
    }
  };
  for (std::size_t n = 0; n < node_count; ++n) {
    if (n == dest) continue;
    stack.assign(1, n);
    explore(n);
  }
  result.converged = true;
  result.iterations = 1;
  return result;
}

}  // namespace fvn::algebra
