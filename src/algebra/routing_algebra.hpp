// Metarouting (§3.3): abstract routing algebras A = ⟨Σ, ⪯, L, ⊕, O, φ⟩, the
// four axioms (maximality, absorption, monotonicity, isotonicity), base
// algebras, and composition operators (notably the lexical product used by
// the paper's BGPSystem = lexProduct[LP, RC]).
//
// The FVN analogue of PVS theory interpretation: instantiating an algebra
// generates proof obligations (the axioms); `discharge()` settles them
// automatically by exhaustive checking over the algebra's finite carrier
// samples — the role played by PVS's typechecker + proof engine in §3.3.2.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ndlog/value.hpp"

namespace fvn::algebra {

using ndlog::Value;

/// An abstract routing algebra with finite carrier samples for automatic
/// obligation discharge. Signatures and labels are NDlog Values so composed
/// algebras can build tuples (lists) of components.
struct RoutingAlgebra {
  std::string name;

  /// Finite sample of Σ (must contain phi and the origins).
  std::vector<Value> signatures;
  /// Finite sample of L.
  std::vector<Value> labels;
  /// φ — the prohibited path (least preferred, absorbing).
  Value phi;
  /// O ⊆ Σ — origination signatures.
  std::vector<Value> origins;

  /// ⪯ : preference; leq(a,b) means a is at least as preferred as b
  /// (the routing protocol selects ⪯-minimal signatures).
  std::function<bool(const Value&, const Value&)> leq;
  /// ⊕ : L × Σ → Σ — label application (path extension).
  std::function<Value(const Value&, const Value&)> apply;

  bool strictly_better(const Value& a, const Value& b) const {
    return leq(a, b) && !leq(b, a);
  }
  bool equivalent(const Value& a, const Value& b) const {
    return leq(a, b) && leq(b, a);
  }
};

/// Result of discharging one obligation.
struct Obligation {
  std::string name;
  bool holds = true;
  std::size_t checks = 0;
  std::string counterexample;  // empty when holds
};

/// The axiom-discharge report for an algebra (the §3.3.2 proof obligations).
struct DischargeReport {
  std::string algebra;
  Obligation totality;        // ⪯ is a total preorder on Σ (pre-condition)
  Obligation maximality;      // ∀s: s ⪯ φ  (φ is least preferred)
  Obligation absorption;      // ∀l: l ⊕ φ = φ
  Obligation monotonicity;    // ∀l,s: s ⪯ l⊕s
  Obligation strict_monotonicity;  // ∀l,s≠φ: s ≺ l⊕s
  Obligation isotonicity;     // ∀l,a,b: a ⪯ b ⇒ l⊕a ⪯ l⊕b
  std::size_t total_checks = 0;
  double elapsed_seconds = 0.0;

  /// The metarouting convergence conditions: monotonicity + isotonicity.
  bool convergent() const { return monotonicity.holds && isotonicity.holds; }
  /// All four paper axioms (strictness is reported separately).
  bool well_formed() const {
    return totality.holds && maximality.holds && absorption.holds;
  }
  std::string to_string() const;
};

/// Exhaustively discharge all obligations over the algebra's samples.
DischargeReport discharge(const RoutingAlgebra& algebra);

// ---------------------------------------------------------------------------
// Base algebras (the metarouting building blocks of §3.3.1)
// ---------------------------------------------------------------------------

/// addA: additive metric (shortest-path). Smaller is better; φ = +∞ (an
/// integer sentinel); labels are positive costs. Strictly monotone, isotone.
RoutingAlgebra add_algebra(std::int64_t max_metric = 20, std::int64_t max_label = 5);

/// hopA: addA restricted to unit labels (hop count).
RoutingAlgebra hop_algebra(std::int64_t max_metric = 12);

/// lpA: local preference as in the paper's LP snippet — labelApply(l,s) = l,
/// prefRel(s1,s2) = s1 <= s2. NOT monotone (the label may be preferred to the
/// signature it replaces): the discharge report documents exactly that.
RoutingAlgebra lp_algebra(std::int64_t levels = 5);

/// bwA: bottleneck bandwidth. Larger is better; ⊕ = min(label, sig);
/// φ = 0. Monotone (non-strictly), isotone.
RoutingAlgebra bandwidth_algebra(std::int64_t max_bw = 10);

/// relA: link reliability in {0, 0.1, ..., 1.0}. Larger is better;
/// ⊕ = l * s; φ = 0. Monotone (non-strictly), isotone.
RoutingAlgebra reliability_algebra();

// ---------------------------------------------------------------------------
// Composition operators
// ---------------------------------------------------------------------------

/// Lexical product A × B: signatures are pairs (2-element lists), preference
/// compares the A component first; φ propagates from either side. This is
/// the paper's `lexProduct` (BGPSystem = lexProduct[LP, RC]).
RoutingAlgebra lex_product(const RoutingAlgebra& a, const RoutingAlgebra& b);

/// Reverse preference (unary composition): same carrier, ⪯ flipped,
/// φ becomes the most preferred element's dual — callers provide a new phi.
RoutingAlgebra reverse_preference(const RoutingAlgebra& a, Value new_phi);

/// Direct (componentwise) product: prefer (a1,b1) over (a2,b2) only when both
/// components agree. The induced preference is a *partial* order in general —
/// the discharge machinery reports the totality failure, which is exactly why
/// metarouting composes with the lexical product instead.
RoutingAlgebra direct_product(const RoutingAlgebra& a, const RoutingAlgebra& b);

/// The paper's BGPSystem: lexProduct[LP, RC] with RC = addA (route cost).
RoutingAlgebra bgp_system();

}  // namespace fvn::algebra
