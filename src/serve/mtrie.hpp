// fvn::serve mtrie — longest-prefix-match route tables (DESIGN.md §17).
//
// Three structures share the (prefix, len) key space:
//
//   Mtrie        the writer's *shadow* table: a pointer-based binary trie on
//                32-bit keys, one bit per level from the MSB down. Mutable,
//                single-writer; this is where install/retract deltas land
//                between publishes.
//   FrozenTrie   the immutable flat-array form built from a shadow at
//                publish time: nodes and entries in two contiguous vectors,
//                rows in one stride-RowWidth vector. Readers walk this —
//                no pointers to chase across allocations, nothing to tear.
//   LinearRoutes the reference oracle: an unsorted (key, row) list whose
//                lookup scans every entry for the longest matching prefix.
//                The differential fuzz suite holds the tries to this
//                semantics (exactness mirrors the NFOS mtrie bar: LPM must
//                be *exact*, not approximate).
//
// Keys are normalized on entry: bits below the prefix length are masked off,
// so link(… 10.0.0.7/8 …) and 10.0.0.0/8 name the same route slot. A key
// with len 0 is the default route. Every entry holds a duplicate-free sorted
// set of fixed-width rows (the projected columns of the served predicate):
// route identity is (key, row), so two equal-cost paths to one destination
// coexist and retract independently.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "serve/intern.hpp"

namespace fvn::serve {

/// A route key: `len` leading bits of `prefix` (len in 0..32; 32 = host
/// route, 0 = default route). Construction masks the don't-care bits.
struct Key {
  std::uint32_t prefix = 0;
  std::uint8_t len = 32;

  static constexpr std::uint32_t mask_of(std::uint8_t len) noexcept {
    return len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
  }
  static Key make(std::uint32_t prefix, std::uint8_t len) noexcept {
    if (len > 32) len = 32;
    return Key{prefix & mask_of(len), len};
  }
  bool matches(std::uint32_t addr) const noexcept {
    return (addr & mask_of(len)) == prefix;
  }

  friend bool operator==(const Key&, const Key&) = default;
  friend auto operator<=>(const Key&, const Key&) = default;
};

/// One projected route row (fixed width per plane: the spec's value columns).
using Row = std::vector<EncodedVal>;

/// Mutable single-writer shadow trie.
class Mtrie {
 public:
  struct Match {
    Key key;
    const std::vector<Row>* rows = nullptr;  ///< sorted, duplicate-free
  };

  /// Add `row` under `key` (normalizing the key). False if the identical
  /// (key, row) was already present.
  bool insert(Key key, Row row);
  /// Remove the exact (key, row). False if absent. Empty entries are pruned
  /// so lookups never report a route-less prefix.
  bool remove(Key key, const Row& row);

  /// Longest-prefix match. nullopt when no prefix of `addr` has an entry.
  std::optional<Match> lookup(std::uint32_t addr) const;
  /// Exact entry for a normalized key (null when absent).
  const std::vector<Row>* exact(Key key) const;

  std::size_t entries() const noexcept { return entries_; }  ///< occupied keys
  std::size_t routes() const noexcept { return routes_; }    ///< (key,row) pairs

  /// Deterministic walk in key order (prefix-major, shorter lens first).
  void for_each(const std::function<void(Key, const Row&)>& fn) const;

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    std::vector<Row> rows;  ///< non-empty iff this depth/path is an entry
    bool occupied = false;
  };

  Node* descend(Key key, bool create);
  static void walk(const Node& node, Key key,
                   const std::function<void(Key, const Row&)>& fn);

  Node root_;
  std::size_t entries_ = 0;
  std::size_t routes_ = 0;
};

/// Immutable flat-array trie built from a shadow at publish time.
class FrozenTrie {
 public:
  FrozenTrie() = default;
  explicit FrozenTrie(const Mtrie& shadow);

  struct Match {
    Key key;
    const Row* rows = nullptr;  ///< `count` sorted rows
    std::size_t count = 0;
  };

  /// Longest-prefix match; nullopt on miss. Wait-free: a bounded walk over
  /// immutable arrays.
  std::optional<Match> lookup(std::uint32_t addr) const;

  std::size_t entries() const noexcept { return entries_.size(); }
  std::size_t routes() const noexcept { return rows_.size(); }

  void for_each(const std::function<void(Key, const Row&)>& fn) const;

  /// FNV-1a over the sorted (key, row) content — the torn-read tripwire the
  /// churn tests and bench readers recompute against Snapshot::checksum.
  std::uint64_t checksum() const noexcept;

 private:
  struct FNode {
    std::int32_t child[2] = {-1, -1};
    std::int32_t entry = -1;  ///< index into entries_, -1 = none
  };
  struct FEntry {
    Key key;
    std::uint32_t row_begin = 0;
    std::uint32_t row_count = 0;
  };

  /// Index of the node at `key`'s bit path, creating the path (indices stay
  /// valid across growth — children are indices, not pointers).
  std::int32_t ensure_path(Key key);

  std::vector<FNode> nodes_;    ///< nodes_[0] is the root (when non-empty)
  std::vector<FEntry> entries_;
  std::vector<Row> rows_;
};

/// Reference oracle: linear scan for the longest matching prefix.
class LinearRoutes {
 public:
  bool insert(Key key, Row row);
  bool remove(Key key, const Row& row);
  std::optional<Mtrie::Match> lookup(std::uint32_t addr) const;
  std::size_t routes() const noexcept;

 private:
  struct Slot {
    Key key;
    std::vector<Row> rows;  ///< kept sorted, mirroring Mtrie entries
  };
  std::vector<Slot> slots_;
};

}  // namespace fvn::serve
