#include "serve/snapshot.hpp"

#include <algorithm>

namespace fvn::serve {

EpochPublisher::EpochPublisher() {
  // Install an empty epoch-0 snapshot so acquire() always yields a snapshot:
  // readers that start before the first publish see "no routes", not null.
  auto initial = std::make_unique<Snapshot>();
  initial->names = std::make_shared<Interner::Table>();
  current_.store(initial.release(), std::memory_order_release);
}

EpochPublisher::~EpochPublisher() {
  // Caller contract: every reader has left its read section by now.
  for (const auto& r : retired_) delete r.snapshot;
  delete current_.load(std::memory_order_acquire);
}

EpochPublisher::ReaderSlot* EpochPublisher::register_reader() {
  std::lock_guard lock(readers_mu_);
  readers_.push_back(std::make_unique<ReaderSlot>());
  return readers_.back().get();
}

void EpochPublisher::publish(std::unique_ptr<const Snapshot> snapshot) {
  const Snapshot* old =
      current_.exchange(snapshot.release(), std::memory_order_seq_cst);
  // The epoch assigned to the retirement is the value *after* this bump; any
  // reader that can still hold `old` announced strictly less (see header).
  const std::uint64_t retire_epoch =
      epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  retired_.push_back(Retired{old, retire_epoch});
  ++published_;
  reclaim();
}

void EpochPublisher::reclaim() {
  std::uint64_t min_active = kIdle;
  {
    std::lock_guard lock(readers_mu_);
    for (const auto& slot : readers_) {
      min_active = std::min(min_active,
                            slot->announced.load(std::memory_order_seq_cst));
    }
  }
  auto it = std::remove_if(retired_.begin(), retired_.end(),
                           [&](const Retired& r) {
                             if (r.epoch > min_active) return false;
                             delete r.snapshot;
                             return true;
                           });
  reclaimed_ += static_cast<std::uint64_t>(retired_.end() - it);
  retired_.erase(it, retired_.end());
}

std::uint64_t EpochPublisher::total_lookups() const {
  std::uint64_t total = 0;
  std::lock_guard lock(readers_mu_);
  for (const auto& slot : readers_) {
    total += slot->lookups.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace fvn::serve
