#include "serve/intern.hpp"

#include <bit>

namespace fvn::serve {

Interner::Id Interner::intern(const std::string& text) {
  auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  const Id id = static_cast<Id>(texts_.size());
  texts_.push_back(text);
  ids_.emplace(text, id);
  cache_.reset();  // the next snapshot() must see the new entry
  return id;
}

std::shared_ptr<const Interner::Table> Interner::snapshot() {
  if (!cache_) {
    auto table = std::make_shared<Table>();
    table->texts = texts_;
    table->ids = ids_;
    cache_ = std::move(table);
  }
  return cache_;
}

EncodedVal encode_value(const ndlog::Value& value, Interner& interner) {
  using ndlog::ValueKind;
  EncodedVal out;
  switch (value.kind()) {
    case ValueKind::Nil:
      out.tag = EncodedVal::Tag::Nil;
      break;
    case ValueKind::Bool:
      out.tag = EncodedVal::Tag::Bool;
      out.bits = value.as_bool() ? 1 : 0;
      break;
    case ValueKind::Int:
      out.tag = EncodedVal::Tag::Int;
      out.bits = static_cast<std::uint64_t>(value.as_int());
      break;
    case ValueKind::Double:
      out.tag = EncodedVal::Tag::Double;
      out.bits = std::bit_cast<std::uint64_t>(value.as_double());
      break;
    case ValueKind::Str:
    case ValueKind::Addr:
      out.tag = EncodedVal::Tag::Text;
      out.bits = interner.intern(value.as_text());
      break;
    case ValueKind::List:
      out.tag = EncodedVal::Tag::Text;
      out.bits = interner.intern(value.to_string());
      break;
  }
  return out;
}

std::string decode_value(const EncodedVal& value, const Interner::Table& table) {
  switch (value.tag) {
    case EncodedVal::Tag::Nil:
      return "nil";
    case EncodedVal::Tag::Bool:
      return value.bits != 0 ? "true" : "false";
    case EncodedVal::Tag::Int:
      return std::to_string(static_cast<std::int64_t>(value.bits));
    case EncodedVal::Tag::Double:
      return std::to_string(std::bit_cast<double>(value.bits));
    case EncodedVal::Tag::Text:
      return table.text_of(static_cast<Interner::Id>(value.bits));
  }
  return "?";
}

}  // namespace fvn::serve
