// fvn::serve epoch snapshots — the publish/reclaim half of the serving plane
// (DESIGN.md §17.2).
//
// One logical writer installs deltas into shadow tries and periodically
// publishes an immutable Snapshot; M reader threads acquire the current
// snapshot and do lookups against it with *wait-free* read sections:
//
//   acquire:  e = epoch.load; slot.announce(e); s = current.load   (no loop)
//   release:  slot.announce(idle)
//
// Retired snapshots are reclaimed deferred, by the writer, under the
// invariant: a snapshot S retired at epoch r may be freed only when every
// active announcement is >= r (or no reader is active). Why that is safe: a
// reader holding S announced some e *before* loading `current`, and its load
// returned S only while S was still current — i.e. before the writer's
// exchange, which precedes the epoch increment that assigned r. So e < r for
// every reader that can possibly hold S, and an announcement >= r proves
// that reader entered after S was already replaced (it can only be holding a
// newer snapshot — pointers are unique allocations and never re-published).
// A reader that announces a stale epoch after sleeping is merely
// conservative: it delays reclamation, never unsafely admits it.
//
// Writer calls (publish, reclaim, stats harvest) are NOT thread-safe against
// each other — the serve Feed serializes them; reader registration takes a
// mutex but the read path itself touches only its own cache-line-padded slot
// and two shared atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/intern.hpp"
#include "serve/mtrie.hpp"

namespace fvn::serve {

/// An immutable published view of every node's route table. Readers access
/// it only through a Lease; everything reachable from here is frozen.
struct Snapshot {
  /// Publish ordinal (0 = the empty snapshot installed at construction).
  std::uint64_t epoch = 0;
  /// Monotonic count of applied deltas folded in — ties a snapshot back to a
  /// prefix of the tuple-event stream (the fixpoint-consistency witness).
  std::uint64_t version = 0;
  std::shared_ptr<const Interner::Table> names;
  /// Node id -> frozen table (null for interned texts that are not nodes).
  std::vector<std::shared_ptr<const FrozenTrie>> tables;
  std::size_t routes = 0;
  /// Mix of every table's content checksum — the torn-read tripwire readers
  /// recompute in the churn tests.
  std::uint64_t checksum = 0;

  const FrozenTrie* table(Interner::Id node) const noexcept {
    return node < tables.size() ? tables[node].get() : nullptr;
  }
};

/// Single-writer / multi-reader epoch-published pointer with deferred
/// reclamation.
class EpochPublisher {
 public:
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  /// Per-reader announcement slot. Padded: each reader thread spins on its
  /// own line; `lookups` is that reader's private tally, harvested (relaxed)
  /// by the writer for stats.
  struct alignas(64) ReaderSlot {
    std::atomic<std::uint64_t> announced{kIdle};
    std::atomic<std::uint64_t> lookups{0};
  };

  /// RAII read section: holds the snapshot alive until destruction.
  class Lease {
   public:
    Lease(const Snapshot* snapshot, ReaderSlot* slot) noexcept
        : snapshot_(snapshot), slot_(slot) {}
    Lease(Lease&& other) noexcept
        : snapshot_(other.snapshot_), slot_(other.slot_) {
      other.slot_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (slot_ != nullptr) {
        slot_->announced.store(kIdle, std::memory_order_release);
      }
    }

    const Snapshot& operator*() const noexcept { return *snapshot_; }
    const Snapshot* operator->() const noexcept { return snapshot_; }
    const Snapshot* get() const noexcept { return snapshot_; }

   private:
    const Snapshot* snapshot_;
    ReaderSlot* slot_;
  };

  EpochPublisher();
  ~EpochPublisher();
  EpochPublisher(const EpochPublisher&) = delete;
  EpochPublisher& operator=(const EpochPublisher&) = delete;

  /// Thread-safe; the returned slot stays valid for the publisher's lifetime.
  ReaderSlot* register_reader();

  /// Wait-free read-section entry (two loads + one store, no retry loop —
  /// see the header comment for why no loop is needed).
  Lease acquire(ReaderSlot* slot) const noexcept {
    const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    slot->announced.store(e, std::memory_order_seq_cst);
    return Lease(current_.load(std::memory_order_seq_cst), slot);
  }

  /// Writer only: install `snapshot` as current, retire the predecessor,
  /// reclaim every retired snapshot the invariant admits.
  void publish(std::unique_ptr<const Snapshot> snapshot);

  /// Writer-side peek at the latest published snapshot (no lease needed —
  /// the writer is the only thread that can retire it).
  const Snapshot& current() const noexcept {
    return *current_.load(std::memory_order_acquire);
  }

  std::uint64_t published() const noexcept { return published_; }
  std::uint64_t reclaimed() const noexcept { return reclaimed_; }
  std::size_t retired_live() const noexcept { return retired_.size(); }
  /// Sum of every registered reader's lookup tally (relaxed harvest).
  std::uint64_t total_lookups() const;

 private:
  void reclaim();

  std::atomic<const Snapshot*> current_{nullptr};
  std::atomic<std::uint64_t> epoch_{1};

  mutable std::mutex readers_mu_;
  std::vector<std::unique_ptr<ReaderSlot>> readers_;

  struct Retired {
    const Snapshot* snapshot = nullptr;
    std::uint64_t epoch = 0;  ///< epoch value *after* the retiring publish
  };
  std::vector<Retired> retired_;  ///< writer-only
  std::uint64_t published_ = 0;
  std::uint64_t reclaimed_ = 0;
};

}  // namespace fvn::serve
