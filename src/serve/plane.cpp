#include "serve/plane.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <sstream>

namespace fvn::serve {

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(text);
  while (std::getline(in, part, sep)) parts.push_back(part);
  return parts;
}

/// Parse an unsigned decimal address; nullopt when `text` is not all digits.
std::optional<std::uint32_t> parse_addr(const std::string& text) {
  if (text.empty()) return std::nullopt;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return std::nullopt;
  return static_cast<std::uint32_t>(v);
}

}  // namespace

// ---------------------------------------------------------------------------
// ServeSpec
// ---------------------------------------------------------------------------

ServeSpec ServeSpec::parse(const std::string& text,
                           const ndlog::Catalog& catalog) {
  const auto colon = text.find(':');
  const std::string pred = text.substr(0, colon);
  if (pred.empty()) throw ServeError("serve spec: empty predicate name");
  if (!catalog.contains(pred)) {
    throw ServeError("serve spec: predicate '" + pred +
                     "' is not declared by the program");
  }
  const ndlog::PredicateInfo& info = catalog.info(pred);

  // The roles apply to the non-location columns in declaration order; the
  // location specifier is the serving node and never part of a route.
  std::vector<std::size_t> cols;
  for (std::size_t i = 0; i < info.arity; ++i) {
    if (i != info.loc_index) cols.push_back(i);
  }
  if (cols.empty()) {
    throw ServeError("serve spec: predicate '" + pred +
                     "' has no non-location columns to serve");
  }

  ServeSpec spec;
  spec.predicate = pred;
  if (colon == std::string::npos) {
    // Default mapping: first non-location column keys the trie, the rest are
    // unlabeled payload.
    spec.dst_col = cols[0];
    for (std::size_t j = 1; j < cols.size(); ++j) {
      spec.value_cols.push_back(cols[j]);
      spec.labels.push_back("col" + std::to_string(cols[j]));
    }
    return spec;
  }

  const std::vector<std::string> roles = split(text.substr(colon + 1), ',');
  if (roles.size() != cols.size()) {
    throw ServeError("serve spec: '" + pred + "' has " +
                     std::to_string(cols.size()) +
                     " non-location columns but the spec names " +
                     std::to_string(roles.size()));
  }
  bool have_dst = false;
  for (std::size_t j = 0; j < roles.size(); ++j) {
    const std::string& role = roles[j];
    const std::size_t col = cols[j];
    if (role == "dst") {
      if (have_dst) throw ServeError("serve spec: duplicate 'dst' role");
      spec.dst_col = col;
      have_dst = true;
    } else if (role == "len") {
      if (spec.len_col) throw ServeError("serve spec: duplicate 'len' role");
      spec.len_col = col;
    } else if (role == "_" || role == "skip") {
      continue;
    } else if (role.empty()) {
      throw ServeError("serve spec: empty column role (use '_' to skip)");
    } else {
      spec.value_cols.push_back(col);
      spec.labels.push_back(role);
    }
  }
  if (!have_dst) {
    throw ServeError("serve spec: no 'dst' role — one column must key the trie");
  }
  return spec;
}

// ---------------------------------------------------------------------------
// ServePlane — writer side
// ---------------------------------------------------------------------------

ServePlane::ServePlane(ServeSpec spec)
    : ServePlane(std::move(spec), Options()) {}

ServePlane::ServePlane(ServeSpec spec, Options options)
    : spec_(std::move(spec)), options_(options) {}

ServePlane::NodeTable& ServePlane::table_for(Interner::Id node) {
  if (tables_.size() <= node) tables_.resize(node + 1);
  if (!tables_[node]) tables_[node] = std::make_unique<NodeTable>();
  return *tables_[node];
}

std::uint32_t ServePlane::key_bits_of(const ndlog::Value& dst) {
  using ndlog::ValueKind;
  switch (dst.kind()) {
    case ValueKind::Int:
      return static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(dst.as_int()));
    case ValueKind::Str:
    case ValueKind::Addr:
      return interner_.intern(dst.as_text());
    default:
      return interner_.intern(dst.to_string());
  }
}

bool ServePlane::apply(std::string_view kind, const std::string& node,
                       const ndlog::Tuple& tuple) {
  if (tuple.predicate() != spec_.predicate) return false;
  // Defensive: the spec was validated against the catalog, but a malformed
  // runtime tuple must not crash the serving plane.
  std::size_t needed = spec_.dst_col;
  if (spec_.len_col) needed = std::max(needed, *spec_.len_col);
  for (std::size_t col : spec_.value_cols) needed = std::max(needed, col);
  if (tuple.arity() <= needed) return false;

  const Interner::Id node_id = interner_.intern(node);
  const std::uint32_t bits = key_bits_of(tuple.at(spec_.dst_col));
  std::uint8_t len = 32;
  if (spec_.len_col) {
    const ndlog::Value& lv = tuple.at(*spec_.len_col);
    if (lv.kind() != ndlog::ValueKind::Int) return false;
    const std::int64_t raw = lv.as_int();
    len = raw <= 0 ? std::uint8_t{0}
                   : static_cast<std::uint8_t>(std::min<std::int64_t>(raw, 32));
  }
  const Key key = Key::make(bits, len);

  Row row;
  row.reserve(spec_.value_cols.size());
  for (std::size_t col : spec_.value_cols) {
    row.push_back(encode_value(tuple.at(col), interner_));
  }

  NodeTable& table = table_for(node_id);
  bool changed = false;
  if (kind == "install") {
    changed = table.shadow.insert(key, std::move(row));
    if (changed) ++installs_;
  } else if (kind == "retract" || kind == "expire") {
    changed = table.shadow.remove(key, row);
    if (changed) ++removes_;
  }
  if (changed) {
    table.dirty = true;
    any_dirty_ = true;
  }
  return changed;
}

void ServePlane::publish(bool force) {
  if (!any_dirty_ && !force) return;
  const auto start = std::chrono::steady_clock::now();

  auto snap = std::make_unique<Snapshot>();
  snap->epoch = publisher_.published() + 1;
  snap->version = installs_ + removes_;
  snap->names = interner_.snapshot();
  snap->tables.resize(tables_.size());
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    NodeTable* table = tables_[i].get();
    if (table == nullptr) continue;
    if (table->dirty || !table->frozen) {
      // Only re-freeze what changed; clean nodes share their FrozenTrie with
      // every snapshot published since they last moved.
      table->frozen = std::make_shared<FrozenTrie>(table->shadow);
      table->frozen_checksum = table->frozen->checksum();
      table->dirty = false;
    }
    snap->tables[i] = table->frozen;
    snap->routes += table->frozen->routes();
    snap->checksum += (static_cast<std::uint64_t>(i) + 1) * table->frozen_checksum;
  }
  any_dirty_ = false;
  publisher_.publish(std::move(snap));

  const auto elapsed = std::chrono::steady_clock::now() - start;
  publish_us_.push_back(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()));
}

/// Recompute a snapshot's checksum the way publish() built it — the churn
/// tests call this from reader threads to prove no lookup ever observes a
/// torn table set.
std::uint64_t recompute_checksum(const Snapshot& snapshot) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < snapshot.tables.size(); ++i) {
    if (!snapshot.tables[i]) continue;
    sum += (static_cast<std::uint64_t>(i) + 1) * snapshot.tables[i]->checksum();
  }
  return sum;
}

// ---------------------------------------------------------------------------
// ServePlane — stats / rendering
// ---------------------------------------------------------------------------

namespace {

std::uint64_t percentile(std::vector<std::uint64_t> samples, double p) {
  if (samples.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(rank),
                   samples.end());
  return samples[rank];
}

}  // namespace

ServePlane::Stats ServePlane::stats() const {
  Stats out;
  out.installs = installs_;
  out.removes = removes_;
  out.applied = installs_ + removes_;
  out.epochs_published = publisher_.published();
  out.snapshots_reclaimed = publisher_.reclaimed();
  out.retired_live = publisher_.retired_live();
  out.routes = publisher_.current().routes;
  out.lookups = publisher_.total_lookups();
  out.publish_p50_us = percentile(publish_us_, 0.50);
  out.publish_p99_us = percentile(publish_us_, 0.99);
  return out;
}

void ServePlane::flush_metrics() {
  if (options_.metrics == nullptr) return;
  obs::Registry& reg = *options_.metrics;
  const Stats s = stats();
  reg.counter("serve/installs").add(s.installs);
  reg.counter("serve/removes").add(s.removes);
  reg.counter("serve/epochs").add(s.epochs_published);
  reg.counter("serve/reclaimed").add(s.snapshots_reclaimed);
  reg.counter("serve/routes").add(s.routes);
  reg.counter("serve/lookups").add(s.lookups);
  obs::Histogram& h = reg.histogram("serve/publish_us");
  for (std::uint64_t us : publish_us_) h.observe(us);
}

std::string ServePlane::query(const std::string& node,
                              const std::string& dst) const {
  const Snapshot& snap = publisher_.current();
  std::ostringstream out;

  const auto node_id = snap.names->find(node);
  std::optional<std::uint32_t> addr = parse_addr(dst);
  bool text_keyed = false;
  if (!addr) {
    if (const auto dst_id = snap.names->find(dst)) {
      addr = *dst_id;
      text_keyed = true;
    }
  }
  const FrozenTrie* table =
      node_id && addr ? snap.table(*node_id) : nullptr;
  std::optional<FrozenTrie::Match> match =
      table != nullptr ? table->lookup(*addr) : std::nullopt;
  if (!match) {
    out << "no-route epoch=" << snap.epoch;
    return out.str();
  }

  if (text_keyed && match->key.len == 32) {
    out << snap.names->text_of(match->key.prefix);
  } else {
    out << match->key.prefix << "/" << static_cast<int>(match->key.len);
  }
  out << " epoch=" << snap.epoch << " rows=[";
  for (std::size_t r = 0; r < match->count; ++r) {
    if (r != 0) out << "; ";
    const Row& row = match->rows[r];
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ",";
      if (c < spec_.labels.size()) out << spec_.labels[c] << "=";
      out << decode_value(row[c], *snap.names);
    }
  }
  out << "]";
  return out.str();
}

// ---------------------------------------------------------------------------
// Feed
// ---------------------------------------------------------------------------

Feed::Feed(ServePlane& plane) : Feed(plane, Options()) {}

Feed::Feed(ServePlane& plane, Options options)
    : plane_(&plane), options_(options) {}

std::function<void(std::string_view, const std::string&, const ndlog::Tuple&,
                   double)>
Feed::hook() {
  return [this](std::string_view kind, const std::string& node,
                const ndlog::Tuple& tuple, double now) {
    on_event(kind, node, tuple, now);
  };
}

void Feed::on_event(std::string_view kind, const std::string& node,
                    const ndlog::Tuple& tuple, double now) {
  std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
  if (options_.thread_safe) lock.lock();
  // Publish *before* applying an event from a later virtual time: everything
  // seen so far is a completed delta round, so the snapshot is a consistent
  // cut of the fixpoint computation.
  if (options_.publish_on_time_advance && seen_any_ && now > last_now_) {
    plane_->publish();
  }
  seen_any_ = true;
  if (now > last_now_) last_now_ = now;
  if (plane_->apply(kind, node, tuple) && options_.publish_every != 0 &&
      ++since_publish_ >= options_.publish_every) {
    plane_->publish();
    since_publish_ = 0;
  }
}

void Feed::finish() {
  std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
  if (options_.thread_safe) lock.lock();
  plane_->publish(/*force=*/true);
}

}  // namespace fvn::serve
