// fvn::serve plane — the read-optimized route-serving half of a control
// plane (DESIGN.md §17): project a derived predicate of the live fixpoint
// into per-node longest-prefix-match tables and serve concurrent lookups
// from epoch-published snapshots while the engine churns.
//
// Wiring (both runtimes, one code path): the engine-agnostic tuple-event
// stream (SimOptions::tuple_events / ClusterOptions::tuple_events) drives a
// Feed, which applies install/retract/expire deltas to the plane's shadow
// tries and publishes snapshots at delta-round boundaries (virtual-time
// advance in the simulator, apply-count cadence in the threaded cluster,
// always once more at quiescence). Readers never see a half-applied round
// from the simulator — publishes happen strictly between rounds — and in
// the cluster every snapshot is a serialized prefix of the apply stream.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ndlog/catalog.hpp"
#include "ndlog/tuple.hpp"
#include "obs/metrics.hpp"
#include "serve/intern.hpp"
#include "serve/mtrie.hpp"
#include "serve/snapshot.hpp"

namespace fvn::serve {

/// A malformed serve spec or projection failure (unknown predicate, no dst
/// column, out-of-range column roles).
class ServeError : public std::runtime_error {
 public:
  explicit ServeError(const std::string& what) : std::runtime_error(what) {}
};

/// Which predicate to serve and what each column means. Text form:
///
///   bestPath                      first non-location column is dst,
///                                 the rest ride along unlabeled
///   bestPath:dst,nexthop,cost     one role per non-location column, in
///                                 order: `dst` keys the trie (required,
///                                 exactly once); `len` is a prefix-length
///                                 column (ints 0..32); `_` drops a column;
///                                 anything else labels a payload column
///
/// Destination keying: Int dst values use their low 32 bits as the prefix
/// (with `len`, real LPM); Addr/Str dst values key by interned id as /32
/// host routes — exact-match as the degenerate LPM, which is what serving
/// `bestPath(@S,D,...)` route tables wants.
struct ServeSpec {
  std::string predicate;
  std::size_t dst_col = 1;                ///< absolute index into values()
  std::optional<std::size_t> len_col;     ///< absolute index, Int 0..32
  std::vector<std::size_t> value_cols;    ///< absolute indices, in role order
  std::vector<std::string> labels;        ///< parallel to value_cols

  /// Parse `text` and resolve/validate against the program's catalog.
  /// Throws ServeError on unknown predicate, role/arity mismatch, missing
  /// or duplicate dst.
  static ServeSpec parse(const std::string& text, const ndlog::Catalog& catalog);
};

/// One LPM answer. Row pointers live inside the leased snapshot: valid only
/// while the Lease that produced them is alive.
struct LookupResult {
  bool hit = false;
  Key key;
  const Row* rows = nullptr;
  std::size_t count = 0;
  std::uint64_t epoch = 0;
};

/// The serving plane: single logical writer (apply/publish via Feed), many
/// registered readers.
class ServePlane {
 public:
  struct Options {
    /// Flushed into this registry by flush_metrics() (not live — obs is not
    /// thread-safe and the readers are not obs's problem).
    obs::Registry* metrics = nullptr;
  };

  explicit ServePlane(ServeSpec spec);
  ServePlane(ServeSpec spec, Options options);

  const ServeSpec& spec() const noexcept { return spec_; }

  // --- writer side (serialized by the Feed) --------------------------------

  /// Fold one tuple-event into the shadow tables. `kind` is "install",
  /// "retract" or "expire"; tuples of other predicates are ignored (one
  /// string compare). Returns true when the shadow actually changed.
  bool apply(std::string_view kind, const std::string& node,
             const ndlog::Tuple& tuple);

  /// Freeze dirty shadow tables and publish a new snapshot. No-ops (cheaply)
  /// when nothing changed since the last publish unless `force`.
  void publish(bool force = false);

  // --- reader side ---------------------------------------------------------

  /// A registered reader: owns an announcement slot. Register once per
  /// thread (thread-safe), then acquire()/lookup with no further locking.
  class Reader {
   public:
    /// Wait-free: pin the current snapshot for a batch of lookups.
    EpochPublisher::Lease acquire() const noexcept {
      return publisher_->acquire(slot_);
    }

    /// One lookup under `lease` (count it against this reader).
    LookupResult lookup(const EpochPublisher::Lease& lease, Interner::Id node,
                        std::uint32_t addr) const noexcept {
      slot_->lookups.fetch_add(1, std::memory_order_relaxed);
      LookupResult out;
      out.epoch = lease->epoch;
      const FrozenTrie* table = lease->table(node);
      if (table == nullptr) return out;
      if (auto match = table->lookup(addr)) {
        out.hit = true;
        out.key = match->key;
        out.rows = match->rows;
        out.count = match->count;
      }
      return out;
    }

   private:
    friend class ServePlane;
    Reader(const EpochPublisher* publisher, EpochPublisher::ReaderSlot* slot)
        : publisher_(publisher), slot_(slot) {}
    const EpochPublisher* publisher_;
    EpochPublisher::ReaderSlot* slot_;
  };

  /// Thread-safe; the Reader stays valid for the plane's lifetime.
  Reader register_reader() {
    return Reader(&publisher_, publisher_.register_reader());
  }

  // --- stats / obs ---------------------------------------------------------

  struct Stats {
    std::uint64_t installs = 0;
    std::uint64_t removes = 0;
    std::uint64_t applied = 0;           ///< installs + removes (version)
    std::uint64_t epochs_published = 0;  ///< excluding the initial empty one
    std::uint64_t snapshots_reclaimed = 0;
    std::size_t retired_live = 0;
    std::size_t routes = 0;              ///< in the latest snapshot
    std::uint64_t lookups = 0;           ///< summed over readers
    std::uint64_t publish_p50_us = 0;
    std::uint64_t publish_p99_us = 0;
  };
  Stats stats() const;

  /// Record the plane's counters + the serve/publish_us histogram into
  /// Options::metrics (single-threaded; call after the run).
  void flush_metrics();

  /// Writer-side view of the latest snapshot (tests, CLI rendering).
  const Snapshot& current() const noexcept { return publisher_.current(); }

  /// Render one lookup against the latest snapshot for single-threaded
  /// callers (the CLI query loop, goldens). `dst` is either an unsigned
  /// integer address or an interned text destination; the answer is a
  /// deterministic one-liner:
  ///   "<key>/len epoch=E rows=[a,b; c,d]"  or  "no-route epoch=E".
  std::string query(const std::string& node, const std::string& dst) const;

  /// Map a destination Value the way apply() would, so tests and the CLI
  /// key their queries identically to the install path.
  std::uint32_t key_bits_of(const ndlog::Value& dst);

 private:
  struct NodeTable {
    Mtrie shadow;
    std::shared_ptr<const FrozenTrie> frozen;  ///< last published freeze
    std::uint64_t frozen_checksum = 0;         ///< cached at freeze time
    bool dirty = false;
  };

  NodeTable& table_for(Interner::Id node);

  ServeSpec spec_;
  Options options_;
  Interner interner_;
  std::vector<std::unique_ptr<NodeTable>> tables_;  ///< by interned node id
  bool any_dirty_ = false;
  EpochPublisher publisher_;
  std::uint64_t installs_ = 0;
  std::uint64_t removes_ = 0;
  std::vector<std::uint64_t> publish_us_;  ///< per-publish latency samples
};

/// Recompute a snapshot's checksum exactly the way ServePlane::publish()
/// built it — the torn-read tripwire reader threads verify under churn.
std::uint64_t recompute_checksum(const Snapshot& snapshot);

/// Glue between a runtime's tuple-event stream and one ServePlane: applies
/// every event and decides when to publish.
class Feed {
 public:
  struct Options {
    /// Publish when the event timestamp advances past the last one seen —
    /// the simulator's delta-round boundary. (The threaded cluster stamps
    /// per-node clocks, so leave this off there.)
    bool publish_on_time_advance = true;
    /// Publish every N applied (changing) events; 0 = off. The cluster's
    /// cadence knob.
    std::size_t publish_every = 0;
    /// Serialize on_event() with a mutex: required when events arrive from
    /// concurrent node threads (fvn::net), pointless in the simulator.
    bool thread_safe = false;
  };

  explicit Feed(ServePlane& plane);
  Feed(ServePlane& plane, Options options);

  /// The hook both runtimes accept (SimOptions::tuple_events /
  /// ClusterOptions::tuple_events signature).
  std::function<void(std::string_view, const std::string&, const ndlog::Tuple&,
                     double)>
  hook();

  void on_event(std::string_view kind, const std::string& node,
                const ndlog::Tuple& tuple, double now);

  /// Final publish at quiescence (forced, so the fixpoint is always served).
  void finish();

 private:
  ServePlane* plane_;
  Options options_;
  std::mutex mu_;
  double last_now_ = 0.0;
  bool seen_any_ = false;
  std::size_t since_publish_ = 0;
};

}  // namespace fvn::serve
