// fvn::serve value interning — the address→id table the serving plane keys
// everything on (first slice of ROADMAP's "intern Values/addresses" item).
//
// The install hot path converts every projected ndlog::Value into an
// EncodedVal once: numeric kinds carry their payload inline, text-like kinds
// (Addr, Str, and the rendered form of List/other) carry a dense 32-bit
// Interner id. From then on trie keys and snapshot rows compare by id — no
// variant copies, no string compares, 16 bytes per attribute.
//
// Concurrency contract: intern() is writer-only (the serve plane has one
// logical writer). Readers never touch the mutable table; every published
// Snapshot carries an immutable shared_ptr<const Table> produced by
// snapshot(), rebuilt copy-on-write only when the table grew since the last
// publish. Addresses are few and appear once each, so the copies are rare
// and O(#addresses).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ndlog/value.hpp"

namespace fvn::serve {

/// Writer-side string interner with copy-on-write reader tables.
class Interner {
 public:
  using Id = std::uint32_t;

  /// Immutable two-way view published inside each Snapshot.
  struct Table {
    std::vector<std::string> texts;           ///< id -> text
    std::unordered_map<std::string, Id> ids;  ///< text -> id

    std::optional<Id> find(std::string_view text) const {
      auto it = ids.find(std::string(text));
      return it == ids.end() ? std::nullopt : std::optional<Id>(it->second);
    }
    const std::string& text_of(Id id) const { return texts.at(id); }
    std::size_t size() const noexcept { return texts.size(); }
  };

  /// Writer only: id of `text`, assigning the next dense id on first sight.
  Id intern(const std::string& text);

  /// Writer only: current id count (ids are 0..size()-1).
  std::size_t size() const noexcept { return texts_.size(); }

  /// Writer only: immutable copy of the current table, cached until the next
  /// intern() that actually grows it.
  std::shared_ptr<const Table> snapshot();

 private:
  std::unordered_map<std::string, Id> ids_;
  std::vector<std::string> texts_;
  std::shared_ptr<const Table> cache_;  ///< invalidated by growth
};

/// One projected attribute, encoded for id comparison. The tag keeps the
/// kind-major discipline of ndlog::Value ordering within one plane; `bits`
/// is the inline payload (Bool/Int/Double bit patterns) or an Interner id
/// (Text). Two EncodedVals from the same plane are equal iff the source
/// Values rendered equal.
struct EncodedVal {
  enum class Tag : std::uint8_t { Nil = 0, Bool, Int, Double, Text };
  Tag tag = Tag::Nil;
  std::uint64_t bits = 0;

  friend bool operator==(const EncodedVal&, const EncodedVal&) = default;
  friend auto operator<=>(const EncodedVal&, const EncodedVal&) = default;
};

/// Writer-side encoding: Addr/Str intern their payload, List (and any other
/// kind) interns its rendered text, numerics stay inline.
EncodedVal encode_value(const ndlog::Value& value, Interner& interner);

/// Reader-side rendering back to NDlog literal text via a published table.
std::string decode_value(const EncodedVal& value, const Interner::Table& table);

}  // namespace fvn::serve
