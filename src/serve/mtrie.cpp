#include "serve/mtrie.hpp"

#include <algorithm>

namespace fvn::serve {

namespace {

/// Bit `depth` of `addr`, MSB first (depth 0 = bit 31).
inline int bit_at(std::uint32_t addr, std::uint8_t depth) noexcept {
  return static_cast<int>((addr >> (31 - depth)) & 1u);
}

/// Sorted-insert into a duplicate-free row set. True if inserted.
bool sorted_insert(std::vector<Row>& rows, Row row) {
  auto it = std::lower_bound(rows.begin(), rows.end(), row);
  if (it != rows.end() && *it == row) return false;
  rows.insert(it, std::move(row));
  return true;
}

bool sorted_remove(std::vector<Row>& rows, const Row& row) {
  auto it = std::lower_bound(rows.begin(), rows.end(), row);
  if (it == rows.end() || !(*it == row)) return false;
  rows.erase(it);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Mtrie (mutable shadow)
// ---------------------------------------------------------------------------

Mtrie::Node* Mtrie::descend(Key key, bool create) {
  Node* node = &root_;
  for (std::uint8_t depth = 0; depth < key.len; ++depth) {
    auto& child = node->child[bit_at(key.prefix, depth)];
    if (!child) {
      if (!create) return nullptr;
      child = std::make_unique<Node>();
    }
    node = child.get();
  }
  return node;
}

bool Mtrie::insert(Key key, Row row) {
  key = Key::make(key.prefix, key.len);
  Node* node = descend(key, /*create=*/true);
  if (!node->occupied) {
    node->occupied = true;
    ++entries_;
  }
  if (!sorted_insert(node->rows, std::move(row))) return false;
  ++routes_;
  return true;
}

bool Mtrie::remove(Key key, const Row& row) {
  key = Key::make(key.prefix, key.len);
  // Track the descent so the dead tail can be pruned without a tree walk —
  // retracts ride the same churn hot path installs do.
  Node* path[33];
  int bits[32];
  Node* node = &root_;
  for (std::uint8_t depth = 0; depth < key.len; ++depth) {
    path[depth] = node;
    bits[depth] = bit_at(key.prefix, depth);
    node = node->child[bits[depth]].get();
    if (node == nullptr) return false;
  }
  if (!node->occupied) return false;
  if (!sorted_remove(node->rows, row)) return false;
  --routes_;
  if (node->rows.empty()) {
    node->occupied = false;
    --entries_;
    Node* cur = node;
    for (std::uint8_t d = key.len; d > 0 && !cur->occupied && !cur->child[0] &&
                                   !cur->child[1];
         --d) {
      path[d - 1]->child[bits[d - 1]].reset();
      cur = path[d - 1];
    }
  }
  return true;
}

std::optional<Mtrie::Match> Mtrie::lookup(std::uint32_t addr) const {
  const Node* node = &root_;
  std::optional<Match> best;
  std::uint8_t depth = 0;
  while (true) {
    if (node->occupied) {
      best = Match{Key::make(addr, depth), &node->rows};
    }
    if (depth == 32) break;
    const auto& child = node->child[bit_at(addr, depth)];
    if (!child) break;
    node = child.get();
    ++depth;
  }
  return best;
}

const std::vector<Row>* Mtrie::exact(Key key) const {
  key = Key::make(key.prefix, key.len);
  const Node* node = const_cast<Mtrie*>(this)->descend(key, /*create=*/false);
  return node != nullptr && node->occupied ? &node->rows : nullptr;
}

void Mtrie::walk(const Node& node, Key key,
                 const std::function<void(Key, const Row&)>& fn) {
  if (node.occupied) {
    for (const auto& row : node.rows) fn(key, row);
  }
  for (int bit = 0; bit < 2; ++bit) {
    if (!node.child[bit]) continue;
    Key child_key{key.prefix, static_cast<std::uint8_t>(key.len + 1)};
    if (bit == 1) child_key.prefix |= 1u << (31 - key.len);
    walk(*node.child[bit], child_key, fn);
  }
}

void Mtrie::for_each(const std::function<void(Key, const Row&)>& fn) const {
  walk(root_, Key{0, 0}, fn);
}

// ---------------------------------------------------------------------------
// FrozenTrie (immutable publish-time form)
// ---------------------------------------------------------------------------

std::int32_t FrozenTrie::ensure_path(Key key) {
  std::int32_t index = 0;
  for (std::uint8_t depth = 0; depth < key.len; ++depth) {
    const int bit = bit_at(key.prefix, depth);
    std::int32_t next = nodes_[static_cast<std::size_t>(index)].child[bit];
    if (next < 0) {
      next = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
      nodes_[static_cast<std::size_t>(index)].child[bit] = next;
    }
    index = next;
  }
  return index;
}

FrozenTrie::FrozenTrie(const Mtrie& shadow) {
  nodes_.emplace_back();  // root
  // for_each visits in key order with rows of one key consecutive, so each
  // new key opens exactly one entry.
  shadow.for_each([this](Key key, const Row& row) {
    if (entries_.empty() || !(entries_.back().key == key)) {
      const std::int32_t at = ensure_path(key);
      FEntry entry;
      entry.key = key;
      entry.row_begin = static_cast<std::uint32_t>(rows_.size());
      nodes_[static_cast<std::size_t>(at)].entry =
          static_cast<std::int32_t>(entries_.size());
      entries_.push_back(entry);
    }
    rows_.push_back(row);
    ++entries_.back().row_count;
  });
}

std::optional<FrozenTrie::Match> FrozenTrie::lookup(std::uint32_t addr) const {
  if (nodes_.empty()) return std::nullopt;
  std::int32_t best = -1;
  std::int32_t index = 0;
  std::uint8_t depth = 0;
  while (index >= 0) {
    const FNode& node = nodes_[static_cast<std::size_t>(index)];
    if (node.entry >= 0) best = node.entry;
    if (depth == 32) break;
    index = node.child[bit_at(addr, depth)];
    ++depth;
  }
  if (best < 0) return std::nullopt;
  const FEntry& entry = entries_[static_cast<std::size_t>(best)];
  return Match{entry.key, rows_.data() + entry.row_begin, entry.row_count};
}

void FrozenTrie::for_each(const std::function<void(Key, const Row&)>& fn) const {
  for (const auto& entry : entries_) {
    for (std::uint32_t i = 0; i < entry.row_count; ++i) {
      fn(entry.key, rows_[entry.row_begin + i]);
    }
  }
}

std::uint64_t FrozenTrie::checksum() const noexcept {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      h ^= (word >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& entry : entries_) {
    mix((std::uint64_t{entry.key.prefix} << 8) | entry.key.len);
    for (std::uint32_t i = 0; i < entry.row_count; ++i) {
      for (const auto& val : rows_[entry.row_begin + i]) {
        mix(static_cast<std::uint64_t>(val.tag));
        mix(val.bits);
      }
    }
  }
  return h;
}

// ---------------------------------------------------------------------------
// LinearRoutes (reference oracle)
// ---------------------------------------------------------------------------

bool LinearRoutes::insert(Key key, Row row) {
  key = Key::make(key.prefix, key.len);
  for (auto& slot : slots_) {
    if (slot.key == key) return sorted_insert(slot.rows, std::move(row));
  }
  slots_.push_back(Slot{key, {std::move(row)}});
  return true;
}

bool LinearRoutes::remove(Key key, const Row& row) {
  key = Key::make(key.prefix, key.len);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!(slots_[i].key == key)) continue;
    if (!sorted_remove(slots_[i].rows, row)) return false;
    if (slots_[i].rows.empty()) slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }
  return false;
}

std::optional<Mtrie::Match> LinearRoutes::lookup(std::uint32_t addr) const {
  const Slot* best = nullptr;
  for (const auto& slot : slots_) {
    if (!slot.key.matches(addr)) continue;
    if (best == nullptr || slot.key.len > best->key.len) best = &slot;
  }
  if (best == nullptr) return std::nullopt;
  return Mtrie::Match{best->key, &best->rows};
}

std::size_t LinearRoutes::routes() const noexcept {
  std::size_t n = 0;
  for (const auto& slot : slots_) n += slot.rows.size();
  return n;
}

}  // namespace fvn::serve
