#include "ltl/monitor.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "obs/json.hpp"

namespace fvn::ltl {

std::string_view to_string(TupleEvent::Kind kind) noexcept {
  switch (kind) {
    case TupleEvent::Kind::Install: return "install";
    case TupleEvent::Kind::Retract: return "retract";
    case TupleEvent::Kind::Expire: return "expire";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Monitor
// ---------------------------------------------------------------------------

Monitor::Monitor(const Property& property)
    : name_(property.name), formula_(property.formula->to_string()) {
  const NnfPtr nnf = to_nnf(property.formula, aps_, /*negated=*/false);
  buchi_ = build_buchi(nnf, aps_.aps.size());
  match_count_.assign(aps_.aps.size(), 0);

  // Initial letter: empty stores (no pattern matches), stable bits all true.
  Valuation v0 = 0;
  for (std::size_t i = 0; i < aps_.aps.size(); ++i) {
    if (aps_.aps[i].is_stable) v0 |= Valuation{1} << i;
  }
  for (std::size_t q : buchi_.initial) {
    if (buchi_.states[q].admits(v0)) subset_.push_back(q);
  }
  std::sort(subset_.begin(), subset_.end());
  if (subset_.empty()) violated_ = true;  // unsatisfiable from the start
}

Valuation Monitor::pattern_valuation() const {
  Valuation v = 0;
  for (std::size_t i = 0; i < aps_.aps.size(); ++i) {
    if (!aps_.aps[i].is_stable && match_count_[i] > 0) v |= Valuation{1} << i;
  }
  return v;
}

void Monitor::on_event(const TupleEvent& event) {
  ++events_;
  if (violated_) return;

  const std::int64_t delta = event.kind == TupleEvent::Kind::Install ? 1 : -1;
  for (std::size_t i = 0; i < aps_.aps.size(); ++i) {
    const ApSet::Ap& ap = aps_.aps[i];
    if (ap.is_stable) continue;
    if (ap.pattern.matches(event.tuple)) match_count_[i] += delta;
  }

  Valuation v = pattern_valuation();
  for (std::size_t i = 0; i < aps_.aps.size(); ++i) {
    const ApSet::Ap& ap = aps_.aps[i];
    // A relation is stable across this step iff the event did not touch it.
    if (ap.is_stable && ap.pred != event.tuple.predicate()) v |= Valuation{1} << i;
  }

  std::vector<char> live(buchi_.states.size(), 0);
  for (std::size_t q : subset_) {
    for (std::size_t q2 : buchi_.states[q].succs) {
      if (buchi_.states[q2].admits(v)) live[q2] = 1;
    }
  }
  subset_.clear();
  for (std::size_t q = 0; q < live.size(); ++q) {
    if (live[q]) subset_.push_back(q);
  }
  if (subset_.empty()) {
    violated_ = true;
    violation_event_ = events_;
  }
}

bool Monitor::finish() const {
  if (violated_) return false;

  // Stutter extension: the final valuation (current patterns, all relations
  // stable) repeats forever. Satisfied iff some current subset state can step
  // into the sub-automaton restricted to states admitting that valuation and
  // reach an accepting cycle inside it.
  Valuation v = pattern_valuation();
  for (std::size_t i = 0; i < aps_.aps.size(); ++i) {
    if (aps_.aps[i].is_stable) v |= Valuation{1} << i;
  }
  auto allowed = [&](std::size_t q) { return buchi_.states[q].admits(v); };

  // Frontier after reading the first stutter letter.
  std::vector<char> reach(buchi_.states.size(), 0);
  std::deque<std::size_t> frontier;
  for (std::size_t q : subset_) {
    for (std::size_t q2 : buchi_.states[q].succs) {
      if (allowed(q2) && !reach[q2]) {
        reach[q2] = 1;
        frontier.push_back(q2);
      }
    }
  }
  while (!frontier.empty()) {
    const std::size_t q = frontier.front();
    frontier.pop_front();
    for (std::size_t q2 : buchi_.states[q].succs) {
      if (allowed(q2) && !reach[q2]) {
        reach[q2] = 1;
        frontier.push_back(q2);
      }
    }
  }

  // Accepting cycle inside the restricted reachable set?
  for (std::size_t f = 0; f < buchi_.states.size(); ++f) {
    if (!reach[f] || !buchi_.states[f].accepting) continue;
    std::vector<char> seen(buchi_.states.size(), 0);
    std::deque<std::size_t> work;
    for (std::size_t q2 : buchi_.states[f].succs) {
      if (allowed(q2) && !seen[q2]) {
        seen[q2] = 1;
        work.push_back(q2);
      }
    }
    while (!work.empty()) {
      const std::size_t q = work.front();
      work.pop_front();
      if (q == f) return true;
      for (std::size_t q2 : buchi_.states[q].succs) {
        if (allowed(q2) && !seen[q2]) {
          seen[q2] = 1;
          work.push_back(q2);
        }
      }
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// MonitorSet
// ---------------------------------------------------------------------------

MonitorSet::MonitorSet(const Spec& spec) {
  monitors_.reserve(spec.properties.size());
  for (const auto& property : spec.properties) monitors_.emplace_back(property);
}

void MonitorSet::on_event(const TupleEvent& event) {
  ++events_;
  for (auto& m : monitors_) m.on_event(event);
}

std::vector<MonitorVerdict> MonitorSet::finish() const {
  std::vector<MonitorVerdict> out;
  out.reserve(monitors_.size());
  for (const auto& m : monitors_) {
    MonitorVerdict v;
    v.property = m.name();
    v.formula = m.formula();
    v.satisfied = m.finish();
    v.fired = m.violated();
    v.violation_event = m.violation_event();
    out.push_back(std::move(v));
  }
  return out;
}

bool MonitorSet::all_satisfied() const {
  for (const auto& m : monitors_) {
    if (!m.finish()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Event-stream decoding
// ---------------------------------------------------------------------------

std::vector<TupleEvent> events_from_trace(const std::vector<obs::TraceEvent>& events) {
  std::vector<TupleEvent> out;
  for (const auto& e : events) {
    if (e.phase != 'i' || e.cat != "tuple") continue;
    TupleEvent te;
    if (e.name.rfind("install ", 0) == 0) {
      te.kind = TupleEvent::Kind::Install;
    } else if (e.name.rfind("retract ", 0) == 0) {
      te.kind = TupleEvent::Kind::Retract;
    } else if (e.name.rfind("expire ", 0) == 0) {
      te.kind = TupleEvent::Kind::Expire;
    } else {
      continue;
    }
    auto doc = obs::json_parse(e.args_json);
    if (!doc || !doc->is_object()) continue;
    const obs::JsonValue* node = doc->find("node");
    const obs::JsonValue* tuple = doc->find("tuple");
    if (node == nullptr || tuple == nullptr) continue;
    te.node = node->string;
    try {
      te.tuple = ndlog::parse_fact(tuple->string);
    } catch (const ndlog::ParseError&) {
      continue;
    }
    te.ts_us = e.ts_us;
    out.push_back(std::move(te));
  }
  return out;
}

std::string render_verdicts(const std::vector<MonitorVerdict>& verdicts) {
  std::ostringstream os;
  for (const auto& v : verdicts) {
    os << "monitor " << v.property << ": " << v.formula << " — "
       << (v.satisfied ? "SATISFIED" : "VIOLATED");
    if (v.fired) os << " (fired at event " << v.violation_event << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace fvn::ltl
