#include "ltl/formula.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace fvn::ltl {

using ndlog::ParseError;
using ndlog::SourceLoc;
using ndlog::SourceSpan;
using ndlog::Value;

// ---------------------------------------------------------------------------
// Patterns
// ---------------------------------------------------------------------------

bool PatternArg::matches(const Value& v) const {
  if (wildcard) return true;
  if (value.is_addr()) {
    // Bare identifier constant: matches an Addr or a Str with the same text.
    return (v.is_addr() || v.is_str()) && v.as_text() == value.as_addr();
  }
  if (value.is_numeric() && v.is_numeric()) {
    return value.as_double() == v.as_double();
  }
  return value == v;
}

std::string PatternArg::to_string() const {
  return wildcard ? "_" : value.to_string();
}

bool Pattern::matches(const ndlog::Tuple& tuple) const {
  if (tuple.predicate() != predicate) return false;
  if (args.size() > tuple.arity()) return false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (!args[i].matches(tuple.at(i))) return false;
  }
  return true;
}

std::string Pattern::to_string() const {
  std::string out = predicate + "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out += ",";
    out += args[i].to_string();
  }
  return out + ")";
}

// ---------------------------------------------------------------------------
// Formula construction / rendering
// ---------------------------------------------------------------------------

std::string_view to_string(Op op) noexcept {
  switch (op) {
    case Op::True: return "true";
    case Op::False: return "false";
    case Op::Atom: return "atom";
    case Op::Stable: return "stable";
    case Op::Not: return "!";
    case Op::And: return "&&";
    case Op::Or: return "||";
    case Op::Implies: return "->";
    case Op::Next: return "X";
    case Op::Eventually: return "F";
    case Op::Always: return "G";
    case Op::Until: return "U";
    case Op::Release: return "R";
  }
  return "?";
}

FormulaPtr make_atom(Pattern pattern, SourceSpan span) {
  auto f = std::make_shared<Formula>();
  f->op = Op::Atom;
  f->pattern = std::move(pattern);
  f->span = span;
  return f;
}

FormulaPtr make_stable(std::string pred, SourceSpan span) {
  auto f = std::make_shared<Formula>();
  f->op = Op::Stable;
  f->pred = std::move(pred);
  f->span = span;
  return f;
}

FormulaPtr make_const(bool truth, SourceSpan span) {
  auto f = std::make_shared<Formula>();
  f->op = truth ? Op::True : Op::False;
  f->span = span;
  return f;
}

FormulaPtr make_unary(Op op, FormulaPtr operand, SourceSpan span) {
  auto f = std::make_shared<Formula>();
  f->op = op;
  f->lhs = std::move(operand);
  f->span = span;
  return f;
}

FormulaPtr make_binary(Op op, FormulaPtr lhs, FormulaPtr rhs, SourceSpan span) {
  auto f = std::make_shared<Formula>();
  f->op = op;
  f->lhs = std::move(lhs);
  f->rhs = std::move(rhs);
  f->span = span;
  return f;
}

std::string Formula::to_string() const {
  switch (op) {
    case Op::True: return "true";
    case Op::False: return "false";
    case Op::Atom: return pattern.to_string();
    case Op::Stable: return "stable(" + pred + ")";
    case Op::Not: return "!" + lhs->to_string();
    case Op::Next: return "X " + lhs->to_string();
    case Op::Eventually: return "F " + lhs->to_string();
    case Op::Always: return "G " + lhs->to_string();
    case Op::And:
    case Op::Or:
    case Op::Implies:
    case Op::Until:
    case Op::Release:
      return "(" + lhs->to_string() + " " + std::string(ltl::to_string(op)) + " " +
             rhs->to_string() + ")";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

namespace {

enum class TokKind : std::uint8_t {
  Ident,    // lowercase initial
  Var,      // uppercase initial or '_'
  Number,
  String,
  LParen,
  RParen,
  Comma,
  Period,
  Colon,
  At,
  Bang,
  AndAnd,
  OrOr,
  Arrow,
  End,
};

struct Tok {
  TokKind kind = TokKind::End;
  std::string text;
  double number = 0.0;
  bool number_is_int = true;
  std::int64_t int_value = 0;
  int line = 1;
  int column = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Tok> run() {
    std::vector<Tok> out;
    for (;;) {
      skip_ws_and_comments();
      Tok t;
      t.line = line_;
      t.column = column_;
      if (eof()) {
        t.kind = TokKind::End;
        out.push_back(t);
        return out;
      }
      const char c = peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (!eof() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                          peek() == '_')) {
          t.text += get();
        }
        t.kind = (std::isupper(static_cast<unsigned char>(t.text[0])) ||
                  t.text[0] == '_')
                     ? TokKind::Var
                     : TokKind::Ident;
        out.push_back(std::move(t));
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && std::isdigit(next_char()))) {
        lex_number(t);
        out.push_back(std::move(t));
        continue;
      }
      switch (c) {
        case '"': lex_string(t); break;
        case '(': get(); t.kind = TokKind::LParen; break;
        case ')': get(); t.kind = TokKind::RParen; break;
        case ',': get(); t.kind = TokKind::Comma; break;
        case '.': get(); t.kind = TokKind::Period; break;
        case ':': get(); t.kind = TokKind::Colon; break;
        case '@': get(); t.kind = TokKind::At; break;
        case '!': get(); t.kind = TokKind::Bang; break;
        case '&':
          get();
          if (eof() || peek() != '&') throw err("expected '&&'");
          get();
          t.kind = TokKind::AndAnd;
          break;
        case '|':
          get();
          if (eof() || peek() != '|') throw err("expected '||'");
          get();
          t.kind = TokKind::OrOr;
          break;
        case '-':
          get();
          if (eof() || peek() != '>') throw err("expected '->'");
          get();
          t.kind = TokKind::Arrow;
          break;
        default:
          throw err(std::string("unexpected character '") + c + "'");
      }
      out.push_back(std::move(t));
    }
  }

 private:
  bool eof() const { return pos_ >= src_.size(); }
  char peek() const { return src_[pos_]; }
  char next_char() const { return pos_ + 1 < src_.size() ? src_[pos_ + 1] : '\0'; }
  char get() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  ParseError err(const std::string& message) const {
    return ParseError("ltl: " + message, line_, column_);
  }

  void skip_ws_and_comments() {
    for (;;) {
      while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) get();
      if (!eof() && peek() == '/' && next_char() == '/') {
        while (!eof() && peek() != '\n') get();
        continue;
      }
      if (!eof() && peek() == '/' && next_char() == '*') {
        const int open_line = line_;
        const int open_col = column_;
        get();
        get();
        while (!(peek_is('*') && next_char() == '/')) {
          if (eof()) {
            throw ParseError("ltl: unterminated block comment", open_line, open_col);
          }
          get();
        }
        get();
        get();
        continue;
      }
      return;
    }
  }
  bool peek_is(char c) const { return !eof() && peek() == c; }

  void lex_number(Tok& t) {
    std::string text;
    if (peek() == '-') text += get();
    bool is_int = true;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.')) {
      // A '.' followed by a non-digit terminates the property instead.
      if (peek() == '.' && !std::isdigit(static_cast<unsigned char>(next_char()))) break;
      if (peek() == '.') is_int = false;
      text += get();
    }
    t.kind = TokKind::Number;
    t.number = std::stod(text);
    t.number_is_int = is_int;
    if (is_int) t.int_value = std::stoll(text);
  }

  void lex_string(Tok& t) {
    const int open_line = line_;
    const int open_col = column_;
    get();  // opening quote
    t.kind = TokKind::String;
    while (!eof() && peek() != '"') {
      char c = get();
      if (c == '\\' && !eof()) c = get();
      t.text += c;
    }
    if (eof()) throw ParseError("ltl: unterminated string", open_line, open_col);
    get();  // closing quote
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

// ---------------------------------------------------------------------------
// Parser (recursive descent; precedence ->  <  ||  <  &&  <  U/R  <  unary)
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Spec parse_spec(std::string name) {
    Spec spec;
    spec.name = std::move(name);
    while (peek().kind != TokKind::End) {
      Property prop;
      prop.span = span_of(peek());
      // Optional `name :` prefix (the name is a lowercase identifier that is
      // immediately followed by a colon; otherwise it starts a pattern).
      if (peek().kind == TokKind::Ident && peek(1).kind == TokKind::Colon) {
        prop.name = get().text;
        get();  // ':'
      } else {
        prop.name = "p" + std::to_string(spec.properties.size() + 1);
      }
      prop.formula = parse_formula();
      expect(TokKind::Period, "'.' after property");
      spec.properties.push_back(std::move(prop));
    }
    return spec;
  }

  FormulaPtr parse_single() {
    FormulaPtr f = parse_formula();
    if (peek().kind == TokKind::Period) get();
    expect(TokKind::End, "end of input");
    return f;
  }

 private:
  const Tok& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Tok& get() { return toks_[std::min(pos_++, toks_.size() - 1)]; }
  static SourceSpan span_of(const Tok& t) {
    return SourceSpan::token({t.line, t.column}, t.text.empty() ? 1 : t.text.size());
  }
  ParseError err(const std::string& message, const Tok& at) const {
    return ParseError("ltl: " + message, at.line, at.column);
  }
  void expect(TokKind kind, const std::string& what) {
    if (peek().kind != kind) throw err("expected " + what, peek());
    get();
  }

  FormulaPtr parse_formula() { return parse_implies(); }

  FormulaPtr parse_implies() {
    FormulaPtr lhs = parse_or();
    if (peek().kind == TokKind::Arrow) {
      const Tok& t = get();
      FormulaPtr rhs = parse_implies();  // right-assoc
      return make_binary(Op::Implies, std::move(lhs), std::move(rhs), span_of(t));
    }
    return lhs;
  }

  FormulaPtr parse_or() {
    FormulaPtr lhs = parse_and();
    while (peek().kind == TokKind::OrOr) {
      const Tok& t = get();
      lhs = make_binary(Op::Or, std::move(lhs), parse_and(), span_of(t));
    }
    return lhs;
  }

  FormulaPtr parse_and() {
    FormulaPtr lhs = parse_until();
    while (peek().kind == TokKind::AndAnd) {
      const Tok& t = get();
      lhs = make_binary(Op::And, std::move(lhs), parse_until(), span_of(t));
    }
    return lhs;
  }

  FormulaPtr parse_until() {
    FormulaPtr lhs = parse_unary();
    if (peek().kind == TokKind::Var && (peek().text == "U" || peek().text == "R")) {
      const Tok& t = get();
      const Op op = t.text == "U" ? Op::Until : Op::Release;
      return make_binary(op, std::move(lhs), parse_until(), span_of(t));  // right-assoc
    }
    return lhs;
  }

  FormulaPtr parse_unary() {
    const Tok& t = peek();
    if (t.kind == TokKind::Bang) {
      get();
      return make_unary(Op::Not, parse_unary(), span_of(t));
    }
    if (t.kind == TokKind::Var && t.text.size() == 1) {
      Op op = Op::True;
      switch (t.text[0]) {
        case 'G': op = Op::Always; break;
        case 'F': op = Op::Eventually; break;
        case 'X': op = Op::Next; break;
        default: op = Op::True;
      }
      if (op != Op::True) {
        get();
        return make_unary(op, parse_unary(), span_of(t));
      }
    }
    return parse_atom();
  }

  FormulaPtr parse_atom() {
    const Tok& t = peek();
    if (t.kind == TokKind::LParen) {
      get();
      FormulaPtr f = parse_formula();
      expect(TokKind::RParen, "')'");
      return f;
    }
    if (t.kind != TokKind::Ident) {
      throw err("expected an atom (pattern, stable(pred), true or false)", t);
    }
    if (t.text == "true") {
      get();
      return make_const(true, span_of(t));
    }
    if (t.text == "false") {
      get();
      return make_const(false, span_of(t));
    }
    if (t.text == "stable") {
      get();
      expect(TokKind::LParen, "'(' after stable");
      const Tok& pred = peek();
      if (pred.kind != TokKind::Ident) throw err("expected a predicate name", pred);
      get();
      expect(TokKind::RParen, "')'");
      return make_stable(pred.text, span_of(t));
    }
    // Tuple pattern.
    Pattern pattern;
    pattern.predicate = get().text;
    expect(TokKind::LParen, "'(' after predicate " + pattern.predicate);
    if (peek().kind != TokKind::RParen) {
      for (;;) {
        pattern.args.push_back(parse_pattern_arg());
        if (peek().kind != TokKind::Comma) break;
        get();
      }
    }
    expect(TokKind::RParen, "')'");
    return make_atom(std::move(pattern), span_of(t));
  }

  PatternArg parse_pattern_arg() {
    if (peek().kind == TokKind::At) get();  // '@' location marker: ignored
    const Tok& t = peek();
    PatternArg arg;
    switch (t.kind) {
      case TokKind::Var:  // uppercase / '_': wildcard
        get();
        return arg;
      case TokKind::Ident:
        get();
        arg.wildcard = false;
        arg.value = Value::addr(t.text);  // matches Addr or Str text
        return arg;
      case TokKind::Number:
        get();
        arg.wildcard = false;
        arg.value = t.number_is_int ? Value::integer(t.int_value) : Value::real(t.number);
        return arg;
      case TokKind::String:
        get();
        arg.wildcard = false;
        arg.value = Value::str(t.text);
        return arg;
      default:
        throw err("expected a pattern argument", t);
    }
  }

  std::vector<Tok> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Spec parse_spec(std::string_view source, std::string name) {
  Parser parser(Lexer(source).run());
  return parser.parse_spec(std::move(name));
}

FormulaPtr parse_formula(std::string_view source) {
  Parser parser(Lexer(source).run());
  return parser.parse_single();
}

// ---------------------------------------------------------------------------
// Spec / catalog consistency
// ---------------------------------------------------------------------------

namespace {

void check_formula(const FormulaPtr& f, const ndlog::Catalog& catalog,
                   ndlog::DiagnosticSink& sink, bool& warned_next) {
  if (!f) return;
  switch (f->op) {
    case Op::Atom: {
      if (!catalog.contains(f->pattern.predicate)) {
        sink.warning("LT0002",
                     "pattern predicate '" + f->pattern.predicate +
                         "' is not declared or derived by the program",
                     f->span);
      } else {
        const auto& info = catalog.info(f->pattern.predicate);
        if (info.arity != 0 && f->pattern.args.size() > info.arity) {
          sink.warning("LT0003",
                       "pattern " + f->pattern.to_string() + " has " +
                           std::to_string(f->pattern.args.size()) +
                           " arguments but '" + f->pattern.predicate +
                           "' has arity " + std::to_string(info.arity),
                       f->span);
        }
      }
      break;
    }
    case Op::Stable:
      if (!catalog.contains(f->pred)) {
        sink.warning("LT0005",
                     "stable() names predicate '" + f->pred +
                         "' which the program never stores",
                     f->span);
      }
      break;
    case Op::Next:
      if (!warned_next) {
        warned_next = true;
        sink.note("LT0004",
                  "X is not stutter-invariant: the model checker steps per "
                  "message delivery but the monitor steps per tuple event, so "
                  "mc and monitor verdicts may disagree under X",
                  f->span);
      }
      break;
    default:
      break;
  }
  check_formula(f->lhs, catalog, sink, warned_next);
  check_formula(f->rhs, catalog, sink, warned_next);
}

}  // namespace

void check_spec(const Spec& spec, const ndlog::Catalog& catalog,
                ndlog::DiagnosticSink& sink) {
  for (const auto& prop : spec.properties) {
    bool warned_next = false;
    check_formula(prop.formula, catalog, sink, warned_next);
  }
}

// ---------------------------------------------------------------------------
// Atomic propositions & NNF
// ---------------------------------------------------------------------------

std::size_t ApSet::intern(const Ap& ap) {
  for (std::size_t i = 0; i < aps.size(); ++i) {
    if (aps[i].text == ap.text) return i;
  }
  if (aps.size() >= 64) {
    throw std::runtime_error("ltl: a property may use at most 64 distinct "
                             "atomic propositions");
  }
  aps.push_back(ap);
  return aps.size() - 1;
}

std::string Nnf::to_string(const ApSet& aps) const {
  switch (kind) {
    case Kind::True: return "true";
    case Kind::False: return "false";
    case Kind::Lit:
      return (positive ? "" : "!") + aps.aps.at(ap).text;
    case Kind::And:
      return "(" + lhs->to_string(aps) + " && " + rhs->to_string(aps) + ")";
    case Kind::Or:
      return "(" + lhs->to_string(aps) + " || " + rhs->to_string(aps) + ")";
    case Kind::Next: return "X " + lhs->to_string(aps);
    case Kind::Until:
      return "(" + lhs->to_string(aps) + " U " + rhs->to_string(aps) + ")";
    case Kind::Release:
      return "(" + lhs->to_string(aps) + " R " + rhs->to_string(aps) + ")";
  }
  return "?";
}

namespace {

NnfPtr nnf_node(Nnf::Kind kind, NnfPtr lhs = nullptr, NnfPtr rhs = nullptr) {
  auto n = std::make_shared<Nnf>();
  n->kind = kind;
  n->lhs = std::move(lhs);
  n->rhs = std::move(rhs);
  return n;
}

NnfPtr nnf_lit(std::size_t ap, bool positive) {
  auto n = std::make_shared<Nnf>();
  n->kind = Nnf::Kind::Lit;
  n->ap = ap;
  n->positive = positive;
  return n;
}

NnfPtr nnf_const(bool truth) {
  return nnf_node(truth ? Nnf::Kind::True : Nnf::Kind::False);
}

}  // namespace

NnfPtr to_nnf(const FormulaPtr& f, ApSet& aps, bool negated) {
  using K = Nnf::Kind;
  switch (f->op) {
    case Op::True: return nnf_const(!negated);
    case Op::False: return nnf_const(negated);
    case Op::Atom: {
      ApSet::Ap ap;
      ap.is_stable = false;
      ap.pattern = f->pattern;
      ap.text = f->pattern.to_string();
      return nnf_lit(aps.intern(ap), !negated);
    }
    case Op::Stable: {
      ApSet::Ap ap;
      ap.is_stable = true;
      ap.pred = f->pred;
      ap.text = "stable(" + f->pred + ")";
      return nnf_lit(aps.intern(ap), !negated);
    }
    case Op::Not: return to_nnf(f->lhs, aps, !negated);
    case Op::And:
      return nnf_node(negated ? K::Or : K::And, to_nnf(f->lhs, aps, negated),
                      to_nnf(f->rhs, aps, negated));
    case Op::Or:
      return nnf_node(negated ? K::And : K::Or, to_nnf(f->lhs, aps, negated),
                      to_nnf(f->rhs, aps, negated));
    case Op::Implies:
      // a -> b == !a || b; negated: a && !b.
      return nnf_node(negated ? K::And : K::Or, to_nnf(f->lhs, aps, !negated),
                      to_nnf(f->rhs, aps, negated));
    case Op::Next:
      return nnf_node(K::Next, to_nnf(f->lhs, aps, negated));
    case Op::Eventually:
      // F a == true U a; !F a == false R !a.
      return negated ? nnf_node(K::Release, nnf_const(false), to_nnf(f->lhs, aps, true))
                     : nnf_node(K::Until, nnf_const(true), to_nnf(f->lhs, aps, false));
    case Op::Always:
      // G a == false R a; !G a == true U !a.
      return negated ? nnf_node(K::Until, nnf_const(true), to_nnf(f->lhs, aps, true))
                     : nnf_node(K::Release, nnf_const(false), to_nnf(f->lhs, aps, false));
    case Op::Until:
      return nnf_node(negated ? K::Release : K::Until, to_nnf(f->lhs, aps, negated),
                      to_nnf(f->rhs, aps, negated));
    case Op::Release:
      return nnf_node(negated ? K::Until : K::Release, to_nnf(f->lhs, aps, negated),
                      to_nnf(f->rhs, aps, negated));
  }
  return nnf_const(true);
}

}  // namespace fvn::ltl
