// fvn::ltl — linear temporal logic over network states (DESIGN.md §14).
//
// The formula language closes the gap between the paper's static
// verification story and the runtime: the *same* declarative temporal
// property is (a) model-checked over fvn::mc's transition system across all
// message interleavings and (b) compiled into an online monitor over the
// live tuple-event stream of the simulator / fvn::net cluster.
//
// Syntax (see DESIGN.md §14.1 for the full table):
//
//   spec      := property*
//   property  := [name ':'] formula '.'
//   formula   := '!' f | 'G' f | 'F' f | 'X' f          (unary, tightest)
//              | f 'U' f | f 'R' f                       (right-assoc)
//              | f '&&' f | f '||' f | f '->' f          (loosest, -> right)
//              | '(' f ')' | atom
//   atom      := 'true' | 'false'
//              | 'stable' '(' predicate ')'              (state predicate)
//              | predicate '(' pattern-args ')'          (tuple pattern)
//
// Tuple-pattern atoms hold in a network state iff *some* node stores a
// matching tuple: `bestPath(@n0, n3, _, _)` — lowercase identifiers and
// numbers are constants, `_`, upper-case identifiers and `@N` are wildcards,
// and missing trailing arguments are wildcards too. `stable(p)` holds in a
// state iff relation p did not change in the step that produced it (true in
// the initial state), so `F G stable(bestPath)` is "bestPath eventually
// converges and stays converged".
//
// Parsing reuses the ndlog diagnostics machinery: errors throw
// ndlog::ParseError with 1-based positions, every formula carries a
// SourceSpan, and check_spec() reports pattern/catalog mismatches (LT0001..)
// through a DiagnosticSink.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ndlog/catalog.hpp"
#include "ndlog/diagnostics.hpp"
#include "ndlog/parser.hpp"
#include "ndlog/tuple.hpp"

namespace fvn::ltl {

/// One argument of a tuple-pattern atom: a ground constant or a wildcard.
struct PatternArg {
  bool wildcard = true;
  /// When !wildcard: number / quoted-string constants carry the exact Value;
  /// bare lowercase identifiers carry an Addr that also matches a Str with
  /// the same text (patterns cannot see the catalog's column kinds).
  ndlog::Value value;

  bool matches(const ndlog::Value& v) const;
  std::string to_string() const;
};

/// A predicate-tuple pattern (`bestPath(@n0, D, _)`). Matches a tuple with
/// the same predicate whose values match argument-wise; arguments beyond
/// `args.size()` are unconstrained.
struct Pattern {
  std::string predicate;
  std::vector<PatternArg> args;

  bool matches(const ndlog::Tuple& tuple) const;
  /// Canonical rendering — also the atomic-proposition identity (all
  /// wildcards render as `_`, so `p(X,_)` and `p(_,_)` are the same AP).
  std::string to_string() const;
};

enum class Op : std::uint8_t {
  True,
  False,
  Atom,        ///< tuple pattern (exists a matching stored tuple)
  Stable,      ///< stable(pred): relation unchanged by the last step
  Not,
  And,
  Or,
  Implies,
  Next,        ///< X
  Eventually,  ///< F
  Always,      ///< G
  Until,       ///< U (strong)
  Release,     ///< R
};

std::string_view to_string(Op op) noexcept;

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// Immutable formula tree. `pattern` is set for Atom, `pred` for Stable;
/// unary operators use `lhs` only.
struct Formula {
  Op op = Op::True;
  Pattern pattern;       // Atom
  std::string pred;      // Stable
  FormulaPtr lhs;
  FormulaPtr rhs;
  ndlog::SourceSpan span;

  std::string to_string() const;
};

FormulaPtr make_atom(Pattern pattern, ndlog::SourceSpan span = {});
FormulaPtr make_stable(std::string pred, ndlog::SourceSpan span = {});
FormulaPtr make_const(bool truth, ndlog::SourceSpan span = {});
FormulaPtr make_unary(Op op, FormulaPtr operand, ndlog::SourceSpan span = {});
FormulaPtr make_binary(Op op, FormulaPtr lhs, FormulaPtr rhs,
                       ndlog::SourceSpan span = {});

/// One named temporal property of a spec file.
struct Property {
  std::string name;  // "p3" for unnamed properties (1-based index)
  FormulaPtr formula;
  ndlog::SourceSpan span;
};

struct Spec {
  std::string name;  // file name, for diagnostics
  std::vector<Property> properties;
};

/// Parse a `.ltl` spec. Throws ndlog::ParseError (1-based line/column) on
/// malformed input — the CLI renders it as an LT0001 diagnostic.
Spec parse_spec(std::string_view source, std::string name = "spec");

/// Parse a single formula (tests / ad-hoc properties).
FormulaPtr parse_formula(std::string_view source);

/// Spec/program consistency, reported through the ndlog diagnostics sink:
///   LT0002 warning  pattern predicate not declared/used by the program
///   LT0003 warning  pattern has more arguments than the predicate's arity
///   LT0004 note     X is not stutter-invariant: the model checker steps
///                   per message delivery, the monitor per tuple event, so
///                   mc ↔ monitor agreement is not guaranteed under X
///   LT0005 warning  stable() names a predicate the program never stores
/// Warnings do not block checking (exit-code convention matches lint).
void check_spec(const Spec& spec, const ndlog::Catalog& catalog,
                ndlog::DiagnosticSink& sink);

// ---------------------------------------------------------------------------
// Atomic propositions & negation normal form — the checker/monitor interface.
// ---------------------------------------------------------------------------

/// The atomic propositions of one property, deduplicated by canonical
/// rendering. Valuations are bitsets over their indices (≤ 64 APs).
struct ApSet {
  struct Ap {
    bool is_stable = false;
    Pattern pattern;    // !is_stable
    std::string pred;   // is_stable
    std::string text;   // canonical rendering (identity)
  };
  std::vector<Ap> aps;

  /// Index of the AP (inserting if new). Throws std::runtime_error past 64.
  std::size_t intern(const Ap& ap);
};

using Valuation = std::uint64_t;

/// NNF formula over AP indices: operators True/False/Lit/And/Or/Next/Until/
/// Release only (G, F, ->, ! are rewritten away).
struct Nnf;
using NnfPtr = std::shared_ptr<const Nnf>;

struct Nnf {
  enum class Kind : std::uint8_t { True, False, Lit, And, Or, Next, Until, Release };
  Kind kind = Kind::True;
  std::size_t ap = 0;      // Lit
  bool positive = true;    // Lit
  NnfPtr lhs;
  NnfPtr rhs;

  std::string to_string(const ApSet& aps) const;
};

/// Rewrite into negation normal form, interning atoms into `aps`.
/// `negated` pushes an outer negation through the whole formula (the model
/// checker builds the automaton for ¬φ this way).
NnfPtr to_nnf(const FormulaPtr& formula, ApSet& aps, bool negated = false);

}  // namespace fvn::ltl
