// Runtime monitor compiler: lowers the same LTL property the model checker
// verifies into an online automaton over the live tuple-event stream of the
// simulator / fvn::net cluster (DESIGN.md §14.4).
//
// Lowering: build the Büchi automaton for φ itself (not ¬φ) and run a subset
// construction over the observed finite prefix. An empty subset means *no*
// run of the automaton reads the prefix — a bad prefix: no extension can
// satisfy φ, so the monitor fires a definite violation mid-run. At end of
// trace, finish() evaluates the stutter extension (the final state repeats
// forever, all stable() bits true): the property is satisfied iff some
// subset state can continue into an accepting cycle reading the final
// valuation forever.
//
// The monitor steps once per tuple event (install/retract/expire), a finer
// granularity than the model checker's one-step-per-message-delivery; the
// agreement argument for stutter-invariant formulas is in DESIGN.md §14.5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ltl/buchi.hpp"
#include "ltl/formula.hpp"
#include "obs/trace.hpp"

namespace fvn::ltl {

/// One engine-agnostic tuple lifecycle event (the shape both the simulator
/// and fvn::net nodes emit as cat "tuple" obs instants).
struct TupleEvent {
  enum class Kind : std::uint8_t { Install, Retract, Expire };
  Kind kind = Kind::Install;
  std::string node;
  ndlog::Tuple tuple;
  std::uint64_t ts_us = 0;
};

std::string_view to_string(TupleEvent::Kind kind) noexcept;

/// Online monitor for one property. Feed events in trace order; `violated()`
/// flips to true at the first event after which no extension can satisfy the
/// property; `finish()` gives the end-of-trace verdict.
class Monitor {
 public:
  explicit Monitor(const Property& property);

  void on_event(const TupleEvent& event);

  /// Definite violation seen mid-trace (bad prefix).
  bool violated() const noexcept { return violated_; }
  /// 1-based ordinal of the violating event (0 = violated before any event).
  std::size_t violation_event() const noexcept { return violation_event_; }
  std::size_t events() const noexcept { return events_; }

  /// End-of-trace verdict under stutter extension; false iff the property is
  /// violated on the observed trace.
  bool finish() const;

  const std::string& name() const noexcept { return name_; }
  const std::string& formula() const noexcept { return formula_; }
  const ApSet& aps() const noexcept { return aps_; }

 private:
  Valuation pattern_valuation() const;

  std::string name_;
  std::string formula_;
  ApSet aps_;
  Buchi buchi_;
  std::vector<std::int64_t> match_count_;  // per pattern AP: stored matches
  std::vector<std::size_t> subset_;        // sorted live Büchi states
  bool violated_ = false;
  std::size_t violation_event_ = 0;
  std::size_t events_ = 0;
};

/// Final verdict of one monitored property.
struct MonitorVerdict {
  std::string property;
  std::string formula;
  bool satisfied = true;
  /// True when the monitor fired mid-trace (bad prefix), with the event.
  bool fired = false;
  std::size_t violation_event = 0;
};

/// All properties of a spec monitored over one event stream.
class MonitorSet {
 public:
  explicit MonitorSet(const Spec& spec);

  void on_event(const TupleEvent& event);
  std::vector<MonitorVerdict> finish() const;
  /// Convenience: all properties satisfied at end of trace?
  bool all_satisfied() const;
  std::size_t events() const noexcept { return events_; }

 private:
  std::vector<Monitor> monitors_;
  std::size_t events_ = 0;
};

/// Decode the engine-agnostic tuple-event stream out of recorded obs events:
/// instants with cat "tuple", name "<kind> <predicate>" and args
/// {"node":"...","tuple":"<ground fact>"}. Events that do not match the
/// shape are skipped.
std::vector<TupleEvent> events_from_trace(const std::vector<obs::TraceEvent>& events);

/// Render verdicts for the CLI (one line per property).
std::string render_verdicts(const std::vector<MonitorVerdict>& verdicts);

}  // namespace fvn::ltl
