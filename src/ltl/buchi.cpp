#include "ltl/buchi.hpp"

#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace fvn::ltl {

namespace {

// ---------------------------------------------------------------------------
// Subformula interning: every distinct NNF subformula gets an integer id so
// tableau node sets are std::set<int> with cheap comparison.
// ---------------------------------------------------------------------------

struct SubEntry {
  Nnf::Kind kind = Nnf::Kind::True;
  std::size_t ap = 0;   // Lit
  bool positive = true; // Lit
  int lhs = -1;
  int rhs = -1;
};

class SubTable {
 public:
  int intern(const NnfPtr& f) {
    SubEntry e;
    e.kind = f->kind;
    if (f->kind == Nnf::Kind::Lit) {
      e.ap = f->ap;
      e.positive = f->positive;
    }
    if (f->lhs) e.lhs = intern(f->lhs);
    if (f->rhs) e.rhs = intern(f->rhs);
    return intern_entry(e);
  }

  const SubEntry& at(int id) const { return entries_[static_cast<std::size_t>(id)]; }
  std::size_t size() const { return entries_.size(); }

  /// Id of the complementary literal of `id` (interning it if new).
  int complement(int id) {
    SubEntry e = at(id);
    e.positive = !e.positive;
    return intern_entry(e);
  }

 private:
  int intern_entry(const SubEntry& e) {
    std::ostringstream key;
    key << static_cast<int>(e.kind) << ':' << e.ap << ':' << e.positive << ':'
        << e.lhs << ':' << e.rhs;
    auto [it, inserted] = index_.emplace(key.str(), static_cast<int>(entries_.size()));
    if (inserted) entries_.push_back(e);
    return it->second;
  }

  std::vector<SubEntry> entries_;
  std::map<std::string, int> index_;
};

// ---------------------------------------------------------------------------
// GPVW tableau
// ---------------------------------------------------------------------------

constexpr std::size_t kInit = static_cast<std::size_t>(-1);

struct TabNode {
  std::set<int> old;
  std::set<int> next;
  std::set<std::size_t> incoming;  // source node indices; kInit for initial
};

struct Partial {
  std::set<int> new_;
  std::set<int> old;
  std::set<int> next;
  std::size_t src = kInit;
};

struct Tableau {
  SubTable subs;
  std::vector<TabNode> nodes;

  void build(const NnfPtr& formula) {
    const int root = subs.intern(formula);
    std::map<std::pair<std::set<int>, std::set<int>>, std::size_t> index;
    std::deque<std::size_t> unexpanded;
    std::vector<Partial> work;

    Partial seed;
    seed.new_.insert(root);
    work.push_back(std::move(seed));

    for (;;) {
      if (work.empty()) {
        if (unexpanded.empty()) break;
        const std::size_t q = unexpanded.front();
        unexpanded.pop_front();
        Partial p;
        p.new_ = nodes[q].next;
        p.src = q;
        work.push_back(std::move(p));
        continue;
      }
      Partial p = std::move(work.back());
      work.pop_back();

      if (p.new_.empty()) {
        // Completed node: merge with an existing (old, next) twin or create.
        auto key = std::make_pair(p.old, p.next);
        auto it = index.find(key);
        if (it == index.end()) {
          const std::size_t id = nodes.size();
          TabNode node;
          node.old = std::move(p.old);
          node.next = std::move(p.next);
          node.incoming.insert(p.src);
          nodes.push_back(std::move(node));
          index.emplace(std::move(key), id);
          unexpanded.push_back(id);
        } else {
          nodes[it->second].incoming.insert(p.src);
        }
        continue;
      }

      const int eta = *p.new_.begin();
      p.new_.erase(p.new_.begin());
      const SubEntry& e = subs.at(eta);
      if (e.kind != Nnf::Kind::True && e.kind != Nnf::Kind::False &&
          p.old.count(eta)) {
        work.push_back(std::move(p));  // already expanded on this branch
        continue;
      }
      switch (e.kind) {
        case Nnf::Kind::False:
          break;  // contradiction: drop this branch
        case Nnf::Kind::True:
          work.push_back(std::move(p));
          break;
        case Nnf::Kind::Lit: {
          const int neg = subs.complement(eta);
          if (p.old.count(neg)) break;  // p && !p: drop
          p.old.insert(eta);
          work.push_back(std::move(p));
          break;
        }
        case Nnf::Kind::And:
          p.old.insert(eta);
          if (!p.old.count(e.lhs)) p.new_.insert(e.lhs);
          if (!p.old.count(e.rhs)) p.new_.insert(e.rhs);
          work.push_back(std::move(p));
          break;
        case Nnf::Kind::Or: {
          p.old.insert(eta);
          Partial q = p;
          if (!p.old.count(e.lhs)) p.new_.insert(e.lhs);
          if (!q.old.count(e.rhs)) q.new_.insert(e.rhs);
          work.push_back(std::move(p));
          work.push_back(std::move(q));
          break;
        }
        case Nnf::Kind::Next:
          p.old.insert(eta);
          p.next.insert(e.lhs);
          work.push_back(std::move(p));
          break;
        case Nnf::Kind::Until: {
          // μ U ψ  =  ψ ∨ (μ ∧ X(μ U ψ))
          p.old.insert(eta);
          Partial q = p;
          if (!p.old.count(e.lhs)) p.new_.insert(e.lhs);
          p.next.insert(eta);
          if (!q.old.count(e.rhs)) q.new_.insert(e.rhs);
          work.push_back(std::move(p));
          work.push_back(std::move(q));
          break;
        }
        case Nnf::Kind::Release: {
          // μ R ψ  =  (ψ ∧ μ) ∨ (ψ ∧ X(μ R ψ))
          p.old.insert(eta);
          Partial q = p;
          if (!p.old.count(e.rhs)) p.new_.insert(e.rhs);
          p.next.insert(eta);
          if (!q.old.count(e.lhs)) q.new_.insert(e.lhs);
          if (!q.old.count(e.rhs)) q.new_.insert(e.rhs);
          work.push_back(std::move(p));
          work.push_back(std::move(q));
          break;
        }
      }
    }
  }
};

}  // namespace

Buchi build_buchi(const NnfPtr& formula, std::size_t num_aps) {
  Tableau tab;
  tab.build(formula);

  // Generalized acceptance: one set per Until subformula u = μ U ψ,
  // F_u = { q : u ∉ old(q) or ψ ∈ old(q) }.
  std::vector<std::pair<int, int>> untils;  // (until id, rhs id)
  for (std::size_t id = 0; id < tab.subs.size(); ++id) {
    const SubEntry& e = tab.subs.at(static_cast<int>(id));
    if (e.kind == Nnf::Kind::Until) untils.emplace_back(static_cast<int>(id), e.rhs);
  }

  const std::size_t n = tab.nodes.size();
  std::vector<std::vector<bool>> in_accept(untils.size(), std::vector<bool>(n, false));
  for (std::size_t f = 0; f < untils.size(); ++f) {
    for (std::size_t q = 0; q < n; ++q) {
      const auto& old = tab.nodes[q].old;
      in_accept[f][q] = !old.count(untils[f].first) || old.count(untils[f].second) != 0;
    }
  }

  // Per-node literal masks and successor lists (invert incoming edges).
  std::vector<Valuation> must_true(n, 0), must_false(n, 0);
  std::vector<std::vector<std::size_t>> succs(n);
  std::vector<std::size_t> initial_nodes;
  for (std::size_t q = 0; q < n; ++q) {
    for (int id : tab.nodes[q].old) {
      const SubEntry& e = tab.subs.at(id);
      if (e.kind != Nnf::Kind::Lit) continue;
      const Valuation bit = Valuation{1} << e.ap;
      (e.positive ? must_true[q] : must_false[q]) |= bit;
    }
    for (std::size_t src : tab.nodes[q].incoming) {
      if (src == kInit) {
        initial_nodes.push_back(q);
      } else {
        succs[src].push_back(q);
      }
    }
  }

  // Degeneralize with a counter over the k acceptance sets: state (q, i)
  // moves to level (i+1) mod k when q ∈ F_i, else stays; accepting states are
  // (q, k-1) with q ∈ F_{k-1}. With k == 0 every state is accepting.
  const std::size_t k = untils.size();
  Buchi out;
  out.num_aps = num_aps;
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> state_index;
  std::deque<std::pair<std::size_t, std::size_t>> frontier;
  auto add_state = [&](std::size_t q, std::size_t level) {
    auto key = std::make_pair(q, level);
    auto it = state_index.find(key);
    if (it != state_index.end()) return it->second;
    const std::size_t id = out.states.size();
    Buchi::State s;
    s.must_true = must_true[q];
    s.must_false = must_false[q];
    s.accepting = k == 0 || (level == k - 1 && in_accept[k - 1][q]);
    out.states.push_back(std::move(s));
    state_index.emplace(key, id);
    frontier.push_back(key);
    return id;
  };

  for (std::size_t q : initial_nodes) out.initial.push_back(add_state(q, 0));
  while (!frontier.empty()) {
    const auto [q, level] = frontier.front();
    frontier.pop_front();
    const std::size_t id = state_index.at({q, level});
    const std::size_t next_level =
        (k != 0 && in_accept[level][q]) ? (level + 1) % k : level;
    for (std::size_t q2 : succs[q]) {
      // add_state may reallocate out.states; take the target id first.
      const std::size_t target = add_state(q2, next_level);
      out.states[id].succs.push_back(target);
    }
  }
  return out;
}

std::string Buchi::to_dot(const ApSet& aps) const {
  std::ostringstream os;
  os << "digraph buchi {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < states.size(); ++i) {
    const State& s = states[i];
    os << "  q" << i << " [shape=" << (s.accepting ? "doublecircle" : "circle")
       << " label=\"q" << i << "\\n";
    bool first = true;
    for (std::size_t a = 0; a < aps.aps.size(); ++a) {
      const Valuation bit = Valuation{1} << a;
      if (s.must_true & bit) {
        if (!first) os << " & ";
        os << aps.aps[a].text;
        first = false;
      } else if (s.must_false & bit) {
        if (!first) os << " & ";
        os << "!" << aps.aps[a].text;
        first = false;
      }
    }
    if (first) os << "true";
    os << "\"];\n";
  }
  for (std::size_t i : initial) os << "  init -> q" << i << ";\n";
  os << "  init [shape=point];\n";
  for (std::size_t i = 0; i < states.size(); ++i) {
    for (std::size_t j : states[i].succs) os << "  q" << i << " -> q" << j << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace fvn::ltl
