// LTL model checking over fvn::mc's NDlog transition system: the product of
// the Büchi automaton for ¬φ with the (stutter-extended) system state graph,
// searched for acceptance cycles with iterative nested DFS. A violation is a
// lasso — a finite stem plus a cycle that repeats forever — carrying full
// NetState snapshots, renderable as text or as an fvn::obs Chrome trace.
// See DESIGN.md §14.3.
#pragma once

#include <string>
#include <vector>

#include "ltl/buchi.hpp"
#include "ltl/formula.hpp"
#include "mc/ndlog_ts.hpp"
#include "obs/trace.hpp"

namespace fvn::ltl {

/// Computes the valuation of an ApSet over a system transition. Pattern APs
/// look only at the target state's stored tuples; stable(p) compares the
/// global relation p between source and target (true on the initial step).
class Valuator {
 public:
  explicit Valuator(const ApSet& aps);

  /// Valuation read when entering `state` from `prev` (nullptr = initial).
  Valuation value(const mc::NetState* prev, const mc::NetState& state) const;
  /// The pattern-only bits of `state` (stable bits zero).
  Valuation pattern_bits(const mc::NetState& state) const;
  /// Mask with every stable() bit set.
  Valuation stable_mask() const noexcept { return stable_mask_; }

  /// Human rendering of a valuation ("bestPath(n0,n3,_,_) !stable(link)").
  std::string render(Valuation v) const;

 private:
  const ApSet* aps_;
  Valuation stable_mask_ = 0;
};

/// One step of a counterexample lasso: the state plus the valuation read
/// when entering it.
struct LassoStep {
  mc::NetState state;
  Valuation valuation = 0;
};

struct PropertyResult {
  std::string name;
  std::string formula;
  ApSet aps;
  bool holds = true;
  /// Verdict is definitive only when the product was fully explored.
  bool exhausted = true;
  std::size_t product_states = 0;
  std::size_t transitions = 0;
  /// Counterexample (empty when holds): `stem` ends at the loop head; `cycle`
  /// lists the loop body and ends back at the loop head (its last state
  /// equals stem.back()).
  std::vector<LassoStep> stem;
  std::vector<LassoStep> cycle;
};

struct CheckOptions {
  /// Budget on distinct product states; exceeded => exhausted = false.
  std::size_t max_product_states = 200000;
};

struct CheckResult {
  std::vector<PropertyResult> properties;

  bool all_hold() const {
    for (const auto& p : properties)
      if (!p.holds) return false;
    return true;
  }
  bool exhausted() const {
    for (const auto& p : properties)
      if (!p.exhausted) return false;
    return true;
  }
};

/// Check one property over every message interleaving from `initial`.
/// Terminal (quiescent) states are stutter-extended with a self-loop, so
/// finite executions induce infinite words.
PropertyResult check_property(const mc::NdlogTransitionSystem& ts,
                              const mc::NetState& initial, const Property& property,
                              const CheckOptions& options = {});

/// Check every property of a spec.
CheckResult check_ltl(const mc::NdlogTransitionSystem& ts, const mc::NetState& initial,
                      const Spec& spec, const CheckOptions& options = {});

/// Human counterexample rendering: per-step valuations and full per-node
/// tables, with the cycle marked.
std::string render_counterexample(const PropertyResult& result);

/// Render a counterexample into an obs Chrome trace: one "ltl" instant per
/// step (valuation + phase) plus one "state" instant per node per step with
/// that node's table; virtual time is one millisecond per step.
void counterexample_to_trace(const PropertyResult& result, obs::Trace& trace);

}  // namespace fvn::ltl
