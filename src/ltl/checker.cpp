#include "ltl/checker.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "ndlog/diagnostics.hpp"  // json_escape

namespace fvn::ltl {

using mc::NetState;

// ---------------------------------------------------------------------------
// Valuator
// ---------------------------------------------------------------------------

Valuator::Valuator(const ApSet& aps) : aps_(&aps) {
  for (std::size_t i = 0; i < aps.aps.size(); ++i) {
    if (aps.aps[i].is_stable) stable_mask_ |= Valuation{1} << i;
  }
}

Valuation Valuator::pattern_bits(const NetState& state) const {
  Valuation v = 0;
  for (std::size_t i = 0; i < aps_->aps.size(); ++i) {
    const ApSet::Ap& ap = aps_->aps[i];
    if (ap.is_stable) continue;
    bool found = false;
    for (const auto& [node, tuples] : state.stored) {
      for (const auto& t : tuples) {
        if (ap.pattern.matches(t)) {
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (found) v |= Valuation{1} << i;
  }
  return v;
}

namespace {

/// Is relation `pred` identical (per node) between the two states?
bool relation_equal(const NetState& a, const NetState& b, const std::string& pred) {
  auto it_a = a.stored.begin();
  auto it_b = b.stored.begin();
  auto node_rel = [&pred](const std::set<ndlog::Tuple>& tuples) {
    std::vector<const ndlog::Tuple*> out;
    for (const auto& t : tuples) {
      if (t.predicate() == pred) out.push_back(&t);
    }
    return out;
  };
  while (it_a != a.stored.end() || it_b != b.stored.end()) {
    // A node missing from one side counts as an empty relation there.
    if (it_b == b.stored.end() || (it_a != a.stored.end() && it_a->first < it_b->first)) {
      if (!node_rel(it_a->second).empty()) return false;
      ++it_a;
      continue;
    }
    if (it_a == a.stored.end() || it_b->first < it_a->first) {
      if (!node_rel(it_b->second).empty()) return false;
      ++it_b;
      continue;
    }
    const auto ra = node_rel(it_a->second);
    const auto rb = node_rel(it_b->second);
    if (ra.size() != rb.size()) return false;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      if (!(*ra[i] == *rb[i])) return false;
    }
    ++it_a;
    ++it_b;
  }
  return true;
}

}  // namespace

Valuation Valuator::value(const NetState* prev, const NetState& state) const {
  Valuation v = pattern_bits(state);
  for (std::size_t i = 0; i < aps_->aps.size(); ++i) {
    const ApSet::Ap& ap = aps_->aps[i];
    if (!ap.is_stable) continue;
    if (prev == nullptr || relation_equal(*prev, state, ap.pred)) {
      v |= Valuation{1} << i;
    }
  }
  return v;
}

std::string Valuator::render(Valuation v) const {
  std::string out;
  for (std::size_t i = 0; i < aps_->aps.size(); ++i) {
    if (!out.empty()) out += " ";
    if ((v & (Valuation{1} << i)) == 0) out += "!";
    out += aps_->aps[i].text;
  }
  return out.empty() ? "(no atomic propositions)" : out;
}

// ---------------------------------------------------------------------------
// Product construction + iterative nested DFS
// ---------------------------------------------------------------------------

namespace {

/// Lazily expanded system state graph (stutter-extended: quiescent states
/// self-loop) with memoized per-edge valuations.
class SystemGraph {
 public:
  SystemGraph(const mc::NdlogTransitionSystem& ts, const Valuator& val)
      : ts_(&ts), val_(&val) {}

  std::size_t intern(NetState state) {
    std::string key = state.encode();
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    const std::size_t id = states_.size();
    pattern_.push_back(val_->pattern_bits(state));
    states_.push_back(std::move(state));
    succs_.emplace_back();
    expanded_.push_back(false);
    index_.emplace(std::move(key), id);
    return id;
  }

  const NetState& state(std::size_t id) const { return states_[id]; }
  std::size_t size() const { return states_.size(); }

  const std::vector<std::size_t>& successors(std::size_t id) {
    if (!expanded_[id]) {
      expanded_[id] = true;
      if (states_[id].quiescent()) {
        succs_[id].push_back(id);  // stutter self-loop
      } else {
        for (auto& next : ts_->successors(states_[id])) {
          // intern() may reallocate succs_; take the target id first.
          const std::size_t target = intern(std::move(next));
          succs_[id].push_back(target);
        }
      }
    }
    return succs_[id];
  }

  Valuation edge_valuation(std::size_t from, std::size_t to) {
    const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
    auto it = edge_val_.find(key);
    if (it != edge_val_.end()) return it->second;
    Valuation v = pattern_[to];
    if (val_->stable_mask() != 0) {
      v = val_->value(&states_[from], states_[to]);
    }
    edge_val_.emplace(key, v);
    return v;
  }

  Valuation initial_valuation(std::size_t id) const {
    return pattern_[id] | val_->stable_mask();
  }

 private:
  const mc::NdlogTransitionSystem* ts_;
  const Valuator* val_;
  std::vector<NetState> states_;
  std::vector<Valuation> pattern_;
  std::vector<std::vector<std::size_t>> succs_;
  std::vector<bool> expanded_;
  std::unordered_map<std::string, std::size_t> index_;
  std::unordered_map<std::uint64_t, Valuation> edge_val_;
};

struct NestedDfs {
  SystemGraph& sys;
  const Buchi& buchi;
  const CheckOptions& options;
  PropertyResult& result;

  std::unordered_set<std::uint64_t> blue_visited;
  std::unordered_set<std::uint64_t> red_visited;
  std::unordered_map<std::uint64_t, std::size_t> stack_pos;  // key -> blue stack index
  std::vector<std::uint64_t> lasso_stem;   // filled on success
  std::vector<std::uint64_t> lasso_cycle;  // filled on success
  bool budget_hit = false;

  std::uint64_t key(std::size_t s, std::size_t q) const {
    return static_cast<std::uint64_t>(s) * buchi.states.size() + q;
  }
  std::size_t sys_of(std::uint64_t k) const { return k / buchi.states.size(); }
  std::size_t buchi_of(std::uint64_t k) const { return k % buchi.states.size(); }

  std::vector<std::uint64_t> product_successors(std::uint64_t k) {
    const std::size_t s = sys_of(k);
    const std::size_t q = buchi_of(k);
    std::vector<std::uint64_t> out;
    for (std::size_t s2 : sys.successors(s)) {
      const Valuation v = sys.edge_valuation(s, s2);
      for (std::size_t q2 : buchi.states[q].succs) {
        if (buchi.states[q2].admits(v)) out.push_back(key(s2, q2));
      }
    }
    result.transitions += out.size();
    return out;
  }

  struct Frame {
    std::uint64_t key;
    std::vector<std::uint64_t> succs;
    std::size_t next = 0;
  };

  /// Red search from the accepting seed; true when it closes a cycle back to
  /// the blue DFS stack (the seed is still on it).
  bool red_dfs(std::uint64_t seed, std::vector<std::uint64_t>& red_path) {
    std::vector<Frame> stack;
    stack.push_back(Frame{seed, product_successors(seed), 0});
    red_visited.insert(seed);
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.next >= top.succs.size()) {
        stack.pop_back();
        continue;
      }
      const std::uint64_t next = top.succs[top.next++];
      if (stack_pos.count(next)) {
        // Cycle closed: seed ->* next, next is an ancestor of (or is) seed.
        red_path.clear();
        for (const Frame& f : stack) red_path.push_back(f.key);
        red_path.push_back(next);
        return true;
      }
      if (red_visited.insert(next).second) {
        stack.push_back(Frame{next, product_successors(next), 0});
      }
    }
    return false;
  }

  /// Blue search; true when a violation (accepting lasso) was found.
  bool blue_dfs(std::uint64_t root) {
    if (blue_visited.count(root)) return false;
    std::vector<Frame> stack;
    stack.push_back(Frame{root, product_successors(root), 0});
    blue_visited.insert(root);
    stack_pos.emplace(root, 0);
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (blue_visited.size() > options.max_product_states) {
        budget_hit = true;
        return false;
      }
      if (top.next < top.succs.size()) {
        const std::uint64_t next = top.succs[top.next++];
        if (blue_visited.insert(next).second) {
          stack_pos.emplace(next, stack.size());
          stack.push_back(Frame{next, product_successors(next), 0});
        }
        continue;
      }
      // Postorder: nested red search from accepting states.
      const std::uint64_t done = top.key;
      if (buchi.states[buchi_of(done)].accepting) {
        std::vector<std::uint64_t> red_path;
        if (red_dfs(done, red_path)) {
          // red_path = done ->* x where x is on the blue stack.
          const std::uint64_t x = red_path.back();
          const std::size_t x_pos = stack_pos.at(x);
          lasso_stem.clear();
          for (std::size_t i = 0; i <= x_pos; ++i) lasso_stem.push_back(stack[i].key);
          lasso_cycle.clear();
          for (std::size_t i = x_pos + 1; i < stack.size(); ++i) {
            lasso_cycle.push_back(stack[i].key);
          }
          // red_path[0] == done == stack.back().key: skip the duplicate.
          for (std::size_t i = 1; i < red_path.size(); ++i) {
            lasso_cycle.push_back(red_path[i]);
          }
          return true;
        }
      }
      stack_pos.erase(done);
      stack.pop_back();
    }
    return false;
  }
};

}  // namespace

PropertyResult check_property(const mc::NdlogTransitionSystem& ts,
                              const NetState& initial, const Property& property,
                              const CheckOptions& options) {
  PropertyResult result;
  result.name = property.name;
  result.formula = property.formula->to_string();

  // Automaton for the *negation*: an accepting run is a violation of φ.
  const NnfPtr negated = to_nnf(property.formula, result.aps, /*negated=*/true);
  const Buchi buchi = build_buchi(negated, result.aps.aps.size());
  if (buchi.empty()) return result;  // ¬φ unsatisfiable: φ holds vacuously

  Valuator valuator(result.aps);
  SystemGraph sys(ts, valuator);
  const std::size_t s0 = sys.intern(initial);
  const Valuation v0 = sys.initial_valuation(s0);

  NestedDfs dfs{sys, buchi, options, result, {}, {}, {}, {}, {}, false};
  bool violated = false;
  for (std::size_t q : buchi.initial) {
    if (!buchi.states[q].admits(v0)) continue;
    if (dfs.blue_dfs(dfs.key(s0, q))) {
      violated = true;
      break;
    }
    if (dfs.budget_hit) break;
  }
  result.product_states = dfs.blue_visited.size();
  result.exhausted = !dfs.budget_hit;
  if (!violated) return result;

  result.holds = false;
  // Decode the lasso into snapshot steps with entry valuations.
  const NetState* prev = nullptr;
  auto decode = [&](const std::vector<std::uint64_t>& keys,
                    std::vector<LassoStep>& out) {
    for (std::uint64_t k : keys) {
      LassoStep step;
      step.state = sys.state(dfs.sys_of(k));
      step.valuation = valuator.value(prev, step.state);
      out.push_back(std::move(step));
      prev = &out.back().state;
    }
  };
  decode(dfs.lasso_stem, result.stem);
  decode(dfs.lasso_cycle, result.cycle);
  return result;
}

CheckResult check_ltl(const mc::NdlogTransitionSystem& ts, const NetState& initial,
                      const Spec& spec, const CheckOptions& options) {
  CheckResult out;
  for (const auto& property : spec.properties) {
    out.properties.push_back(check_property(ts, initial, property, options));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Counterexample rendering
// ---------------------------------------------------------------------------

std::string render_counterexample(const PropertyResult& result) {
  std::ostringstream os;
  os << "property " << result.name << ": " << result.formula << " — VIOLATED\n";
  const Valuator valuator(result.aps);
  std::size_t index = 0;
  auto emit = [&](const std::vector<LassoStep>& steps, const char* phase) {
    for (const auto& step : steps) {
      os << phase << " step " << index++ << "  [" << valuator.render(step.valuation)
         << "]\n";
      os << mc::render_state(step.state);
    }
  };
  os << "stem (" << result.stem.size() << " steps):\n";
  emit(result.stem, "stem");
  os << "cycle (repeats forever; returns to step " << result.stem.size() - 1 << "):\n";
  emit(result.cycle, "cycle");
  return os.str();
}

void counterexample_to_trace(const PropertyResult& result, obs::Trace& trace) {
  const Valuator valuator(result.aps);
  std::size_t index = 0;
  auto emit = [&](const std::vector<LassoStep>& steps, const char* phase) {
    for (const auto& step : steps) {
      const std::uint64_t ts_us = static_cast<std::uint64_t>(index) * 1000;
      std::ostringstream args;
      args << "{\"property\":\"" << ndlog::json_escape(result.name) << "\",\"phase\":\""
           << phase << "\",\"valuation\":\""
           << ndlog::json_escape(valuator.render(step.valuation)) << "\"}";
      trace.instant_at(ts_us, "ltl step " + std::to_string(index), "ltl", args.str());
      for (const auto& [node, tuples] : step.state.stored) {
        std::string rows;
        for (const auto& t : tuples) {
          if (!rows.empty()) rows += ";";
          rows += t.to_string();
        }
        trace.instant_at(ts_us, "node " + node, "ltl-state",
                         "{\"node\":\"" + ndlog::json_escape(node) + "\",\"tuples\":\"" +
                             ndlog::json_escape(rows) + "\"}");
      }
      ++index;
    }
  };
  emit(result.stem, "stem");
  emit(result.cycle, "cycle");
}

}  // namespace fvn::ltl
