// LTL → Büchi automaton via the GPVW on-the-fly tableau construction
// (Gerth/Peled/Vardi/Wolper, "Simple on-the-fly automatic verification of
// linear temporal logic"), followed by counter-based degeneralization into a
// plain (single acceptance set) Büchi automaton. See DESIGN.md §14.2.
//
// Convention: the automaton is *state-labeled*. A run q0, q1, q2, ... over a
// word a0, a1, a2, ... requires a_i ⊨ label(q_i) for every i (the first
// letter is read *in* the initial state) and q_{i+1} ∈ succs(q_i). The word
// is accepted iff some run visits accepting states infinitely often. Labels
// are conjunctions of literals stored as two bitmasks over the ApSet.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ltl/formula.hpp"

namespace fvn::ltl {

struct Buchi {
  struct State {
    Valuation must_true = 0;   ///< APs required to hold in this state
    Valuation must_false = 0;  ///< APs required to be false in this state
    bool accepting = false;
    std::vector<std::size_t> succs;

    /// Does valuation `v` satisfy this state's label?
    bool admits(Valuation v) const noexcept {
      return (v & must_true) == must_true && (v & must_false) == 0;
    }
  };

  std::vector<State> states;
  std::vector<std::size_t> initial;
  std::size_t num_aps = 0;

  bool empty() const noexcept { return initial.empty(); }
  /// Graphviz rendering (debugging / DESIGN examples).
  std::string to_dot(const ApSet& aps) const;
};

/// Build the plain Büchi automaton accepting exactly the infinite words that
/// satisfy `formula`. `num_aps` is the size of the interned ApSet (bitmask
/// width). Unreachable tableau nodes are pruned.
Buchi build_buchi(const NnfPtr& formula, std::size_t num_aps);

}  // namespace fvn::ltl
