// fvn::net wire format — the versioned binary codec that carries NDlog
// tuples between distributed nodes (DESIGN.md §12). The simulator never
// needed one (tuples crossed "links" as in-process objects); real transports
// need bytes, and bytes need a format that is
//
//   * deterministic: one tuple has exactly one encoding (varints are
//     minimal-length, doubles are fixed little-endian), so golden hex dumps
//     pin the format and message byte counts are comparable across runs;
//   * self-delimiting: every frame starts with magic + version, every string
//     and list is length-prefixed;
//   * fuzz-resistant: decode never trusts a length or count before checking
//     it against the bytes actually present, never recurses past a fixed
//     depth, and rejects any malformed input with a typed WireError instead
//     of allocating, crashing, or silently truncating.
//
// Layout (version 2, all multi-byte integers as LEB128 varints unless noted):
//
//   frame     := 0x46 0x56 ('F' 'V')  version(2)  kind  payload
//   kind      := 0x00 Data | 0x01 Ack | 0x02 DataBatch
//   Data      := varint(seq) str(src) str(dst) tuple
//   Ack       := varint(seq) str(src) str(dst)      // src = acker; seq is the
//                                                   // *cumulative* highest
//                                                   // in-order batch delivered
//   DataBatch := varint(seq) str(src) str(dst) varint(count) tuple*
//   tuple     := str(predicate) varint(arity) value*
//   value   := tag payload
//     tag 0 Nil     (no payload)
//     tag 1 Bool    one byte, 0x00 or 0x01 (anything else is BadBool)
//     tag 2 Int     zigzag varint (INT64_MIN round-trips)
//     tag 3 Double  8 bytes, IEEE-754 little-endian
//     tag 4 Str     str
//     tag 5 Addr    str
//     tag 6 List    varint(count) value*   (nesting capped at kMaxDepth)
//   str     := varint(len) raw bytes (embedded NUL and non-ASCII preserved)
//
// tests/golden/wire/ holds hex dumps of representative encodings; the format
// cannot change silently without failing those goldens.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ndlog/tuple.hpp"

namespace fvn::net {

inline constexpr std::uint8_t kWireMagic0 = 0x46;  // 'F'
inline constexpr std::uint8_t kWireMagic1 = 0x56;  // 'V'
/// Version 2 added DataBatch (one frame carrying a whole delta round per
/// channel); version-1 decoders reject it, so the version byte was bumped.
inline constexpr std::uint8_t kWireVersion = 2;
/// Maximum List nesting decode() accepts (encode of deeper values throws too,
/// so the limit is symmetric and round trips stay total).
inline constexpr std::size_t kMaxDepth = 32;

/// Why a decode (or, for DepthExceeded, an encode) was rejected.
enum class WireErrorKind : std::uint8_t {
  Truncated,       ///< input ended before the announced structure did
  BadMagic,        ///< frame does not start with 'F' 'V'
  BadVersion,      ///< version byte is not kWireVersion
  BadKind,         ///< frame kind byte is neither Data nor Ack
  BadTag,          ///< value tag is not a ValueKind
  BadBool,         ///< bool payload byte is neither 0 nor 1
  VarintOverflow,  ///< varint longer than 10 bytes or overflowing 64 bits
  LengthOverflow,  ///< announced length/count exceeds the remaining bytes
  DepthExceeded,   ///< list nesting beyond kMaxDepth
  TrailingBytes,   ///< well-formed prefix followed by extra bytes
};

std::string_view to_string(WireErrorKind kind) noexcept;

/// Typed decode failure. The transports treat every WireError as a corrupt
/// frame: counted, dropped, never delivered.
class WireError : public std::runtime_error {
 public:
  WireError(WireErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  WireErrorKind kind() const noexcept { return kind_; }

 private:
  WireErrorKind kind_;
};

/// One transport frame: a single-tuple data message, the cumulative ack for a
/// channel, or a batch carrying one delta round's worth of tuples. `seq`
/// numbers are per directed (sender, receiver) channel and count *frames*
/// (a batch consumes one seq regardless of how many tuples it carries).
struct Frame {
  enum class Kind : std::uint8_t { Data = 0, Ack = 1, DataBatch = 2 };
  Kind kind = Kind::Data;
  std::uint64_t seq = 0;
  std::string src;  ///< Data/DataBatch: sending node. Ack: the acking node.
  std::string dst;  ///< Data/DataBatch: receiving node. Ack: the original sender.
  ndlog::Tuple tuple;  ///< Data only; ignored (and not encoded) otherwise.
  std::vector<ndlog::Tuple> tuples;  ///< DataBatch only; in-order payload.

  bool operator==(const Frame& other) const {
    if (kind != other.kind || seq != other.seq || src != other.src ||
        dst != other.dst) {
      return false;
    }
    switch (kind) {
      case Kind::Data: return tuple == other.tuple;
      case Kind::DataBatch: return tuples == other.tuples;
      case Kind::Ack: return true;
    }
    return false;
  }
};

// --- Low-level building blocks (exposed for tests and goldens) --------------

/// Append a LEB128 varint / zigzag-encoded signed varint.
void append_varint(std::string& out, std::uint64_t v);
void append_signed_varint(std::string& out, std::int64_t v);

/// Append one value / tuple in the layout above. Throws WireError
/// (DepthExceeded) for lists nested beyond kMaxDepth.
void append_value(std::string& out, const ndlog::Value& value);
void append_tuple(std::string& out, const ndlog::Tuple& tuple);

// --- Whole-message codecs ---------------------------------------------------

std::string encode_tuple(const ndlog::Tuple& tuple);
std::string encode_value(const ndlog::Value& value);
std::string encode_frame(const Frame& frame);

/// Strict decoders: consume the whole input or throw (TrailingBytes).
ndlog::Tuple decode_tuple(std::string_view bytes);
ndlog::Value decode_value(std::string_view bytes);
Frame decode_frame(std::string_view bytes);

// --- Hex helpers (goldens, debugging) ---------------------------------------

/// Lowercase hex, no separators ("4656...").
std::string to_hex(std::string_view bytes);
/// Inverse of to_hex; ignores ASCII whitespace; throws std::invalid_argument
/// on non-hex characters or odd digit counts.
std::string from_hex(std::string_view hex);

}  // namespace fvn::net
