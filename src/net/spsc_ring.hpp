// Bounded lock-free single-producer/single-consumer ring, extracted from
// InProcTransport's per-channel mailbox so the dataflow worker pool can reuse
// the same core for its per-worker delta queues (DESIGN.md §12.2, §16.3).
//
// Invariants (the only memory-ordering argument in the repo — keep it here):
//   * exactly one producer thread calls try_push(), exactly one consumer
//     thread calls try_pop();
//   * a slot's contents are published by the tail_ release-store and read
//     after the consumer's acquire-load of tail_, and are consumed before the
//     head_ release-store frees the slot for reuse — slot contents never
//     race;
//   * Capacity is a power of two; indices grow monotonically and are masked
//     on access, so head_ <= tail_ <= head_ + Capacity at all times.
//
// try_push()/try_pop() never block: callers layer their own overflow policy
// (InProcTransport spills to a mutexed deque; the worker pool sizes the ring
// to the round and drains concurrently).
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace fvn::net {

template <typename T, std::size_t Capacity>
class SpscRing {
  static_assert(Capacity != 0 && (Capacity & (Capacity - 1)) == 0,
                "SpscRing capacity must be a power of two");

 public:
  SpscRing() : slots_(Capacity) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer thread only. False when the ring is full (caller's overflow
  /// policy decides what happens; `value` is untouched then).
  bool try_push(T& value) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) >= Capacity) return false;
    slots_[t & (Capacity - 1)] = std::move(value);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer thread only. False when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[h & (Capacity - 1)]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Any thread: approximate emptiness (exact for the producer/consumer
  /// themselves; a momentarily-stale answer for observers).
  bool looks_empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  static constexpr std::size_t capacity() noexcept { return Capacity; }

 private:
  std::vector<T> slots_;
  std::atomic<std::size_t> head_{0};  // consumer cursor
  std::atomic<std::size_t> tail_{0};  // producer cursor
};

}  // namespace fvn::net
