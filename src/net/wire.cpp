#include "net/wire.hpp"

#include <cstring>

namespace fvn::net {

using ndlog::Tuple;
using ndlog::Value;
using ndlog::ValueKind;

std::string_view to_string(WireErrorKind kind) noexcept {
  switch (kind) {
    case WireErrorKind::Truncated: return "truncated";
    case WireErrorKind::BadMagic: return "bad-magic";
    case WireErrorKind::BadVersion: return "bad-version";
    case WireErrorKind::BadKind: return "bad-kind";
    case WireErrorKind::BadTag: return "bad-tag";
    case WireErrorKind::BadBool: return "bad-bool";
    case WireErrorKind::VarintOverflow: return "varint-overflow";
    case WireErrorKind::LengthOverflow: return "length-overflow";
    case WireErrorKind::DepthExceeded: return "depth-exceeded";
    case WireErrorKind::TrailingBytes: return "trailing-bytes";
  }
  return "unknown";
}

namespace {

[[noreturn]] void fail(WireErrorKind kind, const std::string& detail) {
  throw WireError(kind, "wire: " + std::string(to_string(kind)) + ": " + detail);
}

/// Bounds-checked cursor over the input. Every read validates against
/// remaining() before touching (or allocating for) the payload.
struct Reader {
  std::string_view data;
  std::size_t pos = 0;

  std::size_t remaining() const noexcept { return data.size() - pos; }

  std::uint8_t byte(const char* what) {
    if (remaining() < 1) fail(WireErrorKind::Truncated, what);
    return static_cast<std::uint8_t>(data[pos++]);
  }

  std::uint64_t varint(const char* what) {
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < 10; ++i) {
      const std::uint8_t b = byte(what);
      // The 10th byte may only contribute the final bit of a 64-bit value.
      if (i == 9 && (b & ~std::uint8_t{0x01}) != 0) {
        fail(WireErrorKind::VarintOverflow, what);
      }
      value |= static_cast<std::uint64_t>(b & 0x7F) << (7 * i);
      if ((b & 0x80) == 0) return value;
    }
    fail(WireErrorKind::VarintOverflow, what);
  }

  std::string str(const char* what) {
    const std::uint64_t len = varint(what);
    if (len > remaining()) fail(WireErrorKind::LengthOverflow, what);
    std::string out(data.substr(pos, static_cast<std::size_t>(len)));
    pos += static_cast<std::size_t>(len);
    return out;
  }
};

std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

Value read_value(Reader& r, std::size_t depth) {
  const std::uint8_t tag = r.byte("value tag");
  switch (tag) {
    case static_cast<std::uint8_t>(ValueKind::Nil):
      return Value::nil();
    case static_cast<std::uint8_t>(ValueKind::Bool): {
      const std::uint8_t b = r.byte("bool payload");
      if (b > 1) fail(WireErrorKind::BadBool, "byte " + std::to_string(b));
      return Value::boolean(b == 1);
    }
    case static_cast<std::uint8_t>(ValueKind::Int):
      return Value::integer(zigzag_decode(r.varint("int payload")));
    case static_cast<std::uint8_t>(ValueKind::Double): {
      if (r.remaining() < 8) fail(WireErrorKind::Truncated, "double payload");
      std::uint64_t bits = 0;
      for (std::size_t i = 0; i < 8; ++i) {
        bits |= static_cast<std::uint64_t>(
                    static_cast<std::uint8_t>(r.data[r.pos + i]))
                << (8 * i);
      }
      r.pos += 8;
      double d;
      static_assert(sizeof(d) == sizeof(bits));
      std::memcpy(&d, &bits, sizeof(d));
      return Value::real(d);
    }
    case static_cast<std::uint8_t>(ValueKind::Str):
      return Value::str(r.str("string payload"));
    case static_cast<std::uint8_t>(ValueKind::Addr):
      return Value::addr(r.str("addr payload"));
    case static_cast<std::uint8_t>(ValueKind::List): {
      if (depth >= kMaxDepth) {
        fail(WireErrorKind::DepthExceeded, "list nesting > " + std::to_string(kMaxDepth));
      }
      const std::uint64_t count = r.varint("list count");
      // Every element costs at least its tag byte; a count beyond the
      // remaining input is corrupt and must not drive the reserve below.
      if (count > r.remaining()) fail(WireErrorKind::LengthOverflow, "list count");
      std::vector<Value> items;
      items.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        items.push_back(read_value(r, depth + 1));
      }
      return Value::list(std::move(items));
    }
    default:
      fail(WireErrorKind::BadTag, "tag " + std::to_string(tag));
  }
}

Tuple read_tuple(Reader& r) {
  std::string predicate = r.str("tuple predicate");
  const std::uint64_t arity = r.varint("tuple arity");
  if (arity > r.remaining()) fail(WireErrorKind::LengthOverflow, "tuple arity");
  std::vector<Value> values;
  values.reserve(static_cast<std::size_t>(arity));
  for (std::uint64_t i = 0; i < arity; ++i) {
    values.push_back(read_value(r, 0));
  }
  return Tuple(std::move(predicate), std::move(values));
}

void require_consumed(const Reader& r, const char* what) {
  if (r.remaining() != 0) {
    fail(WireErrorKind::TrailingBytes,
         std::string(what) + ": " + std::to_string(r.remaining()) + " bytes left");
  }
}

void append_str(std::string& out, std::string_view s) {
  append_varint(out, s.size());
  out.append(s.data(), s.size());
}

void append_value_at_depth(std::string& out, const Value& value, std::size_t depth) {
  out.push_back(static_cast<char>(value.kind()));
  switch (value.kind()) {
    case ValueKind::Nil:
      break;
    case ValueKind::Bool:
      out.push_back(value.as_bool() ? '\x01' : '\x00');
      break;
    case ValueKind::Int:
      append_signed_varint(out, value.as_int());
      break;
    case ValueKind::Double: {
      std::uint64_t bits;
      const double d = value.as_double();
      std::memcpy(&bits, &d, sizeof(bits));
      for (std::size_t i = 0; i < 8; ++i) {
        out.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
      }
      break;
    }
    case ValueKind::Str:
      append_str(out, value.as_str());
      break;
    case ValueKind::Addr:
      append_str(out, value.as_addr());
      break;
    case ValueKind::List: {
      if (depth >= kMaxDepth) {
        fail(WireErrorKind::DepthExceeded, "list nesting > " + std::to_string(kMaxDepth));
      }
      const auto& items = value.as_list();
      append_varint(out, items.size());
      for (const auto& item : items) append_value_at_depth(out, item, depth + 1);
      break;
    }
  }
}

}  // namespace

void append_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void append_signed_varint(std::string& out, std::int64_t v) {
  // Zigzag: 0,-1,1,-2,... -> 0,1,2,3,... so small magnitudes stay short and
  // INT64_MIN maps to UINT64_MAX (round-trip exact).
  append_varint(out, (static_cast<std::uint64_t>(v) << 1) ^
                         static_cast<std::uint64_t>(v >> 63));
}

void append_value(std::string& out, const Value& value) {
  append_value_at_depth(out, value, 0);
}

void append_tuple(std::string& out, const Tuple& tuple) {
  append_str(out, tuple.predicate());
  append_varint(out, tuple.arity());
  for (const auto& v : tuple.values()) append_value(out, v);
}

std::string encode_tuple(const Tuple& tuple) {
  std::string out;
  append_tuple(out, tuple);
  return out;
}

std::string encode_value(const Value& value) {
  std::string out;
  append_value(out, value);
  return out;
}

std::string encode_frame(const Frame& frame) {
  std::string out;
  out.push_back(static_cast<char>(kWireMagic0));
  out.push_back(static_cast<char>(kWireMagic1));
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(frame.kind));
  append_varint(out, frame.seq);
  append_str(out, frame.src);
  append_str(out, frame.dst);
  if (frame.kind == Frame::Kind::Data) append_tuple(out, frame.tuple);
  if (frame.kind == Frame::Kind::DataBatch) {
    append_varint(out, frame.tuples.size());
    for (const auto& t : frame.tuples) append_tuple(out, t);
  }
  return out;
}

Tuple decode_tuple(std::string_view bytes) {
  Reader r{bytes};
  Tuple tuple = read_tuple(r);
  require_consumed(r, "tuple");
  return tuple;
}

Value decode_value(std::string_view bytes) {
  Reader r{bytes};
  Value value = read_value(r, 0);
  require_consumed(r, "value");
  return value;
}

Frame decode_frame(std::string_view bytes) {
  Reader r{bytes};
  if (r.remaining() < 2) fail(WireErrorKind::Truncated, "frame magic");
  if (r.byte("magic") != kWireMagic0 || r.byte("magic") != kWireMagic1) {
    fail(WireErrorKind::BadMagic, "frame does not start with 'F' 'V'");
  }
  const std::uint8_t version = r.byte("version");
  if (version != kWireVersion) {
    fail(WireErrorKind::BadVersion, "version " + std::to_string(version));
  }
  const std::uint8_t kind = r.byte("frame kind");
  if (kind > static_cast<std::uint8_t>(Frame::Kind::DataBatch)) {
    fail(WireErrorKind::BadKind, "kind " + std::to_string(kind));
  }
  Frame frame;
  frame.kind = static_cast<Frame::Kind>(kind);
  frame.seq = r.varint("frame seq");
  frame.src = r.str("frame src");
  frame.dst = r.str("frame dst");
  if (frame.kind == Frame::Kind::Data) frame.tuple = read_tuple(r);
  if (frame.kind == Frame::Kind::DataBatch) {
    const std::uint64_t count = r.varint("batch count");
    // Every tuple costs at least its predicate length byte + arity byte; a
    // count beyond the remaining input is corrupt and must not drive the
    // reserve below.
    if (count > r.remaining()) fail(WireErrorKind::LengthOverflow, "batch count");
    frame.tuples.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) frame.tuples.push_back(read_tuple(r));
  }
  require_consumed(r, "frame");
  return frame;
}

std::string to_hex(std::string_view bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<std::uint8_t>(c);
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0x0F]);
  }
  return out;
}

std::string from_hex(std::string_view hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  int pending = -1;
  for (const char c : hex) {
    if (c == ' ' || c == '\n' || c == '\r' || c == '\t') continue;
    const int n = nibble(c);
    if (n < 0) throw std::invalid_argument("from_hex: non-hex character");
    if (pending < 0) {
      pending = n;
    } else {
      out.push_back(static_cast<char>((pending << 4) | n));
      pending = -1;
    }
  }
  if (pending >= 0) throw std::invalid_argument("from_hex: odd digit count");
  return out;
}

}  // namespace fvn::net
