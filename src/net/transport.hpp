// fvn::net transports — how encoded frames move between concurrently
// executing nodes (DESIGN.md §12). A Transport is a set of named mailboxes:
// node threads push frames at each other with send() and drain their own
// mailbox with recv(). Two implementations ship:
//
//   * InProcTransport — one lock-guarded FIFO deque per node. The default:
//     deterministic-ish, dependency-free, and what the differential suite and
//     TSan runs use.
//   * UdpTransport — one non-blocking AF_INET loopback socket per node.
//     Real kernel datagrams with real loss-of-ordering potential; construction
//     throws TransportError where sockets are unavailable (sandboxes), and
//     every caller is expected to degrade gracefully (tests skip, the CLI
//     reports exit 1).
//
// Fault injection lives in the shared base class so both transports misbehave
// identically: seeded per-sender RNG streams decide drop / duplicate /
// reorder / delay per frame, so a given (seed, per-sender send sequence)
// misbehaves reproducibly regardless of which transport carries the bytes.
// Reorder and delay are implemented as a per-sender hold queue released by
// pump(), which node event loops call every iteration.
//
// Thread model: send()/pump() are called by the sending node's thread,
// recv() by the receiving node's thread, quiet()/stats snapshots by the
// coordinator; all shared state is mutex-guarded. add_node() must complete
// before any node thread starts.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace fvn::net {

/// Thrown when a transport cannot be constructed (e.g. no socket support) or
/// a frame is addressed to an unknown node.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what) : std::runtime_error(what) {}
};

/// Seeded misbehavior knobs. All rates are per-frame probabilities in [0,1].
struct FaultOptions {
  double drop_rate = 0.0;       ///< frame silently discarded
  double duplicate_rate = 0.0;  ///< frame transmitted twice
  double reorder_rate = 0.0;    ///< frame held ~1-3ms, letting later frames pass
  double delay_ms = 0.0;        ///< uniform extra [0, delay_ms) hold per frame
  std::uint64_t seed = 1;       ///< fault RNG seed (per-sender streams derive from it)

  bool any() const noexcept {
    return drop_rate > 0 || duplicate_rate > 0 || reorder_rate > 0 || delay_ms > 0;
  }
};

/// Monotonic counters aggregated across all senders (coordinator reads a
/// snapshot under the same mutex the senders update it under).
struct TransportStats {
  std::uint64_t frames_sent = 0;         ///< send() calls (pre-fault)
  std::uint64_t frames_delivered = 0;    ///< frames handed to recv() callers
  std::uint64_t frames_dropped = 0;      ///< fault injection: discarded
  std::uint64_t frames_duplicated = 0;   ///< fault injection: sent twice
  std::uint64_t frames_delayed = 0;      ///< fault injection: held in the hold queue
  std::uint64_t bytes_sent = 0;          ///< post-fault bytes actually transmitted
  std::uint64_t bytes_delivered = 0;
};

class Transport {
 public:
  explicit Transport(FaultOptions faults = {});
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Register a node before any thread starts. Idempotent.
  virtual void add_node(const std::string& name);

  /// Fault-injecting send from `from`'s thread. Throws TransportError for an
  /// unregistered destination.
  void send(const std::string& from, const std::string& to, std::string frame);

  /// Release any held (reordered/delayed) frames from `from` whose hold has
  /// elapsed. Node loops call this once per iteration.
  void pump(const std::string& from);

  /// Pop the next frame for `node`; false when the mailbox is empty.
  bool recv(const std::string& node, std::string& frame);

  /// True when no frame is buffered anywhere: mailboxes, hold queues, and
  /// (for UDP) kernel socket buffers. Coordinator-side quiescence input.
  bool quiet();

  TransportStats stats();

 protected:
  /// Actually move bytes: push into the destination mailbox / socket.
  virtual void transmit(const std::string& to, std::string frame) = 0;
  /// Pop from the implementation mailbox for `node`.
  virtual bool poll(const std::string& node, std::string& frame) = 0;
  /// Implementation part of quiet() (mailboxes / socket buffers empty).
  virtual bool impl_quiet() = 0;

 private:
  struct HeldFrame {
    double due_ms = 0.0;  // steady-clock milliseconds since transport start
    std::string to;
    std::string frame;
  };
  struct SenderState {
    std::mt19937_64 rng;
    std::vector<HeldFrame> held;
  };

  void transmit_counted(const std::string& to, std::string frame);
  double now_ms() const;

  FaultOptions faults_;
  std::mutex mutex_;  // guards senders_ and stats_
  std::map<std::string, SenderState> senders_;
  TransportStats stats_;
  std::chrono::steady_clock::time_point epoch_;
};

/// Lock-guarded per-node FIFO mailboxes, all in one process.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(FaultOptions faults = {});

  void add_node(const std::string& name) override;

 protected:
  void transmit(const std::string& to, std::string frame) override;
  bool poll(const std::string& node, std::string& frame) override;
  bool impl_quiet() override;

 private:
  struct Mailbox {
    std::mutex mutex;
    std::deque<std::string> frames;
  };
  std::mutex mutex_;  // guards the map shape only (nodes added before start)
  std::map<std::string, std::unique_ptr<Mailbox>> mailboxes_;
};

/// Non-blocking AF_INET UDP sockets on 127.0.0.1, one per node. Construction
/// of the first socket happens lazily in add_node(); failures throw
/// TransportError so callers can skip cleanly where sockets are unavailable.
class UdpTransport final : public Transport {
 public:
  explicit UdpTransport(FaultOptions faults = {});
  ~UdpTransport() override;

  void add_node(const std::string& name) override;

 protected:
  void transmit(const std::string& to, std::string frame) override;
  bool poll(const std::string& node, std::string& frame) override;
  bool impl_quiet() override;

 private:
  struct Socket {
    int fd = -1;
    std::uint16_t port = 0;
  };
  std::mutex mutex_;
  std::map<std::string, Socket> sockets_;
};

}  // namespace fvn::net
