// fvn::net transports — how encoded frames move between concurrently
// executing nodes (DESIGN.md §12). A Transport is a set of named mailboxes:
// node threads push frames at each other with send() and drain their own
// mailbox with recv(). Two implementations ship:
//
//   * InProcTransport — one bounded lock-free SPSC ring per directed
//     (src,dst) channel. Exactly one producer (the sending node's thread,
//     which also runs pump()) and one consumer (the receiving node's thread)
//     touch a ring, so a frame crosses threads with two atomic stores and no
//     lock. A mutex-guarded overflow deque per channel absorbs bursts beyond
//     the ring capacity so senders never block and frames are never lost;
//     FIFO order per channel is preserved across the spill (see the invariant
//     notes on Channel below and DESIGN.md §12.2).
//   * UdpTransport — one non-blocking AF_INET loopback socket per node.
//     Real kernel datagrams with real loss-of-ordering potential; construction
//     throws TransportError where sockets are unavailable (sandboxes), and
//     every caller is expected to degrade gracefully (tests skip, the CLI
//     reports exit 1).
//
// Fault injection lives in the shared base class so both transports misbehave
// identically: seeded per-sender RNG streams decide drop / duplicate /
// reorder / delay per frame, so a given (seed, per-sender send sequence)
// misbehaves reproducibly regardless of which transport carries the bytes.
// Reorder and delay are implemented as a per-sender hold queue released by
// pump(), which node event loops call every iteration.
//
// Thread model: send()/pump() are called by the sending node's thread,
// recv() by the receiving node's thread, quiet()/stats snapshots by the
// coordinator. Per-sender state (RNG, hold queue, send-side counters) sits
// behind a per-sender mutex that only the sender's own thread and the
// coordinator's occasional polls ever take — uncontended on the hot path —
// and delivery-side counters are plain atomics, so no global lock serializes
// concurrent senders. add_node() must complete before any node thread starts;
// afterwards the name→state maps are read-only and looked up without locks.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/spsc_ring.hpp"

namespace fvn::net {

/// Thrown when a transport cannot be constructed (e.g. no socket support) or
/// a frame is addressed to an unknown node.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what) : std::runtime_error(what) {}
};

/// Seeded misbehavior knobs. All rates are per-frame probabilities in [0,1].
struct FaultOptions {
  double drop_rate = 0.0;       ///< frame silently discarded
  double duplicate_rate = 0.0;  ///< frame transmitted twice
  double reorder_rate = 0.0;    ///< frame held ~1-3ms, letting later frames pass
  double delay_ms = 0.0;        ///< uniform extra [0, delay_ms) hold per frame
  std::uint64_t seed = 1;       ///< fault RNG seed (per-sender streams derive from it)

  bool any() const noexcept {
    return drop_rate > 0 || duplicate_rate > 0 || reorder_rate > 0 || delay_ms > 0;
  }
};

/// Monotonic counters aggregated across all senders. stats() sums the
/// per-sender shards (each under its own mutex) and the delivery atomics.
struct TransportStats {
  std::uint64_t frames_sent = 0;         ///< send() calls (pre-fault)
  std::uint64_t frames_delivered = 0;    ///< frames handed to recv() callers
  std::uint64_t frames_dropped = 0;      ///< fault injection: discarded
  std::uint64_t frames_duplicated = 0;   ///< fault injection: sent twice
  std::uint64_t frames_delayed = 0;      ///< fault injection: held in the hold queue
  std::uint64_t bytes_sent = 0;          ///< post-fault bytes actually transmitted
  std::uint64_t bytes_delivered = 0;
};

class Transport {
 public:
  explicit Transport(FaultOptions faults = {});
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Register a node before any thread starts. Idempotent.
  virtual void add_node(const std::string& name);

  /// Fault-injecting send from `from`'s thread. Throws TransportError for an
  /// unregistered destination.
  void send(const std::string& from, const std::string& to, std::string frame);

  /// Release any held (reordered/delayed) frames from `from` whose hold has
  /// elapsed. Node loops call this once per iteration.
  void pump(const std::string& from);

  /// Pop the next frame for `node`; false when the mailbox is empty.
  bool recv(const std::string& node, std::string& frame);

  /// Opaque handle to `node`'s mailbox, valid once add_node registration is
  /// complete (the name maps are frozen then) and for the transport's
  /// lifetime. recv(cursor, ...) skips the per-call name lookup — the node
  /// event loop polls its mailbox every sweep, so that lookup is pure idle
  /// tax. Null when the implementation offers no fast path; the name-based
  /// recv() always works.
  virtual void* rx_cursor(const std::string& node) { (void)node; return nullptr; }

  /// Cursor fast path of recv(); `cursor` must come from this transport's
  /// rx_cursor() and be non-null.
  bool recv(void* cursor, std::string& frame);

  /// Doorbell protocol — lets an idle node *block* instead of spin-polling,
  /// which matters enormously when nodes outnumber cores: a runnable-but-idle
  /// thread steals scheduler slices from whichever node has real work. Every
  /// transmit rings the destination's doorbell, so a parked node wakes the
  /// moment a frame (data or ack) is bound for it. Usage, race-free:
  ///
  ///   ticket = rx_ticket(name);   // snapshot BEFORE the final mailbox check
  ///   if (sweep found nothing) rx_wait(name, ticket, timeout_ms);
  ///
  /// A frame transmitted after the snapshot advances the signal, so rx_wait
  /// returns immediately instead of sleeping through it.
  std::uint64_t rx_ticket(const std::string& node);
  /// Block until the doorbell moves past `ticket`, `timeout_ms` elapses, or
  /// wake_all() is called. Fault injection clamps the timeout: held
  /// (reordered/delayed) frames are only released by the *sender's* pump, so
  /// senders must keep waking while faults are live.
  void rx_wait(const std::string& node, std::uint64_t ticket, double timeout_ms);
  /// Ring every doorbell (coordinator, after setting the stop flag) so parked
  /// node threads notice shutdown immediately instead of timing out.
  void wake_all();

  /// Coordinator progress doorbell — the reverse direction of the per-node
  /// bells. Node threads ring it when they park (transition to idle) or fail,
  /// so the termination-detection loop blocks between scans and wakes the
  /// moment the cluster's idle/busy picture may have changed, instead of
  /// discovering it a poll interval later. Same race-free ticket contract:
  /// snapshot BEFORE the scan the coordinator might sleep on.
  std::uint64_t progress_ticket();
  void progress_wait(std::uint64_t ticket, double timeout_ms);
  void ring_progress();

  /// True when no frame is buffered anywhere: mailboxes, hold queues, and
  /// (for UDP) kernel socket buffers. Coordinator-side quiescence input.
  bool quiet();

  TransportStats stats();

 protected:
  /// Actually move bytes from `from` to `to`: push into the destination
  /// mailbox / socket. Always called from `from`'s thread (send or pump).
  virtual void transmit(const std::string& from, const std::string& to,
                        std::string frame) = 0;
  /// Pop from the implementation mailbox for `node`.
  virtual bool poll(const std::string& node, std::string& frame) = 0;
  /// Cursor counterpart of poll(); only reachable when rx_cursor() returned
  /// non-null, so the default (for transports without a fast path) is never.
  virtual bool poll_cursor(void* cursor, std::string& frame) {
    (void)cursor;
    (void)frame;
    return false;
  }
  /// Implementation part of quiet() (mailboxes / socket buffers empty).
  virtual bool impl_quiet() = 0;

 private:
  struct HeldFrame {
    double due_ms = 0.0;  // steady-clock milliseconds since transport start
    std::string to;
    std::string frame;
  };
  /// One per node. `signal` counts rings; `waiting` is set under `mutex`
  /// before blocking, so a producer that observes it can take the mutex and
  /// be certain its notify lands inside the wait (no lost wakeups — a ring
  /// the producer fired before the flag was visible is caught by the
  /// predicate's signal/ticket comparison instead).
  struct Doorbell {
    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<std::uint64_t> signal{0};
    std::atomic<bool> waiting{false};
  };
  /// All state only `from`'s thread writes. The mutex exists for the
  /// coordinator's quiet()/stats() reads; the owning thread never contends.
  struct SenderState {
    std::mutex mutex;
    std::mt19937_64 rng;
    std::vector<HeldFrame> held;
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_dropped = 0;
    std::uint64_t frames_duplicated = 0;
    std::uint64_t frames_delayed = 0;
    std::uint64_t bytes_sent = 0;
  };

  SenderState& sender(const std::string& from);
  void ring(const std::string& to);
  static void ring_bell(Doorbell& bell);
  static void wait_bell(Doorbell& bell, std::uint64_t ticket, double timeout_ms);
  double now_ms() const;

  FaultOptions faults_;
  std::mutex setup_mutex_;  // guards senders_'s shape during add_node only
  std::map<std::string, std::unique_ptr<SenderState>> senders_;
  std::map<std::string, std::unique_ptr<Doorbell>> bells_;
  Doorbell progress_;  // coordinator-side; rung by node threads
  std::atomic<std::uint64_t> frames_delivered_{0};
  std::atomic<std::uint64_t> bytes_delivered_{0};
  std::chrono::steady_clock::time_point epoch_;
};

/// Bounded lock-free SPSC rings per directed channel, all in one process.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(FaultOptions faults = {});

  void add_node(const std::string& name) override;
  void* rx_cursor(const std::string& node) override;

 protected:
  void transmit(const std::string& from, const std::string& to,
                std::string frame) override;
  bool poll(const std::string& node, std::string& frame) override;
  bool poll_cursor(void* cursor, std::string& frame) override;
  bool impl_quiet() override;

 private:
  /// One directed (src,dst) channel: an SpscRing (see spsc_ring.hpp for the
  /// single-producer/single-consumer memory-ordering argument) plus an
  /// overflow deque. `overflowing_` is set only by the producer (under
  /// overflow_mutex_) and cleared only by the consumer (under
  /// overflow_mutex_, once the deque is drained). While it is set the
  /// producer appends to the overflow deque instead of the ring, so every
  /// overflow frame is newer than every ring frame and draining
  /// ring-then-overflow preserves per-channel FIFO.
  struct Channel {
    static constexpr std::size_t kCapacity = 256;

    SpscRing<std::string, kCapacity> ring;
    std::atomic<bool> overflowing_{false};
    std::mutex overflow_mutex_;
    std::deque<std::string> overflow_;

    void push(std::string frame);      // producer thread only
    bool pop(std::string& frame);      // consumer thread only
    bool looks_empty();                // coordinator: approximate emptiness
  };

  Channel* channel(const std::string& from, const std::string& to);

  std::mutex setup_mutex_;  // guards map shapes during add_node only
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Channel>> channels_;
  std::map<std::string, std::vector<Channel*>> inbound_;  // dst -> its channels
  std::vector<std::string> names_;
};

/// Non-blocking AF_INET UDP sockets on 127.0.0.1, one per node. Construction
/// of the first socket happens lazily in add_node(); failures throw
/// TransportError so callers can skip cleanly where sockets are unavailable.
class UdpTransport final : public Transport {
 public:
  explicit UdpTransport(FaultOptions faults = {});
  ~UdpTransport() override;

  void add_node(const std::string& name) override;
  void* rx_cursor(const std::string& node) override;

 protected:
  void transmit(const std::string& from, const std::string& to,
                std::string frame) override;
  bool poll(const std::string& node, std::string& frame) override;
  bool poll_cursor(void* cursor, std::string& frame) override;
  bool impl_quiet() override;

 private:
  struct Socket {
    int fd = -1;
    std::uint16_t port = 0;
  };
  std::mutex mutex_;
  std::map<std::string, Socket> sockets_;
};

}  // namespace fvn::net
