// fvn::net node runtime — one concurrently-executing NDlog node (DESIGN.md
// §12). A Node owns its slice of the distributed database and an executor
// over it (interpreter RuleEngine or compiled dataflow::Engine), and runs an
// event loop on its own std::thread:
//
//   pump held frames -> retransmit overdue -> drain mailbox -> flush batches
//
// Rule semantics deliberately mirror runtime::Simulator install/run_rules/
// run_agg_rules line for line (keyed overwrite, aggregate diff-against-cache,
// "remote copies age out") so the differential suite can demand an *identical*
// merged fixpoint from both executives.
//
// Shipping is *batched*: derived tuples bound for a remote node accumulate in
// a per-destination channel buffer and flush as one DataBatch wire frame per
// sweep — a whole delta round's worth of tuples pays for one encode, one
// mailbox crossing, one seq number, and one pending/retransmit entry instead
// of one each per tuple.
//
// Reliability: the transport may drop, duplicate, reorder and delay frames;
// the Node layers a per-directed-channel protocol on top that masks all four:
//
//   sender    every DataBatch carries a per-(src,dst) sequence number and
//             stays in a pending map until acked; a min-heap of due times
//             finds overdue batches in O(log n), and each retransmission
//             doubles the backoff up to a cap — but backoff and counters
//             only advance after the transport actually accepted the send.
//   receiver  delivers batches exactly once and in sequence order via a
//             reassembly buffer, and answers every DataBatch (including
//             duplicates — the previous ack may have been the casualty) with
//             a *cumulative* ack carrying the highest in-order seq delivered;
//             one ack can clear many pending batches.
//
// Exactly-once in-order delivery per channel makes the fault injection
// semantically invisible; it only costs retransmissions and time.
//
// Thread model: everything mutable on a Node is owned by its thread, except
// the std::atomic signals (idle/activity/unacked/failed) the coordinator
// polls for termination detection, and the transport (internally
// synchronized). The obs series pointers are wired before the thread starts
// and point into a Registry nobody else touches concurrently per-node.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dataflow/engine.hpp"
#include "dataflow/plan.hpp"
#include "dataflow/workers.hpp"
#include "ndlog/catalog.hpp"
#include "ndlog/eval.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fvn::net {

/// Channel-layer knobs (cluster-wide; see Cluster).
struct ReliabilityOptions {
  /// Off = fire-and-forget raw frames (only sane on a fault-free transport;
  /// the differential suite uses it as the zero-overhead baseline). Raw
  /// frames carry seq 0 — nothing checks a raw seq, so allocating one per
  /// ship would only make otherwise-identical runs byte-diverge.
  bool enabled = true;
  double initial_backoff_ms = 2.0;  ///< first retransmit deadline
  double max_backoff_ms = 50.0;     ///< backoff doubles up to this cap
  /// Accumulate a sweep's derived tuples per destination and flush them as
  /// one DataBatch frame (both modes). Off = flush after every ship, i.e.
  /// one single-tuple batch per derived tuple (the A/B baseline).
  bool batch = true;
};

/// Per-node observability series, wired by the Cluster before the node's
/// thread starts (all null when metrics are off). Each node gets its own
/// series — obs::Registry is not thread-safe, so no two threads may share one.
struct NodeObs {
  obs::Counter* sent = nullptr;
  obs::Counter* received = nullptr;
  obs::Counter* retransmitted = nullptr;
  obs::Counter* acked = nullptr;
  obs::Counter* installed = nullptr;
  obs::Counter* bytes_sent = nullptr;
  obs::Counter* bytes_received = nullptr;
  obs::Counter* ack_bytes = nullptr;       ///< ack-frame bytes within bytes_sent
  obs::Counter* tuples_shipped = nullptr;  ///< tuples carried by sent batches
  /// Frames drained per non-empty mailbox sweep (the observable backlog).
  obs::Histogram* mailbox_depth = nullptr;
  /// Tuples per flushed DataBatch (the batching win, observable).
  obs::Histogram* batch_size = nullptr;
  obs::Timer* encode = nullptr;
  obs::Timer* decode = nullptr;
  /// Engine-agnostic tuple lifecycle stream: when set, the node records every
  /// database mutation as a cat "tuple" instant named "install <pred>" /
  /// "retract <pred>" with args {"node":...,"tuple":...} — the same shape
  /// runtime::Simulator emits, so LTL runtime monitors consume either engine's
  /// trace unchanged. Must point at a per-node Trace (obs::Trace is not
  /// thread-safe); the Cluster owns one per node and merges after join.
  obs::Trace* tuple_trace = nullptr;
  /// Live engine-agnostic tuple-event hook (ClusterOptions::tuple_events),
  /// invoked inline on this node's thread for every install/retract with the
  /// node clock in seconds. Shared across nodes — the callee must be
  /// internally synchronized.
  const std::function<void(std::string_view, const std::string&,
                           const ndlog::Tuple&, double)>* tuple_events = nullptr;
};

/// Plain counters, safe to read after the node's thread has been joined.
/// `bytes_sent`/`bytes_received` count every payload byte handed to / taken
/// from the transport — data batches, retransmissions, *and acks* (acks are
/// also broken out separately so the protocol overhead stays visible).
struct NodeStats {
  std::uint64_t sent = 0;            ///< DataBatch frames first-transmitted
  std::uint64_t received = 0;        ///< DataBatch frames delivered in-order
  std::uint64_t tuples_shipped = 0;  ///< tuples carried by `sent` batches
  std::uint64_t tuples_received = 0; ///< tuples carried by `received` batches
  std::uint64_t retransmitted = 0;   ///< DataBatch frames re-sent after timeout
  std::uint64_t acked = 0;           ///< pending batches cleared by (cumulative) acks
  std::uint64_t acks_sent = 0;       ///< Ack frames transmitted
  std::uint64_t duplicates = 0;      ///< already-delivered batches re-acked
  std::uint64_t corrupt_frames = 0;  ///< frames decode rejected (WireError)
  std::uint64_t installed = 0;       ///< local installs (new or overwrite)
  std::uint64_t overwrites = 0;      ///< keyed overwrites among installed
  std::uint64_t bytes_sent = 0;      ///< payload bytes handed to the transport
  std::uint64_t bytes_received = 0;
  std::uint64_t ack_bytes = 0;       ///< ack-frame bytes within bytes_sent
  /// Node-clock ms of the last frame/seed processed — max over nodes is when
  /// the cluster actually finished; wall_ms minus that is the detection tail.
  double last_active_ms = 0.0;
};

/// One distributed NDlog node. Construct, seed(), then start(); the Cluster
/// owns the lifecycle.
class Node {
 public:
  /// `program`, `catalog`, `builtins`, `plan`, `transport` and `pool` must
  /// outlive the node; `plan` is null in interpreter mode. `pool` (may be
  /// null = serial) is this node's private shard-parallel worker pool: the
  /// Cluster only hands one over when fvn::ndlog::parallel certified the
  /// program, and the node then evaluates each delivered batch in
  /// shard-keyed rounds instead of per-tuple cascades.
  Node(std::string name, const ndlog::Program& program, const ndlog::Catalog& catalog,
       const ndlog::BuiltinRegistry& builtins, const dataflow::Plan* plan,
       Transport& transport, ReliabilityOptions reliability, NodeObs obs,
       dataflow::WorkerPool* pool = nullptr);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// Queue a base fact for delivery at startup. Must be called before run().
  void seed(ndlog::Tuple fact);

  /// Thread body: process seeds, then loop until `stop` is set. Never throws;
  /// failures are recorded (failed()/error()) so the coordinator can abort.
  void run(const std::atomic<bool>& stop);

  // --- Coordinator-facing signals (safe while the thread runs) --------------

  /// True when the last loop sweep found nothing to do.
  bool idle() const noexcept { return idle_.load(std::memory_order_acquire); }
  /// Monotonic count of frames/seeds processed — the double-scan input.
  std::uint64_t activity() const noexcept {
    return activity_.load(std::memory_order_acquire);
  }
  /// DataBatch frames sent but not yet acked (0 when reliability is off).
  std::uint64_t unacked() const noexcept {
    return unacked_.load(std::memory_order_acquire);
  }
  bool failed() const noexcept { return failed_.load(std::memory_order_acquire); }

  // --- Post-join accessors (thread must have exited) ------------------------

  const std::string& error() const noexcept { return error_; }
  const ndlog::Database& database() const noexcept { return db_; }
  const NodeStats& stats() const noexcept { return stats_; }

 private:
  struct Pending {
    std::string bytes;       // encoded frame, ready to re-send
    double due_ms = 0.0;     // next retransmit deadline (node clock)
    double backoff_ms = 0.0; // current backoff step
  };
  struct OutChannel {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, Pending> pending;
  };
  struct InChannel {
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, std::vector<ndlog::Tuple>> reassembly;  // future seqs
  };
  /// Min-heap entry locating a retransmit deadline. Entries are lazy: an
  /// acked batch or a rescheduled deadline leaves a stale entry behind,
  /// detected by comparing due_ms against the live Pending record on pop.
  struct Due {
    double due_ms = 0.0;
    const std::string* dest = nullptr;  // stable: keys of out_ never move
    std::uint64_t seq = 0;
    bool operator>(const Due& other) const { return due_ms > other.due_ms; }
  };
  /// Catalog facts consulted per routed/delivered tuple, interned once per
  /// predicate name so the hot path never repeats a std::map string walk.
  struct PredInfo {
    std::size_t loc_index = 0;
    bool transient = false;           // lifetime 0: deliver without installing
    const std::vector<std::size_t>* key_fields = nullptr;  // null or empty = whole tuple
  };
  /// Keyed-overwrite identity order: tuples sort by predicate then by their
  /// declared key fields (whole tuple when none declared). Comparing Values
  /// in place replaces the old stringified-key map — installs no longer pay
  /// a to_string allocation per key field.
  struct TupleKeyLess {
    const Node* node = nullptr;
    bool operator()(const ndlog::Tuple& a, const ndlog::Tuple& b) const;
  };

  double now_ms() const;
  bool sweep();  ///< one loop iteration; true if any frame was processed
  void handle_frame(const std::string& bytes);
  void handle_batch(Frame&& frame);
  void deliver_tuples(std::vector<ndlog::Tuple>&& tuples);
  /// Shard-parallel variant (pool_ != null): install the batch serially,
  /// then evaluate the surviving deltas in worker rounds with installs,
  /// aggregate flushes and ships serialized at each round barrier — the
  /// simulator's deliver_parallel_batch, restricted to one node.
  void deliver_tuples_parallel(std::vector<ndlog::Tuple>&& tuples);
  void send_ack(const std::string& dest, std::uint64_t cumulative_seq);
  void retransmit_due();
  void ship(ndlog::Tuple tuple, const std::string& dest);
  void flush_channels();

  // Rule semantics (mirrors runtime::Simulator).
  void deliver(ndlog::Tuple tuple, bool transient);
  bool install(const ndlog::Tuple& tuple);
  void run_rules(const ndlog::Tuple& delta);
  /// One aggregate maintenance pass; true if any aggregate row changed.
  bool run_agg_rules();
  /// Aggregate flush at batch granularity: deliver() skips per-tuple
  /// aggregate recomputation (the simulator's cadence) and each delivered
  /// batch/seed round ends with passes until no aggregate moves. Confluent
  /// with the per-tuple cadence: delivery order is already arbitrary under
  /// reorder faults, so the differential fixpoint cannot depend on where
  /// the flush boundaries fall.
  void flush_agg_rules();
  void route(ndlog::Tuple tuple);  ///< local -> deliver, remote -> ship
  const std::string& location_of(const ndlog::Tuple& tuple) const;
  const PredInfo& pred_info(const std::string& predicate) const;
  void note_insert(const ndlog::Tuple& tuple);
  void note_erase(const ndlog::Tuple& tuple);
  /// Structured tuple-event emission into obs_.tuple_trace (no-op when null);
  /// `kind` is "install" or "retract" (no soft state in the cluster, so no
  /// "expire").
  void tuple_event(const char* kind, const ndlog::Tuple& tuple);

  std::string name_;
  const ndlog::Program* program_;
  const ndlog::Catalog* catalog_;
  const ndlog::BuiltinRegistry* builtins_;
  Transport* transport_;
  ReliabilityOptions reliability_;
  NodeObs obs_;

  ndlog::RuleEngine engine_;
  std::unique_ptr<dataflow::Engine> flow_;  // dataflow mode only
  std::vector<const ndlog::Rule*> normal_rules_;
  std::vector<const ndlog::Rule*> agg_rules_;
  const dataflow::Plan* plan_;
  dataflow::WorkerPool* pool_;  // null = serial evaluation
  /// Non-null only inside deliver_tuples_parallel: run_agg_rules appends
  /// locally installed aggregate rows here (next round's deltas) instead of
  /// cascading through run_rules immediately.
  std::vector<ndlog::Tuple>* agg_collect_ = nullptr;

  ndlog::Database db_;
  /// One entry per keyed-overwrite slot; the element is the installed tuple.
  std::set<ndlog::Tuple, TupleKeyLess> by_key_{TupleKeyLess{this}};
  std::map<const ndlog::Rule*, ndlog::TupleSet> agg_cache_;
  std::vector<dataflow::Engine::AggDelta> agg_deltas_;  // diff-flush scratch
  std::vector<ndlog::Tuple> seeds_;

  std::map<std::string, OutChannel> out_;
  std::map<std::string, InChannel> in_;
  /// Per-destination channel buffers: tuples shipped during the current sweep,
  /// flushed as one DataBatch each by flush_channels(). Map entries persist
  /// across sweeps, so steady-state flushes never re-insert.
  std::map<std::string, std::vector<ndlog::Tuple>> outbuf_;
  /// Count of non-empty outbuf_ buffers, so idle sweeps skip the flush scan.
  std::size_t outbuf_dirty_ = 0;
  std::priority_queue<Due, std::vector<Due>, std::greater<Due>> due_heap_;
  mutable std::unordered_map<std::string, PredInfo> pred_cache_;

  /// Transport mailbox cursor for name_, cached at run() start so the sweep
  /// loop's mailbox polls skip the name lookup. Null = use the name path.
  void* rx_cursor_ = nullptr;

  std::chrono::steady_clock::time_point epoch_;
  NodeStats stats_;
  std::string error_;

  std::atomic<bool> idle_{false};
  std::atomic<std::uint64_t> activity_{0};
  std::atomic<std::uint64_t> unacked_{0};
  std::atomic<bool> failed_{false};
};

}  // namespace fvn::net
