// fvn::net node runtime — one concurrently-executing NDlog node (DESIGN.md
// §12). A Node owns its slice of the distributed database and an executor
// over it (interpreter RuleEngine or compiled dataflow::Engine), and runs an
// event loop on its own std::thread:
//
//   pump held frames -> retransmit overdue -> drain mailbox -> process
//
// Rule semantics deliberately mirror runtime::Simulator install/run_rules/
// run_agg_rules line for line (keyed overwrite, aggregate diff-against-cache,
// "remote copies age out") so the differential suite can demand an *identical*
// merged fixpoint from both executives.
//
// Reliability: the transport may drop, duplicate, reorder and delay frames;
// the Node layers a per-directed-channel protocol on top that masks all four:
//
//   sender    every Data frame carries a per-(src,dst) sequence number and
//             stays in a pending map until acked; overdue frames retransmit
//             with capped exponential backoff.
//   receiver  acks every Data frame it sees (including duplicates — the
//             original ack may have been the casualty), delivers exactly once
//             and in sequence order via a reassembly buffer.
//
// Exactly-once in-order delivery per channel makes the fault injection
// semantically invisible; it only costs retransmissions and time.
//
// Thread model: everything mutable on a Node is owned by its thread, except
// the std::atomic signals (idle/activity/unacked/failed) the coordinator
// polls for termination detection, and the transport (internally locked).
// The obs series pointers are wired before the thread starts and point into
// a Registry nobody else touches concurrently per-node.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/engine.hpp"
#include "dataflow/plan.hpp"
#include "ndlog/catalog.hpp"
#include "ndlog/eval.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"

namespace fvn::net {

/// Ack + retransmit knobs (cluster-wide; see Cluster).
struct ReliabilityOptions {
  /// Off = fire-and-forget raw frames (only sane on a fault-free transport;
  /// the differential suite uses it as the zero-overhead baseline).
  bool enabled = true;
  double initial_backoff_ms = 2.0;  ///< first retransmit deadline
  double max_backoff_ms = 50.0;     ///< backoff doubles up to this cap
};

/// Per-node observability series, wired by the Cluster before the node's
/// thread starts (all null when metrics are off). Each node gets its own
/// series — obs::Registry is not thread-safe, so no two threads may share one.
struct NodeObs {
  obs::Counter* sent = nullptr;
  obs::Counter* received = nullptr;
  obs::Counter* retransmitted = nullptr;
  obs::Counter* acked = nullptr;
  obs::Counter* installed = nullptr;
  obs::Counter* bytes_sent = nullptr;
  obs::Counter* bytes_received = nullptr;
  /// Frames drained per non-empty mailbox sweep (the observable backlog).
  obs::Histogram* mailbox_depth = nullptr;
  obs::Timer* encode = nullptr;
  obs::Timer* decode = nullptr;
};

/// Plain counters, safe to read after the node's thread has been joined.
struct NodeStats {
  std::uint64_t sent = 0;            ///< Data frames first-transmitted
  std::uint64_t received = 0;        ///< Data frames delivered in-order
  std::uint64_t retransmitted = 0;   ///< Data frames re-sent after timeout
  std::uint64_t acked = 0;           ///< pending frames cleared by an ack
  std::uint64_t duplicates = 0;      ///< already-delivered Data frames re-acked
  std::uint64_t corrupt_frames = 0;  ///< frames decode rejected (WireError)
  std::uint64_t installed = 0;       ///< local installs (new or overwrite)
  std::uint64_t overwrites = 0;      ///< keyed overwrites among installed
  std::uint64_t bytes_sent = 0;      ///< payload bytes handed to the transport
  std::uint64_t bytes_received = 0;
};

/// One distributed NDlog node. Construct, seed(), then start(); the Cluster
/// owns the lifecycle.
class Node {
 public:
  /// `program`, `catalog`, `builtins`, `plan` and `transport` must outlive
  /// the node; `plan` is null in interpreter mode.
  Node(std::string name, const ndlog::Program& program, const ndlog::Catalog& catalog,
       const ndlog::BuiltinRegistry& builtins, const dataflow::Plan* plan,
       Transport& transport, ReliabilityOptions reliability, NodeObs obs);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// Queue a base fact for delivery at startup. Must be called before run().
  void seed(ndlog::Tuple fact);

  /// Thread body: process seeds, then loop until `stop` is set. Never throws;
  /// failures are recorded (failed()/error()) so the coordinator can abort.
  void run(const std::atomic<bool>& stop);

  // --- Coordinator-facing signals (safe while the thread runs) --------------

  /// True when the last loop sweep found nothing to do.
  bool idle() const noexcept { return idle_.load(std::memory_order_acquire); }
  /// Monotonic count of frames/seeds processed — the double-scan input.
  std::uint64_t activity() const noexcept {
    return activity_.load(std::memory_order_acquire);
  }
  /// Data frames sent but not yet acked (0 when reliability is off).
  std::uint64_t unacked() const noexcept {
    return unacked_.load(std::memory_order_acquire);
  }
  bool failed() const noexcept { return failed_.load(std::memory_order_acquire); }

  // --- Post-join accessors (thread must have exited) ------------------------

  const std::string& error() const noexcept { return error_; }
  const ndlog::Database& database() const noexcept { return db_; }
  const NodeStats& stats() const noexcept { return stats_; }

 private:
  struct Pending {
    std::string bytes;       // encoded frame, ready to re-send
    double due_ms = 0.0;     // next retransmit deadline (node clock)
    double backoff_ms = 0.0; // current backoff step
  };
  struct OutChannel {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, Pending> pending;
  };
  struct InChannel {
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, ndlog::Tuple> reassembly;  // buffered future seqs
  };

  double now_ms() const;
  bool sweep();  ///< one loop iteration; true if any frame was processed
  void handle_frame(const std::string& bytes);
  void handle_data(Frame&& frame);
  void retransmit_due();
  void ship(const ndlog::Tuple& tuple, const std::string& dest);

  // Rule semantics (mirrors runtime::Simulator).
  void deliver(const ndlog::Tuple& tuple, bool transient);
  bool install(const ndlog::Tuple& tuple);
  void run_rules(const ndlog::Tuple& delta);
  void run_agg_rules();
  void route(const ndlog::Tuple& tuple);  ///< local -> deliver, remote -> ship
  std::string key_of(const ndlog::Tuple& tuple) const;
  std::string location_of(const ndlog::Tuple& tuple) const;
  void note_insert(const ndlog::Tuple& tuple);
  void note_erase(const ndlog::Tuple& tuple);

  std::string name_;
  const ndlog::Program* program_;
  const ndlog::Catalog* catalog_;
  const ndlog::BuiltinRegistry* builtins_;
  Transport* transport_;
  ReliabilityOptions reliability_;
  NodeObs obs_;

  ndlog::RuleEngine engine_;
  std::unique_ptr<dataflow::Engine> flow_;  // dataflow mode only
  std::vector<const ndlog::Rule*> normal_rules_;
  std::vector<const ndlog::Rule*> agg_rules_;
  const dataflow::Plan* plan_;

  ndlog::Database db_;
  std::map<std::string, ndlog::Tuple> by_key_;
  std::map<const ndlog::Rule*, ndlog::TupleSet> agg_cache_;
  std::vector<ndlog::Tuple> seeds_;

  std::map<std::string, OutChannel> out_;
  std::map<std::string, InChannel> in_;

  std::chrono::steady_clock::time_point epoch_;
  NodeStats stats_;
  std::string error_;

  std::atomic<bool> idle_{false};
  std::atomic<std::uint64_t> activity_{0};
  std::atomic<std::uint64_t> unacked_{0};
  std::atomic<bool> failed_{false};
};

}  // namespace fvn::net
