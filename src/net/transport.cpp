#include "net/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace fvn::net {

namespace {

/// Splitmix64 — derives an independent per-sender fault stream from the
/// cluster seed, so one node's send pattern never perturbs another's faults.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Transport::Transport(FaultOptions faults)
    : faults_(faults), epoch_(std::chrono::steady_clock::now()) {}

double Transport::now_ms() const {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   epoch_)
      .count();
}

void Transport::add_node(const std::string& name) {
  std::lock_guard<std::mutex> lock(setup_mutex_);
  auto it = senders_.find(name);
  if (it != senders_.end()) return;
  auto state = std::make_unique<SenderState>();
  state->rng.seed(mix(faults_.seed) ^ fnv1a(name));
  senders_.emplace(name, std::move(state));
  bells_.emplace(name, std::make_unique<Doorbell>());
}

void Transport::ring_bell(Doorbell& b) {
  b.signal.fetch_add(1, std::memory_order_release);
  if (b.waiting.load(std::memory_order_acquire)) {
    // Taking the mutex orders this notify after the waiter's predicate check,
    // so the wakeup cannot slip between "checked, nothing new" and "blocked".
    std::lock_guard<std::mutex> lock(b.mutex);
    b.cv.notify_one();
  }
}

void Transport::wait_bell(Doorbell& b, std::uint64_t ticket, double timeout_ms) {
  std::unique_lock<std::mutex> lock(b.mutex);
  b.waiting.store(true, std::memory_order_release);
  b.cv.wait_for(lock, std::chrono::duration<double, std::milli>(timeout_ms),
                [&] { return b.signal.load(std::memory_order_acquire) != ticket; });
  b.waiting.store(false, std::memory_order_release);
}

void Transport::ring(const std::string& to) {
  // No lock: bells_ is immutable once node threads run (add_node contract).
  auto it = bells_.find(to);
  if (it != bells_.end()) ring_bell(*it->second);
}

std::uint64_t Transport::rx_ticket(const std::string& node) {
  auto it = bells_.find(node);
  return it == bells_.end() ? 0 : it->second->signal.load(std::memory_order_acquire);
}

void Transport::rx_wait(const std::string& node, std::uint64_t ticket,
                        double timeout_ms) {
  // Held (reordered/delayed) frames are released only by the sender's own
  // pump(), so under fault injection nobody may park for long.
  if (faults_.any()) timeout_ms = std::min(timeout_ms, 0.25);
  auto it = bells_.find(node);
  if (it != bells_.end()) wait_bell(*it->second, ticket, timeout_ms);
}

std::uint64_t Transport::progress_ticket() {
  return progress_.signal.load(std::memory_order_acquire);
}

void Transport::progress_wait(std::uint64_t ticket, double timeout_ms) {
  wait_bell(progress_, ticket, timeout_ms);
}

void Transport::ring_progress() { ring_bell(progress_); }

void Transport::wake_all() {
  for (auto& [name, bell] : bells_) {
    bell->signal.fetch_add(1, std::memory_order_release);
    std::lock_guard<std::mutex> lock(bell->mutex);
    bell->cv.notify_all();
  }
}

Transport::SenderState& Transport::sender(const std::string& from) {
  // No lock: senders_ is immutable once node threads run (add_node contract).
  auto it = senders_.find(from);
  if (it == senders_.end()) throw TransportError("unregistered sender " + from);
  return *it->second;
}

void Transport::send(const std::string& from, const std::string& to,
                     std::string frame) {
  SenderState& s = sender(from);
  bool duplicate = false;
  double hold_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    ++s.frames_sent;
    if (!faults_.any()) {
      s.bytes_sent += frame.size();
    } else {
      std::uniform_real_distribution<double> u(0.0, 1.0);
      if (faults_.drop_rate > 0 && u(s.rng) < faults_.drop_rate) {
        ++s.frames_dropped;
        return;
      }
      duplicate =
          faults_.duplicate_rate > 0 && u(s.rng) < faults_.duplicate_rate;
      if (faults_.reorder_rate > 0 && u(s.rng) < faults_.reorder_rate) {
        // Hold long enough that frames sent immediately after overtake this one.
        hold_ms += 1.0 + 2.0 * u(s.rng);
      }
      if (faults_.delay_ms > 0) hold_ms += faults_.delay_ms * u(s.rng);
      if (duplicate) ++s.frames_duplicated;
      // Post-fault bytes: the duplicate plus the original, the latter counted
      // now even when it is transmitted later by pump().
      s.bytes_sent += frame.size() * (duplicate ? 2 : 1);
      if (hold_ms > 0.0) {
        ++s.frames_delayed;
        s.held.push_back(HeldFrame{now_ms() + hold_ms, to,
                                   duplicate ? frame : std::move(frame)});
      }
    }
  }
  // Transmit outside the sender lock; only this thread sends as `from`, so
  // the unlock cannot reorder this sender's frames. When both duplicate and
  // hold fired, the held copy above kept `frame` intact for the dup.
  if (duplicate) transmit(from, to, frame);
  if (hold_ms > 0.0) {
    if (duplicate) ring(to);
    return;  // original sits in the hold queue until pump()
  }
  transmit(from, to, std::move(frame));
  ring(to);
}

void Transport::pump(const std::string& from) {
  // Frames are only ever held by reorder/delay injection; without faults the
  // hold queues are provably empty and the node loop's per-sweep pump must
  // not pay a name lookup plus a lock for nothing.
  if (!faults_.any()) return;
  SenderState& s = sender(from);
  std::vector<HeldFrame> due;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.held.empty()) return;
    const double now = now_ms();
    for (std::size_t i = 0; i < s.held.size();) {
      if (s.held[i].due_ms <= now) {
        due.push_back(std::move(s.held[i]));
        s.held.erase(s.held.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (auto& h : due) {
    const std::string to = h.to;
    transmit(from, to, std::move(h.frame));
    ring(to);
  }
}

bool Transport::recv(const std::string& node, std::string& frame) {
  if (!poll(node, frame)) return false;
  frames_delivered_.fetch_add(1, std::memory_order_relaxed);
  bytes_delivered_.fetch_add(frame.size(), std::memory_order_relaxed);
  return true;
}

bool Transport::recv(void* cursor, std::string& frame) {
  if (!poll_cursor(cursor, frame)) return false;
  frames_delivered_.fetch_add(1, std::memory_order_relaxed);
  bytes_delivered_.fetch_add(frame.size(), std::memory_order_relaxed);
  return true;
}

bool Transport::quiet() {
  for (const auto& [name, state] : senders_) {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (!state->held.empty()) return false;
  }
  return impl_quiet();
}

TransportStats Transport::stats() {
  TransportStats out;
  for (const auto& [name, state] : senders_) {
    std::lock_guard<std::mutex> lock(state->mutex);
    out.frames_sent += state->frames_sent;
    out.frames_dropped += state->frames_dropped;
    out.frames_duplicated += state->frames_duplicated;
    out.frames_delayed += state->frames_delayed;
    out.bytes_sent += state->bytes_sent;
  }
  out.frames_delivered = frames_delivered_.load(std::memory_order_relaxed);
  out.bytes_delivered = bytes_delivered_.load(std::memory_order_relaxed);
  return out;
}

// --- InProcTransport --------------------------------------------------------

InProcTransport::InProcTransport(FaultOptions faults) : Transport(faults) {}

void InProcTransport::Channel::push(std::string frame) {
  // Only the consumer clears overflowing_, and only after draining the
  // deque — so reading false here proves the overflow is empty and the
  // ring push preserves FIFO.
  if (!overflowing_.load(std::memory_order_relaxed) && ring.try_push(frame)) {
    return;
  }
  std::lock_guard<std::mutex> lock(overflow_mutex_);
  overflowing_.store(true, std::memory_order_release);
  overflow_.push_back(std::move(frame));
}

bool InProcTransport::Channel::pop(std::string& frame) {
  // Ring first: while overflowing_, every ring frame predates every overflow
  // frame, so this order is exactly per-channel FIFO.
  if (ring.try_pop(frame)) return true;
  if (!overflowing_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(overflow_mutex_);
  if (overflow_.empty()) {
    overflowing_.store(false, std::memory_order_release);
    return false;
  }
  frame = std::move(overflow_.front());
  overflow_.pop_front();
  if (overflow_.empty()) overflowing_.store(false, std::memory_order_release);
  return true;
}

bool InProcTransport::Channel::looks_empty() {
  return ring.looks_empty() && !overflowing_.load(std::memory_order_acquire);
}

void InProcTransport::add_node(const std::string& name) {
  Transport::add_node(name);
  std::lock_guard<std::mutex> lock(setup_mutex_);
  for (const auto& existing : names_) {
    if (existing == name) return;  // idempotent
  }
  // Create both directions against every known node (and the self channel so
  // a misrouted frame errors in one place). N^2 channels is fine at the tens
  // of nodes a thread-per-node cluster can run; the planned event-loop
  // transport owns the thousands-of-nodes regime.
  for (const auto& other : names_) {
    channels_.emplace(std::make_pair(name, other), std::make_unique<Channel>());
    channels_.emplace(std::make_pair(other, name), std::make_unique<Channel>());
    inbound_[other].push_back(channels_.at({name, other}).get());
    inbound_[name].push_back(channels_.at({other, name}).get());
  }
  channels_.emplace(std::make_pair(name, name), std::make_unique<Channel>());
  inbound_[name].push_back(channels_.at({name, name}).get());
  names_.push_back(name);
}

InProcTransport::Channel* InProcTransport::channel(const std::string& from,
                                                   const std::string& to) {
  // No lock: the maps are immutable once node threads run (add_node contract).
  auto it = channels_.find({from, to});
  return it == channels_.end() ? nullptr : it->second.get();
}

void InProcTransport::transmit(const std::string& from, const std::string& to,
                               std::string frame) {
  Channel* ch = channel(from, to);
  if (ch == nullptr) throw TransportError("unknown destination " + to);
  ch->push(std::move(frame));
}

bool InProcTransport::poll(const std::string& node, std::string& frame) {
  auto it = inbound_.find(node);
  if (it == inbound_.end()) return false;
  for (Channel* ch : it->second) {
    if (ch->pop(frame)) return true;
  }
  return false;
}

void* InProcTransport::rx_cursor(const std::string& node) {
  // No lock: the maps are immutable once node threads run, and map node
  // storage keeps the vector's address stable.
  auto it = inbound_.find(node);
  return it == inbound_.end() ? nullptr : &it->second;
}

bool InProcTransport::poll_cursor(void* cursor, std::string& frame) {
  for (Channel* ch : *static_cast<std::vector<Channel*>*>(cursor)) {
    if (ch->pop(frame)) return true;
  }
  return false;
}

bool InProcTransport::impl_quiet() {
  for (const auto& [key, ch] : channels_) {
    if (!ch->looks_empty()) return false;
  }
  return true;
}

// --- UdpTransport -----------------------------------------------------------

UdpTransport::UdpTransport(FaultOptions faults) : Transport(faults) {}

UdpTransport::~UdpTransport() {
  for (auto& [name, sock] : sockets_) {
    if (sock.fd >= 0) ::close(sock.fd);
  }
}

void UdpTransport::add_node(const std::string& name) {
  Transport::add_node(name);
  std::lock_guard<std::mutex> lock(mutex_);
  if (sockets_.count(name)) return;

  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    throw TransportError(std::string("udp: socket() failed: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw TransportError(std::string("udp: bind() failed: ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const int err = errno;
    ::close(fd);
    throw TransportError(std::string("udp: getsockname() failed: ") +
                         std::strerror(err));
  }
  // Non-blocking: node loops poll; they must never park in the kernel.
  int flags = 1;
  if (::ioctl(fd, FIONBIO, &flags) < 0) {
    const int err = errno;
    ::close(fd);
    throw TransportError(std::string("udp: FIONBIO failed: ") + std::strerror(err));
  }
  sockets_[name] = Socket{fd, ntohs(addr.sin_port)};
}

void UdpTransport::transmit(const std::string& from, const std::string& to,
                            std::string frame) {
  (void)from;
  Socket dst{};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sockets_.find(to);
    if (it == sockets_.end()) throw TransportError("unknown destination " + to);
    dst = it->second;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(dst.port);
  // Any socket can carry the datagram; use the destination's own fd for
  // sending too — sendto() is atomic per datagram and thread-safe. Loopback
  // sends only fail transiently (ENOBUFS under pressure); treat a failed
  // send exactly like a dropped frame — the reliability layer retransmits.
  (void)::sendto(dst.fd, frame.data(), frame.size(), 0,
                 reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
}

bool UdpTransport::poll(const std::string& node, std::string& frame) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sockets_.find(node);
    if (it == sockets_.end()) return false;
    fd = it->second.fd;
  }
  char buf[65536];
  const ssize_t n = ::recvfrom(fd, buf, sizeof(buf), 0, nullptr, nullptr);
  if (n < 0) return false;  // EWOULDBLOCK or transient error: nothing to read
  frame.assign(buf, static_cast<std::size_t>(n));
  return true;
}

void* UdpTransport::rx_cursor(const std::string& node) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sockets_.find(node);
  return it == sockets_.end() ? nullptr : &it->second;  // stable map storage
}

bool UdpTransport::poll_cursor(void* cursor, std::string& frame) {
  const Socket* sock = static_cast<Socket*>(cursor);
  char buf[65536];
  const ssize_t n = ::recvfrom(sock->fd, buf, sizeof(buf), 0, nullptr, nullptr);
  if (n < 0) return false;
  frame.assign(buf, static_cast<std::size_t>(n));
  return true;
}

bool UdpTransport::impl_quiet() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, sock] : sockets_) {
    int pending = 0;
    if (::ioctl(sock.fd, FIONREAD, &pending) == 0 && pending > 0) return false;
  }
  return true;
}

}  // namespace fvn::net
