#include "net/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fvn::net {

namespace {

/// Splitmix64 — derives an independent per-sender fault stream from the
/// cluster seed, so one node's send pattern never perturbs another's faults.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Transport::Transport(FaultOptions faults)
    : faults_(faults), epoch_(std::chrono::steady_clock::now()) {}

double Transport::now_ms() const {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   epoch_)
      .count();
}

void Transport::add_node(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = senders_.try_emplace(name);
  if (inserted) it->second.rng.seed(mix(faults_.seed) ^ fnv1a(name));
}

void Transport::transmit_counted(const std::string& to, std::string frame) {
  stats_.bytes_sent += frame.size();
  transmit(to, std::move(frame));
}

void Transport::send(const std::string& from, const std::string& to,
                     std::string frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = senders_.find(from);
  if (it == senders_.end()) throw TransportError("unregistered sender " + from);
  ++stats_.frames_sent;
  if (!faults_.any()) {
    transmit_counted(to, std::move(frame));
    return;
  }
  SenderState& sender = it->second;
  std::uniform_real_distribution<double> u(0.0, 1.0);
  if (faults_.drop_rate > 0 && u(sender.rng) < faults_.drop_rate) {
    ++stats_.frames_dropped;
    return;
  }
  const bool duplicate =
      faults_.duplicate_rate > 0 && u(sender.rng) < faults_.duplicate_rate;
  double hold_ms = 0.0;
  if (faults_.reorder_rate > 0 && u(sender.rng) < faults_.reorder_rate) {
    // Hold long enough that frames sent immediately after overtake this one.
    hold_ms += 1.0 + 2.0 * u(sender.rng);
  }
  if (faults_.delay_ms > 0) hold_ms += faults_.delay_ms * u(sender.rng);
  if (duplicate) {
    ++stats_.frames_duplicated;
    transmit_counted(to, frame);
  }
  if (hold_ms > 0.0) {
    ++stats_.frames_delayed;
    stats_.bytes_sent += frame.size();  // counted now, transmitted at pump()
    sender.held.push_back(HeldFrame{now_ms() + hold_ms, to, std::move(frame)});
    return;
  }
  transmit_counted(to, std::move(frame));
}

void Transport::pump(const std::string& from) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = senders_.find(from);
  if (it == senders_.end() || it->second.held.empty()) return;
  const double now = now_ms();
  auto& held = it->second.held;
  for (std::size_t i = 0; i < held.size();) {
    if (held[i].due_ms <= now) {
      transmit(held[i].to, std::move(held[i].frame));
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

bool Transport::recv(const std::string& node, std::string& frame) {
  if (!poll(node, frame)) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.frames_delivered;
  stats_.bytes_delivered += frame.size();
  return true;
}

bool Transport::quiet() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, sender] : senders_) {
      if (!sender.held.empty()) return false;
    }
  }
  return impl_quiet();
}

TransportStats Transport::stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// --- InProcTransport --------------------------------------------------------

InProcTransport::InProcTransport(FaultOptions faults) : Transport(faults) {}

void InProcTransport::add_node(const std::string& name) {
  Transport::add_node(name);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = mailboxes_.find(name);
  if (it == mailboxes_.end()) mailboxes_.emplace(name, std::make_unique<Mailbox>());
}

void InProcTransport::transmit(const std::string& to, std::string frame) {
  Mailbox* box = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = mailboxes_.find(to);
    if (it == mailboxes_.end()) throw TransportError("unknown destination " + to);
    box = it->second.get();
  }
  std::lock_guard<std::mutex> lock(box->mutex);
  box->frames.push_back(std::move(frame));
}

bool InProcTransport::poll(const std::string& node, std::string& frame) {
  Mailbox* box = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = mailboxes_.find(node);
    if (it == mailboxes_.end()) return false;
    box = it->second.get();
  }
  std::lock_guard<std::mutex> lock(box->mutex);
  if (box->frames.empty()) return false;
  frame = std::move(box->frames.front());
  box->frames.pop_front();
  return true;
}

bool InProcTransport::impl_quiet() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, box] : mailboxes_) {
    std::lock_guard<std::mutex> box_lock(box->mutex);
    if (!box->frames.empty()) return false;
  }
  return true;
}

// --- UdpTransport -----------------------------------------------------------

UdpTransport::UdpTransport(FaultOptions faults) : Transport(faults) {}

UdpTransport::~UdpTransport() {
  for (auto& [name, sock] : sockets_) {
    if (sock.fd >= 0) ::close(sock.fd);
  }
}

void UdpTransport::add_node(const std::string& name) {
  Transport::add_node(name);
  std::lock_guard<std::mutex> lock(mutex_);
  if (sockets_.count(name)) return;

  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    throw TransportError(std::string("udp: socket() failed: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw TransportError(std::string("udp: bind() failed: ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const int err = errno;
    ::close(fd);
    throw TransportError(std::string("udp: getsockname() failed: ") +
                         std::strerror(err));
  }
  // Non-blocking: node loops poll; they must never park in the kernel.
  int flags = 1;
  if (::ioctl(fd, FIONBIO, &flags) < 0) {
    const int err = errno;
    ::close(fd);
    throw TransportError(std::string("udp: FIONBIO failed: ") + std::strerror(err));
  }
  sockets_[name] = Socket{fd, ntohs(addr.sin_port)};
}

void UdpTransport::transmit(const std::string& to, std::string frame) {
  Socket src{};
  Socket dst{};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sockets_.find(to);
    if (it == sockets_.end()) throw TransportError("unknown destination " + to);
    dst = it->second;
    // Any socket can carry the datagram; use the destination's own fd for
    // sending too — sendto() is atomic per datagram and thread-safe.
    src = dst;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(dst.port);
  // Loopback sends only fail transiently (ENOBUFS under pressure); treat a
  // failed send exactly like a dropped frame — the reliability layer above
  // retransmits.
  (void)::sendto(src.fd, frame.data(), frame.size(), 0,
                 reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
}

bool UdpTransport::poll(const std::string& node, std::string& frame) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sockets_.find(node);
    if (it == sockets_.end()) return false;
    fd = it->second.fd;
  }
  char buf[65536];
  const ssize_t n = ::recvfrom(fd, buf, sizeof(buf), 0, nullptr, nullptr);
  if (n < 0) return false;  // EWOULDBLOCK or transient error: nothing to read
  frame.assign(buf, static_cast<std::size_t>(n));
  return true;
}

bool UdpTransport::impl_quiet() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, sock] : sockets_) {
    int pending = 0;
    if (::ioctl(sock.fd, FIONREAD, &pending) == 0 && pending > 0) return false;
  }
  return true;
}

}  // namespace fvn::net
