#include "net/cluster.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <thread>

#include "ndlog/parallel.hpp"
#include "runtime/localize.hpp"

namespace fvn::net {

using ndlog::Tuple;
using ndlog::Value;

Cluster::Cluster(ndlog::Program program, ClusterOptions options,
                 const ndlog::BuiltinRegistry& builtins)
    : program_(runtime::localize(program)),
      catalog_(ndlog::Catalog::from_program(program_)),
      options_(options),
      builtins_(&builtins) {
  ndlog::check_arities(program_);
  ndlog::check_safety(program_, builtins);
  if (options_.require_stratified) ndlog::stratify(program_);
  // Hard-state programs only: soft-state expiry and periodic refresh need
  // per-node clocks and by design never quiesce (they keep re-firing), so
  // termination detection would be meaningless. The discrete-event Simulator
  // stays the executor for those; reject them up front with a clear error.
  for (const auto& pred : catalog_.predicates()) {
    const auto& info = catalog_.info(pred);
    if (info.lifetime_seconds.has_value() && *info.lifetime_seconds > 0.0) {
      throw ClusterError("cluster: predicate " + pred +
                         " has a finite lifetime (soft state); the distributed "
                         "runtime executes hard-state programs only — use the "
                         "simulator");
    }
  }
  for (const auto& rule : program_.rules) {
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<ndlog::BodyAtom>(&elem)) {
        if (ba->atom.predicate == "periodic") {
          throw ClusterError(
              "cluster: program uses periodic; the distributed runtime "
              "executes hard-state programs only — use the simulator");
        }
      }
    }
  }
  if (options_.engine == runtime::EngineKind::Dataflow) {
    dataflow::PlanOptions plan_options;
    plan_options.incremental_aggregates = options_.incremental_aggregates;
    plan_options.cost_order = options_.cost_order;
    plan_.emplace(dataflow::compile(program_, plan_options));
  }
  if (options_.workers >= 1) {
    // Shard-parallel mode needs the static certificate over the localized
    // program (the form the per-node engines run). Taken once here; run()
    // hands every node a private pool when it holds.
    ndlog::DiagnosticSink parallel_sink;
    const auto report = ndlog::parallel::analyze(program_, parallel_sink);
    if (report.certified) {
      parallel_certified_ = true;
      router_ = dataflow::ShardRouter(report, catalog_);
    } else {
      parallel_fallback_ = report.fallback_reason.empty()
                               ? "program not certified"
                               : report.fallback_reason;
    }
  }
  for (const auto& rule : program_.rules) {
    if (!rule.is_fact()) continue;
    ndlog::Bindings empty;
    std::vector<Value> values;
    for (const auto& arg : rule.head.args) {
      values.push_back(*ndlog::eval_term(*arg.term, empty, builtins));
    }
    inject(Tuple(rule.head.predicate, std::move(values)));
  }
}

std::string Cluster::location_of(const Tuple& tuple) const {
  const std::size_t idx = catalog_.contains(tuple.predicate())
                              ? catalog_.loc_index(tuple.predicate())
                              : 0;
  if (idx >= tuple.arity() || !tuple.at(idx).is_addr()) {
    throw ndlog::AnalysisError("tuple " + tuple.to_string() +
                               " has no address at its location attribute");
  }
  return tuple.at(idx).as_addr();
}

void Cluster::register_addrs(const Value& value) {
  if (value.is_addr()) {
    seeds_[value.as_addr()];  // ensure the node exists (may stay seedless)
    return;
  }
  if (value.kind() == ndlog::ValueKind::List) {
    for (const auto& item : value.as_list()) register_addrs(item);
  }
}

void Cluster::add_node(const std::string& name) { seeds_[name]; }

void Cluster::inject(const Tuple& fact) {
  // Location specifiers can only be copied from base facts, never
  // synthesized, so registering every Addr reachable from the seeds
  // enumerates every node a derived tuple could ever address.
  for (const auto& v : fact.values()) register_addrs(v);
  seeds_[location_of(fact)].push_back(fact);
}

void Cluster::inject_all(const std::vector<Tuple>& facts) {
  for (const auto& f : facts) inject(f);
}

NodeObs Cluster::make_obs(const std::string& name) {
  NodeObs obs;
  if (options_.tuple_events) obs.tuple_events = &options_.tuple_events;
  if (options_.capture_tuple_events) {
    auto& slot = tuple_traces_[name];
    if (!slot) slot = std::make_unique<obs::Trace>();
    obs.tuple_trace = slot.get();
  }
  if (options_.metrics == nullptr) return obs;
  obs::Registry& m = *options_.metrics;
  const std::string base = "net/node/" + name + "/";
  obs.sent = &m.counter(base + "sent");
  obs.received = &m.counter(base + "received");
  obs.retransmitted = &m.counter(base + "retransmitted");
  obs.acked = &m.counter(base + "acked");
  obs.installed = &m.counter(base + "installed");
  obs.bytes_sent = &m.counter(base + "bytes_sent");
  obs.bytes_received = &m.counter(base + "bytes_received");
  obs.ack_bytes = &m.counter(base + "ack_bytes");
  obs.tuples_shipped = &m.counter(base + "tuples_shipped");
  obs.mailbox_depth = &m.histogram(base + "mailbox_depth");
  obs.batch_size = &m.histogram(base + "batch_size");
  obs.encode = &m.timer(base + "encode");
  obs.decode = &m.timer(base + "decode");
  return obs;
}

ClusterStats Cluster::run() {
  assert(!ran_ && "Cluster::run may be called once");
  ran_ = true;
  if (seeds_.empty()) throw ClusterError("cluster: no nodes (no facts injected)");

  switch (options_.transport) {
    case TransportKind::InProc:
      transport_ = std::make_unique<InProcTransport>(options_.faults);
      break;
    case TransportKind::Udp:
      transport_ = std::make_unique<UdpTransport>(options_.faults);
      break;
  }
  // Everything that touches shared structures (transport registration, obs
  // series creation, node construction, seeding) happens here, before any
  // thread starts; afterwards node threads only touch their own state.
  for (const auto& [name, facts] : seeds_) transport_->add_node(name);
  for (const auto& [name, facts] : seeds_) {
    dataflow::WorkerPool* pool = nullptr;
    if (parallel_certified_) {
      // One pool per node: worker engines keep per-round mutable state, so
      // pools are never shared across node threads.
      dataflow::WorkerPool::Config cfg;
      cfg.workers = options_.workers;
      cfg.plan = plan_ ? &*plan_ : nullptr;
      cfg.program = &program_;
      cfg.builtins = builtins_;
      cfg.catalog = &catalog_;
      cfg.router = router_;
      pools_.push_back(std::make_unique<dataflow::WorkerPool>(std::move(cfg)));
      pool = pools_.back().get();
    }
    auto node = std::make_unique<Node>(name, program_, catalog_, *builtins_,
                                       plan_ ? &*plan_ : nullptr, *transport_,
                                       options_.reliability, make_obs(name), pool);
    for (const auto& fact : facts) node->seed(fact);
    nodes_.emplace(name, std::move(node));
  }

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&start]() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  ClusterStats stats;
  stats.nodes = nodes_.size();

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(nodes_.size());
  for (auto& [name, node] : nodes_) {
    Node* n = node.get();
    threads.emplace_back([n, &stop] { n->run(stop); });
  }

  // Double-scan termination detection (header comment has the argument).
  std::uint64_t last_activity = ~std::uint64_t{0};
  std::size_t stable = 0;
  bool failed = false;
  // Ticket discipline: snapshot the progress doorbell BEFORE the scan whose
  // verdict we might sleep on — a node parking mid-scan then advances the
  // signal past the snapshot and progress_wait returns immediately.
  std::uint64_t ticket = transport_->progress_ticket();
  for (;;) {
    // The stability argument counts *scans*, not wall time: once a scan looks
    // quiescent, confirming rescans only need to be distinct, so take them a
    // yield apart instead of a full poll interval — detection then costs
    // microseconds instead of quiescence_rounds * poll_interval. While the
    // cluster is visibly busy, park on the progress doorbell: nodes ring it
    // when they go idle, so the scan that will observe quiescence starts one
    // wakeup after the last node parks, not a poll interval later.
    if (stable > 0) {
      std::this_thread::yield();
    } else {
      transport_->progress_wait(ticket, options_.poll_interval_ms);
    }
    ticket = transport_->progress_ticket();
    ++stats.coordinator_polls;
    std::uint64_t activity = 0;
    std::uint64_t unacked = 0;
    bool all_idle = true;
    for (const auto& [name, node] : nodes_) {
      if (node->failed()) failed = true;
      activity += node->activity();
      unacked += node->unacked();
      all_idle = all_idle && node->idle();
    }
    if (failed) break;
    const bool quiet = transport_->quiet();
    if (options_.trace != nullptr) {
      options_.trace->counter("net/activity", "net", static_cast<double>(activity));
      options_.trace->counter("net/unacked", "net", static_cast<double>(unacked));
    }
    if (all_idle && quiet && unacked == 0 && activity == last_activity) {
      ++stable;
    } else {
      stable = 0;
    }
    last_activity = activity;
    if (stable >= options_.quiescence_rounds) {
      stats.quiesced = true;
      break;
    }
    if (elapsed_ms() > options_.max_seconds * 1e3) break;
  }

  stop.store(true, std::memory_order_release);
  transport_->wake_all();  // parked node threads exit now, not at their timeout
  for (auto& t : threads) t.join();
  stats.wall_ms = elapsed_ms();

  std::string errors;
  for (const auto& [name, node] : nodes_) {
    if (node->failed()) errors += (errors.empty() ? "" : "; ") + node->error();
  }
  if (!errors.empty()) throw ClusterError("cluster: node failure: " + errors);

  for (const auto& [name, node] : nodes_) {
    const NodeStats& ns = node->stats();
    stats.messages_sent += ns.sent;
    stats.messages_received += ns.received;
    stats.tuples_shipped += ns.tuples_shipped;
    stats.tuples_received += ns.tuples_received;
    stats.retransmitted += ns.retransmitted;
    stats.acked += ns.acked;
    stats.acks_sent += ns.acks_sent;
    stats.duplicates += ns.duplicates;
    stats.corrupt_frames += ns.corrupt_frames;
    stats.tuples_installed += ns.installed;
    stats.overwrites += ns.overwrites;
    stats.bytes_sent += ns.bytes_sent;
    stats.bytes_received += ns.bytes_received;
    stats.ack_bytes += ns.ack_bytes;
  }
  stats.transport = transport_->stats();
  stats.parallel_active = parallel_certified_;
  stats.parallel_fallback_reason = parallel_fallback_;
  for (const auto& pool : pools_) stats.parallel_rounds += pool->rounds();
  if (options_.trace != nullptr) {
    options_.trace->instant("net/quiesced", "net",
                            std::string("{\"quiesced\":") +
                                (stats.quiesced ? "true" : "false") + "}");
  }
  return stats;
}

const ndlog::Database& Cluster::database(const std::string& node) const {
  static const ndlog::Database empty;
  auto it = nodes_.find(node);
  return it == nodes_.end() ? empty : it->second->database();
}

const NodeStats& Cluster::node_stats(const std::string& node) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) throw ClusterError("cluster: unknown node " + node);
  return it->second->stats();
}

ndlog::Database Cluster::merged_database() const {
  ndlog::Database out;
  for (const auto& [name, node] : nodes_) {
    const ndlog::Database& db = node->database();
    for (const auto& pred : db.predicates()) {
      for (const auto& t : db.relation(pred)) out.insert(t);
    }
  }
  return out;
}

std::vector<obs::TraceEvent> Cluster::tuple_events() const {
  std::vector<obs::TraceEvent> out;
  for (const auto& [name, trace] : tuple_traces_) {
    for (const auto& e : trace->events()) out.push_back(e);
  }
  // Node clocks share an epoch only approximately (each node's steady_clock
  // epoch is its construction instant, all within the same pre-thread setup),
  // so a timestamp merge gives the closest single-trace approximation of the
  // interleaving. stable_sort keeps each node's own stream in order.
  std::stable_sort(out.begin(), out.end(),
                   [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::vector<std::string> Cluster::nodes() const {
  std::vector<std::string> out;
  for (const auto& [name, node] : nodes_) out.push_back(name);
  if (out.empty()) {
    for (const auto& [name, facts] : seeds_) out.push_back(name);
  }
  return out;
}

}  // namespace fvn::net
