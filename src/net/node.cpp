#include "net/node.hpp"

#include <algorithm>
#include <thread>

#include "obs/json.hpp"

namespace fvn::net {

using ndlog::Rule;
using ndlog::Tuple;
using ndlog::TupleSet;

Node::Node(std::string name, const ndlog::Program& program,
           const ndlog::Catalog& catalog, const ndlog::BuiltinRegistry& builtins,
           const dataflow::Plan* plan, Transport& transport,
           ReliabilityOptions reliability, NodeObs obs, dataflow::WorkerPool* pool)
    : name_(std::move(name)),
      program_(&program),
      catalog_(&catalog),
      builtins_(&builtins),
      transport_(&transport),
      reliability_(reliability),
      obs_(obs),
      engine_(builtins),
      plan_(plan),
      pool_(pool),
      epoch_(std::chrono::steady_clock::now()) {
  if (plan_ != nullptr) {
    // Per-node engine with a null registry: obs::Registry is not thread-safe
    // and the shared element counters would race across node threads.
    flow_ = std::make_unique<dataflow::Engine>(*plan_, builtins, nullptr);
  }
  for (const auto& rule : program_->rules) {
    if (rule.is_fact()) continue;
    (rule.head.has_aggregate() ? agg_rules_ : normal_rules_).push_back(&rule);
  }
}

double Node::now_ms() const {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   epoch_)
      .count();
}

void Node::seed(Tuple fact) { seeds_.push_back(std::move(fact)); }

const Node::PredInfo& Node::pred_info(const std::string& predicate) const {
  auto it = pred_cache_.find(predicate);
  if (it != pred_cache_.end()) return it->second;
  PredInfo info;
  if (catalog_->contains(predicate)) {
    const auto& ci = catalog_->info(predicate);
    info.loc_index = ci.loc_index;
    info.transient = ci.lifetime_seconds.has_value() && *ci.lifetime_seconds == 0.0;
    info.key_fields = &ci.key_fields;
  }
  return pred_cache_.emplace(predicate, info).first->second;
}

const std::string& Node::location_of(const Tuple& tuple) const {
  const std::size_t idx = pred_info(tuple.predicate()).loc_index;
  if (idx >= tuple.arity() || !tuple.at(idx).is_addr()) {
    throw ndlog::AnalysisError("tuple " + tuple.to_string() +
                               " has no address at its location attribute");
  }
  return tuple.at(idx).as_addr();
}

bool Node::TupleKeyLess::operator()(const Tuple& a, const Tuple& b) const {
  if (int c = a.predicate().compare(b.predicate()); c != 0) return c < 0;
  const auto* kf = node->pred_info(a.predicate()).key_fields;
  if (kf == nullptr || kf->empty()) return a < b;  // whole tuple is the key
  for (std::size_t f : *kf) {
    if (f < 1 || f > a.arity() || f > b.arity()) continue;
    const ndlog::Value& va = a.at(f - 1);
    const ndlog::Value& vb = b.at(f - 1);
    if (va < vb) return true;
    if (vb < va) return false;
  }
  return false;
}

void Node::note_insert(const Tuple& tuple) {
  if (flow_) flow_->on_insert(tuple, db_);
}

void Node::note_erase(const Tuple& tuple) {
  if (flow_) flow_->on_erase(tuple, db_);
}

void Node::tuple_event(const char* kind, const Tuple& tuple) {
  if (obs_.tuple_events != nullptr && *obs_.tuple_events) {
    (*obs_.tuple_events)(kind, name_, tuple, now_ms() / 1000.0);
  }
  if (obs_.tuple_trace == nullptr) return;
  obs_.tuple_trace->instant_at(
      static_cast<std::uint64_t>(now_ms() * 1000.0),
      std::string(kind) + " " + tuple.predicate(), "tuple",
      "{\"node\":\"" + obs::json_escape(name_) + "\",\"tuple\":\"" +
          obs::json_escape(tuple.to_string()) + "\"}");
}

bool Node::install(const Tuple& tuple) {
  auto it = by_key_.find(tuple);
  bool changed = false;
  if (it == by_key_.end()) {
    by_key_.insert(tuple);
    db_.insert(tuple);
    note_insert(tuple);
    tuple_event("install", tuple);
    changed = true;
  } else if (!(*it == tuple)) {
    // Keyed overwrite (P2 materialize semantics), exactly as the simulator.
    db_.erase(*it);
    note_erase(*it);
    tuple_event("retract", *it);
    auto slot = by_key_.extract(it);
    slot.value() = tuple;  // same key fields: the set's order is undisturbed
    by_key_.insert(std::move(slot));
    db_.insert(tuple);
    note_insert(tuple);
    tuple_event("install", tuple);
    ++stats_.overwrites;
    changed = true;
  }
  if (changed) {
    ++stats_.installed;
    if (obs_.installed != nullptr) obs_.installed->add(1);
  }
  return changed;
}

void Node::route(Tuple tuple) {
  const std::string& dest = location_of(tuple);
  if (dest == name_) {
    deliver(std::move(tuple), /*transient=*/false);
  } else {
    ship(std::move(tuple), dest);
  }
}

void Node::run_rules(const Tuple& delta) {
  std::vector<Tuple> produced;
  if (flow_) {
    flow_->process(delta, db_, produced);
  } else {
    TupleSet delta_set{delta};
    for (const Rule* rule : normal_rules_) {
      const auto atoms = ndlog::RuleEngine::positive_atoms(*rule);
      for (std::size_t i = 0; i < atoms.size(); ++i) {
        if (atoms[i]->atom.predicate != delta.predicate()) continue;
        engine_.eval_rule_delta(*rule, db_, i, delta_set,
                                [&](Tuple t) { produced.push_back(std::move(t)); });
      }
    }
  }
  for (auto& t : produced) route(std::move(t));
}

bool Node::run_agg_rules() {
  if (agg_rules_.empty()) return false;
  bool any_changed = false;
  if (flow_) {
    for (std::size_t i = 0; i < plan_->aggregates.size(); ++i) {
      if (flow_->aggregate_incremental(i)) {
        // Diff flush: only the groups whose aggregate value moved come back,
        // so maintenance costs O(changes), not O(groups), per batch.
        if (!flow_->flush_aggregate_diff(i, agg_deltas_)) continue;
        any_changed = true;
        for (auto& d : agg_deltas_) {
          if (d.retract.has_value() && location_of(*d.retract) == name_ &&
              db_.erase(*d.retract)) {
            note_erase(*d.retract);
            tuple_event("retract", *d.retract);
            by_key_.erase(*d.retract);
          }
          if (!d.assert_now.has_value()) continue;
          const std::string dest = location_of(*d.assert_now);
          if (dest == name_) {
            if (install(*d.assert_now)) {
              if (agg_collect_ != nullptr) {
                agg_collect_->push_back(std::move(*d.assert_now));
              } else {
                run_rules(*d.assert_now);
              }
            }
          } else {
            ship(std::move(*d.assert_now), dest);
          }
        }
        continue;
      }
      const Rule* rule = &program_->rules[plan_->aggregates[i].rule_index];
      auto maybe_outputs = flow_->flush_aggregate(i, db_);
      if (!maybe_outputs) continue;  // provably unchanged since the last flush
      TupleSet outputs = std::move(*maybe_outputs);
      TupleSet& prev = agg_cache_[rule];
      if (outputs == prev) continue;
      any_changed = true;
      for (const auto& old_row : prev) {
        if (outputs.count(old_row)) continue;
        if (location_of(old_row) != name_) continue;  // remote copies are theirs
        if (db_.erase(old_row)) {
          note_erase(old_row);
          tuple_event("retract", old_row);
          by_key_.erase(old_row);
        }
      }
      std::vector<Tuple> added;
      for (const auto& row : outputs) {
        if (!prev.count(row)) added.push_back(row);
      }
      prev = outputs;
      for (auto& t : added) {
        const std::string dest = location_of(t);
        if (dest == name_) {
          if (install(t)) {
            if (agg_collect_ != nullptr) {
              agg_collect_->push_back(std::move(t));
            } else {
              run_rules(t);
            }
          }
        } else {
          ship(std::move(t), dest);
        }
      }
    }
    return any_changed;
  }
  for (const Rule* rule : agg_rules_) {
    TupleSet outputs;
    engine_.eval_agg_rule(*rule, db_, [&](Tuple t) { outputs.insert(std::move(t)); });
    TupleSet& prev = agg_cache_[rule];
    if (outputs == prev) continue;
    any_changed = true;
    // Incremental view maintenance: retract groups that disappeared or whose
    // aggregate value changed, then install/ship the new rows (same
    // diff-against-cache flow as runtime::Simulator::run_agg_rules).
    for (const auto& old_row : prev) {
      if (outputs.count(old_row)) continue;
      if (location_of(old_row) != name_) continue;
      if (db_.erase(old_row)) {
        tuple_event("retract", old_row);
        by_key_.erase(old_row);
      }
    }
    std::vector<Tuple> added;
    for (const auto& row : outputs) {
      if (!prev.count(row)) added.push_back(row);
    }
    prev = outputs;
    for (auto& t : added) {
      const std::string dest = location_of(t);
      if (dest == name_) {
        if (install(t)) {
          if (agg_collect_ != nullptr) {
            agg_collect_->push_back(std::move(t));
          } else {
            run_rules(t);
          }
        }
      } else {
        ship(std::move(t), dest);
      }
    }
  }
  return any_changed;
}

void Node::flush_agg_rules() {
  // A pass's own installs (a new best row firing ordinary rules) can re-dirty
  // an aggregate, so repeat until a pass changes nothing.
  while (run_agg_rules()) {
  }
}

void Node::deliver(Tuple tuple, bool transient) {
  if (transient) {
    run_rules(tuple);
    return;
  }
  if (!install(tuple)) return;  // duplicate: no re-derivation
  run_rules(tuple);
}

void Node::ship(Tuple tuple, const std::string& dest) {
  // NB: callers may pass `dest` referencing a Value inside `tuple`; a Tuple
  // move steals the values vector's buffer without relocating the elements,
  // so the reference stays valid for the map lookup below.
  auto& buf = outbuf_[dest];
  if (buf.empty()) ++outbuf_dirty_;
  buf.push_back(std::move(tuple));
  if (!reliability_.batch) flush_channels();
}

void Node::flush_channels() {
  if (outbuf_dirty_ == 0) return;  // idle sweeps skip the whole scan
  outbuf_dirty_ = 0;
  for (auto& [dest, buf] : outbuf_) {
    if (buf.empty()) continue;
    Frame frame;
    frame.kind = Frame::Kind::DataBatch;
    frame.src = name_;
    frame.dst = dest;
    frame.tuples = std::move(buf);
    buf.clear();
    const std::size_t tuple_count = frame.tuples.size();
    auto oit = out_.end();
    if (reliability_.enabled) {
      oit = out_.try_emplace(dest).first;
      frame.seq = oit->second.next_seq++;
    }
    // Raw mode: seq stays 0 — no receiver checks it, and a per-ship counter
    // would make otherwise-identical runs byte-diverge for nothing.
    std::string bytes;
    {
      obs::Timer::Scope scope(obs_.encode);
      bytes = encode_frame(frame);
    }
    if (oit != out_.end()) {
      const double due = now_ms() + reliability_.initial_backoff_ms;
      oit->second.pending.emplace(
          frame.seq, Pending{bytes, due, reliability_.initial_backoff_ms});
      due_heap_.push(Due{due, &oit->first, frame.seq});
      unacked_.fetch_add(1, std::memory_order_acq_rel);
    }
    ++stats_.sent;
    stats_.tuples_shipped += tuple_count;
    stats_.bytes_sent += bytes.size();
    if (obs_.sent != nullptr) obs_.sent->add(1);
    if (obs_.tuples_shipped != nullptr) obs_.tuples_shipped->add(tuple_count);
    if (obs_.bytes_sent != nullptr) obs_.bytes_sent->add(bytes.size());
    if (obs_.batch_size != nullptr) obs_.batch_size->observe(tuple_count);
    transport_->send(name_, dest, std::move(bytes));
  }
}

void Node::retransmit_due() {
  if (!reliability_.enabled || due_heap_.empty()) return;
  const double now = now_ms();
  while (!due_heap_.empty()) {
    const Due top = due_heap_.top();
    if (top.due_ms > now) break;  // heap order: nothing else is due either
    due_heap_.pop();
    auto oit = out_.find(*top.dest);
    if (oit == out_.end()) continue;
    auto pit = oit->second.pending.find(top.seq);
    if (pit == oit->second.pending.end()) continue;  // acked: stale heap entry
    Pending& p = pit->second;
    if (p.due_ms != top.due_ms) continue;  // rescheduled: stale heap entry
    try {
      transport_->send(name_, *top.dest, p.bytes);
    } catch (const TransportError&) {
      // The transport refused the frame (e.g. unreachable peer). A send that
      // never happened must not escalate backoff or skew retransmitted/
      // bytes_sent — retry later at the *same* backoff.
      p.due_ms = now + p.backoff_ms;
      due_heap_.push(Due{p.due_ms, &oit->first, top.seq});
      continue;
    }
    p.backoff_ms = std::min(p.backoff_ms * 2.0, reliability_.max_backoff_ms);
    p.due_ms = now + p.backoff_ms;
    ++stats_.retransmitted;
    stats_.bytes_sent += p.bytes.size();
    if (obs_.retransmitted != nullptr) obs_.retransmitted->add(1);
    if (obs_.bytes_sent != nullptr) obs_.bytes_sent->add(p.bytes.size());
    due_heap_.push(Due{p.due_ms, &oit->first, top.seq});
  }
}

void Node::send_ack(const std::string& dest, std::uint64_t cumulative_seq) {
  Frame ack;
  ack.kind = Frame::Kind::Ack;
  ack.seq = cumulative_seq;
  ack.src = name_;
  ack.dst = dest;
  std::string bytes = encode_frame(ack);
  // Acks are wire traffic too: count them into the node's byte totals (and
  // separately, so the protocol overhead stays visible in stats and obs).
  ++stats_.acks_sent;
  stats_.ack_bytes += bytes.size();
  stats_.bytes_sent += bytes.size();
  if (obs_.ack_bytes != nullptr) obs_.ack_bytes->add(bytes.size());
  if (obs_.bytes_sent != nullptr) obs_.bytes_sent->add(bytes.size());
  transport_->send(name_, dest, std::move(bytes));
}

void Node::deliver_tuples(std::vector<Tuple>&& tuples) {
  if (pool_ != nullptr) {
    deliver_tuples_parallel(std::move(tuples));
    return;
  }
  for (auto& t : tuples) {
    const bool transient = pred_info(t.predicate()).transient;
    deliver(std::move(t), transient);
  }
  // One aggregate flush per delivered batch instead of per tuple — with
  // batching this is where most of the cluster's rule-evaluation time went.
  flush_agg_rules();
}

void Node::deliver_tuples_parallel(std::vector<Tuple>&& tuples) {
  // Round 0: serial installs in batch order (the exact order the serial
  // path would use); survivors plus transients form the delta frontier.
  std::vector<Tuple> frontier;
  for (auto& t : tuples) {
    if (pred_info(t.predicate()).transient) {
      frontier.push_back(std::move(t));
    } else if (install(t)) {
      frontier.push_back(std::move(t));
    }
  }
  while (!frontier.empty()) {
    // Freeze the database for this round: build every probeable index now,
    // then the workers' concurrent lookups are pure reads.
    pool_->prewarm(db_);
    std::vector<dataflow::RoundItem> items;
    items.reserve(frontier.size());
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      items.push_back(dataflow::RoundItem{&frontier[i], &db_, i});
    }
    std::vector<std::pair<std::size_t, Tuple>> produced;
    pool_->process_round(items, produced);

    // Barrier: installs, ships and aggregate flushes serialize again, in
    // the pool's deterministic shard-major merge order.
    std::vector<Tuple> next;
    for (auto& [tag, t] : produced) {
      (void)tag;  // single node: every delta is ours
      const std::string& dest = location_of(t);
      if (dest == name_) {
        if (install(t)) next.push_back(std::move(t));
      } else {
        ship(std::move(t), dest);
      }
    }
    agg_collect_ = &next;
    flush_agg_rules();
    agg_collect_ = nullptr;
    frontier = std::move(next);
  }
}

void Node::handle_batch(Frame&& frame) {
  if (!reliability_.enabled) {
    // Raw mode: process in arrival order, no dedup (fault-free transports only).
    ++stats_.received;
    stats_.tuples_received += frame.tuples.size();
    if (obs_.received != nullptr) obs_.received->add(1);
    deliver_tuples(std::move(frame.tuples));
    return;
  }
  const std::string src = frame.src;
  InChannel& in = in_[src];
  if (frame.seq < in.next_expected || in.reassembly.count(frame.seq) > 0) {
    // Already delivered or already buffered: the previous ack may have been
    // lost, so re-ack the cumulative frontier.
    ++stats_.duplicates;
    send_ack(src, in.next_expected - 1);
    return;
  }
  if (frame.seq != in.next_expected) {
    in.reassembly.emplace(frame.seq, std::move(frame.tuples));
    send_ack(src, in.next_expected - 1);
    return;
  }
  // In-order delivery: this batch, then everything it unblocks; one
  // cumulative ack for the whole run.
  std::vector<Tuple> batch = std::move(frame.tuples);
  for (;;) {
    ++in.next_expected;
    ++stats_.received;
    stats_.tuples_received += batch.size();
    if (obs_.received != nullptr) obs_.received->add(1);
    deliver_tuples(std::move(batch));
    auto it = in.reassembly.find(in.next_expected);
    if (it == in.reassembly.end()) break;
    batch = std::move(it->second);
    in.reassembly.erase(it);
  }
  send_ack(src, in.next_expected - 1);
}

void Node::handle_frame(const std::string& bytes) {
  stats_.bytes_received += bytes.size();
  if (obs_.bytes_received != nullptr) obs_.bytes_received->add(bytes.size());
  Frame frame;
  try {
    obs::Timer::Scope scope(obs_.decode);
    frame = decode_frame(bytes);
  } catch (const WireError&) {
    // Corrupt frame: count and drop; the sender's retransmit recovers it.
    ++stats_.corrupt_frames;
    return;
  }
  if (frame.kind == Frame::Kind::Ack) {
    auto it = out_.find(frame.src);
    if (it != out_.end()) {
      // Cumulative: one ack clears every pending batch up to and including
      // its seq (stale due_heap_ entries are skipped lazily on pop).
      auto& pending = it->second.pending;
      std::uint64_t cleared = 0;
      for (auto pit = pending.begin();
           pit != pending.end() && pit->first <= frame.seq;) {
        pit = pending.erase(pit);
        ++cleared;
      }
      if (cleared > 0) {
        stats_.acked += cleared;
        if (obs_.acked != nullptr) obs_.acked->add(cleared);
        unacked_.fetch_sub(cleared, std::memory_order_acq_rel);
      }
    }
    return;
  }
  if (frame.kind == Frame::Kind::Data) {
    // Legacy single-tuple frame: same channel machinery, batch of one.
    frame.kind = Frame::Kind::DataBatch;
    frame.tuples.clear();
    frame.tuples.push_back(std::move(frame.tuple));
  }
  handle_batch(std::move(frame));
}

bool Node::sweep() {
  transport_->pump(name_);
  retransmit_due();
  std::string bytes;
  std::uint64_t drained = 0;
  while (rx_cursor_ != nullptr ? transport_->recv(rx_cursor_, bytes)
                               : transport_->recv(name_, bytes)) {
    ++drained;
    handle_frame(bytes);
    activity_.fetch_add(1, std::memory_order_acq_rel);
  }
  if (drained > 0) stats_.last_active_ms = now_ms();
  // Everything this sweep derived for each remote peer leaves as one batch.
  flush_channels();
  if (drained > 0 && obs_.mailbox_depth != nullptr) obs_.mailbox_depth->observe(drained);
  return drained > 0;
}

void Node::run(const std::atomic<bool>& stop) {
  try {
    rx_cursor_ = transport_->rx_cursor(name_);
    if (pool_ != nullptr) {
      // The seed batch goes through the same round machinery as delivered
      // batches (deliver_tuples_parallel flushes aggregates per round).
      activity_.fetch_add(seeds_.size(), std::memory_order_acq_rel);
      std::vector<Tuple> seeds = std::move(seeds_);
      deliver_tuples_parallel(std::move(seeds));
    } else {
      for (auto& fact : seeds_) {
        deliver(std::move(fact), /*transient=*/false);
        activity_.fetch_add(1, std::memory_order_acq_rel);
      }
      flush_agg_rules();
    }
    seeds_.clear();
    flush_channels();  // the seeds' derivations ship before the first sweep
    std::uint32_t idle_streak = 0;
    while (!stop.load(std::memory_order_acquire)) {
      if (sweep()) {
        idle_.store(false, std::memory_order_release);
        idle_streak = 0;
        continue;
      }
      if (++idle_streak < 8) {
        idle_.store(true, std::memory_order_release);
        std::this_thread::yield();
        continue;
      }
      // Nothing to do: park on the transport doorbell instead of spinning.
      // A runnable-but-idle thread is pure overhead when nodes outnumber
      // cores — it steals scheduler slices from whichever node has real
      // work — and every frame bound for us rings the bell, so parking
      // costs one wakeup of latency, not a poll interval. The ticket is
      // snapshotted *before* a confirming sweep: a frame arriving between
      // that sweep and the wait advances the signal past the ticket and
      // rx_wait returns immediately. The timeout only backstops retransmit
      // deadlines (and, inside rx_wait, fault pumping); shutdown is a
      // wake_all() from the coordinator.
      const std::uint64_t ticket = transport_->rx_ticket(name_);
      if (sweep()) {
        idle_.store(false, std::memory_order_release);
        continue;
      }
      idle_.store(true, std::memory_order_release);
      double timeout_ms = 5.0;
      if (!due_heap_.empty()) {
        timeout_ms = std::clamp(due_heap_.top().due_ms - now_ms(), 0.05, 5.0);
      }
      // Parking is the cluster-wide signal the coordinator's termination scan
      // waits on (every node parked + nothing in flight ⇒ quiescent), so tell
      // it the idle picture changed before blocking.
      transport_->ring_progress();
      transport_->rx_wait(name_, ticket, timeout_ms);
    }
  } catch (const std::exception& e) {
    error_ = name_ + ": " + e.what();
    failed_.store(true, std::memory_order_release);
    idle_.store(true, std::memory_order_release);
    transport_->ring_progress();  // coordinator aborts the run promptly
  }
}

}  // namespace fvn::net
