#include "net/node.hpp"

#include <algorithm>
#include <thread>

namespace fvn::net {

using ndlog::Rule;
using ndlog::Tuple;
using ndlog::TupleSet;

Node::Node(std::string name, const ndlog::Program& program,
           const ndlog::Catalog& catalog, const ndlog::BuiltinRegistry& builtins,
           const dataflow::Plan* plan, Transport& transport,
           ReliabilityOptions reliability, NodeObs obs)
    : name_(std::move(name)),
      program_(&program),
      catalog_(&catalog),
      builtins_(&builtins),
      transport_(&transport),
      reliability_(reliability),
      obs_(obs),
      engine_(builtins),
      plan_(plan),
      epoch_(std::chrono::steady_clock::now()) {
  if (plan_ != nullptr) {
    // Per-node engine with a null registry: obs::Registry is not thread-safe
    // and the shared element counters would race across node threads.
    flow_ = std::make_unique<dataflow::Engine>(*plan_, builtins, nullptr);
  }
  for (const auto& rule : program_->rules) {
    if (rule.is_fact()) continue;
    (rule.head.has_aggregate() ? agg_rules_ : normal_rules_).push_back(&rule);
  }
}

double Node::now_ms() const {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   epoch_)
      .count();
}

void Node::seed(Tuple fact) { seeds_.push_back(std::move(fact)); }

std::string Node::location_of(const Tuple& tuple) const {
  const std::size_t idx = catalog_->contains(tuple.predicate())
                              ? catalog_->loc_index(tuple.predicate())
                              : 0;
  if (idx >= tuple.arity() || !tuple.at(idx).is_addr()) {
    throw ndlog::AnalysisError("tuple " + tuple.to_string() +
                               " has no address at its location attribute");
  }
  return tuple.at(idx).as_addr();
}

std::string Node::key_of(const Tuple& tuple) const {
  std::string key = tuple.predicate();
  if (!catalog_->contains(tuple.predicate())) return key + "|" + tuple.to_string();
  const auto& info = catalog_->info(tuple.predicate());
  if (info.key_fields.empty()) return key + "|" + tuple.to_string();
  for (std::size_t f : info.key_fields) {
    if (f >= 1 && f <= tuple.arity()) key += "|" + tuple.at(f - 1).to_string();
  }
  return key;
}

void Node::note_insert(const Tuple& tuple) {
  if (flow_) flow_->on_insert(tuple, db_);
}

void Node::note_erase(const Tuple& tuple) {
  if (flow_) flow_->on_erase(tuple, db_);
}

bool Node::install(const Tuple& tuple) {
  const std::string key = key_of(tuple);
  auto it = by_key_.find(key);
  bool changed = false;
  if (it == by_key_.end()) {
    by_key_.emplace(key, tuple);
    db_.insert(tuple);
    note_insert(tuple);
    changed = true;
  } else if (!(it->second == tuple)) {
    // Keyed overwrite (P2 materialize semantics), exactly as the simulator.
    db_.erase(it->second);
    note_erase(it->second);
    it->second = tuple;
    db_.insert(tuple);
    note_insert(tuple);
    ++stats_.overwrites;
    changed = true;
  }
  if (changed) {
    ++stats_.installed;
    if (obs_.installed != nullptr) obs_.installed->add(1);
  }
  return changed;
}

void Node::route(const Tuple& tuple) {
  const std::string dest = location_of(tuple);
  if (dest == name_) {
    deliver(tuple, /*transient=*/false);
  } else {
    ship(tuple, dest);
  }
}

void Node::run_rules(const Tuple& delta) {
  std::vector<Tuple> produced;
  if (flow_) {
    flow_->process(delta, db_, produced);
  } else {
    TupleSet delta_set{delta};
    for (const Rule* rule : normal_rules_) {
      const auto atoms = ndlog::RuleEngine::positive_atoms(*rule);
      for (std::size_t i = 0; i < atoms.size(); ++i) {
        if (atoms[i]->atom.predicate != delta.predicate()) continue;
        engine_.eval_rule_delta(*rule, db_, i, delta_set,
                                [&](Tuple t) { produced.push_back(std::move(t)); });
      }
    }
  }
  for (auto& t : produced) route(t);
}

void Node::run_agg_rules() {
  if (agg_rules_.empty()) return;
  if (flow_) {
    for (std::size_t i = 0; i < plan_->aggregates.size(); ++i) {
      const Rule* rule = &program_->rules[plan_->aggregates[i].rule_index];
      auto maybe_outputs = flow_->flush_aggregate(i, db_);
      if (!maybe_outputs) continue;  // provably unchanged since the last flush
      TupleSet outputs = std::move(*maybe_outputs);
      TupleSet& prev = agg_cache_[rule];
      if (outputs == prev) continue;
      for (const auto& old_row : prev) {
        if (outputs.count(old_row)) continue;
        if (location_of(old_row) != name_) continue;  // remote copies are theirs
        if (db_.erase(old_row)) {
          note_erase(old_row);
          by_key_.erase(key_of(old_row));
        }
      }
      std::vector<Tuple> added;
      for (const auto& row : outputs) {
        if (!prev.count(row)) added.push_back(row);
      }
      prev = outputs;
      for (const auto& t : added) {
        const std::string dest = location_of(t);
        if (dest == name_) {
          if (install(t)) run_rules(t);
        } else {
          ship(t, dest);
        }
      }
    }
    return;
  }
  for (const Rule* rule : agg_rules_) {
    TupleSet outputs;
    engine_.eval_agg_rule(*rule, db_, [&](Tuple t) { outputs.insert(std::move(t)); });
    TupleSet& prev = agg_cache_[rule];
    if (outputs == prev) continue;
    // Incremental view maintenance: retract groups that disappeared or whose
    // aggregate value changed, then install/ship the new rows (same
    // diff-against-cache flow as runtime::Simulator::run_agg_rules).
    for (const auto& old_row : prev) {
      if (outputs.count(old_row)) continue;
      if (location_of(old_row) != name_) continue;
      if (db_.erase(old_row)) by_key_.erase(key_of(old_row));
    }
    std::vector<Tuple> added;
    for (const auto& row : outputs) {
      if (!prev.count(row)) added.push_back(row);
    }
    prev = outputs;
    for (const auto& t : added) {
      const std::string dest = location_of(t);
      if (dest == name_) {
        if (install(t)) run_rules(t);
      } else {
        ship(t, dest);
      }
    }
  }
}

void Node::deliver(const Tuple& tuple, bool transient) {
  if (transient) {
    run_rules(tuple);
    run_agg_rules();
    return;
  }
  if (!install(tuple)) return;  // duplicate: no re-derivation
  run_rules(tuple);
  run_agg_rules();
}

void Node::ship(const Tuple& tuple, const std::string& dest) {
  Frame frame;
  frame.kind = Frame::Kind::Data;
  frame.src = name_;
  frame.dst = dest;
  frame.tuple = tuple;
  std::string bytes;
  {
    obs::Timer::Scope scope(obs_.encode);
    if (reliability_.enabled) {
      OutChannel& out = out_[dest];
      frame.seq = out.next_seq++;
      bytes = encode_frame(frame);
      out.pending.emplace(
          frame.seq, Pending{bytes, now_ms() + reliability_.initial_backoff_ms,
                             reliability_.initial_backoff_ms});
      unacked_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      frame.seq = out_[dest].next_seq++;
      bytes = encode_frame(frame);
    }
  }
  ++stats_.sent;
  stats_.bytes_sent += bytes.size();
  if (obs_.sent != nullptr) obs_.sent->add(1);
  if (obs_.bytes_sent != nullptr) obs_.bytes_sent->add(bytes.size());
  transport_->send(name_, dest, std::move(bytes));
}

void Node::retransmit_due() {
  if (!reliability_.enabled) return;
  const double now = now_ms();
  for (auto& [dest, out] : out_) {
    for (auto& [seq, pending] : out.pending) {
      if (pending.due_ms > now) continue;
      pending.backoff_ms =
          std::min(pending.backoff_ms * 2.0, reliability_.max_backoff_ms);
      pending.due_ms = now + pending.backoff_ms;
      ++stats_.retransmitted;
      stats_.bytes_sent += pending.bytes.size();
      if (obs_.retransmitted != nullptr) obs_.retransmitted->add(1);
      if (obs_.bytes_sent != nullptr) obs_.bytes_sent->add(pending.bytes.size());
      transport_->send(name_, dest, pending.bytes);
    }
  }
}

void Node::handle_data(Frame&& frame) {
  if (!reliability_.enabled) {
    // Raw mode: process in arrival order, no dedup (fault-free transports only).
    const bool transient =
        catalog_->contains(frame.tuple.predicate()) &&
        catalog_->info(frame.tuple.predicate()).lifetime_seconds == 0.0;
    ++stats_.received;
    if (obs_.received != nullptr) obs_.received->add(1);
    deliver(frame.tuple, transient);
    return;
  }
  // Always ack, even for duplicates — the previous ack may have been lost.
  Frame ack;
  ack.kind = Frame::Kind::Ack;
  ack.seq = frame.seq;
  ack.src = name_;
  ack.dst = frame.src;
  transport_->send(name_, frame.src, encode_frame(ack));

  InChannel& in = in_[frame.src];
  if (frame.seq < in.next_expected || in.reassembly.count(frame.seq)) {
    ++stats_.duplicates;
    return;
  }
  if (frame.seq != in.next_expected) {
    in.reassembly.emplace(frame.seq, std::move(frame.tuple));
    return;
  }
  // In-order delivery: this frame, then everything it unblocks.
  Tuple next = std::move(frame.tuple);
  for (;;) {
    ++in.next_expected;
    ++stats_.received;
    if (obs_.received != nullptr) obs_.received->add(1);
    const bool transient = catalog_->contains(next.predicate()) &&
                           catalog_->info(next.predicate()).lifetime_seconds == 0.0;
    deliver(next, transient);
    auto it = in.reassembly.find(in.next_expected);
    if (it == in.reassembly.end()) break;
    next = std::move(it->second);
    in.reassembly.erase(it);
  }
}

void Node::handle_frame(const std::string& bytes) {
  stats_.bytes_received += bytes.size();
  if (obs_.bytes_received != nullptr) obs_.bytes_received->add(bytes.size());
  Frame frame;
  try {
    obs::Timer::Scope scope(obs_.decode);
    frame = decode_frame(bytes);
  } catch (const WireError&) {
    // Corrupt frame: count and drop; the sender's retransmit recovers it.
    ++stats_.corrupt_frames;
    return;
  }
  if (frame.kind == Frame::Kind::Ack) {
    auto it = out_.find(frame.src);
    if (it != out_.end() && it->second.pending.erase(frame.seq) > 0) {
      ++stats_.acked;
      if (obs_.acked != nullptr) obs_.acked->add(1);
      unacked_.fetch_sub(1, std::memory_order_acq_rel);
    }
    return;
  }
  handle_data(std::move(frame));
}

bool Node::sweep() {
  transport_->pump(name_);
  retransmit_due();
  std::string bytes;
  std::uint64_t drained = 0;
  while (transport_->recv(name_, bytes)) {
    ++drained;
    handle_frame(bytes);
    activity_.fetch_add(1, std::memory_order_acq_rel);
  }
  if (drained > 0 && obs_.mailbox_depth != nullptr) obs_.mailbox_depth->observe(drained);
  return drained > 0;
}

void Node::run(const std::atomic<bool>& stop) {
  try {
    for (const auto& fact : seeds_) {
      deliver(fact, /*transient=*/false);
      activity_.fetch_add(1, std::memory_order_acq_rel);
    }
    seeds_.clear();
    while (!stop.load(std::memory_order_acquire)) {
      const bool busy = sweep();
      idle_.store(!busy, std::memory_order_release);
      if (!busy) {
        // Nothing to do: yield the core instead of spin-polling. 100µs keeps
        // retransmit deadlines (>= 2ms) and termination polls responsive.
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  } catch (const std::exception& e) {
    error_ = name_ + ": " + e.what();
    failed_.store(true, std::memory_order_release);
    idle_.store(true, std::memory_order_release);
  }
}

}  // namespace fvn::net
