// fvn::net cluster — orchestrates N concurrently-executing Nodes over a
// Transport and detects distributed termination (DESIGN.md §12).
//
// Lifecycle: construct (localizes + checks the program, compiles the
// dataflow plan when asked), inject() base facts, run() once. run() builds
// the transport, registers every node that can ever be addressed (every
// Addr value reachable from a base fact — location specifiers cannot be
// synthesized, only copied, so this is the complete node universe), starts
// one thread per node, then polls for quiescence:
//
//   quiesced  :=  for `quiescence_rounds` consecutive polls:
//                 every node idle  AND  transport quiet (mailboxes, hold
//                 queues, kernel buffers empty)  AND  total unacked == 0
//                 AND  the summed activity counter did not change
//
// This is a double-scan (Safra-style) argument: a message in flight at poll
// time is either buffered somewhere (transport not quiet), unacknowledged
// (unacked > 0), or was already processed (activity moved between polls).
// Requiring all three stable across consecutive scans closes the window in
// which a frame hops between the categories unseen. See DESIGN.md §12 for
// the full argument.
//
// Scope: hard-state programs only. Soft state (finite lifetimes) and
// `periodic` need per-node clocks and never quiesce; the constructor rejects
// them with ClusterError — the discrete-event Simulator remains the executor
// for those.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dataflow/plan.hpp"
#include "ndlog/catalog.hpp"
#include "ndlog/eval.hpp"
#include "net/node.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/simulator.hpp"

namespace fvn::net {

/// A program the cluster cannot run (soft state, periodic, no nodes), or a
/// run-time failure inside a node thread.
class ClusterError : public std::runtime_error {
 public:
  explicit ClusterError(const std::string& what) : std::runtime_error(what) {}
};

enum class TransportKind : std::uint8_t { InProc, Udp };

struct ClusterOptions {
  runtime::EngineKind engine = runtime::EngineKind::Interpreter;
  TransportKind transport = TransportKind::InProc;
  /// Seeded transport misbehavior; masked by reliability when enabled.
  FaultOptions faults;
  ReliabilityOptions reliability;
  /// Consecutive stable coordinator polls required to declare quiescence.
  std::size_t quiescence_rounds = 3;
  /// Coordinator sleep between quiescence scans. Small programs converge in a
  /// handful of milliseconds, so the poll interval is a direct wall-clock tax
  /// (quiescence_rounds * interval at minimum) — keep it well under 1ms.
  double poll_interval_ms = 0.25;
  /// Wall-clock budget; exceeded => stats.quiesced = false.
  double max_seconds = 30.0;
  bool require_stratified = true;
  bool incremental_aggregates = true;
  /// Dataflow engine: compile with cost-guided join ordering.
  bool cost_order = false;
  /// Shard-parallel evaluation (both engines). 0 = untouched serial nodes.
  /// >= 1 asks fvn::ndlog::parallel to certify the (localized) program; when
  /// certified, every node gets a private worker pool of this size and
  /// evaluates delivered batches in shard-keyed rounds (1 = round machinery
  /// without extra threads). Uncertified programs transparently run serial;
  /// ClusterStats::parallel_fallback_reason says why.
  std::size_t workers = 0;
  /// Observability sinks (null = off). With `metrics`, per-node series
  /// net/node/<n>/{sent,received,retransmitted,acked,installed,bytes_sent,
  /// bytes_received,ack_bytes,tuples_shipped,mailbox_depth,batch_size,
  /// encode,decode} are pre-created before the threads start (the registry is not thread-safe; each node only ever
  /// touches its own series). With `trace`, the *coordinator* emits
  /// cluster-level counter samples each poll.
  obs::Registry* metrics = nullptr;
  obs::Trace* trace = nullptr;
  /// Record the engine-agnostic tuple lifecycle stream (install/retract as
  /// cat "tuple" instants, the same shape runtime::Simulator emits). Each node
  /// writes into its own private obs::Trace (the Trace is not thread-safe);
  /// Cluster::tuple_events() returns the post-join merge in timestamp order.
  /// LTL runtime monitors (`dist --monitor`) consume this stream.
  bool capture_tuple_events = false;
  /// Live engine-agnostic tuple-event hook, invoked inline from node threads
  /// for every install/retract — the same signature (and kinds) as
  /// SimOptions::tuple_events, timestamped with the emitting node's clock in
  /// seconds. Fires concurrently from every node thread: the callee must be
  /// internally synchronized (serve::Feed with thread_safe=true is the
  /// intended consumer). Independent of capture_tuple_events.
  std::function<void(std::string_view kind, const std::string& node,
                     const ndlog::Tuple& tuple, double now)>
      tuple_events;
};

struct ClusterStats {
  std::size_t nodes = 0;
  std::uint64_t messages_sent = 0;        ///< DataBatch frames first-transmitted
  std::uint64_t messages_received = 0;    ///< DataBatch frames delivered in order
  std::uint64_t tuples_shipped = 0;       ///< tuples carried by sent batches
  std::uint64_t tuples_received = 0;      ///< tuples carried by delivered batches
  std::uint64_t retransmitted = 0;
  std::uint64_t acked = 0;
  std::uint64_t acks_sent = 0;            ///< Ack frames transmitted
  std::uint64_t duplicates = 0;           ///< deduplicated re-deliveries
  std::uint64_t corrupt_frames = 0;
  std::uint64_t tuples_installed = 0;
  std::uint64_t overwrites = 0;
  /// Payload bytes handed to the transport: batches, retransmits, *and acks*
  /// (`ack_bytes` breaks the ack share out).
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t ack_bytes = 0;
  TransportStats transport;
  std::size_t coordinator_polls = 0;
  double wall_ms = 0.0;
  bool quiesced = false;
  /// Shard-parallel execution (ClusterOptions::workers): whether the
  /// certificate admitted it, why not when it didn't, and the total worker
  /// rounds evaluated across all nodes.
  bool parallel_active = false;
  std::string parallel_fallback_reason;
  std::uint64_t parallel_rounds = 0;
};

/// Distributed executor for one hard-state NDlog program. One-shot: run()
/// may be called once; databases are readable afterwards.
class Cluster {
 public:
  Cluster(ndlog::Program program, ClusterOptions options = {},
          const ndlog::BuiltinRegistry& builtins =
              ndlog::BuiltinRegistry::standard());

  /// Ensure a node exists even if no fact lives there (receive-only nodes).
  void add_node(const std::string& name);

  /// Queue a base fact; delivered to the node named by its location
  /// attribute when run() starts. Every Addr value inside the fact also
  /// registers a node, so derived tuples always have a live destination.
  void inject(const ndlog::Tuple& fact);
  void inject_all(const std::vector<ndlog::Tuple>& facts);

  /// Start the transport and node threads, run to quiescence (or budget),
  /// stop, join, aggregate. Throws TransportError if the transport cannot be
  /// built (UDP in a sandbox) and ClusterError if a node thread failed.
  ClusterStats run();

  /// Valid after run().
  const ndlog::Database& database(const std::string& node) const;
  /// Per-node protocol counters (valid after run(); throws on unknown node).
  const NodeStats& node_stats(const std::string& node) const;
  /// Union of all nodes' relations — the object the differential suite
  /// compares against runtime::Simulator::merged_database().
  ndlog::Database merged_database() const;
  std::vector<std::string> nodes() const;
  const ndlog::Program& program() const noexcept { return program_; }
  /// Tuple lifecycle stream merged across nodes in timestamp order (empty
  /// unless options.capture_tuple_events; valid after run()).
  std::vector<obs::TraceEvent> tuple_events() const;

 private:
  void register_addrs(const ndlog::Value& value);
  std::string location_of(const ndlog::Tuple& tuple) const;
  NodeObs make_obs(const std::string& name);

  ndlog::Program program_;
  ndlog::Catalog catalog_;
  ClusterOptions options_;
  const ndlog::BuiltinRegistry* builtins_;
  std::optional<dataflow::Plan> plan_;

  std::map<std::string, std::vector<ndlog::Tuple>> seeds_;  // node -> facts
  std::unique_ptr<Transport> transport_;
  std::map<std::string, std::unique_ptr<Node>> nodes_;
  /// Shard-parallel mode: the certificate verdict (taken once, in the
  /// constructor) and one worker pool per node, created before the node
  /// threads start and destroyed after they join.
  bool parallel_certified_ = false;
  std::string parallel_fallback_;
  dataflow::ShardRouter router_;
  std::vector<std::unique_ptr<dataflow::WorkerPool>> pools_;
  /// Per-node tuple-event traces (capture_tuple_events only), created before
  /// the node threads start and read only after they join.
  std::map<std::string, std::unique_ptr<obs::Trace>> tuple_traces_;
  bool ran_ = false;
};

}  // namespace fvn::net
