// The Stable Paths Problem (Griffin, Shepherd, Wilfong [8]) and the SPVP
// activation dynamics — the formal setting behind the paper's Disagree
// discussion (§3.2.1) and experiment E3.
//
// An SPP instance fixes, for every node, a ranked list of permitted paths to
// the origin (node 0). A path assignment is *stable* when every node's
// selected path is the best permitted path consistent with its neighbors'
// selections. Disagree has two stable states and can oscillate forever under
// synchronous activation; Bad Gadget has none; Good Gadget has exactly one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fvn::bgp {

/// A path is a node sequence starting at the owning node and ending at the
/// origin 0. The empty path means "no route".
using Path = std::vector<std::size_t>;

struct SppInstance {
  std::string name;
  std::size_t node_count = 0;
  /// permitted[u] = ranked permitted paths of node u (most preferred first).
  /// permitted[0] is conventionally {{0}} (the origin's trivial path).
  std::vector<std::vector<Path>> permitted;

  /// Check structural sanity (paths start at owner, end at 0, are simple).
  void validate() const;
  /// Neighbors of u: first hops of its permitted paths.
  std::vector<std::size_t> neighbors(std::size_t u) const;
};

/// One selected path per node ({} = none). assignment[0] == {0}.
using Assignment = std::vector<Path>;

/// The gadgets of the SPP literature (node 0 is always the origin).
SppInstance disagree();     // 2 stable states, oscillates synchronously
SppInstance good_gadget();  // unique stable state, always converges
SppInstance bad_gadget();   // no stable state, always diverges
/// A policy-free shortest-hop instance over a ring (baseline; unique stable
/// state).
SppInstance shortest_hop_ring(std::size_t nodes);

/// Best permitted path of `u` given neighbor selections: the highest-ranked
/// permitted path (u, v, ...) such that the neighbor v currently selects
/// exactly (v, ...). Returns {} when none is available.
Path best_choice(const SppInstance& spp, const Assignment& assignment, std::size_t u);

/// True iff the assignment is stable (every node selects its best choice).
bool is_stable(const SppInstance& spp, const Assignment& assignment);

/// Enumerate all stable assignments by exhaustive search over the (small)
/// product of permitted-path choices.
std::vector<Assignment> stable_states(const SppInstance& spp);

/// SPVP activation dynamics.
struct SpvpOptions {
  enum class Schedule : std::uint8_t {
    Synchronous,  // all nodes recompute simultaneously each round
    RoundRobin,   // nodes activate one at a time, in order
    Random,       // uniformly random single activations
  };
  Schedule schedule = Schedule::Synchronous;
  std::uint64_t seed = 1;
  std::size_t max_steps = 10000;
};

struct SpvpResult {
  bool converged = false;
  bool oscillated = false;  // a previously seen state recurred
  std::size_t steps = 0;    // activations (or rounds, for Synchronous)
  std::size_t route_flaps = 0;  // selection changes along the run
  Assignment final_assignment;
  /// For oscillations: the length of the detected state cycle.
  std::size_t cycle_length = 0;
};

/// Run SPVP from the empty assignment.
SpvpResult run_spvp(const SppInstance& spp, const SpvpOptions& options = {});

std::string to_string(const Assignment& assignment);

}  // namespace fvn::bgp
