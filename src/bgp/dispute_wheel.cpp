#include "bgp/dispute_wheel.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

namespace fvn::bgp {

std::string DisputeWheel::to_string() const {
  std::ostringstream os;
  os << "dispute wheel:";
  for (std::size_t i = 0; i < pivots.size(); ++i) {
    os << " u" << pivots[i] << "[spoke";
    for (auto n : spokes[i]) os << " " << n;
    os << " | rim";
    for (auto n : rim_routes[i]) os << " " << n;
    os << "]";
  }
  return os.str();
}

namespace {

/// True if `suffix` is a proper suffix of `p` and p visits suffix.front().
bool has_suffix(const Path& p, const Path& suffix) {
  if (suffix.size() >= p.size()) return false;
  return std::equal(suffix.rbegin(), suffix.rend(), p.rbegin());
}

/// Graph node: (pivot u, spoke index into permitted[u]).
struct WheelVertex {
  std::size_t node;
  std::size_t spoke;  // index into permitted[node]
  bool operator<(const WheelVertex& o) const {
    return std::tie(node, spoke) < std::tie(o.node, o.spoke);
  }
  bool operator==(const WheelVertex& o) const {
    return node == o.node && spoke == o.spoke;
  }
};

struct WheelArc {
  WheelVertex to;
  Path rim_route;  // the preferred path of `from.node` going through to.node
};

}  // namespace

std::optional<DisputeWheel> find_dispute_wheel(const SppInstance& spp) {
  // Build arcs: (u, Q_u) -> (v, Q_v) iff some P ∈ permitted[u] with
  // rank(P) < rank(Q_u) has Q_v as a proper suffix (P = R·Q_v with v on P).
  std::map<WheelVertex, std::vector<WheelArc>> arcs;
  std::vector<WheelVertex> vertices;
  for (std::size_t u = 1; u < spp.node_count; ++u) {
    for (std::size_t qi = 0; qi < spp.permitted[u].size(); ++qi) {
      vertices.push_back({u, qi});
    }
  }
  for (const auto& from : vertices) {
    for (std::size_t pi = 0; pi < from.spoke; ++pi) {  // strictly preferred
      const Path& preferred = spp.permitted[from.node][pi];
      // Every (v, Q_v) such that Q_v is a proper suffix of `preferred`.
      for (std::size_t v = 1; v < spp.node_count; ++v) {
        if (v == from.node) continue;
        for (std::size_t qj = 0; qj < spp.permitted[v].size(); ++qj) {
          const Path& q_v = spp.permitted[v][qj];
          if (!q_v.empty() && q_v.front() == v && has_suffix(preferred, q_v)) {
            arcs[from].push_back(WheelArc{{v, qj}, preferred});
          }
        }
      }
    }
  }

  // DFS cycle detection over the wheel digraph.
  enum class Color { White, Gray, Black };
  std::map<WheelVertex, Color> color;
  std::vector<std::pair<WheelVertex, Path>> stack;  // vertex + rim route used

  std::optional<DisputeWheel> found;
  std::function<bool(const WheelVertex&)> dfs = [&](const WheelVertex& v) -> bool {
    color[v] = Color::Gray;
    for (const auto& arc : arcs[v]) {
      auto it = color.find(arc.to);
      const Color c = it == color.end() ? Color::White : it->second;
      if (c == Color::Gray) {
        // Slice the cycle out of the stack.
        DisputeWheel wheel;
        auto pos = std::find_if(stack.begin(), stack.end(), [&](const auto& entry) {
          return entry.first == arc.to;
        });
        for (auto itr = pos; itr != stack.end(); ++itr) {
          wheel.pivots.push_back(itr->first.node);
          wheel.spokes.push_back(spp.permitted[itr->first.node][itr->first.spoke]);
          // rim route of this pivot = rim used by the arc leaving it; for the
          // last stack entry that is the closing arc.
          auto next = std::next(itr);
          wheel.rim_routes.push_back(next == stack.end() ? arc.rim_route : next->second);
        }
        found = std::move(wheel);
        return true;
      }
      if (c == Color::White) {
        stack.emplace_back(arc.to, arc.rim_route);
        if (dfs(arc.to)) return true;
        stack.pop_back();
      }
    }
    color[v] = Color::Black;
    return false;
  };

  for (const auto& v : vertices) {
    if (color.count(v)) continue;
    stack.clear();
    stack.emplace_back(v, Path{});
    if (dfs(v)) return found;
    stack.pop_back();
  }
  return std::nullopt;
}

bool has_dispute_wheel(const SppInstance& spp) {
  return find_dispute_wheel(spp).has_value();
}

}  // namespace fvn::bgp
