#include "bgp/spp_mc.hpp"

#include <deque>
#include <sstream>
#include <unordered_set>

namespace fvn::bgp {

std::string encode_state(const Assignment& assignment) { return to_string(assignment); }

Assignment decode_state(const std::string& encoded, const SppInstance& spp) {
  Assignment out(spp.node_count);
  std::istringstream is(encoded);
  std::string token;
  // Format: "u:(a b c) u:(...) ..." — parse each "u:(...)" group.
  while (is >> token) {
    const auto colon = token.find(':');
    const std::size_t u = std::stoul(token.substr(0, colon));
    std::string inner = token.substr(colon + 1);
    // The path may span tokens ("1:(1 2 0)"): read until ')'.
    while (inner.find(')') == std::string::npos) {
      std::string more;
      is >> more;
      inner += " " + more;
    }
    inner = inner.substr(1, inner.find(')') - 1);
    Path path;
    std::istringstream ps(inner);
    std::size_t v;
    while (ps >> v) path.push_back(v);
    out[u] = path;
  }
  return out;
}

std::vector<std::string> spvp_successor_states(const SppInstance& spp,
                                               const std::string& state) {
  const Assignment current = decode_state(state, spp);
  std::vector<std::string> out;
  const std::size_t movers = spp.node_count - 1;  // nodes 1..n-1
  for (std::size_t mask = 1; mask < (1u << movers); ++mask) {
    Assignment next = current;
    bool changed = false;
    for (std::size_t bit = 0; bit < movers; ++bit) {
      if (!(mask & (1u << bit))) continue;
      const std::size_t u = bit + 1;
      const Path best = best_choice(spp, current, u);  // read the snapshot
      if (best != next[u]) {
        next[u] = best;
        changed = true;
      }
    }
    if (changed) out.push_back(encode_state(next));
  }
  return out;
}

OscillationReport check_oscillation(const SppInstance& spp, std::size_t max_states) {
  Assignment empty(spp.node_count);
  empty[0] = {0};
  auto successors = [&spp](const std::string& s) { return spvp_successor_states(spp, s); };
  // Any state may participate in a cycle; stable states are sinks (their only
  // "move" would be a no-op, which spvp_successor_states suppresses).
  auto candidate = [](const std::string&) { return true; };
  auto result = mc::find_cycle<std::string>({encode_state(empty)}, successors, candidate,
                                            max_states);
  OscillationReport report;
  report.has_cycle = !result.property_holds;
  report.states_explored = result.states_explored;
  if (report.has_cycle) {
    report.cycle = result.counterexample;
    report.cycle_length = result.counterexample.size() - 1;
  }
  return report;
}

std::vector<Assignment> reachable_stable_states(const SppInstance& spp,
                                                std::size_t max_states) {
  Assignment empty(spp.node_count);
  empty[0] = {0};
  std::vector<Assignment> stable;
  std::unordered_set<std::string> visited;
  std::deque<std::string> frontier{encode_state(empty)};
  visited.insert(frontier.front());
  while (!frontier.empty() && visited.size() < max_states) {
    const std::string current = frontier.front();
    frontier.pop_front();
    const Assignment a = decode_state(current, spp);
    if (is_stable(spp, a)) stable.push_back(a);
    for (const auto& next : spvp_successor_states(spp, current)) {
      if (visited.insert(next).second) frontier.push_back(next);
    }
  }
  return stable;
}

}  // namespace fvn::bgp
