#include "bgp/spp.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <random>
#include <set>
#include <sstream>
#include <stdexcept>

namespace fvn::bgp {

void SppInstance::validate() const {
  if (permitted.size() != node_count) {
    throw std::invalid_argument("SPP: permitted list size mismatch");
  }
  for (std::size_t u = 0; u < node_count; ++u) {
    for (const auto& p : permitted[u]) {
      if (p.empty() || p.front() != u || p.back() != 0) {
        throw std::invalid_argument("SPP: path of node " + std::to_string(u) +
                                    " must run from the node to the origin");
      }
      std::set<std::size_t> seen(p.begin(), p.end());
      if (seen.size() != p.size()) {
        throw std::invalid_argument("SPP: path of node " + std::to_string(u) +
                                    " is not simple");
      }
    }
  }
}

std::vector<std::size_t> SppInstance::neighbors(std::size_t u) const {
  std::set<std::size_t> out;
  for (const auto& p : permitted[u]) {
    if (p.size() >= 2) out.insert(p[1]);
  }
  return {out.begin(), out.end()};
}

SppInstance disagree() {
  // Griffin's Disagree: nodes 1 and 2 each prefer the route through the
  // other over their direct route to 0.
  SppInstance spp;
  spp.name = "disagree";
  spp.node_count = 3;
  spp.permitted = {
      {{0}},
      {{1, 2, 0}, {1, 0}},
      {{2, 1, 0}, {2, 0}},
  };
  spp.validate();
  return spp;
}

SppInstance good_gadget() {
  // A policy configuration with a unique stable state (from [8]): nodes 1..3
  // prefer short counter-clockwise routes; no conflicting cycle.
  SppInstance spp;
  spp.name = "good-gadget";
  spp.node_count = 4;
  spp.permitted = {
      {{0}},
      {{1, 0}, {1, 2, 0}},
      {{2, 0}, {2, 3, 0}},
      {{3, 0}},
  };
  spp.validate();
  return spp;
}

SppInstance bad_gadget() {
  // The classic BAD GADGET: 1,2,3 around origin 0; each prefers the
  // counter-clockwise route through its neighbor over its direct route.
  // No stable assignment exists.
  SppInstance spp;
  spp.name = "bad-gadget";
  spp.node_count = 4;
  spp.permitted = {
      {{0}},
      {{1, 2, 0}, {1, 0}},
      {{2, 3, 0}, {2, 0}},
      {{3, 1, 0}, {3, 0}},
  };
  spp.validate();
  return spp;
}

SppInstance shortest_hop_ring(std::size_t nodes) {
  SppInstance spp;
  spp.name = "shortest-hop-ring-" + std::to_string(nodes);
  spp.node_count = nodes;
  spp.permitted.resize(nodes);
  spp.permitted[0] = {{0}};
  for (std::size_t u = 1; u < nodes; ++u) {
    // Two candidate paths around the ring; prefer the shorter.
    Path down;  // u, u-1, ..., 0
    for (std::size_t v = u + 1; v-- > 0;) down.push_back(v);
    Path up;  // u, u+1, ..., n-1, 0
    for (std::size_t v = u; v < nodes; ++v) up.push_back(v);
    up.push_back(0);
    up.erase(std::unique(up.begin(), up.end()), up.end());
    if (down.size() <= up.size()) {
      spp.permitted[u] = {down, up};
    } else {
      spp.permitted[u] = {up, down};
    }
  }
  spp.validate();
  return spp;
}

Path best_choice(const SppInstance& spp, const Assignment& assignment, std::size_t u) {
  if (u == 0) return {0};
  for (const auto& p : spp.permitted[u]) {
    if (p.size() < 2) continue;
    const std::size_t v = p[1];
    const Path expected(p.begin() + 1, p.end());
    if (assignment[v] == expected) return p;
  }
  return {};
}

bool is_stable(const SppInstance& spp, const Assignment& assignment) {
  for (std::size_t u = 0; u < spp.node_count; ++u) {
    if (u == 0) {
      if (assignment[0] != Path{0}) return false;
      continue;
    }
    if (best_choice(spp, assignment, u) != assignment[u]) return false;
  }
  return true;
}

std::vector<Assignment> stable_states(const SppInstance& spp) {
  std::vector<Assignment> out;
  // Choice index per node: 0..permitted.size() (last = no route).
  std::vector<std::size_t> choice(spp.node_count, 0);
  std::function<void(std::size_t, Assignment&)> rec = [&](std::size_t u, Assignment& a) {
    if (u == spp.node_count) {
      if (is_stable(spp, a)) out.push_back(a);
      return;
    }
    if (u == 0) {
      a[0] = {0};
      rec(1, a);
      return;
    }
    for (const auto& p : spp.permitted[u]) {
      a[u] = p;
      rec(u + 1, a);
    }
    a[u] = {};
    rec(u + 1, a);
  };
  Assignment a(spp.node_count);
  rec(0, a);
  return out;
}

SpvpResult run_spvp(const SppInstance& spp, const SpvpOptions& options) {
  SpvpResult result;
  Assignment current(spp.node_count);
  current[0] = {0};

  std::mt19937_64 rng(options.seed);
  std::map<std::string, std::size_t> seen;  // state -> step index
  seen[to_string(current)] = 0;

  for (std::size_t step = 1; step <= options.max_steps; ++step) {
    result.steps = step;
    bool changed = false;
    auto activate = [&](std::size_t u, const Assignment& read_from) {
      const Path best = best_choice(spp, read_from, u);
      if (best != current[u]) {
        current[u] = best;
        changed = true;
        ++result.route_flaps;
      }
    };
    switch (options.schedule) {
      case SpvpOptions::Schedule::Synchronous: {
        const Assignment snapshot = current;
        for (std::size_t u = 1; u < spp.node_count; ++u) activate(u, snapshot);
        break;
      }
      case SpvpOptions::Schedule::RoundRobin:
        activate(1 + (step - 1) % (spp.node_count - 1), current);
        break;
      case SpvpOptions::Schedule::Random: {
        std::uniform_int_distribution<std::size_t> pick(1, spp.node_count - 1);
        activate(pick(rng), current);
        break;
      }
    }
    if (!changed && options.schedule != SpvpOptions::Schedule::Synchronous) {
      // A single no-op activation is not quiescence; check all nodes.
      if (is_stable(spp, current)) {
        result.converged = true;
        result.final_assignment = current;
        return result;
      }
      continue;
    }
    if (!changed) {  // synchronous round with no change = fixpoint
      result.converged = is_stable(spp, current);
      result.final_assignment = current;
      return result;
    }
    const std::string key = to_string(current);
    auto [it, inserted] = seen.emplace(key, step);
    if (!inserted) {
      result.oscillated = true;
      result.cycle_length = step - it->second;
      result.final_assignment = current;
      return result;
    }
  }
  result.final_assignment = current;
  return result;
}

std::string to_string(const Assignment& assignment) {
  std::ostringstream os;
  for (std::size_t u = 0; u < assignment.size(); ++u) {
    os << u << ":(";
    for (std::size_t i = 0; i < assignment[u].size(); ++i) {
      if (i) os << " ";
      os << assignment[u][i];
    }
    os << ") ";
  }
  return os.str();
}

}  // namespace fvn::bgp
