// The component-based BGP model of paper §3.2.1 (Figure 2): BGP as a series
// of route transformations — activeAS triggers, pt = export ∘ pvt ∘ import
// propagates and filters, bestRoute re-selects. Expressed with the generic
// component framework of translate/components.hpp so that arc 3 (NDlog
// generation) and the PVS-style specification both fall out mechanically.
#pragma once

#include "translate/components.hpp"

namespace fvn::bgp {

/// Concrete numeric instantiation of Figure 2. Routes are cost metrics; the
/// stages are:
///   export:   R1 = R0        (with the export filter R0 < `export_ceiling`)
///   pvt:      R2 = R1 + 1    (path-vector extension cost)
///   import:   R3 = R2 + `import_penalty`
/// The composite `pt` consumes bestRoute(W,T,R0) + activeAS(U,W,T) and emits
/// ptOut(U,W,R3,T) — one full route transformation of the model.
translate::CompositeComponent pt_model(std::int64_t export_ceiling = 100,
                                       std::int64_t import_penalty = 0);

/// Location schema for distributing the generated NDlog program: activeAS and
/// export stages live at the advertising AS (W), the import stage and output
/// at the receiving AS (U).
translate::LocationSchema pt_location_schema();

}  // namespace fvn::bgp
