#include "bgp/component_model.hpp"

namespace fvn::bgp {

using ndlog::BinOp;
using ndlog::CmpOp;
using ndlog::Term;
using ndlog::Value;
using translate::AtomicComponent;
using translate::CompositeComponent;
using translate::PortSchema;

namespace {

ndlog::Comparison cmp(CmpOp op, ndlog::TermPtr l, ndlog::TermPtr r) {
  ndlog::Comparison c;
  c.op = op;
  c.lhs = std::move(l);
  c.rhs = std::move(r);
  return c;
}

}  // namespace

CompositeComponent pt_model(std::int64_t export_ceiling, std::int64_t import_penalty) {
  CompositeComponent pt;
  pt.name = "pt";

  // export(U,W,R0,R1,T): W filters its current best route before advertising
  // to U (trigger: activeAS).
  AtomicComponent exportC;
  exportC.name = "exportC";
  exportC.inputs = {PortSchema{"bestRoute", {"W", "T", "R0"}},
                    PortSchema{"activeAS", {"U", "W", "T"}}};
  exportC.outputs = {PortSchema{"exportOut", {"U", "W", "R1", "T"}}};
  exportC.constraints = {
      cmp(CmpOp::Eq, Term::var("R1"), Term::var("R0")),
      cmp(CmpOp::Lt, Term::var("R0"), Term::constant_of(Value::integer(export_ceiling))),
  };

  // pvt(U,W,R1,R2,T): the path-vector transfer extends the route.
  AtomicComponent pvtC;
  pvtC.name = "pvtC";
  pvtC.inputs = {PortSchema{"exportOut", {"U", "W", "R1", "T"}}};
  pvtC.outputs = {PortSchema{"pvtOut", {"U", "W", "R2", "T"}}};
  pvtC.constraints = {
      cmp(CmpOp::Eq, Term::var("R2"),
          Term::binary(BinOp::Add, Term::var("R1"), Term::constant_of(Value::integer(1)))),
  };

  // import(U,W,R2,R3,T): U applies its import policy.
  AtomicComponent importC;
  importC.name = "importC";
  importC.inputs = {PortSchema{"pvtOut", {"U", "W", "R2", "T"}}};
  importC.outputs = {PortSchema{"ptOut", {"U", "W", "R3", "T"}}};
  importC.constraints = {
      cmp(CmpOp::Eq, Term::var("R3"),
          Term::binary(BinOp::Add, Term::var("R2"),
                       Term::constant_of(Value::integer(import_penalty)))),
  };

  pt.parts = {exportC, pvtC, importC};
  return pt;
}

translate::LocationSchema pt_location_schema() {
  return {
      {"bestRoute", 0},  // at W
      {"activeAS", 1},   // at W (the advertiser)
      {"exportOut", 1},  // still at W
      {"pvtOut", 0},     // shipped to U by the pvt stage
      {"ptOut", 0},      // at U
  };
}

}  // namespace fvn::bgp
