// Dispute-wheel detection for Stable Paths Problem instances (Griffin,
// Shepherd, Wilfong [8]): a dispute wheel is a cyclic sequence of nodes u_i
// with spoke paths Q_i and rim segments R_i such that every u_i prefers the
// rim route R_i·Q_{i+1} over its own spoke Q_i. "No dispute wheel" is the
// classic sufficient condition for SPP safety — the static policy-conflict
// check FVN would run before deployment (the analysis the paper's §3.2.1
// discussion of Disagree points at).
#pragma once

#include "bgp/spp.hpp"

namespace fvn::bgp {

/// One detected wheel: the pivot nodes and their spoke paths, cyclically.
struct DisputeWheel {
  std::vector<std::size_t> pivots;
  std::vector<Path> spokes;      // spokes[i] = Q_i at pivots[i]
  std::vector<Path> rim_routes;  // rim_routes[i] = R_i·Q_{i+1} ∈ P^{u_i}
  std::string to_string() const;
};

/// Search for a dispute wheel. Works over the instance's explicit permitted
/// path lists: an arc (u,Q_u) → (v,Q_v) exists when some permitted path of u
/// strictly preferred over Q_u passes through v with suffix Q_v; a cycle of
/// such arcs is a wheel.
std::optional<DisputeWheel> find_dispute_wheel(const SppInstance& spp);

/// The GSW safety implication, checkable per instance: no dispute wheel ⇒
/// a unique, always-reached stable state. (Tests confirm it on the gadget
/// corpus; the converse is not claimed.)
bool has_dispute_wheel(const SppInstance& spp);

}  // namespace fvn::bgp
