// Model-checking adapters for SPVP (experiment E3): the activation
// nondeterminism of an SPP instance as a transition system. A move activates
// any non-empty subset of non-origin nodes simultaneously (Griffin's SPVP
// semantics); oscillation = a reachable cycle of selection states.
#pragma once

#include "bgp/spp.hpp"
#include "mc/checker.hpp"

namespace fvn::bgp {

/// Encode an assignment as a canonical state string.
std::string encode_state(const Assignment& assignment);
Assignment decode_state(const std::string& encoded, const SppInstance& spp);

/// All successor states under simultaneous activation of every non-empty
/// subset of nodes (excluding no-op moves).
std::vector<std::string> spvp_successor_states(const SppInstance& spp,
                                               const std::string& state);

struct OscillationReport {
  bool has_cycle = false;
  std::size_t cycle_length = 0;
  std::size_t states_explored = 0;
  std::vector<std::string> cycle;  // the witnessing lasso
};

/// Search for a reachable oscillation (cycle through non-stable dynamics)
/// from the empty assignment.
OscillationReport check_oscillation(const SppInstance& spp, std::size_t max_states = 100000);

/// All stable assignments reachable from the empty assignment (compare with
/// the exhaustive stable_states(): Disagree reaches both of its two).
std::vector<Assignment> reachable_stable_states(const SppInstance& spp,
                                                std::size_t max_states = 100000);

}  // namespace fvn::bgp
