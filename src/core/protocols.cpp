#include "core/protocols.hpp"

#include <sstream>

namespace fvn::core {

std::string path_vector_source() {
  return R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(path, infinity, infinity, keys(1,2,3)).
    materialize(bestPath, infinity, infinity, keys(1,2)).
    materialize(bestPathCost, infinity, infinity, keys(1,2)).

    r1 path(@S,D,P,C) :- link(@S,D,C), P=f_init(S,D).
    r2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), C=C1+C2,
                         P=f_concatPath(S,P2), f_inPath(P2,S)=false.
    r3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
    r4 bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
  )";
}

std::string distance_vector_source() {
  // No path vector, no loop check: the classic count-to-infinity shape. On a
  // cyclic topology the `hop` relation is infinite; the centralized evaluator
  // reports DivergenceError and the distributed runtime counts up forever
  // after a link failure (experiment E2).
  return R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(hop, infinity, infinity, keys(1,2,3)).
    materialize(bestHopCost, infinity, infinity, keys(1,2)).
    materialize(bestHop, infinity, infinity, keys(1,2)).

    d1 hop(@S,D,D,C) :- link(@S,D,C).
    d2 hop(@S,D,Z,C) :- link(@S,Z,C1), hop(@Z,D,W,C2), C=C1+C2.
    d3 bestHopCost(@S,D,min<C>) :- hop(@S,D,Z,C).
    d4 bestHop(@S,D,Z,C) :- bestHopCost(@S,D,C), hop(@S,D,Z,C).
  )";
}

std::string distance_vector_bounded_source(std::int64_t bound) {
  std::ostringstream os;
  os << R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(hop, infinity, infinity, keys(1,2,3)).
    materialize(bestHopCost, infinity, infinity, keys(1,2)).
    materialize(bestHop, infinity, infinity, keys(1,2)).

    d1 hop(@S,D,D,C) :- link(@S,D,C).
    d2 hop(@S,D,Z,C) :- link(@S,Z,C1), hop(@Z,D,W,C2), C=C1+C2, C < )"
     << bound << R"(.
    d3 bestHopCost(@S,D,min<C>) :- hop(@S,D,Z,C).
    d4 bestHop(@S,D,Z,C) :- bestHopCost(@S,D,C), hop(@S,D,Z,C).
  )";
  return os.str();
}

std::string link_state_source() {
  // l1/l2 flood link-state advertisements over the (bidirectional) topology;
  // l3-l5 run the path computation locally at every node over its replicated
  // lsdb. The C<1000 bound keeps the local closure finite (costs are >= 1).
  return R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(lsdb, infinity, infinity, keys(1,2,3)).
    materialize(lspath, infinity, infinity, keys(1,2,3,4)).
    materialize(lsBestCost, infinity, infinity, keys(1,2,3)).

    l1 lsdb(@S,S,D,C) :- link(@S,D,C).
    l2 lsdb(@N,S,D,C) :- link(@N,M,C0), lsdb(@M,S,D,C).
    l3 lspath(@N,S,D,C) :- lsdb(@N,S,D,C).
    l4 lspath(@N,S,D,C) :- lspath(@N,S,Z,C1), lsdb(@N,Z,D,C2), C=C1+C2, C<1000.
    l5 lsBestCost(@N,S,D,min<C>) :- lspath(@N,S,D,C).
  )";
}

std::string reachable_source() {
  return R"(
    materialize(link, infinity, infinity, keys(1,2)).
    t1 reachable(@S,D) :- link(@S,D,C).
    t2 reachable(@S,D) :- link(@S,Z,C), reachable(@Z,D).
  )";
}

std::string policy_path_vector_source() {
  // Griffin-style staged BGP (paper Figure 2): originate -> export (with
  // deny-list filter) -> pvt transfer -> import (local-pref assignment) ->
  // selection by lexicographic (max local-pref, then min cost), i.e. the
  // BGPSystem = lexProduct[LP, RC] of §3.3.2.
  return R"(
    materialize(node, infinity, infinity, keys(1)).
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(exportDeny, infinity, infinity, keys(1,2,3)).
    materialize(importDeny, infinity, infinity, keys(1,2,3)).
    materialize(importPref, infinity, infinity, keys(1,2)).
    materialize(bestLP, infinity, infinity, keys(1,2)).
    materialize(bestCostAtLP, infinity, infinity, keys(1,2,3)).
    materialize(bestRoute, infinity, infinity, keys(1,2)).

    x0 route(@S,S,P,C,LP) :- node(@S), P=f_list(S), C=0, LP=100.
    x1 export(@Z,S,D,P,C) :- route(@Z,D,P,C,LP), link(@Z,S,C1),
                             !exportDeny(@Z,S,D), f_inPath(P,S)=false.
    x2 recv(@S,Z,D,P2,C2) :- export(@Z,S,D,P2,C2).
    x3 route(@S,D,P,C,LP) :- recv(@S,Z,D,P2,C2), link(@S,Z,C1),
                             !importDeny(@S,Z,D), C=C1+C2,
                             P=f_concatPath(S,P2), importPref(@S,Z,LP).
    s1 bestLP(@S,D,max<LP>) :- route(@S,D,P,C,LP).
    s2 bestCostAtLP(@S,D,LP,min<C>) :- route(@S,D,P,C,LP), bestLP(@S,D,LP).
    s3 bestRoute(@S,D,P,C,LP) :- bestCostAtLP(@S,D,LP,C), route(@S,D,P,C,LP).
  )";
}

std::string spanning_tree_source() {
  // st1/st2 flood root candidates; st3 elects the minimum; st4/st5 compute
  // hop distance to the elected root (bounded: costs are 1, bound 100);
  // st6 selects the parent (a neighbor strictly closer to the root,
  // deterministically the smallest such neighbor via min<..>).
  return R"(
    materialize(node, infinity, infinity, keys(1)).
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(rootCand, infinity, infinity, keys(1,2)).
    materialize(root, infinity, infinity, keys(1)).
    materialize(distCand, infinity, infinity, keys(1,2)).
    materialize(dist, infinity, infinity, keys(1)).
    materialize(parent, infinity, infinity, keys(1)).

    st1 rootCand(@N,R) :- node(@N), R=N.
    st2 rootCand(@N,R) :- link(@N,M,C), rootCand(@M,R).
    st3 root(@N,min<R>) :- rootCand(@N,R).
    st4 distCand(@N,D) :- root(@N,R), N=R, D=0.
    st5 distCand(@N,D) :- link(@N,M,C), distCand(@M,D2), D=D2+1, D<100.
    st6 dist(@N,min<D>) :- distCand(@N,D).
    st7 parent(@N,min<M>) :- link(@N,M,C), dist(@N,D), dist_sh_st7x(@N,M,D2), D2<D.
    st7x dist_sh_st7x(@M,N,D) :- link(@N,M,C), dist(@N,D).
  )";
}

ndlog::Program spanning_tree_program() {
  return ndlog::parse_program(spanning_tree_source(), "spanning_tree");
}

ndlog::Program path_vector_program() {
  return ndlog::parse_program(path_vector_source(), "path_vector");
}
ndlog::Program distance_vector_program() {
  return ndlog::parse_program(distance_vector_source(), "distance_vector");
}
ndlog::Program link_state_program() {
  return ndlog::parse_program(link_state_source(), "link_state");
}
ndlog::Program reachable_program() {
  return ndlog::parse_program(reachable_source(), "reachable");
}
ndlog::Program policy_path_vector_program() {
  return ndlog::parse_program(policy_path_vector_source(), "policy_path_vector");
}

std::string node_name(std::size_t i) { return "n" + std::to_string(i); }

namespace {
void add_bidi(std::vector<Link>& out, std::size_t a, std::size_t b, std::int64_t cost) {
  out.push_back(Link{node_name(a), node_name(b), cost});
  out.push_back(Link{node_name(b), node_name(a), cost});
}
}  // namespace

std::vector<Link> line_topology(std::size_t count, std::int64_t cost) {
  std::vector<Link> out;
  for (std::size_t i = 0; i + 1 < count; ++i) add_bidi(out, i, i + 1, cost);
  return out;
}

std::vector<Link> ring_topology(std::size_t count, std::int64_t cost) {
  std::vector<Link> out = line_topology(count, cost);
  if (count > 2) add_bidi(out, count - 1, 0, cost);
  return out;
}

std::vector<Link> full_mesh_topology(std::size_t count, std::int64_t cost) {
  std::vector<Link> out;
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = i + 1; j < count; ++j) add_bidi(out, i, j, cost);
  }
  return out;
}

std::vector<Link> star_topology(std::size_t leaves, std::int64_t cost) {
  std::vector<Link> out;
  for (std::size_t i = 1; i <= leaves; ++i) add_bidi(out, 0, i, cost);
  return out;
}

std::vector<Link> random_topology(std::size_t count, std::size_t extra_edges,
                                  std::uint64_t seed, std::int64_t max_cost) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> cost_dist(1, std::max<std::int64_t>(1, max_cost));
  std::vector<Link> out;
  // Random spanning tree: attach node i to a uniformly random earlier node.
  for (std::size_t i = 1; i < count; ++i) {
    std::uniform_int_distribution<std::size_t> parent(0, i - 1);
    add_bidi(out, parent(rng), i, cost_dist(rng));
  }
  // Extra random edges (skip self-loops and duplicates lazily).
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < extra_edges && attempts < extra_edges * 20 + 100) {
    ++attempts;
    std::uniform_int_distribution<std::size_t> pick(0, count - 1);
    const std::size_t a = pick(rng);
    const std::size_t b = pick(rng);
    if (a == b) continue;
    bool dup = false;
    for (const auto& l : out) {
      if (l.src == node_name(a) && l.dst == node_name(b)) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    add_bidi(out, a, b, cost_dist(rng));
    ++added;
  }
  return out;
}

std::vector<ndlog::Tuple> link_facts(const std::vector<Link>& links) {
  std::vector<ndlog::Tuple> out;
  out.reserve(links.size());
  for (const auto& l : links) {
    out.emplace_back("link", std::vector<ndlog::Value>{ndlog::Value::addr(l.src),
                                                       ndlog::Value::addr(l.dst),
                                                       ndlog::Value::integer(l.cost)});
  }
  return out;
}

}  // namespace fvn::core
