// The FVN facade — the paper's Figure 1 as an object. One `Fvn` instance
// carries a protocol through the four phases:
//
//   design         — attach a network meta-model (metarouting algebra with
//                    discharged obligations, §3.3) or a component model
//                    (§3.2), or start directly from NDlog (§2.2);
//   specification  — the NDlog program and its logical theory, kept in sync
//                    by the arc-3/arc-4 translators;
//   verification   — theorem proving (arc 5), finite-model counterexample
//                    search, model checking over the transition-system view
//                    (arcs 6/8), and runtime monitors;
//   implementation — distributed execution on the simulator (arc 7).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/routing_algebra.hpp"
#include "logic/finite_model.hpp"
#include "logic/formula.hpp"
#include "mc/ndlog_ts.hpp"
#include "prover/prover.hpp"
#include "runtime/simulator.hpp"
#include "translate/components.hpp"
#include "translate/ndlog_to_logic.hpp"

namespace fvn::core {

/// Result of verifying one property through a chosen back-end.
struct VerificationOutcome {
  std::string property;
  std::string backend;  // "prover", "finite-model", "model-checker", "runtime"
  bool verified = false;
  std::string detail;  // step counts / counterexample / trace summary
};

/// The unifying pipeline object.
class Fvn {
 public:
  /// Start from an NDlog specification (arc 4 flows downstream).
  static Fvn from_ndlog(ndlog::Program program);
  /// Start from a component-based design (arc 2 + arc 3: the logic spec and
  /// the NDlog program are both generated).
  static Fvn from_components(const translate::CompositeComponent& model,
                             const translate::LocationSchema& locations = {});

  /// Attach a metarouting meta-model; its proof obligations are discharged
  /// immediately (the §3.3.2 typecheck analogue) and the report retained.
  void attach_meta_model(const algebra::RoutingAlgebra& algebra);
  const std::optional<algebra::DischargeReport>& meta_model_report() const {
    return meta_report_;
  }

  const ndlog::Program& program() const noexcept { return program_; }
  const logic::Theory& theory() const noexcept { return theory_; }

  /// Register a named property for verification.
  void add_property(logic::Theorem theorem,
                    std::vector<prover::Command> script = {prover::Command::grind()});
  /// Add an axiom available to every proof (e.g. link-cost positivity).
  void add_axiom(logic::Theorem axiom);

  /// Arc 5: run every registered property through the theorem prover.
  std::vector<VerificationOutcome> verify_statically();

  /// Counterexample search: evaluate the program on the given facts and test
  /// each property in the resulting finite model.
  std::vector<VerificationOutcome> search_counterexamples(
      const std::vector<ndlog::Tuple>& facts);

  /// Arc 8: model-check an invariant over all message interleavings.
  VerificationOutcome model_check(const std::string& property_name,
                                  const std::vector<ndlog::Tuple>& facts,
                                  const std::function<bool(const mc::NetState&)>& invariant,
                                  std::size_t max_states = 50000);

  /// Arc 7: distributed execution; monitors double as runtime verification.
  runtime::SimStats execute(const std::vector<ndlog::Tuple>& facts,
                            runtime::SimOptions options = {},
                            std::vector<runtime::Monitor> monitors = {},
                            ndlog::Database* merged_out = nullptr);

 private:
  ndlog::Program program_;
  logic::Theory theory_;
  std::optional<algebra::DischargeReport> meta_report_;
  std::vector<logic::Theorem> axioms_;
  struct Property {
    logic::Theorem theorem;
    std::vector<prover::Command> script;
  };
  std::vector<Property> properties_;
};

}  // namespace fvn::core
