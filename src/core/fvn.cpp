#include "core/fvn.hpp"

#include <sstream>

namespace fvn::core {

Fvn Fvn::from_ndlog(ndlog::Program program) {
  Fvn fvn;
  fvn.program_ = std::move(program);
  fvn.theory_ = translate::to_logic(fvn.program_);
  return fvn;
}

Fvn Fvn::from_components(const translate::CompositeComponent& model,
                         const translate::LocationSchema& locations) {
  Fvn fvn;
  fvn.program_ = translate::generate_ndlog(model, locations);
  // Arc 2: the component model's own logical specification; arc 4 would give
  // an equivalent rule-level theory — we keep the component-level one because
  // it matches the paper's §3.2.1 rendering.
  fvn.theory_ = translate::generate_logic(model);
  return fvn;
}

void Fvn::attach_meta_model(const algebra::RoutingAlgebra& alg) {
  meta_report_ = algebra::discharge(alg);
}

void Fvn::add_property(logic::Theorem theorem, std::vector<prover::Command> script) {
  properties_.push_back(Property{std::move(theorem), std::move(script)});
}

void Fvn::add_axiom(logic::Theorem axiom) { axioms_.push_back(std::move(axiom)); }

std::vector<VerificationOutcome> Fvn::verify_statically() {
  std::vector<VerificationOutcome> out;
  prover::Prover prover(theory_);
  for (const auto& ax : axioms_) prover.add_axiom(ax);
  for (const auto& prop : properties_) {
    auto result = prover.prove(prop.theorem, prop.script);
    VerificationOutcome outcome;
    outcome.property = prop.theorem.name;
    outcome.backend = "prover";
    outcome.verified = result.proved;
    std::ostringstream os;
    if (result.proved) {
      os << result.scripted_steps << " scripted steps, " << result.automated_steps()
         << " automated, " << result.elapsed_seconds << "s";
    } else {
      os << result.failure_reason;
    }
    outcome.detail = os.str();
    out.push_back(std::move(outcome));
  }
  return out;
}

std::vector<VerificationOutcome> Fvn::search_counterexamples(
    const std::vector<ndlog::Tuple>& facts) {
  std::vector<VerificationOutcome> out;
  ndlog::Evaluator eval;
  auto result = eval.run(program_, facts);
  logic::FiniteModel model;
  model.load_database(result.database);
  prover::Prover prover(theory_);
  for (const auto& prop : properties_) {
    VerificationOutcome outcome;
    outcome.property = prop.theorem.name;
    outcome.backend = "finite-model";
    auto cex = prover.find_counterexample(prop.theorem, model);
    outcome.verified = !cex.has_value();
    outcome.detail = cex.value_or("no counterexample in the evaluated instance");
    out.push_back(std::move(outcome));
  }
  return out;
}

VerificationOutcome Fvn::model_check(
    const std::string& property_name, const std::vector<ndlog::Tuple>& facts,
    const std::function<bool(const mc::NetState&)>& invariant, std::size_t max_states) {
  mc::NdlogTransitionSystem ts(program_);
  auto result = ts.check_invariant_all_interleavings(ts.initial(facts), invariant, max_states);
  VerificationOutcome outcome;
  outcome.property = property_name;
  outcome.backend = "model-checker";
  outcome.verified = result.property_holds;
  std::ostringstream os;
  os << result.states_explored << " states, " << result.transitions << " transitions";
  if (!result.property_holds) os << "; counterexample of " << result.counterexample.size()
                                 << " steps";
  if (!result.exhausted) os << " (bounded)";
  outcome.detail = os.str();
  return outcome;
}

runtime::SimStats Fvn::execute(const std::vector<ndlog::Tuple>& facts,
                               runtime::SimOptions options,
                               std::vector<runtime::Monitor> monitors,
                               ndlog::Database* merged_out) {
  runtime::Simulator sim(program_, options);
  for (auto& m : monitors) sim.add_monitor(std::move(m));
  sim.inject_all(facts);
  auto stats = sim.run();
  if (merged_out != nullptr) *merged_out = sim.merged_database();
  return stats;
}

}  // namespace fvn::core
