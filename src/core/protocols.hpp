// The protocol library: NDlog sources for the protocols discussed in the
// paper, exactly in the dialect of §2.2, plus helpers to produce link facts
// for common topologies.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "ndlog/parser.hpp"
#include "ndlog/tuple.hpp"

namespace fvn::core {

/// The paper's path-vector program (§2.2, rules r1–r4): derives `path` and
/// selects `bestPath` per (source, destination) by minimal cost, with
/// `f_inPath` cycle avoidance.
std::string path_vector_source();

/// Distance-vector (Bellman-Ford) WITHOUT a path vector: `hop(@S,D,N,C)`
/// keeps only the next hop, so nothing prevents the count-to-infinity
/// anomaly (§3.1 / reference [22]). `bestHop` selects the min-cost next hop.
std::string distance_vector_source();

/// Distance-vector with a split-horizon-style hop bound (`C < Bound`), the
/// standard mitigation; used as the contrast case in E2.
std::string distance_vector_bounded_source(std::int64_t bound);

/// Link-state flooding: every node floods its links; each node then runs the
/// path computation locally over the replicated `lsdb`.
std::string link_state_source();

/// Simple reachability (transitive closure) — the minimal recursive program,
/// used by tests and the translator goldens.
std::string reachable_source();

/// Path-vector with BGP-style export/import policy hooks (§3.2.2,
/// reference [23]): routes are filtered on export and import, and selection
/// prefers higher local-pref and then lower cost (lexicographic), mirroring
/// `BGPSystem = lexProduct[LP, RC]` of §3.3.2.
std::string policy_path_vector_source();

/// Spanning-tree root election (STP-flavored): every node floods candidate
/// root identifiers; each elects the minimum it has heard of, then picks as
/// parent a neighbor whose distance-to-root is smaller than its own.
std::string spanning_tree_source();

/// Parsed variants (cached parse of the sources above).
ndlog::Program path_vector_program();
ndlog::Program distance_vector_program();
ndlog::Program link_state_program();
ndlog::Program reachable_program();
ndlog::Program policy_path_vector_program();
ndlog::Program spanning_tree_program();

// ---------------------------------------------------------------------------
// Topology generators: `link(@src,dst,cost)` fact sets.
// ---------------------------------------------------------------------------

struct Link {
  std::string src;
  std::string dst;
  std::int64_t cost = 1;
};

/// Node name "n<i>".
std::string node_name(std::size_t i);

/// Bidirectional line n0 - n1 - ... - n{count-1}.
std::vector<Link> line_topology(std::size_t count, std::int64_t cost = 1);
/// Bidirectional ring.
std::vector<Link> ring_topology(std::size_t count, std::int64_t cost = 1);
/// Full mesh.
std::vector<Link> full_mesh_topology(std::size_t count, std::int64_t cost = 1);
/// Star centered at n0.
std::vector<Link> star_topology(std::size_t leaves, std::int64_t cost = 1);
/// Random connected graph: a random spanning tree plus `extra_edges`
/// additional random edges; costs uniform in [1, max_cost]. Deterministic in
/// `seed`.
std::vector<Link> random_topology(std::size_t count, std::size_t extra_edges,
                                  std::uint64_t seed, std::int64_t max_cost = 10);

/// Convert links to `link(@src,dst,cost)` tuples.
std::vector<ndlog::Tuple> link_facts(const std::vector<Link>& links);

}  // namespace fvn::core
