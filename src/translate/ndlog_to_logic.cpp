#include "translate/ndlog_to_logic.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace fvn::translate {

using logic::Formula;
using logic::FormulaPtr;
using logic::InductiveDef;
using logic::LTerm;
using logic::LTermPtr;
using logic::Sort;
using logic::Theory;
using logic::TypedVar;
using ndlog::Atom;
using ndlog::BodyAtom;
using ndlog::Comparison;
using ndlog::Program;
using ndlog::Rule;

Sort sort_of_variable(const std::string& name) {
  if (name.empty()) return Sort::Unknown;
  // Path vectors: P, P2, Path...
  if (name[0] == 'P') return Sort::Path;
  // Metrics and local preferences.
  if (name[0] == 'C' || name == "LP" || name.rfind("LP", 0) == 0 ||
      name[0] == 'B') {
    return Sort::Metric;
  }
  if (name[0] == 'T') return Sort::Time;
  // Node-valued names used throughout the paper.
  static const char node_initials[] = {'S', 'D', 'Z', 'N', 'U', 'W', 'M', 'X', 'Y'};
  for (char c : node_initials) {
    if (name[0] == c) return Sort::Node;
  }
  return Sort::Unknown;
}

logic::LTermPtr translate_term(const ndlog::TermPtr& term) {
  switch (term->kind) {
    case ndlog::Term::Kind::Var:
      return LTerm::var(term->name);
    case ndlog::Term::Kind::Const:
      return LTerm::constant_of(term->constant);
    case ndlog::Term::Kind::Func: {
      std::vector<LTermPtr> args;
      args.reserve(term->args.size());
      for (const auto& a : term->args) args.push_back(translate_term(a));
      return LTerm::func(term->name, std::move(args));
    }
    case ndlog::Term::Kind::Binary:
      return LTerm::arith(term->op, translate_term(term->args[0]),
                          translate_term(term->args[1]));
  }
  throw TranslateError("unreachable term kind");
}

namespace {

/// Conjunction of the translations of a rule body (relational atoms become
/// predicates, `=` becomes equality, negation becomes NOT).
FormulaPtr translate_body(const Rule& rule) {
  std::vector<FormulaPtr> conjuncts;
  for (const auto& elem : rule.body) {
    if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
      std::vector<LTermPtr> args;
      args.reserve(ba->atom.args.size());
      for (const auto& a : ba->atom.args) args.push_back(translate_term(a));
      FormulaPtr p = Formula::pred(ba->atom.predicate, std::move(args));
      conjuncts.push_back(ba->negated ? Formula::negate(std::move(p)) : std::move(p));
    } else {
      const auto& cmp = std::get<Comparison>(elem);
      conjuncts.push_back(
          Formula::cmp(cmp.op, translate_term(cmp.lhs), translate_term(cmp.rhs)));
    }
  }
  return Formula::conj(std::move(conjuncts));
}

std::vector<TypedVar> typed(const std::vector<std::string>& names) {
  std::vector<TypedVar> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(TypedVar{n, sort_of_variable(n)});
  return out;
}

/// Head parameter names for a predicate: prefer the head variables of the
/// first defining rule where the argument is a plain variable; fall back to
/// A1..An. The aggregate position reuses the aggregate variable's name.
std::vector<std::string> param_names(const std::vector<const Rule*>& rules) {
  const std::size_t arity = rules.front()->head.args.size();
  std::vector<std::string> names(arity);
  for (std::size_t i = 0; i < arity; ++i) {
    names[i] = "A" + std::to_string(i + 1);
    for (const Rule* rule : rules) {
      const auto& arg = rule->head.args[i];
      if (arg.is_agg()) {
        names[i] = arg.agg_var;
        break;
      }
      if (arg.term->kind == ndlog::Term::Kind::Var) {
        names[i] = arg.term->name;
        break;
      }
    }
  }
  // Deduplicate repeated names (e.g. head `route(@S,S,...)`): suffix later
  // occurrences.
  std::set<std::string> seen;
  for (auto& n : names) {
    std::string candidate = n;
    int k = 0;
    while (seen.count(candidate)) candidate = n + "_" + std::to_string(++k);
    seen.insert(candidate);
    n = candidate;
  }
  return names;
}

/// Translate one non-aggregate rule into a clause over `params`.
FormulaPtr rule_clause(const Rule& rule, const std::vector<std::string>& params) {
  // Variables of the rule that also serve as head parameters are identified
  // with the parameter (substitution); everything else is existential.
  FormulaPtr body = translate_body(rule);

  std::vector<FormulaPtr> eqs;
  std::map<std::string, std::string> head_var_to_param;  // first occurrence
  for (std::size_t i = 0; i < rule.head.args.size(); ++i) {
    const auto& arg = rule.head.args[i];
    LTermPtr head_term = translate_term(arg.term);
    if (arg.term->kind == ndlog::Term::Kind::Var) {
      auto [it, inserted] = head_var_to_param.emplace(arg.term->name, params[i]);
      if (inserted) continue;  // identified below via substitution
      // Repeated head variable: param_i = param_first.
      eqs.push_back(Formula::eq(LTerm::var(params[i]), LTerm::var(it->second)));
      continue;
    }
    eqs.push_back(Formula::eq(LTerm::var(params[i]), head_term));
  }

  // Rename head variables to parameter names inside the body and the
  // equality conjuncts (a complex head term may itself mention head vars).
  for (const auto& [var, param] : head_var_to_param) {
    if (var == param) continue;
    body = body->substitute(var, LTerm::var(param));
    for (auto& e : eqs) e = e->substitute(var, LTerm::var(param));
  }

  // Existentials: free body variables that are not parameters.
  std::set<std::string> frees;
  body->free_vars(frees);
  for (const auto& e : eqs) e->free_vars(frees);
  std::vector<std::string> ex;
  for (const auto& v : frees) {
    if (std::find(params.begin(), params.end(), v) == params.end()) ex.push_back(v);
  }

  std::vector<FormulaPtr> all = std::move(eqs);
  all.push_back(std::move(body));
  FormulaPtr clause = Formula::conj(std::move(all));
  return Formula::exists(typed(ex), std::move(clause));
}

/// Translate an aggregate rule into its first-order characterization.
FormulaPtr agg_clause(const Rule& rule, const std::vector<std::string>& params,
                      logic::NameSupply& fresh) {
  std::size_t agg_pos = rule.head.args.size();
  for (std::size_t i = 0; i < rule.head.args.size(); ++i) {
    if (rule.head.args[i].is_agg()) agg_pos = i;
  }
  const auto& agg = rule.head.args[agg_pos];
  if (*agg.agg != ndlog::AggKind::Min && *agg.agg != ndlog::AggKind::Max) {
    throw TranslateError("rule " + rule.name +
                         ": only min/max aggregates have a first-order translation");
  }

  // Existence part: the body holds with the aggregate variable equal to the
  // aggregate parameter. Build it like a normal rule whose head has the
  // aggregate variable in the aggregate position.
  Rule exists_rule = rule;
  exists_rule.head.args[agg_pos] = ndlog::HeadArg::plain(ndlog::Term::var(agg.agg_var));
  FormulaPtr existence = rule_clause(exists_rule, params);

  // Optimality part: every body solution (with all non-parameter variables
  // renamed fresh) has aggregate value >= (min) / <= (max) the parameter.
  FormulaPtr body = translate_body(rule);
  // Identify group-by head vars with params.
  std::map<std::string, std::string> head_var_to_param;
  for (std::size_t i = 0; i < rule.head.args.size(); ++i) {
    if (i == agg_pos) continue;
    const auto& arg = rule.head.args[i];
    if (arg.term->kind == ndlog::Term::Kind::Var) {
      head_var_to_param.emplace(arg.term->name, params[i]);
    }
  }
  for (const auto& [var, param] : head_var_to_param) {
    if (var != param) body = body->substitute(var, LTerm::var(param));
  }
  // Fresh-rename every remaining non-parameter variable (including the
  // aggregate variable).
  std::set<std::string> frees;
  body->free_vars(frees);
  std::map<std::string, std::string> renaming;
  for (const auto& v : frees) {
    // The aggregate variable itself must be renamed even though it names the
    // aggregate parameter: in the optimality part it ranges over arbitrary
    // solutions, not the selected optimum.
    if (v != agg.agg_var &&
        std::find(params.begin(), params.end(), v) != params.end()) {
      continue;
    }
    renaming[v] = fresh.fresh(v);
  }
  for (const auto& [from, to] : renaming) body = body->substitute(from, LTerm::var(to));
  const std::string renamed_agg =
      renaming.count(agg.agg_var) ? renaming.at(agg.agg_var) : agg.agg_var;

  FormulaPtr bound =
      *agg.agg == ndlog::AggKind::Min
          ? Formula::cmp(ndlog::CmpOp::Le, LTerm::var(params[agg_pos]),
                         LTerm::var(renamed_agg))
          : Formula::cmp(ndlog::CmpOp::Ge, LTerm::var(params[agg_pos]),
                         LTerm::var(renamed_agg));

  std::vector<std::string> universals;
  for (const auto& [from, to] : renaming) universals.push_back(to);
  FormulaPtr optimality = Formula::forall(
      typed(universals), Formula::implies(std::move(body), std::move(bound)));

  return Formula::conj({std::move(existence), std::move(optimality)});
}

}  // namespace

logic::InductiveDef predicate_to_inductive(const Program& program,
                                           const std::string& predicate,
                                           const LogicOptions& options) {
  (void)options;
  std::vector<const Rule*> rules;
  for (const auto& rule : program.rules) {
    if (rule.head.predicate == predicate && !rule.is_fact()) rules.push_back(&rule);
  }
  if (rules.empty()) {
    throw TranslateError("predicate '" + predicate + "' has no defining rules");
  }
  const auto params = param_names(rules);

  InductiveDef def;
  def.pred_name = predicate;
  for (const auto& p : params) def.params.push_back(TypedVar{p, sort_of_variable(p)});

  logic::NameSupply fresh;
  for (const Rule* rule : rules) {
    def.clauses.push_back(rule->head.has_aggregate() ? agg_clause(*rule, params, fresh)
                                                     : rule_clause(*rule, params));
  }
  return def;
}

logic::Theory to_logic(const Program& program, const LogicOptions& options) {
  Theory theory;
  theory.name = program.name;
  for (const auto& pred : ndlog::derived_predicates(program)) {
    theory.definitions.push_back(predicate_to_inductive(program, pred, options));
  }
  return theory;
}

}  // namespace fvn::translate
