// Arc 4 of the FVN framework (paper Figure 1, §3.1): automatic compilation of
// NDlog programs into logical specifications — one inductive definition per
// derived predicate, following the proof-theoretic semantics of Datalog.
//
// The paper's example becomes exactly:
//   path(S,D,P:Path,C): INDUCTIVE bool =
//     (link(S,D,C) AND P=f_init(S,D)) OR
//     (EXISTS (C1,C2:Metric)(P2:Path)(Z:Node):
//        link(S,Z,C1) AND path(Z,D,P2,C2) AND C=C1+C2
//        AND P=f_concatPath(S,P2) AND f_inPath(P2,S)=FALSE)
//
// Aggregates translate to their first-order characterization; for min:
//   bestPathCost(S,D,C): INDUCTIVE bool =
//     (EXISTS (P:Path): path(S,D,P,C)) AND
//     (FORALL (P2:Path)(C2:Metric): path(S,D,P2,C2) => C <= C2)
#pragma once

#include <stdexcept>

#include "logic/formula.hpp"
#include "ndlog/analysis.hpp"
#include "ndlog/ast.hpp"

namespace fvn::translate {

class TranslateError : public std::runtime_error {
 public:
  explicit TranslateError(const std::string& what) : std::runtime_error(what) {}
};

/// Options for the NDlog → logic translation.
struct LogicOptions {
  /// Drop location specifiers (they are ordinary attributes in the logical
  /// semantics, as in the paper's §3.1 rendering).
  bool keep_location_markers = false;
};

/// Infer a display sort for a variable from the name conventions used in the
/// paper (S,D,Z,N,U,W,M: Node; P*: Path; C*,LP: Metric; T: Time).
logic::Sort sort_of_variable(const std::string& name);

/// Translate one NDlog term into a logical term.
logic::LTermPtr translate_term(const ndlog::TermPtr& term);

/// Translate a whole program into a Theory containing one InductiveDef per
/// derived predicate (base predicates stay uninterpreted). Throws
/// TranslateError on count/sum aggregates (no finite first-order
/// characterization; the paper only exercises min).
logic::Theory to_logic(const ndlog::Program& program,
                       const LogicOptions& options = {});

/// Translate the rules of a single predicate (used by tests and by the
/// incremental verifier).
logic::InductiveDef predicate_to_inductive(const ndlog::Program& program,
                                           const std::string& predicate,
                                           const LogicOptions& options = {});

}  // namespace fvn::translate
