#include "translate/components.hpp"

#include <algorithm>

#include "translate/ndlog_to_logic.hpp"

namespace fvn::translate {

using logic::Formula;
using logic::FormulaPtr;
using logic::InductiveDef;
using logic::LTerm;
using logic::LTermPtr;
using logic::TypedVar;
using ndlog::Atom;
using ndlog::BodyAtom;
using ndlog::HeadArg;
using ndlog::HeadAtom;
using ndlog::Program;
using ndlog::Rule;
using ndlog::Term;

std::set<std::string> CompositeComponent::internal_predicates() const {
  std::set<std::string> produced, consumed;
  for (const auto& part : parts) {
    for (const auto& p : part.outputs) produced.insert(p.predicate);
    for (const auto& p : part.inputs) consumed.insert(p.predicate);
  }
  std::set<std::string> out;
  for (const auto& p : produced) {
    if (consumed.count(p)) out.insert(p);
  }
  return out;
}

std::set<std::string> CompositeComponent::external_input_predicates() const {
  std::set<std::string> produced;
  for (const auto& part : parts) {
    for (const auto& p : part.outputs) produced.insert(p.predicate);
  }
  std::set<std::string> out;
  for (const auto& part : parts) {
    for (const auto& p : part.inputs) {
      if (!produced.count(p.predicate)) out.insert(p.predicate);
    }
  }
  return out;
}

std::set<std::string> CompositeComponent::external_output_predicates() const {
  std::set<std::string> consumed;
  for (const auto& part : parts) {
    for (const auto& p : part.inputs) consumed.insert(p.predicate);
  }
  std::set<std::string> out;
  for (const auto& part : parts) {
    for (const auto& p : part.outputs) {
      if (!consumed.count(p.predicate)) out.insert(p.predicate);
    }
  }
  return out;
}

namespace {

Atom port_atom(const PortSchema& port, const LocationSchema& locations) {
  Atom atom;
  atom.predicate = port.predicate;
  for (const auto& f : port.fields) atom.args.push_back(Term::var(f));
  auto it = locations.find(port.predicate);
  if (it != locations.end()) atom.loc_index = static_cast<int>(it->second);
  return atom;
}

}  // namespace

Program generate_ndlog(const CompositeComponent& composite,
                       const LocationSchema& locations) {
  Program program;
  program.name = composite.name;
  std::size_t rule_index = 0;
  for (const auto& part : composite.parts) {
    for (const auto& out_port : part.outputs) {
      Rule rule;
      rule.name = part.name + "_r" + std::to_string(++rule_index);
      HeadAtom head;
      head.predicate = out_port.predicate;
      for (const auto& f : out_port.fields) head.args.push_back(HeadArg::plain(Term::var(f)));
      auto it = locations.find(out_port.predicate);
      if (it != locations.end()) head.loc_index = static_cast<int>(it->second);
      rule.head = std::move(head);
      for (const auto& in_port : part.inputs) {
        BodyAtom ba;
        ba.atom = port_atom(in_port, locations);
        rule.body.emplace_back(std::move(ba));
      }
      for (const auto& c : part.constraints) rule.body.emplace_back(c);
      program.rules.push_back(std::move(rule));
    }
  }
  return program;
}

logic::Theory generate_logic(const CompositeComponent& composite) {
  logic::Theory theory;
  theory.name = composite.name;

  // Per-part definition: t(all port fields, deduped in first-use order) =
  // conjunction of constraints.
  for (const auto& part : composite.parts) {
    InductiveDef def;
    def.pred_name = part.name;
    std::vector<std::string> fields;
    auto add_fields = [&fields](const PortSchema& p) {
      for (const auto& f : p.fields) {
        if (std::find(fields.begin(), fields.end(), f) == fields.end()) {
          fields.push_back(f);
        }
      }
    };
    for (const auto& p : part.inputs) add_fields(p);
    for (const auto& p : part.outputs) add_fields(p);
    for (const auto& f : fields) def.params.push_back(TypedVar{f, sort_of_variable(f)});

    std::vector<FormulaPtr> conjuncts;
    for (const auto& c : part.constraints) {
      conjuncts.push_back(Formula::cmp(c.op, translate_term(c.lhs), translate_term(c.rhs)));
    }
    def.clauses.push_back(Formula::conj(std::move(conjuncts)));
    theory.definitions.push_back(std::move(def));
  }

  // Composite definition: tc(external fields) = EXISTS (internal fields):
  // AND over part applications. Field classification: a field is external if
  // it appears on an external port, internal otherwise.
  const auto internal_preds = composite.internal_predicates();
  std::vector<std::string> external_fields, internal_fields;
  auto classify = [&](const PortSchema& p) {
    const bool internal = internal_preds.count(p.predicate) != 0;
    auto& target = internal ? internal_fields : external_fields;
    for (const auto& f : p.fields) {
      if (std::find(external_fields.begin(), external_fields.end(), f) ==
              external_fields.end() &&
          std::find(internal_fields.begin(), internal_fields.end(), f) ==
              internal_fields.end()) {
        target.push_back(f);
      }
    }
  };
  // External ports first so shared fields prefer the external classification.
  for (const auto& part : composite.parts) {
    for (const auto& p : part.inputs) {
      if (!internal_preds.count(p.predicate)) classify(p);
    }
    for (const auto& p : part.outputs) {
      if (!internal_preds.count(p.predicate)) classify(p);
    }
  }
  for (const auto& part : composite.parts) {
    for (const auto& p : part.inputs) classify(p);
    for (const auto& p : part.outputs) classify(p);
  }

  InductiveDef top;
  top.pred_name = composite.name;
  for (const auto& f : external_fields) top.params.push_back(TypedVar{f, sort_of_variable(f)});
  std::vector<FormulaPtr> apps;
  for (const auto& part : composite.parts) {
    const InductiveDef* def = theory.find_definition(part.name);
    std::vector<LTermPtr> args;
    for (const auto& p : def->params) args.push_back(LTerm::var(p.name));
    apps.push_back(Formula::pred(part.name, std::move(args)));
  }
  std::vector<TypedVar> ex;
  for (const auto& f : internal_fields) ex.push_back(TypedVar{f, sort_of_variable(f)});
  top.clauses.push_back(Formula::exists(std::move(ex), Formula::conj(std::move(apps))));
  theory.definitions.push_back(std::move(top));
  return theory;
}

CompositeComponent example_tc() {
  using ndlog::CmpOp;
  CompositeComponent tc;
  tc.name = "tc";

  auto cmp = [](CmpOp op, ndlog::TermPtr l, ndlog::TermPtr r) {
    ndlog::Comparison c;
    c.op = op;
    c.lhs = std::move(l);
    c.rhs = std::move(r);
    return c;
  };

  // t1: O1 = I1 + 1  (C1)
  AtomicComponent t1;
  t1.name = "t1";
  t1.inputs = {PortSchema{"t1_in", {"I1"}}};
  t1.outputs = {PortSchema{"t1_out", {"O1"}}};
  t1.constraints = {cmp(CmpOp::Eq, Term::var("O1"),
                        Term::binary(ndlog::BinOp::Add, Term::var("I1"),
                                     Term::constant_of(ndlog::Value::integer(1))))};

  // t2: O2 = I2 * 2  (C2)
  AtomicComponent t2;
  t2.name = "t2";
  t2.inputs = {PortSchema{"t2_in", {"I2"}}};
  t2.outputs = {PortSchema{"t2_out", {"O2"}}};
  t2.constraints = {cmp(CmpOp::Eq, Term::var("O2"),
                        Term::binary(ndlog::BinOp::Mul, Term::var("I2"),
                                     Term::constant_of(ndlog::Value::integer(2))))};

  // t3: O3 = O1 + O2, guarded by O1 <= O2  (C3)
  AtomicComponent t3;
  t3.name = "t3";
  t3.inputs = {PortSchema{"t1_out", {"O1"}}, PortSchema{"t2_out", {"O2"}}};
  t3.outputs = {PortSchema{"t3_out", {"O3"}}};
  t3.constraints = {
      cmp(CmpOp::Eq, Term::var("O3"),
          Term::binary(ndlog::BinOp::Add, Term::var("O1"), Term::var("O2"))),
      cmp(CmpOp::Le, Term::var("O1"), Term::var("O2")),
  };

  tc.parts = {t1, t2, t3};
  return tc;
}

}  // namespace fvn::translate
