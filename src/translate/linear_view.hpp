// The linear-logic view of NDlog (paper §4.2/§4.3): render rules as state
// transitions in which soft-state and event premises are *consumed*
// (linear hypotheses, ⊗/⊸) while hard-state premises persist (!-banged).
// This is the representation the paper proposes for interfacing NDlog with
// model checkers — realized executably by mc::NdlogTransitionSystem; this
// module produces the human-readable transition-rule rendering and the
// resource classification both rely on.
#pragma once

#include <string>
#include <vector>

#include "ndlog/ast.hpp"

namespace fvn::translate {

enum class ResourceKind : std::uint8_t {
  Persistent,  // hard state: !p — free reuse
  Linear,      // soft state: consumed on use (expires / is replaced)
  Event,       // transient (periodic, lifetime 0): consumed immediately
};

/// Classification of one predicate in the linear view.
struct ResourceInfo {
  std::string predicate;
  ResourceKind kind = ResourceKind::Persistent;
};

/// Classify every predicate of the program from its materialize declarations
/// (no declaration or infinite lifetime ⇒ persistent; finite ⇒ linear;
/// zero lifetime or `periodic` ⇒ event).
std::vector<ResourceInfo> classify_resources(const ndlog::Program& program);

/// One transition rule rendering:
///   !link(S,Z,C1) ⊗ path(Z,D,P2,C2) ⊸ path(S,D,P,C)  [C=C1+C2, ...]
struct LinearRule {
  std::string name;
  std::vector<std::string> consumed;    // linear/event premises
  std::vector<std::string> persistent;  // !-banged premises
  std::string produced;
  std::vector<std::string> guards;
  std::string to_string() const;
};

/// The whole program as transition rules.
std::vector<LinearRule> linear_view(const ndlog::Program& program);

/// Full pretty rendering (one rule per line).
std::string render_linear_view(const ndlog::Program& program);

}  // namespace fvn::translate
