// Arc 3 of the FVN framework (§3.2): component-based network models and the
// property-preserving generation of NDlog programs from them.
//
// A component t with inputs I, outputs O and constraints CT(I,O) has the PVS
// specification  t(I,O): INDUCTIVE bool = CT(I,O)  and the equivalent NDlog
// rule  t_out(O) :- t_in(I), CT(I,O).  Composites wire sub-components by
// sharing port predicates (the paper's tc example, Figure 3).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "logic/formula.hpp"
#include "ndlog/ast.hpp"

namespace fvn::translate {

/// A port: the predicate a component reads or writes, with named fields. The
/// field names are the variables the component's constraints range over;
/// using one field name on two ports expresses equality wiring inside the
/// component.
struct PortSchema {
  std::string predicate;
  std::vector<std::string> fields;
};

/// An atomic route-transformation component (paper §3.2.2): consumes one
/// tuple from every input port, applies constraints/assignments, and emits
/// its output ports.
struct AtomicComponent {
  std::string name;
  std::vector<PortSchema> inputs;
  std::vector<PortSchema> outputs;
  /// CT(I,O): comparisons/assignments over the port field variables.
  std::vector<ndlog::Comparison> constraints;
};

/// A composite component: sub-components wired by shared port predicates.
/// External inputs are ports consumed but never produced; external outputs
/// are ports produced but never consumed (both computable).
struct CompositeComponent {
  std::string name;
  std::vector<AtomicComponent> parts;

  std::set<std::string> internal_predicates() const;
  std::set<std::string> external_input_predicates() const;
  std::set<std::string> external_output_predicates() const;
};

/// Predicate schema information for location annotation (§3.2.2: "additional
/// predicate schema information is required as input"): predicate → index of
/// the location attribute.
using LocationSchema = std::map<std::string, std::size_t>;

/// Generate the equivalent NDlog program: one rule per (part, output port).
/// When `locations` contains a predicate, its atoms get the '@' marker at
/// the given index.
ndlog::Program generate_ndlog(const CompositeComponent& composite,
                              const LocationSchema& locations = {});

/// Generate the PVS-style logical specification: one inductive definition per
/// part (t(I,O) = CT(I,O)) and one for the composite
/// (tc(ext) = EXISTS (internal fields): t1(...) AND t2(...) ...).
logic::Theory generate_logic(const CompositeComponent& composite);

/// The paper's Figure 3 example: tc = {t1(I1→O1;C1), t2(I2→O2;C2),
/// t3(O1,O2→O3;C3)} with simple arithmetic constraints — used by tests,
/// goldens and bench E4.
CompositeComponent example_tc();

}  // namespace fvn::translate
