// The soft-state → hard-state rule rewrite of §4.2 (after Wang et al. [22]):
// every soft-state predicate (one with a finite lifetime in its materialize
// declaration) gains explicit timestamp and lifetime attributes; each rule
// deriving it stamps the head with the latest body timestamp and asserts
// that every soft body tuple is still alive at that instant.
//
// The paper's point — and experiment E8's ablation — is that this encoding is
// "heavy-weight and cumbersome": measurably longer rules and costlier
// evaluation than the runtime's native timeout tables.
#pragma once

#include "ndlog/ast.hpp"
#include "ndlog/tuple.hpp"

namespace fvn::translate {

struct SoftStateRewrite {
  ndlog::Program program;              // the rewritten (hard-state) program
  std::size_t predicates_rewritten = 0;
  std::size_t extra_body_elements = 0; // added constraints/assignments
  std::size_t extra_attributes = 0;    // added head/body attributes
};

/// Rewrite `program`, appending (Tstamp, Lifetime) attributes to every
/// soft-state predicate. Hard-state predicates are untouched.
SoftStateRewrite soft_to_hard(const ndlog::Program& program);

/// Extend base facts of soft-state predicates with (timestamp, lifetime)
/// attributes so they can feed the rewritten program.
std::vector<ndlog::Tuple> stamp_facts(const ndlog::Program& original,
                                      const std::vector<ndlog::Tuple>& facts,
                                      double timestamp);

}  // namespace fvn::translate
