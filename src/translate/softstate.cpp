#include "translate/softstate.hpp"

#include <map>
#include <variant>

namespace fvn::translate {

using ndlog::BodyAtom;
using ndlog::BodyElem;
using ndlog::CmpOp;
using ndlog::Comparison;
using ndlog::HeadArg;
using ndlog::Program;
using ndlog::Rule;
using ndlog::Term;
using ndlog::TermPtr;
using ndlog::Value;

namespace {

bool is_soft(const Program& p, const std::string& pred) {
  const auto* m = p.materialization_of(pred);
  return m != nullptr && m->lifetime_seconds.has_value();
}

double lifetime_of(const Program& p, const std::string& pred) {
  return *p.materialization_of(pred)->lifetime_seconds;
}

}  // namespace

SoftStateRewrite soft_to_hard(const Program& original) {
  SoftStateRewrite out;
  Program& rewritten = out.program;
  rewritten.name = original.name + "_hard";

  // Materializations: soft predicates become hard with two extra key fields.
  std::map<std::string, bool> soft;
  for (const auto& m : original.materializations) {
    ndlog::Materialize hm = m;
    if (m.lifetime_seconds.has_value()) {
      soft[m.predicate] = true;
      ++out.predicates_rewritten;
      hm.lifetime_seconds = std::nullopt;
      // Timestamp participates in identity: refreshes are distinct tuples.
      hm.key_fields.clear();
    }
    rewritten.materializations.push_back(std::move(hm));
  }

  int fresh = 0;
  auto fresh_var = [&fresh](const char* base) {
    return Term::var(std::string(base) + "_ss" + std::to_string(++fresh));
  };

  for (const auto& rule : original.rules) {
    Rule r = rule;
    std::vector<TermPtr> body_timestamps;

    for (auto& elem : r.body) {
      auto* ba = std::get_if<BodyAtom>(&elem);
      if (ba == nullptr || ba->negated || !is_soft(original, ba->atom.predicate)) continue;
      TermPtr ts = fresh_var("Ts");
      TermPtr lt = fresh_var("Lt");
      ba->atom.args.push_back(ts);
      ba->atom.args.push_back(lt);
      out.extra_attributes += 2;
      body_timestamps.push_back(ts);
      // Liveness of this tuple is asserted against the head timestamp below;
      // remember (ts, lt) via the pushed args.
    }

    const bool head_soft = is_soft(original, r.head.predicate);
    if (head_soft || !body_timestamps.empty()) {
      // Head timestamp = max of body timestamps (0 if none).
      TermPtr head_ts;
      if (body_timestamps.empty()) {
        head_ts = Term::constant_of(Value::real(0.0));
      } else {
        head_ts = body_timestamps[0];
        for (std::size_t i = 1; i < body_timestamps.size(); ++i) {
          head_ts = Term::func("f_max", {head_ts, body_timestamps[i]});
        }
      }
      TermPtr head_ts_var = fresh_var("Ts");
      {
        Comparison assign;
        assign.op = CmpOp::Eq;
        assign.lhs = head_ts_var;
        assign.rhs = head_ts;
        r.body.push_back(assign);
        ++out.extra_body_elements;
      }
      // Every soft body tuple must still be alive at the derivation instant:
      // Ts_i + Lt_i >= Ts_head. Index (not iterate) the body: the push_back
      // below may reallocate it.
      const std::size_t body_size = r.body.size();
      for (std::size_t i = 0; i < body_size; ++i) {
        auto* ba = std::get_if<BodyAtom>(&r.body[i]);
        if (ba == nullptr || ba->negated || !is_soft(original, ba->atom.predicate)) continue;
        const auto n = ba->atom.args.size();
        Comparison alive;
        alive.op = CmpOp::Ge;
        alive.lhs = Term::binary(ndlog::BinOp::Add, ba->atom.args[n - 2],
                                 ba->atom.args[n - 1]);
        alive.rhs = head_ts_var;
        r.body.push_back(alive);
        ++out.extra_body_elements;
      }
      if (head_soft) {
        r.head.args.push_back(HeadArg::plain(head_ts_var));
        r.head.args.push_back(HeadArg::plain(
            Term::constant_of(Value::real(lifetime_of(original, r.head.predicate)))));
        out.extra_attributes += 2;
      }
    }
    rewritten.rules.push_back(std::move(r));
  }
  return out;
}

std::vector<ndlog::Tuple> stamp_facts(const Program& original,
                                      const std::vector<ndlog::Tuple>& facts,
                                      double timestamp) {
  std::vector<ndlog::Tuple> out;
  out.reserve(facts.size());
  for (const auto& f : facts) {
    if (!is_soft(original, f.predicate())) {
      out.push_back(f);
      continue;
    }
    std::vector<Value> values = f.values();
    values.push_back(Value::real(timestamp));
    values.push_back(Value::real(lifetime_of(original, f.predicate())));
    out.emplace_back(f.predicate(), std::move(values));
  }
  return out;
}

}  // namespace fvn::translate
