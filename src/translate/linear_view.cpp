#include "translate/linear_view.hpp"

#include <map>
#include <sstream>
#include <variant>

namespace fvn::translate {

using ndlog::BodyAtom;
using ndlog::Comparison;
using ndlog::Program;

std::vector<ResourceInfo> classify_resources(const Program& program) {
  std::map<std::string, ResourceKind> kinds;
  // Everything mentioned defaults to persistent.
  for (const auto& rule : program.rules) {
    kinds.emplace(rule.head.predicate, ResourceKind::Persistent);
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        kinds.emplace(ba->atom.predicate, ResourceKind::Persistent);
      }
    }
  }
  kinds["periodic"] = ResourceKind::Event;
  for (const auto& m : program.materializations) {
    if (!m.lifetime_seconds.has_value()) {
      kinds[m.predicate] = ResourceKind::Persistent;
    } else if (*m.lifetime_seconds == 0.0) {
      kinds[m.predicate] = ResourceKind::Event;
    } else {
      kinds[m.predicate] = ResourceKind::Linear;
    }
  }
  std::vector<ResourceInfo> out;
  for (const auto& [pred, kind] : kinds) out.push_back(ResourceInfo{pred, kind});
  return out;
}

std::string LinearRule::to_string() const {
  std::ostringstream os;
  os << name << ": ";
  bool first = true;
  for (const auto& p : persistent) {
    if (!first) os << " (x) ";
    first = false;
    os << "!" << p;
  }
  for (const auto& c : consumed) {
    if (!first) os << " (x) ";
    first = false;
    os << c;
  }
  if (first) os << "1";  // unit: rule with empty body
  os << " -o " << produced;
  if (!guards.empty()) {
    os << "  [";
    for (std::size_t i = 0; i < guards.size(); ++i) {
      if (i) os << ", ";
      os << guards[i];
    }
    os << "]";
  }
  return os.str();
}

std::vector<LinearRule> linear_view(const Program& program) {
  std::map<std::string, ResourceKind> kinds;
  for (const auto& info : classify_resources(program)) {
    kinds[info.predicate] = info.kind;
  }
  std::vector<LinearRule> out;
  for (const auto& rule : program.rules) {
    if (rule.is_fact()) continue;
    LinearRule lr;
    lr.name = rule.name.empty() ? rule.head.predicate : rule.name;
    lr.produced = rule.head.to_string();
    for (const auto& elem : rule.body) {
      if (const auto* ba = std::get_if<BodyAtom>(&elem)) {
        if (ba->negated) {
          lr.guards.push_back("not " + ba->atom.to_string());
          continue;
        }
        const ResourceKind kind = kinds.count(ba->atom.predicate)
                                      ? kinds.at(ba->atom.predicate)
                                      : ResourceKind::Persistent;
        if (kind == ResourceKind::Persistent) {
          lr.persistent.push_back(ba->atom.to_string());
        } else {
          lr.consumed.push_back(ba->atom.to_string());
        }
      } else {
        lr.guards.push_back(std::get<Comparison>(elem).to_string());
      }
    }
    out.push_back(std::move(lr));
  }
  return out;
}

std::string render_linear_view(const Program& program) {
  std::string out = "%% linear-logic transition view of " + program.name + "\n";
  for (const auto& rule : linear_view(program)) out += rule.to_string() + "\n";
  return out;
}

}  // namespace fvn::translate
