// Verified code generation (paper §3.2): from a component-based network
// model to an executable NDlog program.
//
//   * the paper's Figure-3 composite tc, its PVS-style specification and the
//     three generated NDlog rules of §3.2.2,
//   * the Figure-2 BGP pt pipeline (export → pvt → import), generated with
//     location specifiers and executed distributed.
//
// Build & run:  ./build/examples/verified_codegen
#include <iostream>

#include "bgp/component_model.hpp"
#include "ndlog/eval.hpp"
#include "runtime/simulator.hpp"
#include "translate/components.hpp"

int main() {
  using namespace fvn;
  using ndlog::Value;

  std::cout << "=== The tc example (Figure 3) ===\n";
  auto tc = translate::example_tc();
  std::cout << "-- logical specification (arc 2) --\n"
            << translate::generate_logic(tc).to_string() << "\n";
  std::cout << "-- generated NDlog (arc 3) --\n"
            << translate::generate_ndlog(tc).to_string() << "\n";

  ndlog::Evaluator eval;
  auto db = eval.run(translate::generate_ndlog(tc),
                     {ndlog::Tuple("t1_in", {Value::integer(3)}),
                      ndlog::Tuple("t2_in", {Value::integer(4)})})
                .database;
  std::cout << "-- evaluation with t1_in=3, t2_in=4 --\n";
  for (const auto& row : db.dump()) std::cout << "  " << row << "\n";

  std::cout << "\n=== The BGP pt pipeline (Figure 2) ===\n";
  auto pt = bgp::pt_model(/*export_ceiling=*/100, /*import_penalty=*/3);
  auto program = translate::generate_ndlog(pt, bgp::pt_location_schema());
  std::cout << "-- generated NDlog with location specifiers --\n"
            << program.to_string() << "\n";

  // Distributed run: AS w advertises its best route to AS u.
  runtime::Simulator sim(program, {});
  sim.inject_all({
      ndlog::Tuple("bestRoute", {Value::addr("w"), Value::integer(1), Value::integer(10)}),
      ndlog::Tuple("activeAS", {Value::addr("u"), Value::addr("w"), Value::integer(1)}),
  });
  auto stats = sim.run();
  std::cout << "-- distributed execution: " << stats.messages_sent << " messages --\n";
  for (const auto& row : sim.database("u").dump()) std::cout << "  at u: " << row << "\n";
  for (const auto& row : sim.database("w").dump()) std::cout << "  at w: " << row << "\n";
  return 0;
}
