// Metarouting design (paper §3.3): build routing protocols from algebraic
// building blocks; the framework discharges the well-formedness obligations
// automatically (the PVS typechecker's role), then the generalized solver
// computes routes.
//
//   * base algebras addA / hopA / lpA / bwA / relA,
//   * the paper's BGPSystem = lexProduct[LP, RC],
//   * convergence behaviour as predicted by the axioms.
//
// Build & run:  ./build/examples/metarouting_design
#include <iostream>

#include "algebra/routing_algebra.hpp"
#include "algebra/solver.hpp"

int main() {
  using namespace fvn::algebra;
  using fvn::ndlog::Value;

  std::cout << "=== Automatic obligation discharge (section 3.3.2) ===\n";
  for (const auto& alg : {add_algebra(), hop_algebra(), lp_algebra(), bandwidth_algebra(),
                          reliability_algebra(), bgp_system(),
                          lex_product(add_algebra(8, 3), hop_algebra(8))}) {
    std::cout << discharge(alg).to_string() << "\n";
  }

  std::cout << "\n=== Route computation with the designed BGPSystem ===\n";
  // A 4-node network; labels carry (local-pref, cost). Node 0 is the
  // destination. Node 1 reaches 0 directly (lp 2, cost 1) or via 2 (lp 1,
  // cost 4 total): the LP component dominates (smaller lp preferred, as in
  // the paper's prefRel).
  auto sys = bgp_system();
  std::vector<LabeledEdge> edges = {
      {1, 0, Value::list({Value::integer(2), Value::integer(1)})},
      {1, 2, Value::list({Value::integer(1), Value::integer(2)})},
      {2, 0, Value::list({Value::integer(1), Value::integer(2)})},
      {3, 1, Value::list({Value::integer(1), Value::integer(1)})},
  };
  auto result = solve(sys, 4, edges, 0,
                      Value::list({Value::integer(1), Value::integer(0)}));
  std::cout << "converged=" << (result.converged ? "yes" : "NO")
            << " iterations=" << result.iterations << "\n";
  for (std::size_t n = 0; n < result.best.size(); ++n) {
    std::cout << "  node " << n << ": " << result.best[n].to_string() << "\n";
  }

  std::cout << "\n=== Convergence contrast ===\n";
  // Strictly monotone addA converges in <= diameter rounds; bandwidth (merely
  // monotone) still converges; the solver reports iteration counts.
  for (const auto& alg : {add_algebra(1000, 10), bandwidth_algebra(10)}) {
    std::vector<LabeledEdge> ring;
    const std::size_t n = 8;
    for (std::size_t i = 0; i < n; ++i) {
      ring.push_back({i, (i + 1) % n, Value::integer(3)});
      ring.push_back({(i + 1) % n, i, Value::integer(3)});
    }
    auto r = solve(alg, n, ring, 0);
    std::cout << alg.name << ": converged in " << r.iterations << " rounds, "
              << r.updates << " updates\n";
  }
  return 0;
}
