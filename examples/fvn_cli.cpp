// fvn_cli — the command-line face of FVN: parse, analyze, translate,
// evaluate, query, simulate and trace NDlog programs from files.
//
// Usage:
//   fvn_cli check     <prog.ndlog>                  static analysis report
//   fvn_cli lint      [--json] <prog.ndlog>...      all diagnostics (ND0001..)
//   fvn_cli analyze   [--json|--dot] <prog.ndlog>...  semantic analysis:
//                     divergence prediction + CALM convergence (ND0014..18);
//                     --cost adds the ND0019..ND0021 cost model;
//                     --parallel adds the shard-parallel certificate
//                     (ND0022..ND0025: shard keys, misaligned joins,
//                     aggregate/negation barriers);
//                     --dot prints the dependency graph with strata/SCCs
//                     (with --cost/--parallel: the respective annotated graph)
//   fvn_cli translate <prog.ndlog>                  PVS-style theory (arc 4)
//   fvn_cli linear    <prog.ndlog>                  linear-logic view (§4.2)
//   fvn_cli run       <prog.ndlog> <facts.txt>      centralized evaluation
//   fvn_cli query     <prog.ndlog> <facts.txt> <goal>
//   fvn_cli simulate  <prog.ndlog> <facts.txt>      distributed execution
//                                                   (discrete-event simulator)
//   fvn_cli dist      <prog.ndlog> <facts.txt>      distributed execution on
//                     real concurrent node threads (fvn::net Cluster):
//                     --nodes=<n>            assert the fact-derived node count
//                     --transport=<inproc|udp>  mailboxes (default) or loopback
//                                            UDP sockets
//                     --loss=<p> --seed=<s>  seeded per-frame drop injection
//                     --no-retransmit        disable the ack+retransmit layer
//                     --no-batch             one wire frame per tuple (A/B
//                                            baseline for batched channels)
//                     --poll-ms=<ms>         coordinator quiescence-scan
//                                            timeout (default 0.25)
//                     --workers=<n>          shard-parallel node evaluation
//                                            (certified programs only; serial
//                                            fallback is reported on stderr)
//                     --engine=<interpreter|dataflow>, --metrics, --trace
//   fvn_cli plan      <prog.ndlog> [--dot|--json]   compiled dataflow graph
//                     --parallel  append the certified shard plan for the
//                                 localized program (ND0022 key table)
//   fvn_cli explain   <prog.ndlog> <facts.txt> <fact>   derivation tree
//   fvn_cli serve     <prog.ndlog> <facts.txt> --serve-pred <pred>
//                     run to fixpoint with the fvn::serve route-serving plane
//                     attached, then answer LPM lookups:
//                     --serve-cols dst,nexthop,cost  column roles for the
//                                            served predicate (dst keys the
//                                            trie; len = prefix length;
//                                            _ skips; others label payload)
//                     --queries <file>       "<node> <dst>" lines (default:
//                                            stdin); one answer per line
//                     --readers <n> --churn  instead of the query loop, run n
//                                            concurrent reader threads doing
//                                            wait-free lookups while the
//                                            writer churns routes and
//                                            publishes epoch snapshots;
//                                            verifies snapshot consistency
//                     --churn-seconds <s>    churn duration (default 1.0)
//                     --engine/--workers/--metrics/--trace as simulate
//   fvn_cli verify    <prog.ndlog> <facts.txt> --ltl <spec.ltl>
//                     LTL model checking over every message interleaving
//                     (fvn::mc x fvn::ltl product automaton, nested DFS):
//                     --max-states=<n>   product-state budget (default 200000)
//                     --trace <out.json> render the first counterexample lasso
//                                        as a Chrome trace
//                     exit 0 = every property holds (possibly bounded),
//                     1 = a property is violated (counterexample printed),
//                     2 = usage / parse error (LT0001)
//
// simulate/sim and dist additionally accept
//   --monitor <spec.ltl>  compile each property into an online runtime
//                     monitor over the live tuple-event stream
//                     (install/retract/expire); verdicts print after the run
//                     and a violated property makes the exit code 1.
//   --serve <pred[:cols]>  attach the fvn::serve plane to the same stream
//                     (sim publishes at delta-round boundaries, dist on an
//                     apply-count cadence from the concurrent node threads)
//                     and report routes/epochs/publish latency after the run.
//
// Exit codes everywhere: 0 success, 1 runtime failure (divergence, transport
// unavailable, non-quiescence, monitor violation), 2 usage / unreadable
// input / parse error. Output paths (--trace, --metrics-out) are validated
// up front: an unwritable path is a usage error (exit 2), not a silent or
// late failure.
//
// --metrics-out <path> (run/sim/dist/serve) writes the metrics registry as
// JSON to a file (implies collection, independent of the --metrics stderr
// summary).
//
// `eval` is an alias for `run`, `sim` for `simulate`. Both accept the
// observability flags:
//   --metrics            print a metrics summary (fvn::obs Registry) to stderr
//   --trace <out.json>   write a Chrome trace_event file (open in
//                        chrome://tracing or Perfetto); the simulator stamps
//                        events in virtual (protocol) time
// simulate/sim additionally takes
//   --engine=<interpreter|dataflow>  rule executor (default interpreter);
//                        dataflow runs the compiled element strands and
//                        exposes per-element counters under --metrics
//   --workers=<n>        shard-parallel delta rounds (both engines): delivered
//                        batches are evaluated by n workers when the static
//                        certificate (analyze --parallel) admits it;
//                        uncertified programs fall back to serial with a
//                        stderr notice. Fixpoints are bit-identical either way.
//
// facts.txt: one ground fact per line, e.g. `link(@n0,n1,1)`; blank lines
// and lines starting with `#` are ignored.
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>

#include "logic/pvs_emit.hpp"
#include "ltl/checker.hpp"
#include "ltl/monitor.hpp"
#include "mc/ndlog_ts.hpp"
#include "ndlog/analysis.hpp"
#include "ndlog/cost.hpp"
#include "ndlog/eval.hpp"
#include "ndlog/lint.hpp"
#include "ndlog/parallel.hpp"
#include "ndlog/parser.hpp"
#include "ndlog/provenance.hpp"
#include "ndlog/query.hpp"
#include "ndlog/semantic.hpp"
#include "net/cluster.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/localize.hpp"
#include "runtime/simulator.hpp"
#include "serve/plane.hpp"
#include "translate/linear_view.hpp"
#include "translate/ndlog_to_logic.hpp"

namespace {

/// Bad invocation (unreadable input, malformed flag value): exit 2, like a
/// usage error — distinct from runtime failures (exit 1).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Validate an output path before doing any work: probe it in append mode so
/// an existing file is not truncated, and treat failure as a usage error
/// (exit 2). Previously an unwritable --trace/--metrics path only surfaced
/// after the whole run (or not at all).
void require_writable(const std::string& path) {
  if (path.empty()) return;
  std::ofstream probe(path, std::ios::app);
  if (!probe) throw UsageError("cannot write " + path);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw UsageError("cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<fvn::ndlog::Tuple> load_facts(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw UsageError("cannot read " + path);
  std::vector<fvn::ndlog::Tuple> facts;
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    facts.push_back(fvn::ndlog::parse_fact(line));
  }
  return facts;
}

int usage() {
  std::cerr << "usage: fvn_cli <check|lint|analyze|translate|linear|run|query|simulate|dist|plan|explain|verify|serve> "
               "<prog.ndlog> [facts.txt] [goal|fact]\n"
               "       fvn_cli verify <prog.ndlog> <facts.txt> --ltl <spec.ltl> "
               "[--max-states=<n>] [--trace <out.json>]   "
               "(exit 0 holds, 1 violated, 2 parse error)\n"
               "       sim/dist take --monitor <spec.ltl> to run the same "
               "properties as online monitors (violation => exit 1)\n"
               "       fvn_cli dist <prog.ndlog> <facts.txt> [--nodes=<n>] "
               "[--transport=<inproc|udp>] [--loss=<p>] [--seed=<s>] "
               "[--no-retransmit] [--no-batch] [--poll-ms=<ms>] [--workers=<n>] "
               "[--engine=...] [--metrics] [--trace <out.json>]\n"
               "       fvn_cli lint [--json] <prog.ndlog>...   "
               "(exit 0 clean, 1 warnings, 2 errors)\n"
               "       fvn_cli analyze [--json|--dot|--metrics|--cost|--parallel] "
               "<prog.ndlog>...   "
               "(semantic passes ND0014..ND0018; --cost adds the ND0019..ND0021 "
               "cost model; --parallel adds the ND0022..ND0025 shard-parallel "
               "certificate; same exit convention)\n"
               "       fvn_cli plan <prog.ndlog> [--dot|--json] [--cost-order] "
               "[--parallel]   (localize + compile to dataflow strands; "
               "--parallel appends the certified shard plan)\n"
               "       eval = run, sim = simulate; both take --metrics and "
               "--trace <out.json>; sim takes --engine=<interpreter|dataflow> "
               "and --workers=<n>\n"
               "       fvn_cli serve <prog.ndlog> <facts.txt> --serve-pred <pred> "
               "[--serve-cols dst,nexthop,cost] [--queries <file>] "
               "[--readers <n> --churn] [--churn-seconds <s>]   "
               "(run to fixpoint, then answer '<node> <dst>' LPM lookups; "
               "--churn measures concurrent readers during route churn)\n"
               "       sim/dist take --serve <pred[:cols]> to attach the "
               "serving plane to a normal run\n"
               "       run/sim/dist/serve take --metrics-out <path> to write "
               "the metrics registry as JSON\n";
  return 2;
}

/// `fvn_cli plan <prog.ndlog> [--dot|--json]` — localize the program and
/// compile it to the fvn::dataflow element graph, printing a human summary
/// (default), Graphviz DOT, or JSON.
int cmd_plan(const std::vector<std::string>& args) {
  bool dot = false;
  bool json = false;
  bool cost_order = false;
  bool parallel = false;
  std::vector<std::string> files;
  for (const auto& a : args) {
    if (a == "--dot") {
      dot = true;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--cost-order") {
      cost_order = true;
    } else if (a == "--parallel") {
      parallel = true;
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 1 || (dot && json)) return usage();
  auto program = fvn::ndlog::parse_program(slurp(files[0]), files[0]);
  auto localized = fvn::runtime::localize(program);
  fvn::dataflow::PlanOptions plan_options;
  plan_options.cost_order = cost_order;
  auto plan = fvn::dataflow::compile(localized, plan_options);
  // --parallel: certify the *localized* program — the exact form the worker
  // pools execute — and render the shard plan next to the strand plan.
  std::optional<fvn::ndlog::parallel::Report> shard_plan;
  if (parallel) {
    fvn::ndlog::DiagnosticSink scratch;
    shard_plan = fvn::ndlog::parallel::analyze(localized, scratch);
  }
  if (dot) {
    std::cout << (shard_plan ? fvn::ndlog::parallel::to_dot(localized, *shard_plan)
                             : plan.to_dot());
  } else if (json) {
    if (shard_plan) {
      std::cout << "{\"plan\":" << plan.to_json()
                << ",\"parallel\":" << fvn::ndlog::parallel::to_json(*shard_plan)
                << "}\n";
    } else {
      std::cout << plan.to_json() << "\n";
    }
  } else {
    std::cout << plan.summary();
    if (shard_plan) std::cout << fvn::ndlog::parallel::to_human(*shard_plan);
  }
  return 0;
}

/// `fvn_cli lint [--json] <file>...` — run every diagnostic pass over each
/// file, printing human-readable or JSON output. Parse failures become
/// ND0001 diagnostics instead of aborting the run.
int cmd_lint(const std::vector<std::string>& args) {
  bool json = false;
  std::vector<std::string> files;
  for (const auto& a : args) {
    if (a == "--json") {
      json = true;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) return usage();

  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::ostringstream json_out;
  json_out << "{\"files\":[";
  for (std::size_t f = 0; f < files.size(); ++f) {
    const std::string& file = files[f];
    fvn::ndlog::DiagnosticSink sink;
    try {
      auto program = fvn::ndlog::parse_program(slurp(file), file);
      fvn::ndlog::lint_program(program, sink);
    } catch (const fvn::ndlog::ParseError& e) {
      sink.error("ND0001", e.what(),
                 fvn::ndlog::SourceSpan::at({e.line(), e.column()}));
    } catch (const std::exception& e) {
      sink.error("ND0001", e.what());
    }
    errors += sink.count(fvn::ndlog::Severity::Error);
    warnings += sink.count(fvn::ndlog::Severity::Warning);
    if (json) {
      json_out << (f != 0 ? "," : "") << "{\"file\":\"" << fvn::ndlog::json_escape(file)
               << "\",\"diagnostics\":" << fvn::ndlog::render_json(sink.diagnostics())
               << "}";
    } else {
      std::cout << fvn::ndlog::render_human(sink.diagnostics(), file);
    }
  }
  if (json) {
    json_out << "],\"errors\":" << errors << ",\"warnings\":" << warnings << "}";
    std::cout << json_out.str() << "\n";
  } else {
    std::cout << "lint: " << errors << " errors, " << warnings << " warnings\n";
  }
  return errors != 0 ? 2 : warnings != 0 ? 1 : 0;
}

/// `fvn_cli analyze [--json|--dot|--metrics] <file>...` — run the core
/// checks plus the semantic passes (ND0014–ND0018: dead rules, divergence
/// prediction, CALM order-sensitivity). Exit convention matches lint:
/// 0 clean, 1 warnings, 2 errors. `--dot` prints the annotated predicate
/// dependency graph for a single file.
int cmd_analyze(const std::vector<std::string>& args) {
  bool json = false;
  bool dot = false;
  bool want_metrics = false;
  bool want_cost = false;
  bool want_parallel = false;
  std::vector<std::string> files;
  for (const auto& a : args) {
    if (a == "--json") {
      json = true;
    } else if (a == "--dot") {
      dot = true;
    } else if (a == "--metrics") {
      want_metrics = true;
    } else if (a == "--cost") {
      want_cost = true;
    } else if (a == "--parallel") {
      want_parallel = true;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty() || (dot && json) || (dot && files.size() != 1)) return usage();

  fvn::obs::Registry registry;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::ostringstream json_out;
  json_out << "{\"files\":[";
  for (std::size_t f = 0; f < files.size(); ++f) {
    const std::string& file = files[f];
    fvn::ndlog::DiagnosticSink sink;
    std::string summary_json;
    std::string cost_json;
    std::string cost_human;
    std::string parallel_json;
    std::string parallel_human;
    try {
      auto program = fvn::ndlog::parse_program(slurp(file), file);
      fvn::ndlog::check_arities(program, sink);
      fvn::ndlog::check_safety(program, fvn::ndlog::BuiltinRegistry::standard(),
                               sink);
      fvn::ndlog::stratify(program, sink);
      if (!sink.has_errors()) {
        fvn::ndlog::SemanticOptions options;
        if (want_metrics) options.metrics = &registry;
        auto report = fvn::ndlog::analyze_semantics(program, sink, options);
        summary_json = fvn::ndlog::semantic_json(report);
        if (want_cost) {
          auto cost_report = fvn::ndlog::cost::analyze(program, report, sink);
          cost_json = fvn::ndlog::cost::to_json(cost_report);
          if (!json && !dot) cost_human = fvn::ndlog::cost::to_human(cost_report);
          if (dot && !want_parallel) {
            std::cout << fvn::ndlog::cost::to_dot(program, cost_report);
          }
        } else if (dot && !want_parallel) {
          std::cout << fvn::ndlog::semantic_dot(program, report);
        }
        if (want_parallel) {
          auto parallel_report = fvn::ndlog::parallel::analyze(program, sink);
          parallel_json = fvn::ndlog::parallel::to_json(parallel_report);
          if (!json && !dot) {
            parallel_human = fvn::ndlog::parallel::to_human(parallel_report);
          }
          if (dot) std::cout << fvn::ndlog::parallel::to_dot(program, parallel_report);
        }
      }
      fvn::ndlog::dedupe_localized_diagnostics(program, sink);
      sink.sort_by_location();
    } catch (const fvn::ndlog::ParseError& e) {
      sink.error("ND0001", e.what(),
                 fvn::ndlog::SourceSpan::at({e.line(), e.column()}));
    } catch (const std::exception& e) {
      sink.error("ND0001", e.what());
    }
    errors += sink.count(fvn::ndlog::Severity::Error);
    warnings += sink.count(fvn::ndlog::Severity::Warning);
    if (json) {
      json_out << (f != 0 ? "," : "") << "{\"file\":\"" << fvn::ndlog::json_escape(file)
               << "\",\"diagnostics\":" << fvn::ndlog::render_json(sink.diagnostics());
      if (!summary_json.empty()) json_out << ",\"summary\":" << summary_json;
      if (!cost_json.empty()) json_out << ",\"cost\":" << cost_json;
      if (!parallel_json.empty()) json_out << ",\"parallel\":" << parallel_json;
      json_out << "}";
    } else if (!dot) {
      std::cout << fvn::ndlog::render_human(sink.diagnostics(), file);
      if (!cost_human.empty()) std::cout << cost_human;
      if (!parallel_human.empty()) std::cout << parallel_human;
    }
  }
  if (json) {
    json_out << "],\"errors\":" << errors << ",\"warnings\":" << warnings << "}";
    std::cout << json_out.str() << "\n";
  } else if (!dot) {
    std::cout << "analyze: " << errors << " errors, " << warnings << " warnings\n";
  }
  if (want_metrics) std::cerr << registry.render_summary();
  return errors != 0 ? 2 : warnings != 0 ? 1 : 0;
}

double parse_double_flag(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw UsageError("bad value for " + flag + ": '" + value + "'");
  }
}

std::uint64_t parse_uint_flag(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw UsageError("bad value for " + flag + ": '" + value + "'");
  }
}

/// Load and validate an `.ltl` spec against the program's catalog. Malformed
/// specs render as an LT0001 diagnostic and exit 2 (UsageError); consistency
/// warnings (LT0002..LT0005) print to stderr but do not block.
fvn::ltl::Spec load_ltl_spec(const std::string& path,
                             const fvn::ndlog::Program& program) {
  const std::string source = slurp(path);
  fvn::ndlog::DiagnosticSink sink;
  fvn::ltl::Spec spec;
  try {
    spec = fvn::ltl::parse_spec(source, path);
  } catch (const fvn::ndlog::ParseError& e) {
    sink.error("LT0001", e.what(),
               fvn::ndlog::SourceSpan::at({e.line(), e.column()}));
    std::cerr << fvn::ndlog::render_human(sink.diagnostics(), path);
    throw UsageError("cannot parse LTL spec " + path);
  }
  const auto catalog = fvn::ndlog::Catalog::from_program(program);
  fvn::ltl::check_spec(spec, catalog, sink);
  if (!sink.diagnostics().empty()) {
    std::cerr << fvn::ndlog::render_human(sink.diagnostics(), path);
  }
  if (spec.properties.empty()) {
    throw UsageError("LTL spec " + path + " declares no properties");
  }
  return spec;
}

/// `fvn_cli verify <prog.ndlog> <facts.txt> --ltl <spec.ltl>` — model-check
/// every property of the spec over every message interleaving of the program
/// on the given facts (DESIGN.md §14.3). Violations print a full lasso
/// counterexample (per-step valuations and node tables) and optionally render
/// it as a Chrome trace.
int cmd_verify(const std::vector<std::string>& args) {
  std::string spec_path;
  std::string trace_path;
  std::size_t max_states = 200000;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value_of = [&](const std::string& flag) -> std::string {
      if (a.size() > flag.size()) return a.substr(flag.size() + 1);  // --flag=v
      if (i + 1 >= args.size()) throw UsageError(flag + " needs a value");
      return args[++i];
    };
    if (a == "--ltl" || a.rfind("--ltl=", 0) == 0) {
      spec_path = value_of("--ltl");
    } else if (a == "--trace" || a.rfind("--trace=", 0) == 0) {
      trace_path = value_of("--trace");
    } else if (a == "--max-states" || a.rfind("--max-states=", 0) == 0) {
      max_states = static_cast<std::size_t>(
          parse_uint_flag("--max-states", value_of("--max-states")));
    } else if (a.rfind("--", 0) == 0) {
      throw UsageError("unknown flag " + a);
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() != 2 || spec_path.empty()) return usage();
  require_writable(trace_path);

  auto program = fvn::ndlog::parse_program(slurp(positional[0]), positional[0]);
  auto facts = load_facts(positional[1]);
  auto spec = load_ltl_spec(spec_path, program);

  fvn::mc::NdlogTransitionSystem ts(program);
  const auto initial = ts.initial(facts);
  fvn::ltl::CheckOptions options;
  options.max_product_states = max_states;
  const auto result = fvn::ltl::check_ltl(ts, initial, spec, options);

  bool any_violated = false;
  for (const auto& p : result.properties) {
    if (p.holds) {
      std::cout << "property " << p.name << ": " << p.formula << " — HOLDS"
                << (p.exhausted ? "" : " (bounded: state budget exhausted)")
                << " [" << p.product_states << " product states, "
                << p.transitions << " transitions]\n";
    } else {
      any_violated = true;
      // render_counterexample prints the "property ... VIOLATED" header.
      std::cout << fvn::ltl::render_counterexample(p);
    }
  }
  if (!trace_path.empty()) {
    fvn::obs::Trace trace;
    for (const auto& p : result.properties) {
      if (!p.holds) {
        fvn::ltl::counterexample_to_trace(p, trace);
        break;
      }
    }
    trace.write(trace_path);
  }
  return any_violated ? 1 : 0;
}

/// Parse "pred[:cols]" against the program, turning spec mistakes into usage
/// errors (exit 2) rather than runtime failures.
fvn::serve::ServeSpec parse_serve_spec(const std::string& text,
                                       const fvn::ndlog::Program& program) {
  try {
    return fvn::serve::ServeSpec::parse(
        text, fvn::ndlog::Catalog::from_program(program));
  } catch (const fvn::serve::ServeError& e) {
    throw UsageError(e.what());
  }
}

void print_serve_summary(const fvn::serve::ServePlane& plane) {
  const auto s = plane.stats();
  std::cerr << "serve: routes=" << s.routes << " epochs=" << s.epochs_published
            << " applied=" << s.applied
            << " reclaimed=" << s.snapshots_reclaimed
            << " retired_live=" << s.retired_live
            << " publish_p99_us=" << s.publish_p99_us << "\n";
}

/// serve --churn: n reader threads do wait-free lookups (verifying snapshot
/// checksums) while the main thread retracts/reinstalls fixpoint routes and
/// publishes epoch snapshots. Returns 1 if any reader saw a torn snapshot.
int run_serve_churn(fvn::serve::ServePlane& plane,
                    const std::vector<std::pair<std::string, fvn::ndlog::Tuple>>& routes,
                    std::uint64_t readers, double seconds) {
  using namespace fvn;
  if (routes.empty()) {
    std::cerr << "error: no routes at fixpoint — nothing to churn\n";
    return 1;
  }
  // Lookup targets: every (node, prefix) in the published fixpoint.
  std::vector<std::pair<serve::Interner::Id, std::uint32_t>> targets;
  {
    const serve::Snapshot& snap = plane.current();
    for (std::size_t n = 0; n < snap.tables.size(); ++n) {
      if (!snap.tables[n]) continue;
      snap.tables[n]->for_each([&](serve::Key key, const serve::Row&) {
        targets.emplace_back(static_cast<serve::Interner::Id>(n), key.prefix);
      });
    }
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(readers));
  for (std::uint64_t r = 0; r < readers; ++r) {
    pool.emplace_back([&plane, &stop, &torn, &targets, r]() {
      auto reader = plane.register_reader();
      std::uint64_t x = 0x9e3779b97f4a7c15ull ^ (r + 1);
      std::uint64_t batches = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto lease = reader.acquire();
        // Periodic torn-read tripwire: the content checksum of everything
        // reachable from the lease must match what the writer published.
        if ((batches++ & 0xff) == 0 &&
            serve::recompute_checksum(*lease) != lease->checksum) {
          torn.store(true);
          stop.store(true);
        }
        for (int i = 0; i < 64; ++i) {
          x ^= x << 13; x ^= x >> 7; x ^= x << 17;  // xorshift64
          const auto& t = targets[x % targets.size()];
          reader.lookup(lease, t.first, t.second);
        }
      }
    });
  }
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(seconds));
  std::size_t i = 0;
  std::uint64_t churn_ops = 0;
  while (std::chrono::steady_clock::now() < deadline &&
         !stop.load(std::memory_order_relaxed)) {
    const auto& [node, tuple] = routes[i % routes.size()];
    plane.apply("retract", node, tuple);
    plane.apply("install", node, tuple);
    churn_ops += 2;
    if (++i % 8 == 0) plane.publish();
    // Pace the writer at a realistic protocol rate so readers own the cores.
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  plane.publish(/*force=*/true);
  stop.store(true);
  for (auto& t : pool) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const auto s = plane.stats();
  std::cout << "churn: readers=" << readers << " seconds=" << elapsed
            << " lookups=" << s.lookups << " lookups_per_sec="
            << static_cast<std::uint64_t>(static_cast<double>(s.lookups) /
                                          (elapsed > 0 ? elapsed : 1.0))
            << " churn_ops=" << churn_ops << " epochs=" << s.epochs_published
            << (torn.load() ? " TORN" : " consistent") << "\n";
  if (torn.load()) {
    std::cerr << "error: a reader observed a torn snapshot\n";
    return 1;
  }
  return 0;
}

/// `fvn_cli serve <prog.ndlog> <facts.txt> --serve-pred <pred> [...]` — run
/// to fixpoint on the simulator with the serving plane attached to the
/// tuple-event stream, then either answer "<node> <dst>" lookups from
/// --queries/stdin or (--readers N --churn) measure concurrent wait-free
/// readers while the writer churns routes.
int cmd_serve(const std::vector<std::string>& args) {
  std::string pred;
  std::string cols;
  std::string queries_path;
  std::string trace_path;
  std::string metrics_out;
  std::string engine_name = "interpreter";
  bool want_metrics = false;
  bool churn = false;
  std::uint64_t readers = 0;
  std::uint64_t workers = 0;
  double churn_seconds = 1.0;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value_of = [&](const std::string& flag) -> std::string {
      if (a.size() > flag.size()) return a.substr(flag.size() + 1);  // --flag=v
      if (i + 1 >= args.size()) throw UsageError(flag + " needs a value");
      return args[++i];
    };
    if (a == "--serve-pred" || a.rfind("--serve-pred=", 0) == 0) {
      pred = value_of("--serve-pred");
    } else if (a == "--serve-cols" || a.rfind("--serve-cols=", 0) == 0) {
      cols = value_of("--serve-cols");
    } else if (a == "--queries" || a.rfind("--queries=", 0) == 0) {
      queries_path = value_of("--queries");
    } else if (a == "--readers" || a.rfind("--readers=", 0) == 0) {
      readers = parse_uint_flag("--readers", value_of("--readers"));
    } else if (a == "--churn") {
      churn = true;
    } else if (a == "--churn-seconds" || a.rfind("--churn-seconds=", 0) == 0) {
      churn_seconds =
          parse_double_flag("--churn-seconds", value_of("--churn-seconds"));
    } else if (a == "--engine" || a.rfind("--engine=", 0) == 0) {
      engine_name = value_of("--engine");
    } else if (a == "--workers" || a.rfind("--workers=", 0) == 0) {
      workers = parse_uint_flag("--workers", value_of("--workers"));
    } else if (a == "--metrics") {
      want_metrics = true;
    } else if (a == "--metrics-out" || a.rfind("--metrics-out=", 0) == 0) {
      metrics_out = value_of("--metrics-out");
    } else if (a == "--trace" || a.rfind("--trace=", 0) == 0) {
      trace_path = value_of("--trace");
    } else if (a.rfind("--", 0) == 0) {
      throw UsageError("unknown flag " + a);
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() != 2 || pred.empty()) return usage();
  if (engine_name != "interpreter" && engine_name != "dataflow") {
    throw UsageError("unknown engine '" + engine_name +
                     "' (expected interpreter or dataflow)");
  }
  if (churn && readers == 0) throw UsageError("--churn needs --readers >= 1");
  if (churn_seconds <= 0.0 || churn_seconds > 60.0) {
    throw UsageError("--churn-seconds must be in (0,60]");
  }
  require_writable(trace_path);
  require_writable(metrics_out);

  auto program = fvn::ndlog::parse_program(slurp(positional[0]), positional[0]);
  auto facts = load_facts(positional[1]);

  fvn::obs::Registry registry;
  fvn::obs::Trace obs_trace;
  const bool collect_metrics = want_metrics || !metrics_out.empty();
  fvn::serve::ServePlane plane(
      parse_serve_spec(cols.empty() ? pred : pred + ":" + cols, program),
      fvn::serve::ServePlane::Options{collect_metrics ? &registry : nullptr});
  fvn::serve::Feed feed(plane);  // sim: publish at delta-round boundaries

  // Track the live set of served-predicate installs so churn mode can
  // retract/reinstall exactly the fixpoint's routes.
  std::map<std::string, std::pair<std::string, fvn::ndlog::Tuple>> live;
  auto hook = feed.hook();
  fvn::runtime::SimOptions sim_options;
  sim_options.tuple_events = [&](std::string_view kind, const std::string& node,
                                 const fvn::ndlog::Tuple& tuple, double now) {
    hook(kind, node, tuple, now);
    if (!churn || tuple.predicate() != plane.spec().predicate) return;
    const std::string key = node + "\x1f" + tuple.to_string();
    if (kind == "install") {
      live.emplace(key, std::make_pair(node, tuple));
    } else {
      live.erase(key);
    }
  };
  if (collect_metrics) sim_options.metrics = &registry;
  if (!trace_path.empty()) sim_options.obs_trace = &obs_trace;
  if (engine_name == "dataflow") {
    sim_options.engine = fvn::runtime::EngineKind::Dataflow;
  }
  sim_options.workers = static_cast<std::size_t>(workers);

  fvn::runtime::Simulator sim(program, sim_options);
  sim.inject_all(facts);
  const auto stats = sim.run();
  feed.finish();  // the fixpoint snapshot

  int rc = stats.quiesced ? 0 : 1;
  if (churn) {
    std::vector<std::pair<std::string, fvn::ndlog::Tuple>> routes;
    routes.reserve(live.size());
    for (auto& [key, entry] : live) routes.push_back(entry);
    const int churn_rc =
        run_serve_churn(plane, routes, readers, churn_seconds);
    if (churn_rc != 0) rc = churn_rc;
  } else {
    std::ifstream query_file;
    std::istream* in = &std::cin;
    if (!queries_path.empty()) {
      query_file.open(queries_path);
      if (!query_file) throw UsageError("cannot read " + queries_path);
      in = &query_file;
    }
    std::string line;
    while (std::getline(*in, line)) {
      std::istringstream row(line);
      std::string node;
      std::string dst;
      if (!(row >> node) || node[0] == '#') continue;
      if (!(row >> dst)) {
        std::cout << "error: query needs '<node> <dst>'\n";
        continue;
      }
      std::cout << plane.query(node, dst) << "\n";
    }
  }

  print_serve_summary(plane);
  plane.flush_metrics();
  if (!trace_path.empty()) obs_trace.write(trace_path);
  if (!metrics_out.empty()) {
    fvn::obs::write_file(metrics_out, registry.to_json() + "\n");
  }
  if (want_metrics) std::cerr << registry.render_summary();
  return rc;
}

/// `fvn_cli dist <prog.ndlog> <facts.txt> [flags]` — run the program on the
/// fvn::net Cluster: one thread per node, frames on a real transport. Prints
/// each node's database (same shape as `simulate`) and a summary line.
int cmd_dist(const std::vector<std::string>& args) {
  bool want_metrics = false;
  std::string trace_path;
  std::string metrics_out;
  std::string serve_spec_text;
  std::string monitor_path;
  std::string engine_name = "interpreter";
  std::string transport_name = "inproc";
  bool cost_order = false;
  double loss = 0.0;
  std::uint64_t seed = 1;
  std::int64_t expected_nodes = -1;
  bool retransmit = true;
  bool batch = true;
  double poll_ms = -1.0;  // < 0 = keep the ClusterOptions default
  std::uint64_t workers = 0;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value_of = [&](const std::string& flag) -> std::string {
      if (a.size() > flag.size()) return a.substr(flag.size() + 1);  // --flag=v
      if (i + 1 >= args.size()) throw UsageError(flag + " needs a value");
      return args[++i];
    };
    if (a == "--metrics") {
      want_metrics = true;
    } else if (a == "--no-retransmit") {
      retransmit = false;
    } else if (a == "--no-batch") {
      batch = false;
    } else if (a == "--poll-ms" || a.rfind("--poll-ms=", 0) == 0) {
      poll_ms = parse_double_flag("--poll-ms", value_of("--poll-ms"));
    } else if (a == "--trace" || a.rfind("--trace=", 0) == 0) {
      trace_path = value_of("--trace");
    } else if (a == "--metrics-out" || a.rfind("--metrics-out=", 0) == 0) {
      metrics_out = value_of("--metrics-out");
    } else if (a == "--serve" || a.rfind("--serve=", 0) == 0) {
      serve_spec_text = value_of("--serve");
    } else if (a == "--monitor" || a.rfind("--monitor=", 0) == 0) {
      monitor_path = value_of("--monitor");
    } else if (a == "--engine" || a.rfind("--engine=", 0) == 0) {
      engine_name = value_of("--engine");
    } else if (a == "--cost-order") {
      cost_order = true;
    } else if (a == "--transport" || a.rfind("--transport=", 0) == 0) {
      transport_name = value_of("--transport");
    } else if (a == "--loss" || a.rfind("--loss=", 0) == 0) {
      loss = parse_double_flag("--loss", value_of("--loss"));
    } else if (a == "--seed" || a.rfind("--seed=", 0) == 0) {
      seed = parse_uint_flag("--seed", value_of("--seed"));
    } else if (a == "--nodes" || a.rfind("--nodes=", 0) == 0) {
      expected_nodes =
          static_cast<std::int64_t>(parse_uint_flag("--nodes", value_of("--nodes")));
    } else if (a == "--workers" || a.rfind("--workers=", 0) == 0) {
      workers = parse_uint_flag("--workers", value_of("--workers"));
    } else if (a.rfind("--", 0) == 0) {
      throw UsageError("unknown flag " + a);
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() != 2) return usage();
  if (engine_name != "interpreter" && engine_name != "dataflow") {
    throw UsageError("unknown engine '" + engine_name +
                     "' (expected interpreter or dataflow)");
  }
  if (transport_name != "inproc" && transport_name != "udp") {
    throw UsageError("unknown transport '" + transport_name +
                     "' (expected inproc or udp)");
  }
  if (loss < 0.0 || loss >= 1.0) throw UsageError("--loss must be in [0,1)");
  if (poll_ms == 0.0 || poll_ms > 1000.0) {
    throw UsageError("--poll-ms must be in (0,1000]");
  }
  require_writable(trace_path);
  require_writable(metrics_out);

  auto program = fvn::ndlog::parse_program(slurp(positional[0]), positional[0]);
  auto facts = load_facts(positional[1]);
  std::optional<fvn::ltl::Spec> monitor_spec;
  if (!monitor_path.empty()) monitor_spec = load_ltl_spec(monitor_path, program);

  fvn::obs::Registry registry;
  fvn::obs::Trace obs_trace;
  const bool collect_metrics = want_metrics || !metrics_out.empty();
  // --serve: the plane consumes the live tuple-event stream concurrently
  // from every node thread, so the feed serializes with its mutex and
  // publishes on an apply-count cadence (node clocks are not comparable).
  std::optional<fvn::serve::ServePlane> serve_plane;
  std::optional<fvn::serve::Feed> serve_feed;
  if (!serve_spec_text.empty()) {
    serve_plane.emplace(
        parse_serve_spec(serve_spec_text, program),
        fvn::serve::ServePlane::Options{collect_metrics ? &registry : nullptr});
    fvn::serve::Feed::Options feed_options;
    feed_options.publish_on_time_advance = false;
    feed_options.publish_every = 64;
    feed_options.thread_safe = true;
    serve_feed.emplace(*serve_plane, feed_options);
  }
  fvn::net::ClusterOptions options;
  options.engine = engine_name == "dataflow" ? fvn::runtime::EngineKind::Dataflow
                                             : fvn::runtime::EngineKind::Interpreter;
  options.cost_order = cost_order;
  options.transport = transport_name == "udp" ? fvn::net::TransportKind::Udp
                                              : fvn::net::TransportKind::InProc;
  options.faults.drop_rate = loss;
  options.faults.seed = seed;
  options.reliability.enabled = retransmit;
  options.reliability.batch = batch;
  options.workers = static_cast<std::size_t>(workers);
  if (poll_ms > 0.0) options.poll_interval_ms = poll_ms;
  if (collect_metrics) options.metrics = &registry;
  if (!trace_path.empty()) options.trace = &obs_trace;
  if (monitor_spec.has_value()) options.capture_tuple_events = true;
  if (serve_feed.has_value()) options.tuple_events = serve_feed->hook();

  fvn::net::Cluster cluster(program, options);
  cluster.inject_all(facts);
  const auto nodes = cluster.nodes();
  if (expected_nodes >= 0 &&
      nodes.size() != static_cast<std::size_t>(expected_nodes)) {
    std::cerr << "error: facts span " << nodes.size() << " nodes, --nodes="
              << expected_nodes << " expected\n";
    return 1;
  }
  auto stats = cluster.run();
  if (serve_feed.has_value()) serve_feed->finish();  // the fixpoint snapshot
  for (const auto& node : cluster.nodes()) {
    std::cout << "--- " << node << " ---\n";
    for (const auto& row : cluster.database(node).dump()) std::cout << row << "\n";
  }
  std::cerr << "nodes=" << stats.nodes << " sent=" << stats.messages_sent
            << " received=" << stats.messages_received
            << " retransmitted=" << stats.retransmitted
            << " acked=" << stats.acked << " bytes=" << stats.transport.bytes_sent
            << " wall_ms=" << stats.wall_ms
            << (stats.quiesced ? "" : " (no quiescence before budget)") << "\n";
  if (workers >= 1) {
    if (stats.parallel_active) {
      std::cerr << "parallel: workers=" << workers
                << " rounds=" << stats.parallel_rounds << "\n";
    } else {
      std::cerr << "parallel: serial fallback ("
                << stats.parallel_fallback_reason << ")\n";
    }
  }
  if (serve_plane.has_value()) {
    print_serve_summary(*serve_plane);
    serve_plane->flush_metrics();
  }
  if (!trace_path.empty()) obs_trace.write(trace_path);
  if (!metrics_out.empty()) {
    fvn::obs::write_file(metrics_out, registry.to_json() + "\n");
  }
  if (want_metrics) std::cerr << registry.render_summary();
  bool monitors_ok = true;
  if (monitor_spec.has_value()) {
    // Replay the cluster's merged tuple-event stream through the compiled
    // monitors (the same stream `sim --monitor` consumes live).
    fvn::ltl::MonitorSet monitors(*monitor_spec);
    for (const auto& e : fvn::ltl::events_from_trace(cluster.tuple_events())) {
      monitors.on_event(e);
    }
    const auto verdicts = monitors.finish();
    std::cout << fvn::ltl::render_verdicts(verdicts);
    monitors_ok = monitors.all_satisfied();
  }
  return stats.quiesced && monitors_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fvn;
  if (argc < 3) return usage();
  const std::string command = argv[1];
  if (command == "lint") {
    return cmd_lint(std::vector<std::string>(argv + 2, argv + argc));
  }
  if (command == "analyze") {
    return cmd_analyze(std::vector<std::string>(argv + 2, argv + argc));
  }
  if (command == "plan" || command == "dist" || command == "verify" ||
      command == "serve") {
    try {
      const std::vector<std::string> rest(argv + 2, argv + argc);
      return command == "plan"     ? cmd_plan(rest)
             : command == "dist"   ? cmd_dist(rest)
             : command == "serve"  ? cmd_serve(rest)
                                   : cmd_verify(rest);
    } catch (const ndlog::ParseError& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    } catch (const UsageError& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  // Observability flags (run/eval and simulate/sim); everything else is
  // positional: <prog.ndlog> [facts.txt] [goal|fact].
  bool want_metrics = false;
  std::string trace_path;
  std::string metrics_out;
  std::string serve_spec_text;
  std::string engine_name;
  std::string monitor_path;
  bool cost_order = false;
  std::uint64_t workers = 0;
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--metrics") {
      want_metrics = true;
    } else if (a == "--trace") {
      if (i + 1 >= argc) return usage();
      trace_path = argv[++i];
    } else if (a.rfind("--trace=", 0) == 0) {
      trace_path = a.substr(8);
    } else if (a == "--metrics-out") {
      if (i + 1 >= argc) return usage();
      metrics_out = argv[++i];
    } else if (a.rfind("--metrics-out=", 0) == 0) {
      metrics_out = a.substr(14);
    } else if (a == "--serve") {
      if (i + 1 >= argc) return usage();
      serve_spec_text = argv[++i];
    } else if (a.rfind("--serve=", 0) == 0) {
      serve_spec_text = a.substr(8);
    } else if (a == "--monitor") {
      if (i + 1 >= argc) return usage();
      monitor_path = argv[++i];
    } else if (a.rfind("--monitor=", 0) == 0) {
      monitor_path = a.substr(10);
    } else if (a == "--engine") {
      if (i + 1 >= argc) return usage();
      engine_name = argv[++i];
    } else if (a.rfind("--engine=", 0) == 0) {
      engine_name = a.substr(9);
    } else if (a == "--cost-order") {
      cost_order = true;
    } else if (a == "--workers" || a.rfind("--workers=", 0) == 0) {
      std::string value;
      if (a.size() > 9) {
        value = a.substr(10);
      } else {
        if (i + 1 >= argc) return usage();
        value = argv[++i];
      }
      try {
        workers = parse_uint_flag("--workers", value);
      } catch (const UsageError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
      }
    } else {
      args.push_back(a);
    }
  }
  if (args.empty()) return usage();
  if (!engine_name.empty() && engine_name != "interpreter" && engine_name != "dataflow") {
    std::cerr << "error: unknown engine '" << engine_name
              << "' (expected interpreter or dataflow)\n";
    return 2;
  }

  try {
    require_writable(trace_path);
    require_writable(metrics_out);
    if (!serve_spec_text.empty() && command != "simulate" && command != "sim") {
      throw UsageError("--serve only applies to simulate/sim (and dist)");
    }
    auto program = ndlog::parse_program(slurp(args[0]), "cli_program");

    if (command == "check") {
      auto strat = ndlog::analyze(program);
      std::cout << "program OK: " << program.rules.size() << " rules, "
                << ndlog::predicates_of(program).size() << " predicates, "
                << strat.stratum_count << " strata\n";
      for (const auto& [pred, stratum] : strat.stratum_of) {
        std::cout << "  stratum " << stratum << ": " << pred << "\n";
      }
      return 0;
    }
    if (command == "translate") {
      std::cout << logic::to_pvs_source(translate::to_logic(program));
      return 0;
    }
    if (command == "linear") {
      std::cout << translate::render_linear_view(program);
      return 0;
    }

    if (args.size() < 2) return usage();
    auto facts = load_facts(args[1]);

    obs::Registry registry;
    obs::Trace obs_trace;
    const bool collect_metrics = want_metrics || !metrics_out.empty();
    auto flush_obs = [&]() {
      if (!trace_path.empty()) obs_trace.write(trace_path);
      if (!metrics_out.empty()) {
        obs::write_file(metrics_out, registry.to_json() + "\n");
      }
      if (want_metrics) std::cerr << registry.render_summary();
    };

    if (command == "run" || command == "eval") {
      ndlog::Evaluator eval;
      ndlog::EvalOptions opts;
      if (collect_metrics) opts.metrics = &registry;
      if (!trace_path.empty()) opts.trace = &obs_trace;
      auto result = eval.run(program, facts, opts);
      for (const auto& row : result.database.dump()) std::cout << row << "\n";
      std::cerr << "derived " << result.stats.tuples_derived << " tuples in "
                << result.stats.iterations << " rounds\n";
      flush_obs();
      return 0;
    }
    if (command == "query") {
      if (args.size() < 3) return usage();
      auto result = ndlog::query(program, args[2], facts);
      for (const auto& t : ndlog::sorted_strings(result.answers)) std::cout << t << "\n";
      std::cerr << result.answers.size() << " answers; evaluated "
                << result.rules_relevant << "/" << result.rules_total
                << " relevant rules\n";
      return 0;
    }
    if (command == "simulate" || command == "sim") {
      runtime::SimOptions sim_options;
      if (collect_metrics) sim_options.metrics = &registry;
      if (!trace_path.empty()) sim_options.obs_trace = &obs_trace;
      if (engine_name == "dataflow") sim_options.engine = runtime::EngineKind::Dataflow;
      sim_options.cost_order = cost_order;
      sim_options.workers = static_cast<std::size_t>(workers);
      std::optional<ltl::MonitorSet> ltl_monitors;
      if (!monitor_path.empty()) {
        const auto spec = load_ltl_spec(monitor_path, program);
        ltl_monitors.emplace(spec);
        // Live monitoring: the simulator calls this hook on every database
        // mutation, in virtual-time order.
        sim_options.tuple_events = [&ltl_monitors](std::string_view kind,
                                                   const std::string& node,
                                                   const ndlog::Tuple& tuple,
                                                   double now) {
          ltl::TupleEvent e;
          e.kind = kind == "install"   ? ltl::TupleEvent::Kind::Install
                   : kind == "retract" ? ltl::TupleEvent::Kind::Retract
                                       : ltl::TupleEvent::Kind::Expire;
          e.node = node;
          e.tuple = tuple;
          e.ts_us = static_cast<std::uint64_t>(now * 1e6);
          ltl_monitors->on_event(e);
        };
      }
      // --serve: attach the serving plane to the same stream (the simulator
      // is single-threaded, so the feed publishes at delta-round boundaries
      // with no locking). Composes with --monitor by chaining the hooks.
      std::optional<serve::ServePlane> serve_plane;
      std::optional<serve::Feed> serve_feed;
      if (!serve_spec_text.empty()) {
        serve_plane.emplace(
            parse_serve_spec(serve_spec_text, program),
            serve::ServePlane::Options{collect_metrics ? &registry : nullptr});
        serve_feed.emplace(*serve_plane);
        auto serve_hook = serve_feed->hook();
        if (sim_options.tuple_events) {
          auto monitor_hook = sim_options.tuple_events;
          sim_options.tuple_events =
              [monitor_hook, serve_hook](std::string_view kind,
                                         const std::string& node,
                                         const ndlog::Tuple& tuple, double now) {
                monitor_hook(kind, node, tuple, now);
                serve_hook(kind, node, tuple, now);
              };
        } else {
          sim_options.tuple_events = serve_hook;
        }
      }
      runtime::Simulator sim(program, sim_options);
      sim.inject_all(facts);
      auto stats = sim.run();
      if (serve_feed.has_value()) serve_feed->finish();
      if (serve_plane.has_value()) {
        print_serve_summary(*serve_plane);
        serve_plane->flush_metrics();
      }
      for (const auto& node : sim.nodes()) {
        std::cout << "--- " << node << " ---\n";
        for (const auto& row : sim.database(node).dump()) std::cout << row << "\n";
      }
      std::cerr << "events=" << stats.events_processed
                << " messages=" << stats.messages_sent
                << " converged_at=" << stats.last_change_time << "s"
                << (stats.quiesced ? "" : " (budget exhausted)") << "\n";
      if (workers >= 1) {
        if (stats.parallel_active) {
          std::cerr << "parallel: workers=" << workers
                    << " batches=" << stats.parallel_batches
                    << " rounds=" << stats.parallel_rounds << "\n";
        } else {
          std::cerr << "parallel: serial fallback ("
                    << stats.parallel_fallback_reason << ")\n";
        }
      }
      flush_obs();
      bool monitors_ok = true;
      if (ltl_monitors.has_value()) {
        const auto verdicts = ltl_monitors->finish();
        std::cout << ltl::render_verdicts(verdicts);
        monitors_ok = ltl_monitors->all_satisfied();
      }
      // Same convention as dist: a run that never quiesced is a runtime
      // failure (1), not success. A fired monitor is a violation (1) too.
      return stats.quiesced && monitors_ok ? 0 : 1;
    }
    if (command == "explain") {
      if (args.size() < 3) return usage();
      auto result = ndlog::eval_with_provenance(program, facts);
      auto target = ndlog::parse_fact(args[2]);
      auto derivation = result.derivation_of(target);
      if (!derivation) {
        std::cerr << target.to_string() << " is not derivable\n";
        return 1;
      }
      std::cout << derivation->to_string();
      return 0;
    }
    return usage();
  } catch (const ndlog::ParseError& e) {
    // Same convention as lint/analyze: malformed input exits 2, runtime
    // failures (divergence, budget exhaustion, transport errors) exit 1.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
