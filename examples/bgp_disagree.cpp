// BGP policy conflicts (paper §3.2.1): the Disagree scenario end to end.
//
//   * enumerate stable states of Disagree / Good Gadget / Bad Gadget,
//   * model-check for oscillation (the divergence the paper discusses),
//   * run SPVP under different activation schedules,
//   * run the policy path-vector NDlog program distributed, with
//     Disagree-style conflicting local preferences, and observe the delayed
//     convergence of reference [23].
//
// Build & run:  ./build/examples/bgp_disagree
#include <iostream>

#include "bgp/spp.hpp"
#include "bgp/spp_mc.hpp"
#include "core/protocols.hpp"
#include "runtime/simulator.hpp"

namespace {

void report(const fvn::bgp::SppInstance& spp) {
  using namespace fvn::bgp;
  std::cout << "--- " << spp.name << " ---\n";
  auto states = stable_states(spp);
  std::cout << "stable states: " << states.size() << "\n";
  for (const auto& a : states) std::cout << "  " << to_string(a) << "\n";
  auto osc = check_oscillation(spp);
  std::cout << "oscillation: " << (osc.has_cycle ? "YES" : "no");
  if (osc.has_cycle) std::cout << " (cycle length " << osc.cycle_length << ")";
  std::cout << " [" << osc.states_explored << " states explored]\n";

  for (auto schedule : {SpvpOptions::Schedule::Synchronous, SpvpOptions::Schedule::RoundRobin}) {
    SpvpOptions options;
    options.schedule = schedule;
    options.max_steps = 1000;
    auto run = run_spvp(spp, options);
    std::cout << (schedule == SpvpOptions::Schedule::Synchronous ? "sync " : "robin")
              << ": " << (run.converged ? "converged" : run.oscillated ? "OSCILLATED" : "budget")
              << " after " << run.steps << " steps, " << run.route_flaps << " flaps\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace fvn;
  std::cout << "=== Stable Paths Problem gadgets (section 3.2.1) ===\n\n";
  report(bgp::disagree());
  report(bgp::good_gadget());
  report(bgp::bad_gadget());

  // Distributed policy path-vector with conflicting local preferences
  // (Disagree encoded as importPref): higher pref for the route through the
  // other node. Compare convergence against a conflict-free configuration.
  std::cout << "=== Distributed policy path-vector (reference [23] experiment) ===\n";
  for (bool conflict : {false, true}) {
    auto program = core::policy_path_vector_program();
    std::vector<ndlog::Tuple> facts;
    using ndlog::Value;
    for (std::size_t i = 0; i < 3; ++i) {
      facts.emplace_back("node", std::vector<Value>{Value::addr(core::node_name(i))});
    }
    // Triangle 0-1-2.
    for (const auto& t : core::link_facts(core::full_mesh_topology(3))) facts.push_back(t);
    auto pref = [&](const char* at, const char* nbr, std::int64_t lp) {
      facts.emplace_back("importPref", std::vector<Value>{Value::addr(at), Value::addr(nbr),
                                                          Value::integer(lp)});
    };
    if (conflict) {
      // n1 and n2 prefer routes learned from each other (Disagree shape).
      pref("n1", "n2", 200);
      pref("n1", "n0", 100);
      pref("n2", "n1", 200);
      pref("n2", "n0", 100);
      pref("n0", "n1", 100);
      pref("n0", "n2", 100);
    } else {
      for (const char* a : {"n0", "n1", "n2"}) {
        for (const char* b : {"n0", "n1", "n2"}) {
          if (std::string(a) != b) pref(a, b, 100);
        }
      }
    }
    runtime::Simulator sim(program, {});
    sim.inject_all(facts);
    auto stats = sim.run();
    std::cout << (conflict ? "conflicting prefs: " : "uniform prefs:     ")
              << "converged_at=" << stats.last_change_time
              << "s messages=" << stats.messages_sent
              << " overwrites(route flaps)=" << stats.overwrites << "\n";
  }
  return 0;
}
